//! Property oracles for collective sequence derivation.
//!
//! Regression target: `Communicator` used to carry its own `Cell<u64>`
//! sequence counter, which `clone` *copied* — a handle cloned before a
//! collective replayed that collective's sequence number when used later,
//! colliding two different operations onto one matching slot (deadlock or
//! data corruption). Sequence numbers are now derived in the rank context as
//! a pure function of `(communicator id, op index on this rank)`, so the
//! property here is: any mix of handle clones taken at any point produces a
//! bit-identical simulation to using the original handles throughout.

use critter_sim::machine::MachineModel;
use critter_sim::{run_simulation, RankCtx, ReduceOp, SimConfig};
use proptest::prelude::*;

/// One generated collective op: which communicator family it targets and
/// which handle *vintage* the clone-happy run goes through.
#[derive(Debug, Clone, Copy)]
struct OpPick {
    on_world: bool,
    /// 0 = a clone taken fresh this iteration, 1 = a clone taken before any
    /// collective ran (the historical collision trigger), 2 = the original.
    vintage: u8,
}

fn op_picks() -> impl Strategy<Value = Vec<OpPick>> {
    proptest::collection::vec(
        (any::<bool>(), 0u8..3).prop_map(|(on_world, vintage)| OpPick { on_world, vintage }),
        1..12,
    )
}

fn run_program(seed: u64, ops: &[OpPick], use_clones: bool) -> (Vec<f64>, Vec<(f64, Vec<f64>)>) {
    let p = 4;
    let machine = MachineModel::test_noisy(p, seed).shared();
    let ops = ops.to_vec();
    let report = run_simulation(SimConfig::new(p), machine, move |ctx: &mut RankCtx| {
        let world = ctx.world();
        let early_world = world.clone(); // taken before ANY collective
        let row = ctx.split(&world, (ctx.rank() / 2) as i64, ctx.rank() as i64).unwrap();
        let early_row = row.clone();
        let mut sums = Vec::with_capacity(ops.len());
        for (i, pick) in ops.iter().enumerate() {
            let base = if pick.on_world { &world } else { &row };
            let fresh = base.clone();
            let handle = if !use_clones {
                base
            } else {
                match pick.vintage {
                    0 => &fresh,
                    1 => {
                        if pick.on_world {
                            &early_world
                        } else {
                            &early_row
                        }
                    }
                    _ => base,
                }
            };
            let s = ctx.allreduce(handle, ReduceOp::Sum, &[ctx.now(), i as f64]);
            sums.push(s[0]);
        }
        (ctx.now(), sums)
    });
    (report.rank_times, report.outputs)
}

proptest! {
    /// Clone-vintage independence: a program routing every collective through
    /// arbitrarily aged handle clones is bit-identical to one using the
    /// original handles — no replayed sequence numbers, no collisions.
    #[test]
    fn handle_clones_never_collide_sequence_numbers(
        seed in 0u64..1_000,
        ops in op_picks(),
    ) {
        let reference = run_program(seed, &ops, false);
        let cloned = run_program(seed, &ops, true);
        prop_assert_eq!(reference, cloned);
    }
}

#[test]
fn dup_yields_a_fresh_id_and_independent_sequence_stream() {
    let p = 2;
    let machine = MachineModel::test_exact(p).shared();
    let report = run_simulation(SimConfig::new(p), machine, |ctx: &mut RankCtx| {
        let world = ctx.world();
        let dup = ctx.dup(&world);
        assert_ne!(dup.id(), world.id(), "dup must not share the parent's id");
        assert_eq!(dup.members(), world.members());
        assert_eq!(dup.rank(), world.rank());
        // Interleave collectives on both: their sequence streams are keyed by
        // the distinct ids, so this cannot collide.
        ctx.barrier(&dup);
        ctx.barrier(&world);
        ctx.barrier(&dup);
        ctx.now()
    });
    assert_eq!(report.rank_times[0], report.rank_times[1]);
}

//! Deadlock-shape regression oracles: the classic ways a simulated program
//! wedges — mismatched point-to-point tags, a rank exiting with a collective
//! still pending, a zero-member communicator — must fail with the *same typed
//! error* ([`SimError`]) on every backend, and must fail promptly. The whole
//! scenario runs inside a wall-clock harness because the historical failure
//! mode of these shapes was hanging the threads backend forever.

use std::sync::mpsc;
use std::time::Duration;

use critter_machine::MachineModel;
use critter_sim::{
    run_simulation, sim_error_of, BackendKind, RankCtx, SimConfig, SimError, StuckOp,
};

/// Run `f` on a scratch thread and require it to finish within `limit`.
fn within<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx.recv_timeout(limit).expect("scenario exceeded the harness wall-clock budget");
    worker.join().expect("harness worker must not die");
    out
}

/// Run `prog` on `backend` and extract the typed error it dies with.
fn typed_error(backend: BackendKind, ranks: usize, prog: fn(&mut RankCtx)) -> SimError {
    within(Duration::from_secs(60), move || {
        let err = std::panic::catch_unwind(|| {
            let machine = MachineModel::test_exact(ranks).shared();
            let cfg = SimConfig::new(ranks)
                .with_backend(backend)
                .with_deadlock_timeout(Duration::from_millis(300));
            run_simulation(cfg, machine, prog);
        })
        .expect_err("scenario must fail");
        sim_error_of(err.as_ref())
            .cloned()
            .unwrap_or_else(|| panic!("expected a typed SimError payload on {backend}"))
    })
}

/// Assert both backends produce the same typed error and hand it back.
fn same_error_on_all_backends(ranks: usize, prog: fn(&mut RankCtx)) -> SimError {
    let mut errors = BackendKind::ALL.iter().map(|&b| typed_error(b, ranks, prog));
    let first = errors.next().unwrap();
    for other in errors {
        assert_eq!(first, other, "backends must agree on the typed error");
    }
    first
}

fn mismatched_tags(ctx: &mut RankCtx) {
    let world = ctx.world();
    if ctx.rank() == 0 {
        ctx.send(&world, 1, 1, &[1.0]); // eager: completes locally
    } else {
        ctx.recv(&world, 0, 2); // wrong tag: never matches
    }
}

fn missing_collective_peer(ctx: &mut RankCtx) {
    let world = ctx.world();
    if ctx.rank() != 2 {
        ctx.barrier(&world); // rank 2 exits without arriving
    }
}

fn zero_member_channel(ctx: &mut RankCtx) {
    if ctx.rank() == 0 {
        let _ = critter_sim::ChannelMeta::from_sorted_ranks(&[]);
    }
    let world = ctx.world();
    ctx.barrier(&world);
}

#[test]
fn mismatched_tags_raise_the_same_stuck_recv_everywhere() {
    let err = same_error_on_all_backends(2, mismatched_tags);
    match &err {
        SimError::Stuck { op, comm, detail } => {
            assert_eq!(*op, StuckOp::Recv);
            assert_eq!(*comm, critter_sim::comm::WORLD_ID);
            assert!(detail.contains("tag 2"), "diagnostic names the tag: {detail}");
        }
        other => panic!("expected a stuck receive, got {other:?}"),
    }
    assert!(err.to_string().starts_with("simulated deadlock:"));
}

#[test]
fn pending_collective_raises_the_same_stuck_collective_everywhere() {
    let err = same_error_on_all_backends(3, missing_collective_peer);
    match &err {
        SimError::Stuck { op, detail, .. } => {
            assert_eq!(*op, StuckOp::Collective);
            assert!(detail.contains("2/3 arrivals"), "diagnostic counts arrivals: {detail}");
        }
        other => panic!("expected a stuck collective, got {other:?}"),
    }
}

#[test]
fn zero_member_communicator_raises_the_same_typed_error_everywhere() {
    let err = same_error_on_all_backends(2, zero_member_channel);
    assert_eq!(err, SimError::EmptyCommunicator);
}

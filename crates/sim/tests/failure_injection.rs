//! Failure-injection tests: programming errors in simulated programs must be
//! caught loudly (panics with diagnostics), never silently corrupt state or
//! hang forever.

use std::time::Duration;

use critter_machine::MachineModel;
use critter_sim::{run_simulation, sim_error_of, ReduceOp, SimConfig};

fn expect_panic<F: FnOnce() + std::panic::UnwindSafe>(f: F, needle: &str) {
    let result = std::panic::catch_unwind(f);
    let err = result.expect_err("program should have panicked");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .or_else(|| sim_error_of(err.as_ref()).map(|e| e.to_string()))
        .unwrap_or_default();
    assert!(msg.contains(needle), "panic message {msg:?} should contain {needle:?}");
}

#[test]
fn mismatched_collectives_are_detected() {
    // Rank 0 calls a barrier while rank 1 calls an allreduce at the same
    // sequence number: a program-order divergence, caught by the slot check.
    expect_panic(
        || {
            let machine = MachineModel::test_exact(2).shared();
            run_simulation(SimConfig::new(2), machine, |ctx| {
                let world = ctx.world();
                if ctx.rank() == 0 {
                    ctx.barrier(&world);
                } else {
                    ctx.allreduce(&world, ReduceOp::Sum, &[1.0]);
                }
            });
        },
        "collective mismatch",
    );
}

#[test]
fn mismatched_reduction_lengths_are_detected() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(2).shared();
            run_simulation(SimConfig::new(2), machine, |ctx| {
                let world = ctx.world();
                let data = vec![1.0; 1 + ctx.rank()];
                ctx.allreduce(&world, ReduceOp::Sum, &data);
            });
        },
        "length mismatch",
    );
}

#[test]
fn scatter_with_indivisible_payload_is_detected() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(2).shared();
            run_simulation(SimConfig::new(2), machine, |ctx| {
                let world = ctx.world();
                let data = if ctx.rank() == 0 { vec![1.0; 3] } else { Vec::new() };
                ctx.scatter(&world, 0, &data);
            });
        },
        "not divisible",
    );
}

#[test]
fn cloned_handles_share_one_sequence_stream() {
    // Regression for the `Cell<u64>` sequence counter that used to live on
    // the `Communicator` handle: a handle cloned before the first collective
    // carried a *copy* of the counter, so using it afterwards replayed
    // sequence 0 and deadlocked the ranks onto different slots. Sequence
    // numbers are now derived in the rank context from the communicator id,
    // so any mix of clones of the same communicator is indistinguishable
    // from using one handle throughout.
    let machine = MachineModel::test_exact(2).shared();
    let cfg = SimConfig::new(2).with_deadlock_timeout(Duration::from_secs(5));
    let report = run_simulation(cfg, machine, |ctx| {
        let world = ctx.world();
        let cloned = world.clone(); // before any collective
        if ctx.rank() == 0 {
            ctx.barrier(&world);
            ctx.barrier(&cloned); // same stream: seq 1, not a replay of 0
        } else {
            ctx.barrier(&world);
            ctx.barrier(&world);
        }
        ctx.now()
    });
    assert_eq!(report.rank_times[0], report.rank_times[1]);
}

#[test]
fn deadlocked_collective_reports_arrival_count() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(3).shared();
            let cfg = SimConfig::new(3).with_deadlock_timeout(Duration::from_millis(300));
            run_simulation(cfg, machine, |ctx| {
                let world = ctx.world();
                if ctx.rank() != 2 {
                    ctx.barrier(&world); // rank 2 never arrives
                }
            });
        },
        "simulated deadlock",
    );
}

#[test]
fn wrong_peer_receive_deadlocks_with_diagnostics() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(3).shared();
            let cfg = SimConfig::new(3).with_deadlock_timeout(Duration::from_millis(300));
            run_simulation(cfg, machine, |ctx| {
                let world = ctx.world();
                match ctx.rank() {
                    0 => ctx.send(&world, 1, 5, &[1.0]),
                    1 => {
                        // Wrong source: message came from 0, we listen to 2.
                        ctx.recv(&world, 2, 5);
                    }
                    _ => {}
                }
            });
        },
        "simulated deadlock",
    );
}

#[test]
fn rank_count_must_match_machine() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(4).shared();
            run_simulation(SimConfig::new(2), machine, |_ctx| {});
        },
        "rank count",
    );
}

#[test]
fn negative_time_advance_is_rejected() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(1).shared();
            run_simulation(SimConfig::new(1), machine, |ctx| {
                ctx.advance(-1.0);
            });
        },
        "backwards",
    );
}

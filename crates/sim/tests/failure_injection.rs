//! Failure-injection tests: programming errors in simulated programs must be
//! caught loudly (panics with diagnostics), never silently corrupt state or
//! hang forever.

use std::time::Duration;

use critter_machine::MachineModel;
use critter_sim::{run_simulation, ReduceOp, SimConfig};

fn expect_panic<F: FnOnce() + std::panic::UnwindSafe>(f: F, needle: &str) {
    let result = std::panic::catch_unwind(f);
    let err = result.expect_err("program should have panicked");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains(needle), "panic message {msg:?} should contain {needle:?}");
}

#[test]
fn mismatched_collectives_are_detected() {
    // Rank 0 calls a barrier while rank 1 calls an allreduce at the same
    // sequence number: a program-order divergence, caught by the slot check.
    expect_panic(
        || {
            let machine = MachineModel::test_exact(2).shared();
            run_simulation(SimConfig::new(2), machine, |ctx| {
                let world = ctx.world();
                if ctx.rank() == 0 {
                    ctx.barrier(&world);
                } else {
                    ctx.allreduce(&world, ReduceOp::Sum, &[1.0]);
                }
            });
        },
        "collective mismatch",
    );
}

#[test]
fn mismatched_reduction_lengths_are_detected() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(2).shared();
            run_simulation(SimConfig::new(2), machine, |ctx| {
                let world = ctx.world();
                let data = vec![1.0; 1 + ctx.rank()];
                ctx.allreduce(&world, ReduceOp::Sum, &data);
            });
        },
        "length mismatch",
    );
}

#[test]
fn scatter_with_indivisible_payload_is_detected() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(2).shared();
            run_simulation(SimConfig::new(2), machine, |ctx| {
                let world = ctx.world();
                let data = if ctx.rank() == 0 { vec![1.0; 3] } else { Vec::new() };
                ctx.scatter(&world, 0, &data);
            });
        },
        "not divisible",
    );
}

#[test]
fn replayed_sequence_numbers_deadlock() {
    // One rank re-uses a communicator handle whose sequence counter was
    // cloned before the first collective: it replays sequence 0 while its
    // peer advances to sequence 1 — the ranks wait on different slots, which
    // the watchdog reports as a deadlock.
    expect_panic(
        || {
            let machine = MachineModel::test_exact(2).shared();
            let cfg = SimConfig::new(2).with_deadlock_timeout(Duration::from_millis(300));
            run_simulation(cfg, machine, |ctx| {
                let world = ctx.world();
                let replay = world.clone(); // clones the sequence counter
                if ctx.rank() == 0 {
                    ctx.barrier(&world);
                    ctx.barrier(&replay); // replays seq 0
                } else {
                    ctx.barrier(&world);
                    ctx.barrier(&world); // seq 1
                }
            });
        },
        "simulated deadlock",
    );
}

#[test]
fn deadlocked_collective_reports_arrival_count() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(3).shared();
            let cfg = SimConfig::new(3).with_deadlock_timeout(Duration::from_millis(300));
            run_simulation(cfg, machine, |ctx| {
                let world = ctx.world();
                if ctx.rank() != 2 {
                    ctx.barrier(&world); // rank 2 never arrives
                }
            });
        },
        "simulated deadlock",
    );
}

#[test]
fn wrong_peer_receive_deadlocks_with_diagnostics() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(3).shared();
            let cfg = SimConfig::new(3).with_deadlock_timeout(Duration::from_millis(300));
            run_simulation(cfg, machine, |ctx| {
                let world = ctx.world();
                match ctx.rank() {
                    0 => ctx.send(&world, 1, 5, &[1.0]),
                    1 => {
                        // Wrong source: message came from 0, we listen to 2.
                        ctx.recv(&world, 2, 5);
                    }
                    _ => {}
                }
            });
        },
        "simulated deadlock",
    );
}

#[test]
fn rank_count_must_match_machine() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(4).shared();
            run_simulation(SimConfig::new(2), machine, |_ctx| {});
        },
        "rank count",
    );
}

#[test]
fn negative_time_advance_is_rejected() {
    expect_panic(
        || {
            let machine = MachineModel::test_exact(1).shared();
            run_simulation(SimConfig::new(1), machine, |ctx| {
                ctx.advance(-1.0);
            });
        },
        "backwards",
    );
}

//! Reusable rank-thread pools.
//!
//! A tuning sweep calls [`crate::run_simulation`] hundreds of times; spawning
//! and joining one OS thread per rank per call costs thousands of
//! spawn/join cycles per sweep. A [`SimPool`] keeps the rank threads alive
//! between simulations: each `run` dispatches one job per rank to the
//! pool's persistent workers and blocks until every rank reports back.
//!
//! Panic-poisoning and deadlock-timeout semantics are identical to the old
//! spawn-per-run runner:
//!
//! * a panic on any rank poisons the shared `SimCore` (waking blocked
//!   peers, which then panic with a "peer rank panicked" cascade) and is
//!   re-raised on the calling thread, preferring the root-cause payload
//!   over cascades;
//! * a rank blocked longer than [`crate::SimConfig::deadlock_timeout`]
//!   panics with a deadlock diagnostic, which propagates the same way.
//!
//! Workers never unwind across the job boundary (each job catches its
//! rank's panic), so a pool survives failed simulations and can be reused.
//!
//! [`crate::run_simulation`] checks pools out of a process-wide registry
//! keyed by `(ranks, stack_size)`, so callers — including concurrent
//! tuning-sweep workers, each of which gets its *own* pool — reuse threads
//! transparently.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};

use critter_machine::MachineModel;
use parking_lot::Mutex;

use crate::backend::{execute_ranks, BackendKind, CommBackend, RankJob, RunLatch, TaskScheduler};
use crate::ctx::RankCtx;
use crate::runner::{SimConfig, SimReport};

/// A pool of persistent rank threads, one per simulated rank.
pub struct SimPool {
    ranks: usize,
    stack_size: usize,
    senders: Vec<mpsc::Sender<RankJob>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    runs: AtomicU64,
}

impl SimPool {
    /// Spawn a pool of `ranks` worker threads with the given stack size.
    pub fn new(ranks: usize, stack_size: usize) -> Self {
        static POOL_SEQ: AtomicU64 = AtomicU64::new(0);
        let id = POOL_SEQ.fetch_add(1, Ordering::Relaxed);
        assert!(ranks > 0, "a pool needs at least one rank thread");
        let mut senders = Vec::with_capacity(ranks);
        let mut handles = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            let (tx, rx) = mpsc::channel::<RankJob>();
            let handle = std::thread::Builder::new()
                .name(format!("sim-pool-{id}-rank-{rank}"))
                .stack_size(stack_size)
                .spawn(move || {
                    // Jobs catch their own panics, so this loop only exits
                    // when the pool drops its sender.
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn pool rank thread");
            senders.push(tx);
            handles.push(handle);
        }
        SimPool { ranks, stack_size, senders, handles, runs: AtomicU64::new(0) }
    }

    /// Number of rank threads in the pool.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Stack size the rank threads were spawned with.
    pub fn stack_size(&self) -> usize {
        self.stack_size
    }

    /// How many simulations this pool has completed (reuse observability).
    pub fn runs_completed(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Run `program` on every rank of a simulated machine, reusing this
    /// pool's threads. Semantics match [`crate::run_simulation`] on the
    /// `threads` backend; `config.backend` is ignored (this *is* a backend).
    pub fn run<R, F>(
        &self,
        config: &SimConfig,
        machine: Arc<MachineModel>,
        program: &F,
    ) -> SimReport<R>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        assert_eq!(config.ranks, self.ranks, "pool size must match the simulation");
        execute_ranks(&OnPool(self), config, machine, program)
    }

    /// Send one job to each rank thread (the backend layer's entry point).
    pub(crate) fn dispatch(&self, jobs: Vec<RankJob>) {
        assert_eq!(jobs.len(), self.ranks, "one job per rank thread");
        for (rank, job) in jobs.into_iter().enumerate() {
            // `send` only fails if a worker thread died, and workers cannot
            // die: jobs catch all panics.
            self.senders[rank].send(job).expect("pool worker alive");
        }
    }

    /// Record one completed simulation (reuse observability).
    pub(crate) fn note_run(&self) {
        self.runs.fetch_add(1, Ordering::Relaxed);
    }
}

/// [`CommBackend`] view of one specific pool, so [`SimPool::run`] shares the
/// job-building and result-collection path of [`execute_ranks`].
struct OnPool<'a>(&'a SimPool);

impl CommBackend for OnPool<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Threads
    }

    fn scheduler(&self, _config: &SimConfig) -> Option<Arc<TaskScheduler>> {
        None
    }

    fn execute(&self, _config: &SimConfig, jobs: Vec<RankJob>, latch: &RunLatch) {
        self.0.dispatch(jobs);
        latch.wait();
        self.0.note_run();
    }
}

impl Drop for SimPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; join so thread
        // resources are reclaimed deterministically.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for SimPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPool")
            .field("ranks", &self.ranks)
            .field("stack_size", &self.stack_size)
            .field("runs_completed", &self.runs_completed())
            .finish()
    }
}

/// Idle pools parked for reuse, keyed by `(ranks, stack_size)`.
type PoolRegistry = Mutex<HashMap<(usize, usize), Vec<SimPool>>>;

/// Process-wide registry of idle pools, keyed by `(ranks, stack_size)`.
fn registry() -> &'static PoolRegistry {
    static REGISTRY: OnceLock<PoolRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Rank threads currently leased out of the registry, summed across live
/// [`PoolLease`]s (see [`leased_ranks`]).
static LEASED_RANKS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// An exclusive lease on a pooled [`SimPool`]; returns the pool to the
/// registry on drop (including on unwind, so a panicking simulation does
/// not leak its threads).
pub struct PoolLease {
    pool: Option<SimPool>,
}

impl PoolLease {
    /// Check a pool out of the registry, spawning one if none is idle.
    pub fn checkout(ranks: usize, stack_size: usize) -> Self {
        let pooled = registry().lock().get_mut(&(ranks, stack_size)).and_then(Vec::pop);
        LEASED_RANKS.fetch_add(ranks, Ordering::Relaxed);
        PoolLease { pool: Some(pooled.unwrap_or_else(|| SimPool::new(ranks, stack_size))) }
    }

    /// The leased pool.
    pub fn pool(&self) -> &SimPool {
        self.pool.as_ref().expect("pool held until drop")
    }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            LEASED_RANKS.fetch_sub(pool.ranks, Ordering::Relaxed);
            registry().lock().entry((pool.ranks, pool.stack_size)).or_default().push(pool);
        }
    }
}

/// Number of idle pools currently parked in the registry (test/diagnostic
/// visibility into reuse behavior).
pub fn idle_pools() -> usize {
    registry().lock().values().map(Vec::len).sum()
}

/// Total rank threads currently checked out via [`PoolLease`] across the
/// process. This is the live-capacity signal multi-tenant schedulers meter
/// against: each running sweep worker holds one lease of `ranks` threads,
/// so the sum tracks concurrent simulated-rank pressure in real time.
pub fn leased_ranks() -> usize {
    LEASED_RANKS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ReduceOp;
    use std::panic::AssertUnwindSafe;

    fn machine(p: usize) -> Arc<MachineModel> {
        MachineModel::test_exact(p).shared()
    }

    #[test]
    fn pool_runs_count_and_threads_are_stable() {
        let pool = SimPool::new(3, 1 << 20);
        assert_eq!(pool.ranks(), 3);
        assert_eq!(pool.runs_completed(), 0);
        let cfg = SimConfig::new(3);
        let ids1 = pool.run(&cfg, machine(3), &|_ctx: &mut RankCtx| std::thread::current().id());
        let ids2 = pool.run(&cfg, machine(3), &|_ctx: &mut RankCtx| std::thread::current().id());
        assert_eq!(ids1.outputs, ids2.outputs, "rank threads must persist across runs");
        assert_eq!(pool.runs_completed(), 2);
    }

    #[test]
    fn pool_results_match_rank_order_and_communicate() {
        let pool = SimPool::new(4, 1 << 20);
        let cfg = SimConfig::new(4);
        let report = pool.run(&cfg, machine(4), &|ctx: &mut RankCtx| {
            let world = ctx.world();
            let sum = ctx.allreduce(&world, ReduceOp::Sum, &[ctx.rank() as f64]);
            (ctx.rank(), sum[0])
        });
        for (i, &(rank, sum)) in report.outputs.iter().enumerate() {
            assert_eq!(rank, i, "outputs must be collected in rank order");
            assert_eq!(sum, 6.0);
        }
    }

    #[test]
    fn pool_survives_panicked_run() {
        let pool = SimPool::new(2, 1 << 20);
        let cfg = SimConfig::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&cfg, machine(2), &|ctx: &mut RankCtx| {
                if ctx.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                let world = ctx.world();
                ctx.recv(&world, 1, 0);
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("rank 1 exploded"),
            "root cause, not the peer cascade, must be re-raised; got {msg:?}"
        );
        // Same pool, fresh core: the next run must succeed.
        let ok = pool.run(&cfg, machine(2), &|ctx: &mut RankCtx| ctx.rank() * 10);
        assert_eq!(ok.outputs, vec![0, 10]);
    }

    #[test]
    fn lease_returns_pool_to_registry_when_run_panics() {
        // A panicking simulation unwinds through `SimPool::run` while the
        // lease is live; the lease's Drop must still park the pool, so the
        // next checkout of the same shape reuses those threads instead of
        // leaking them and spawning fresh ones.
        let (ranks, stack) = (2, (1 << 20) + 0xD509);
        let result = std::panic::catch_unwind(|| {
            let lease = PoolLease::checkout(ranks, stack);
            lease.pool().run(&SimConfig::new(ranks), machine(ranks), &|ctx: &mut RankCtx| {
                if ctx.rank() == 0 {
                    panic!("sweep exploded mid-run");
                }
                let world = ctx.world();
                ctx.recv(&world, 0, 0);
            })
        });
        assert!(result.is_err());
        let lease = PoolLease::checkout(ranks, stack);
        assert_eq!(
            lease.pool().runs_completed(),
            1,
            "checkout after the panic must return the same (reusable) pool"
        );
        let ok = lease
            .pool()
            .run(&SimConfig::new(ranks), machine(ranks), &|ctx: &mut RankCtx| ctx.rank());
        assert_eq!(ok.outputs, vec![0, 1]);
    }

    #[test]
    fn leased_ranks_tracks_live_checkouts() {
        // Sibling tests lease pools concurrently, so assert monotone deltas
        // around this test's own leases rather than absolute values.
        let (ranks, stack) = (3, (1 << 20) + 0xACC7);
        let held = {
            let _a = PoolLease::checkout(ranks, stack);
            let one = leased_ranks();
            assert!(one >= ranks, "a live lease must contribute its ranks");
            let _b = PoolLease::checkout(ranks, stack);
            let two = leased_ranks();
            assert!(two >= 2 * ranks, "leases accumulate while both are live");
            two
        };
        // Both leases dropped: the census gave back this test's 2×ranks
        // (concurrent churn can only have added or removed other leases,
        // never ours, so the floor holds).
        assert!(held >= 2 * ranks);
    }

    #[test]
    fn lease_checkout_spawns_then_reuses() {
        // Unique shape → private registry slot, immune to sibling tests.
        let (ranks, stack) = (2, (1 << 20) + 0x1EA5E);
        let first_pool_runs;
        {
            let lease = PoolLease::checkout(ranks, stack);
            lease.pool().run(&SimConfig::new(ranks), machine(ranks), &|_ctx: &mut RankCtx| ());
            first_pool_runs = lease.pool().runs_completed();
        }
        {
            let lease = PoolLease::checkout(ranks, stack);
            assert_eq!(
                lease.pool().runs_completed(),
                first_pool_runs,
                "second checkout must return the pool the first lease parked"
            );
        }
    }
}

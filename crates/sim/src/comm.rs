//! Communicators and channel metadata.
//!
//! A [`Communicator`] is a rank's handle on a group, mirroring `MPI_Comm`.
//! Alongside the member list it carries a [`ChannelMeta`]: the paper's
//! *channel* description — the group expressed as an offset plus a product of
//! `(stride, size)` dimensions relative to the world communicator (§III-B).
//! Critter's aggregate-channel infrastructure reasons entirely in terms of
//! these `(stride, size)` signatures, which is how statistics propagate along
//! the fibers and slices of a cartesian processor grid.

use std::sync::Arc;

use critter_machine::rng::stream_id;

use crate::error::SimError;

/// Structural description of a process group relative to `MPI_COMM_WORLD`:
/// `offset + Σ iⱼ·strideⱼ` for `iⱼ < sizeⱼ`. Groups that are not expressible
/// as such a product keep the member hash only (`dims` empty, `irregular`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChannelMeta {
    /// Smallest world rank in the group.
    pub offset: usize,
    /// Cartesian factorization, innermost (smallest stride) first.
    pub dims: Vec<(usize, usize)>,
    /// True when the group could not be factored into strided dimensions.
    pub irregular: bool,
    /// Total number of members.
    pub size: usize,
}

impl ChannelMeta {
    /// Factor a sorted, duplicate-free world-rank list into strided dims.
    pub fn from_sorted_ranks(ranks: &[usize]) -> Self {
        if ranks.is_empty() {
            std::panic::panic_any(SimError::EmptyCommunicator);
        }
        debug_assert!(ranks.windows(2).all(|w| w[0] < w[1]), "ranks must be sorted unique");
        let offset = ranks[0];
        match Self::decompose(ranks) {
            Some(dims) => ChannelMeta { offset, dims, irregular: false, size: ranks.len() },
            None => ChannelMeta { offset, dims: Vec::new(), irregular: true, size: ranks.len() },
        }
    }

    /// Greedy factorization: peel the innermost arithmetic run, recurse on the
    /// run starts. Returns `None` when the list has no product structure.
    fn decompose(ranks: &[usize]) -> Option<Vec<(usize, usize)>> {
        if ranks.len() == 1 {
            return Some(Vec::new());
        }
        let s = ranks[1] - ranks[0];
        if s == 0 {
            return None;
        }
        // Longest arithmetic prefix with stride s.
        let mut k = 1;
        while k < ranks.len() && ranks[k] == ranks[0] + k * s {
            k += 1;
        }
        if !ranks.len().is_multiple_of(k) {
            return None;
        }
        let blocks = ranks.len() / k;
        let mut starts = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let base = ranks[b * k];
            for i in 0..k {
                if ranks[b * k + i] != base + i * s {
                    return None;
                }
            }
            starts.push(base);
        }
        let outer = Self::decompose(&starts)?;
        let mut dims = Vec::with_capacity(outer.len() + 1);
        dims.push((s, k));
        dims.extend(outer);
        Some(dims)
    }

    /// The innermost stride (1 for contiguous groups); 0 for singletons and
    /// irregular groups.
    pub fn stride(&self) -> usize {
        self.dims.first().map(|&(s, _)| s).unwrap_or(0)
    }

    /// Stable hash of the channel *shape* `(stride, size)` per dimension —
    /// the quantity the paper hashes when building aggregate channels
    /// ("Hash id generated purely from (stride, size)", Fig. 2).
    pub fn shape_hash(&self) -> u64 {
        let mut parts = Vec::with_capacity(2 * self.dims.len() + 1);
        for &(s, n) in &self.dims {
            parts.push(s as u64);
            parts.push(n as u64);
        }
        if self.irregular {
            parts.push(0x1_0000_0000 | self.size as u64);
        }
        stream_id(&parts)
    }

    /// Compact human-readable label, e.g. `ch[p=4,s=1,o=0]` for a regular
    /// channel of 4 members at stride 1 from offset 0, or `ch[p=5,irr]` for
    /// a group with no product structure. Used to key per-channel
    /// propagation counters in the observability metrics registry, so the
    /// label is a pure function of the channel shape.
    pub fn label(&self) -> String {
        if self.irregular {
            format!("ch[p={},irr]", self.size)
        } else {
            format!("ch[p={},s={},o={}]", self.size, self.stride(), self.offset)
        }
    }

    /// Whether `self` and `other` together tile a cartesian grid dimension-wise
    /// (disjoint stride sets — the condition for combining aggregates).
    pub fn disjoint_dims(&self, other: &ChannelMeta) -> bool {
        if self.irregular || other.irregular {
            return false;
        }
        !self.dims.iter().any(|(s, _)| other.dims.iter().any(|(t, _)| s == t))
    }
}

/// A rank's handle on a communicator.
///
/// Holds the member list (world ranks in communicator-rank order), this rank's
/// position, and the deterministic communicator id. Collective sequence
/// numbers are NOT stored here: they live in the rank's [`crate::RankCtx`],
/// keyed by communicator id, so cloned or re-derived handles of the same
/// communicator share one sequence stream instead of replaying it.
#[derive(Debug, Clone)]
pub struct Communicator {
    id: u64,
    members: Arc<Vec<usize>>,
    my_index: usize,
    meta: Arc<ChannelMeta>,
}

/// Fixed id of the world communicator.
pub const WORLD_ID: u64 = 0x57_4f_52_4c_44; // "WORLD"

impl Communicator {
    /// Construct a communicator handle (used by the runtime; programs obtain
    /// communicators from [`crate::RankCtx::world`] and `split`).
    pub(crate) fn new(id: u64, members: Arc<Vec<usize>>, my_index: usize) -> Self {
        let mut sorted: Vec<usize> = members.as_ref().clone();
        sorted.sort_unstable();
        let meta = Arc::new(ChannelMeta::from_sorted_ranks(&sorted));
        Communicator { id, members, my_index, meta }
    }

    /// The world communicator over `p` ranks, as seen from world rank `rank`.
    pub(crate) fn world(p: usize, rank: usize) -> Self {
        let members = Arc::new((0..p).collect::<Vec<_>>());
        Communicator::new(WORLD_ID, members, rank)
    }

    /// Deterministic communicator id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// World rank of communicator rank `i`.
    pub fn world_rank_of(&self, i: usize) -> usize {
        self.members[i]
    }

    /// Member list in communicator-rank order (world ranks).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Channel metadata (offset / strides / sizes relative to world).
    pub fn meta(&self) -> &ChannelMeta {
        &self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_describe_channel_shape() {
        let regular = ChannelMeta::from_sorted_ranks(&[2, 4, 6, 8]);
        assert_eq!(regular.label(), "ch[p=4,s=2,o=2]");
        let irregular = ChannelMeta::from_sorted_ranks(&[0, 1, 3]);
        assert!(irregular.irregular);
        assert_eq!(irregular.label(), "ch[p=3,irr]");
    }

    #[test]
    fn contiguous_group() {
        let m = ChannelMeta::from_sorted_ranks(&[4, 5, 6, 7]);
        assert_eq!(m.offset, 4);
        assert_eq!(m.dims, vec![(1, 4)]);
        assert!(!m.irregular);
        assert_eq!(m.stride(), 1);
    }

    #[test]
    fn strided_group() {
        // A column of a 4x4 row-major grid: stride 4.
        let m = ChannelMeta::from_sorted_ranks(&[2, 6, 10, 14]);
        assert_eq!(m.dims, vec![(4, 4)]);
        assert_eq!(m.offset, 2);
    }

    #[test]
    fn product_group() {
        // A 2x2 sub-grid {0,1,8,9}: strides 1 and 8.
        let m = ChannelMeta::from_sorted_ranks(&[0, 1, 8, 9]);
        assert_eq!(m.dims, vec![(1, 2), (8, 2)]);
    }

    #[test]
    fn grid_layer_of_3d() {
        // z-layer of a 4x4x4 grid: ranks 16..32 → (1,16) or (1,4),(4,4).
        let ranks: Vec<usize> = (16..32).collect();
        let m = ChannelMeta::from_sorted_ranks(&ranks);
        assert!(!m.irregular);
        assert_eq!(m.offset, 16);
        assert_eq!(m.dims.iter().map(|&(_, n)| n).product::<usize>(), 16);
    }

    #[test]
    fn irregular_group() {
        let m = ChannelMeta::from_sorted_ranks(&[0, 1, 3, 7]);
        assert!(m.irregular);
        assert_eq!(m.size, 4);
        assert_eq!(m.stride(), 0);
    }

    #[test]
    fn singleton_group() {
        let m = ChannelMeta::from_sorted_ranks(&[5]);
        assert!(!m.irregular);
        assert!(m.dims.is_empty());
        assert_eq!(m.size, 1);
    }

    #[test]
    fn shape_hash_ignores_offset() {
        let a = ChannelMeta::from_sorted_ranks(&[0, 4, 8, 12]);
        let b = ChannelMeta::from_sorted_ranks(&[1, 5, 9, 13]);
        assert_eq!(a.shape_hash(), b.shape_hash());
        let c = ChannelMeta::from_sorted_ranks(&[0, 1, 2, 3]);
        assert_ne!(a.shape_hash(), c.shape_hash());
    }

    #[test]
    fn disjoint_dims_for_grid_fibers() {
        // Row (stride 1) and column (stride 4) of a 4x4 grid combine.
        let row = ChannelMeta::from_sorted_ranks(&[0, 1, 2, 3]);
        let col = ChannelMeta::from_sorted_ranks(&[0, 4, 8, 12]);
        assert!(row.disjoint_dims(&col));
        assert!(!row.disjoint_dims(&row));
    }

    #[test]
    fn world_communicator_handle() {
        let c = Communicator::world(8, 3);
        assert_eq!(c.size(), 8);
        assert_eq!(c.rank(), 3);
        assert_eq!(c.world_rank_of(5), 5);
        assert_eq!(c.meta().dims, vec![(1, 8)]);
    }

    #[test]
    fn empty_group_raises_typed_error() {
        let payload = std::panic::catch_unwind(|| ChannelMeta::from_sorted_ranks(&[]))
            .expect_err("empty group must panic");
        assert_eq!(
            crate::error::sim_error_of(payload.as_ref()),
            Some(&SimError::EmptyCommunicator)
        );
    }
}

//! The per-rank execution context — the "PMPI layer" a simulated program (or
//! the Critter interception layer above it) calls into.
//!
//! All operations follow MPI calling conventions: ranks are communicator-local,
//! vector collectives take per-rank contributions, `split` with a negative
//! color returns no communicator. Payloads are `Vec<f64>` (dense linear algebra
//! moves matrix blocks; integer metadata is encoded as f64, which is exact for
//! the magnitudes involved).

use std::sync::Arc;

use critter_machine::rng::stream_id;
use critter_machine::{ComputeSampler, CounterRng, KernelClass, MachineModel};

use crate::comm::Communicator;
use crate::core::{CollKind, CombineFn, Contrib, Output, P2pKey, SimCore};
use crate::counters::RankCounters;
use crate::request::{Request, RequestInner};

/// Elementwise reduction operators for `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    /// Fold `src` into `acc` elementwise. Panics on length mismatch, as MPI
    /// would on count mismatch.
    pub(crate) fn fold_into(self, acc: &mut [f64], src: &[f64]) {
        assert_eq!(acc.len(), src.len(), "reduction length mismatch");
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(src).for_each(|(a, &b)| *a += b),
            ReduceOp::Max => acc.iter_mut().zip(src).for_each(|(a, &b)| *a = a.max(b)),
            ReduceOp::Min => acc.iter_mut().zip(src).for_each(|(a, &b)| *a = a.min(b)),
        }
    }
}

/// One simulated rank's execution context.
pub struct RankCtx {
    rank: usize,
    size: usize,
    clock: f64,
    core: Arc<SimCore>,
    world: Communicator,
    counters: RankCounters,
    compute_invocations: u64,
    /// Cached noise sampler for this rank — one stream setup per run instead
    /// of one per kernel invocation. Draws are bit-identical to going through
    /// `machine.compute_time` (see `ComputeSampler`).
    compute_noise: ComputeSampler,
    /// Cached perturbation/fault RNG streams (pure functions of `(seed, rank)`,
    /// hoisted out of the per-interception path).
    perturb_rng: Option<CounterRng>,
    fault_rng: Option<CounterRng>,
    perturb_points: u64,
    fault_points: u64,
    /// Per-communicator collective sequence counters, keyed by communicator
    /// id. Kept here — not on the [`Communicator`] handle — so cloned or
    /// re-derived handles of the same communicator draw from one sequence
    /// stream (a `Cell` on the handle was copied by `clone` and replayed
    /// sequence numbers). A small vec beats a map: programs hold a handful
    /// of live communicators.
    coll_seq: Vec<(u64, u64)>,
}

impl RankCtx {
    pub(crate) fn new(rank: usize, size: usize, core: Arc<SimCore>) -> Self {
        let world = Communicator::world(size, rank);
        let compute_noise = core.machine.compute_sampler(rank);
        let perturb_rng =
            core.perturb.map(|p| CounterRng::new(p.seed, stream_id(&[0x5045_5254, rank as u64]))); // "PERT"
        let fault_rng =
            core.faults.map(|f| CounterRng::new(f.seed, stream_id(&[0x4641_554C, rank as u64]))); // "FAUL"
        RankCtx {
            rank,
            size,
            clock: 0.0,
            core,
            world,
            counters: RankCounters::default(),
            compute_invocations: 0,
            compute_noise,
            perturb_rng,
            fault_rng,
            perturb_points: 0,
            fault_points: 0,
            coll_seq: Vec::new(),
        }
    }

    /// Allocate the next collective sequence number for communicator
    /// `comm_id` on this rank. A pure function of (communicator id, number of
    /// collectives this rank has issued on it) — independent of which handle
    /// clone the program went through.
    fn next_collective_seq(&mut self, comm_id: u64) -> u64 {
        for entry in &mut self.coll_seq {
            if entry.0 == comm_id {
                let s = entry.1;
                entry.1 += 1;
                return s;
            }
        }
        self.coll_seq.push((comm_id, 1));
        0
    }

    /// Schedule-perturbation point (no-op unless [`crate::SimConfig::perturb`]
    /// is set): randomly yield and/or sleep this OS thread to shake the real
    /// interleaving of rank threads. Draws are counter-based per `(seed,
    /// rank)`, and nothing here touches the virtual clock — the determinism
    /// fuzzer asserts that simulated results are identical anyway.
    #[inline]
    fn perturb_point(&mut self) {
        let Some(rng) = &self.perturb_rng else { return };
        let p = self.core.perturb.expect("perturb params present when perturb_rng is");
        let idx = self.perturb_points;
        self.perturb_points += 1;
        let to_unit = |bits: u64| (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if to_unit(rng.at(3 * idx)) < p.yield_prob {
            std::thread::yield_now();
        }
        if p.max_sleep_us > 0 && to_unit(rng.at(3 * idx + 1)) < p.sleep_prob {
            let us = rng.at(3 * idx + 2) % p.max_sleep_us;
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }

    /// Fault-injection point (no-op unless [`crate::SimConfig::faults`] is
    /// set): may panic this rank, delay its virtual clock, or charge a
    /// dropped message's retransmit timeout. Draws are counter-based per
    /// `(seed, rank)` and indexed by a fault-point counter that advances on
    /// every interception whether or not a fault fires, so a plan's fault
    /// schedule is a pure function of the program — never of thread timing.
    #[inline]
    fn fault_point(&mut self) {
        let Some(rng) = &self.fault_rng else { return };
        let f = self.core.faults.expect("fault plan present when fault_rng is");
        let idx = self.fault_points;
        self.fault_points += 1;
        let to_unit = |bits: u64| (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if f.panic_prob > 0.0 && to_unit(rng.at(4 * idx)) < f.panic_prob {
            panic!("injected fault: rank {} killed at fault point {idx}", self.rank);
        }
        if f.delay_prob > 0.0 && to_unit(rng.at(4 * idx + 1)) < f.delay_prob {
            self.clock += to_unit(rng.at(4 * idx + 2)) * f.max_delay;
        }
        if f.drop_prob > 0.0 && to_unit(rng.at(4 * idx + 3)) < f.drop_prob {
            self.clock += f.retransmit_timeout;
        }
    }

    /// Number of fault-injection points passed so far (diagnostics).
    pub fn fault_points(&self) -> u64 {
        self.fault_points
    }

    /// This rank's world rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the simulation.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The world communicator.
    pub fn world(&self) -> Communicator {
        self.world.clone()
    }

    /// Current virtual time on this rank.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Advance the local clock by `dt` virtual seconds (modeling local work
    /// outside the kernel cost model — e.g. Critter's own bookkeeping).
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0, "cannot advance time backwards");
        self.clock += dt;
    }

    /// The machine model driving all costs.
    pub fn machine(&self) -> &MachineModel {
        &self.core.machine
    }

    /// Volumetric counters accumulated so far.
    pub fn counters(&self) -> &RankCounters {
        &self.counters
    }

    /// Number of compute kernels sampled so far (the per-rank invocation
    /// counter feeding the deterministic jitter stream).
    pub fn compute_invocations(&self) -> u64 {
        self.compute_invocations
    }

    /// Execute a compute kernel of `class` costing `flops`: samples its noisy
    /// duration, advances the clock, returns the sampled time.
    pub fn compute(&mut self, class: KernelClass, flops: f64) -> f64 {
        self.perturb_point();
        self.fault_point();
        let t = self.core.machine.compute_time_with(
            &self.compute_noise,
            class,
            flops,
            self.compute_invocations,
        );
        self.compute_invocations += 1;
        self.clock += t;
        self.counters.compute_calls += 1;
        self.counters.flops += flops;
        self.counters.compute_time += t;
        t
    }

    /// Sample what a compute kernel *would* cost without executing it, still
    /// consuming an invocation index (so that skipped kernels do not shift the
    /// jitter stream of later ones). Used by Critter's selective execution.
    pub fn peek_compute(&mut self, class: KernelClass, flops: f64) -> f64 {
        let t = self.core.machine.compute_time_with(
            &self.compute_noise,
            class,
            flops,
            self.compute_invocations,
        );
        self.compute_invocations += 1;
        t
    }

    fn key(&self, comm: &Communicator, src: usize, dst: usize, tag: u64) -> P2pKey {
        P2pKey { comm: comm.id(), src: comm.world_rank_of(src), dst: comm.world_rank_of(dst), tag }
    }

    /// Blocking standard-mode send of `data` to communicator rank `dst`.
    ///
    /// Messages larger than the eager threshold synchronize with the receiver
    /// (rendezvous); smaller ones complete locally after the transfer cost.
    pub fn send(&mut self, comm: &Communicator, dst: usize, tag: u64, data: &[f64]) {
        self.perturb_point();
        self.fault_point();
        let key = self.key(comm, comm.rank(), dst, tag);
        let words = data.len();
        let (cost, slot) = self.core.post_send(key, data.to_vec(), self.clock, false, None);
        let done = match slot {
            Some(s) => {
                let done = self.core.wait_send(&s);
                // Rendezvous: time past our own transfer cost was spent waiting
                // for the receiver to arrive.
                self.counters.idle_time += (done - self.clock - cost).max(0.0);
                done
            }
            None => self.clock + cost,
        };
        self.counters.comm_time += cost;
        self.counters.sends += 1;
        self.counters.words_sent += words as u64;
        self.clock = done;
    }

    /// Blocking receive from communicator rank `src`.
    pub fn recv(&mut self, comm: &Communicator, src: usize, tag: u64) -> Vec<f64> {
        self.perturb_point();
        self.fault_point();
        let key = self.key(comm, src, comm.rank(), tag);
        let out = self.core.match_recv(key, self.clock);
        self.counters.recvs += 1;
        self.counters.words_received += out.data.len() as u64;
        self.counters.comm_time += out.cost;
        self.counters.idle_time += out.idle;
        self.clock = out.done.max(self.clock);
        out.data
    }

    /// Nonblocking send; completion via [`RankCtx::wait`].
    pub fn isend(&mut self, comm: &Communicator, dst: usize, tag: u64, data: Vec<f64>) -> Request {
        self.isend_with_cost(comm, dst, tag, data, None)
    }

    /// Nonblocking send whose transfer is charged as `cost_words` words
    /// instead of the payload length (`None` = actual size). Critter uses
    /// this to charge internal piggyback messages at the compact wire size of
    /// the real implementation's profile arrays.
    pub fn isend_with_cost(
        &mut self,
        comm: &Communicator,
        dst: usize,
        tag: u64,
        data: Vec<f64>,
        cost_words: Option<usize>,
    ) -> Request {
        self.perturb_point();
        self.fault_point();
        let key = self.key(comm, comm.rank(), dst, tag);
        let words = data.len() as u64;
        let post = self.clock;
        let (cost, slot) = self.core.post_send(key, data, post, false, cost_words);
        // Posting costs only the software overhead; transfer overlaps.
        self.clock += self.core.machine.params().per_call_overhead;
        match slot {
            Some(slot) => Request(RequestInner::SendRendezvous { slot, post, words }),
            None => Request(RequestInner::SendEager { done: post + cost, words, cost }),
        }
    }

    /// Nonblocking receive; data is returned by [`RankCtx::wait`].
    pub fn irecv(&mut self, comm: &Communicator, src: usize, tag: u64) -> Request {
        self.perturb_point();
        self.fault_point();
        let key = self.key(comm, src, comm.rank(), tag);
        let post = self.clock;
        self.clock += self.core.machine.params().per_call_overhead;
        Request(RequestInner::Recv { key, post })
    }

    /// Complete a nonblocking operation. Returns the received payload for
    /// receive requests, `None` otherwise.
    pub fn wait(&mut self, req: Request) -> Option<Vec<f64>> {
        self.perturb_point();
        self.fault_point();
        match req.0 {
            RequestInner::Done => None,
            RequestInner::SendEager { done, words, cost } => {
                self.counters.sends += 1;
                self.counters.words_sent += words;
                self.counters.comm_time += cost;
                self.clock = self.clock.max(done);
                None
            }
            RequestInner::SendRendezvous { slot, post, words } => {
                let done = self.core.wait_send(&slot);
                self.counters.sends += 1;
                self.counters.words_sent += words;
                // Attribute the span beyond our current clock to idle+transfer.
                self.counters.idle_time += (done - self.clock.max(post)).max(0.0);
                self.clock = self.clock.max(done);
                None
            }
            RequestInner::Recv { key, post } => {
                let out = self.core.match_recv(key, post);
                self.counters.recvs += 1;
                self.counters.words_received += out.data.len() as u64;
                self.counters.comm_time += out.cost;
                self.counters.idle_time += (out.done - self.clock - out.cost).max(0.0);
                self.clock = self.clock.max(out.done);
                Some(out.data)
            }
        }
    }

    /// Complete a set of requests in order, collecting any received payloads.
    pub fn waitall(&mut self, reqs: Vec<Request>) -> Vec<Vec<f64>> {
        reqs.into_iter().filter_map(|r| self.wait(r)).collect()
    }

    fn run_collective(
        &mut self,
        comm: &Communicator,
        kind: CollKind,
        root: usize,
        contrib: Contrib,
        combine: Option<CombineFn>,
        charge: Option<Option<usize>>,
    ) -> Output {
        self.run_collective_timed(comm, kind, root, contrib, combine, charge).0
    }

    fn run_collective_timed(
        &mut self,
        comm: &Communicator,
        kind: CollKind,
        root: usize,
        contrib: Contrib,
        combine: Option<CombineFn>,
        charge: Option<Option<usize>>,
    ) -> (Output, f64) {
        self.perturb_point();
        self.fault_point();
        let seq = self.next_collective_seq(comm.id());
        let post = self.clock;
        let (done, cost, out) =
            self.core.collective(comm, seq, kind, root, contrib, combine, charge, post);
        self.counters.collectives += 1;
        self.counters.comm_time += cost;
        self.counters.idle_time += (done - post - cost).max(0.0);
        self.clock = done;
        (out, cost)
    }

    fn expect_data(out: Output) -> Vec<f64> {
        match out {
            Output::Data(d) => d,
            _ => panic!("collective returned no data where data was expected"),
        }
    }

    /// Broadcast `data` from communicator rank `root`; on other ranks the
    /// buffer is replaced with the root's payload.
    pub fn bcast(&mut self, comm: &Communicator, root: usize, data: &mut Vec<f64>) {
        let contrib = if comm.rank() == root {
            Contrib::Data(std::mem::take(data))
        } else {
            Contrib::Data(Vec::new())
        };
        let out = self.run_collective(comm, CollKind::Bcast, root, contrib, None, Some(None));
        *data = Self::expect_data(out);
    }

    /// Reduce `data` elementwise onto `root`; `Some(result)` at the root.
    pub fn reduce(
        &mut self,
        comm: &Communicator,
        root: usize,
        op: ReduceOp,
        data: &[f64],
    ) -> Option<Vec<f64>> {
        let out = self.run_collective(
            comm,
            CollKind::Reduce(op),
            root,
            Contrib::Data(data.to_vec()),
            None,
            Some(None),
        );
        match out {
            Output::Data(d) => Some(d),
            _ => None,
        }
    }

    /// Allreduce: every rank receives the elementwise reduction.
    pub fn allreduce(&mut self, comm: &Communicator, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        let out = self.run_collective(
            comm,
            CollKind::Allreduce(op),
            0,
            Contrib::Data(data.to_vec()),
            None,
            Some(None),
        );
        Self::expect_data(out)
    }

    /// Allreduce with a custom associative combine function (Critter's internal
    /// path-propagation operator). When `charged` is false the operation
    /// synchronizes clocks but adds zero cost — pure piggybacking.
    pub fn allreduce_custom(
        &mut self,
        comm: &Communicator,
        data: Vec<f64>,
        combine: CombineFn,
        charge: Option<Option<usize>>,
    ) -> Vec<f64> {
        self.allreduce_custom_timed(comm, data, combine, charge).0
    }

    /// [`RankCtx::allreduce_custom`] that also returns the operation's sampled
    /// cost — identical on every participant, which lets the Critter layer
    /// fold its own profiling cost into the critical-path estimate.
    pub fn allreduce_custom_timed(
        &mut self,
        comm: &Communicator,
        data: Vec<f64>,
        combine: CombineFn,
        charge: Option<Option<usize>>,
    ) -> (Vec<f64>, f64) {
        let (out, cost) = self.run_collective_timed(
            comm,
            CollKind::AllreduceCustom,
            0,
            Contrib::Data(data),
            Some(combine),
            charge,
        );
        (Self::expect_data(out), cost)
    }

    /// Allgather: concatenation of every rank's `data`, in rank order.
    pub fn allgather(&mut self, comm: &Communicator, data: &[f64]) -> Vec<f64> {
        let out = self.run_collective(
            comm,
            CollKind::Allgather,
            0,
            Contrib::Data(data.to_vec()),
            None,
            Some(None),
        );
        Self::expect_data(out)
    }

    /// Gather onto `root`: `Some(concatenation)` at the root.
    pub fn gather(&mut self, comm: &Communicator, root: usize, data: &[f64]) -> Option<Vec<f64>> {
        let out = self.run_collective(
            comm,
            CollKind::Gather,
            root,
            Contrib::Data(data.to_vec()),
            None,
            Some(None),
        );
        match out {
            Output::Data(d) => Some(d),
            _ => None,
        }
    }

    /// Scatter from `root`: the root supplies `size() * chunk` words, every
    /// rank receives its `chunk`-word slice. Non-roots pass an empty slice.
    pub fn scatter(&mut self, comm: &Communicator, root: usize, data: &[f64]) -> Vec<f64> {
        let contrib = if comm.rank() == root {
            Contrib::Data(data.to_vec())
        } else {
            Contrib::Data(Vec::new())
        };
        let out = self.run_collective(comm, CollKind::Scatter, root, contrib, None, Some(None));
        Self::expect_data(out)
    }

    /// Reduce-scatter: every rank contributes `size()·chunk` words; rank `i`
    /// receives the `i`-th `chunk`-word slice of the elementwise reduction.
    pub fn reduce_scatter(&mut self, comm: &Communicator, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        assert_eq!(data.len() % comm.size(), 0, "reduce_scatter payload must divide by ranks");
        let out = self.run_collective(
            comm,
            CollKind::ReduceScatter(op),
            0,
            Contrib::Data(data.to_vec()),
            None,
            Some(None),
        );
        Self::expect_data(out)
    }

    /// All-to-all: every rank contributes `size()·chunk` words; rank `i`
    /// receives the concatenation of every rank's `i`-th chunk, in rank order.
    pub fn alltoall(&mut self, comm: &Communicator, data: &[f64]) -> Vec<f64> {
        assert_eq!(data.len() % comm.size(), 0, "alltoall payload must divide by ranks");
        let out = self.run_collective(
            comm,
            CollKind::Alltoall,
            0,
            Contrib::Data(data.to_vec()),
            None,
            Some(None),
        );
        Self::expect_data(out)
    }

    /// Synchronize all ranks of `comm`.
    pub fn barrier(&mut self, comm: &Communicator) {
        let _ = self.run_collective(
            comm,
            CollKind::Barrier,
            0,
            Contrib::Data(Vec::new()),
            None,
            Some(None),
        );
    }

    /// Split `comm` by `color` (negative = undefined → `None`), ordering the
    /// new communicator by `(key, world rank)` as MPI does.
    pub fn split(&mut self, comm: &Communicator, color: i64, key: i64) -> Option<Communicator> {
        let contrib = Contrib::Split { color, key, world_rank: comm.world_rank_of(comm.rank()) };
        let out = self.run_collective(comm, CollKind::Split, 0, contrib, None, Some(None));
        match out {
            Output::Split(Some((id, members, index))) => {
                Some(Communicator::new(id, members, index))
            }
            Output::Split(None) => None,
            _ => panic!("split returned non-split output"),
        }
    }

    /// Duplicate `comm`, as `MPI_Comm_dup`: a collective producing a new
    /// communicator with the same members and ordering but a fresh id (and
    /// therefore an independent collective sequence stream and tag space).
    pub fn dup(&mut self, comm: &Communicator) -> Communicator {
        self.split(comm, 0, comm.rank() as i64).expect("dup color is never undefined")
    }

    /// Combined send+receive (deadlock-free exchange), as `MPI_Sendrecv`.
    pub fn sendrecv(
        &mut self,
        comm: &Communicator,
        dst: usize,
        send_tag: u64,
        data: &[f64],
        src: usize,
        recv_tag: u64,
    ) -> Vec<f64> {
        let sreq = self.isend(comm, dst, send_tag, data.to_vec());
        let rdata = self.recv(comm, src, recv_tag);
        self.wait(sreq);
        rdata
    }

    pub(crate) fn into_parts(self) -> (f64, RankCounters) {
        (self.clock, self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_ops_fold() {
        let mut acc = vec![1.0, 5.0, -2.0];
        ReduceOp::Sum.fold_into(&mut acc, &[1.0, 1.0, 1.0]);
        assert_eq!(acc, vec![2.0, 6.0, -1.0]);
        ReduceOp::Max.fold_into(&mut acc, &[0.0, 10.0, 0.0]);
        assert_eq!(acc, vec![2.0, 10.0, 0.0]);
        ReduceOp::Min.fold_into(&mut acc, &[3.0, 3.0, 3.0]);
        assert_eq!(acc, vec![2.0, 3.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reduce_length_mismatch_panics() {
        let mut acc = vec![1.0];
        ReduceOp::Sum.fold_into(&mut acc, &[1.0, 2.0]);
    }
}

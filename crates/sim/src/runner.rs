//! Launching simulations: pooled rank threads, panic propagation, report.

use std::sync::Arc;
use std::time::Duration;

use critter_machine::MachineModel;

use crate::backend::{execute_ranks, BackendKind};
use crate::counters::RankCounters;
use crate::ctx::RankCtx;

/// Wall-clock schedule perturbation injected at the simulator's interception
/// points (test-only configuration).
///
/// The simulator's determinism contract is that *virtual* results — clocks,
/// noise draws, reports — are a pure function of the program and the machine,
/// never of how the OS interleaves the rank threads. The testkit's
/// schedule-perturbation fuzzer stresses exactly that contract: it randomly
/// yields and sleeps rank threads (perturbing the real interleaving as an
/// adversarial scheduler would) and asserts the reports are bit-identical to
/// an unperturbed run. Perturbation draws come from a counter-based stream
/// keyed by `(seed, rank)`, so the fuzzer itself is reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbParams {
    /// Seed of the per-rank perturbation stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that a perturbation point yields the OS thread.
    pub yield_prob: f64,
    /// Probability in `[0, 1]` that a perturbation point sleeps.
    pub sleep_prob: f64,
    /// Upper bound (exclusive) of the wall-clock sleep, in microseconds.
    pub max_sleep_us: u64,
}

/// Seeded fault injection at the simulator's interception points.
///
/// Where [`PerturbParams`] shakes the *real* schedule while promising the
/// virtual results stay fixed, a fault plan perturbs the *simulated* machine
/// itself: ranks panic mid-operation (a crashed node) and messages suffer
/// injected virtual delays (congestion) or drops (modeled as a retransmit
/// timeout — the payload still arrives, late, which keeps the simulation
/// deadlock-free). Faults draw from a counter-based stream keyed by
/// `(seed, rank)` and indexed by the rank's fault-point counter, so a plan
/// is a pure function of the program — the same plan always kills the same
/// rank at the same operation, regardless of thread scheduling. That
/// determinism is what lets the autotuner retry a faulted run with a
/// reseeded plan and lets the testkit assert recovery byte-for-byte.
///
/// # Examples
///
/// ```
/// use critter_sim::FaultPlan;
///
/// // A plan that kills ranks roughly once per fifty operations and delays
/// // one message in ten by up to 100 µs of virtual time.
/// let plan = FaultPlan::new(7)
///     .with_rank_panics(0.02)
///     .with_message_delays(0.1, 1e-4);
/// assert_eq!(plan.seed, 7);
/// assert!(plan.panic_prob > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-rank fault stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that a fault point panics the rank.
    pub panic_prob: f64,
    /// Probability in `[0, 1]` that a fault point delays the rank's clock.
    pub delay_prob: f64,
    /// Upper bound of an injected delay, in virtual seconds.
    pub max_delay: f64,
    /// Probability in `[0, 1]` that a fault point "drops" the operation's
    /// message: the rank is charged [`FaultPlan::retransmit_timeout`] and
    /// the operation then proceeds (the retransmit succeeds).
    pub drop_prob: f64,
    /// Virtual seconds charged for each dropped-and-retransmitted message.
    pub retransmit_timeout: f64,
}

impl FaultPlan {
    /// A fault-free plan on `seed`; chain `with_*` calls to arm it.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0.0,
            drop_prob: 0.0,
            retransmit_timeout: 0.0,
        }
    }

    /// Arm seeded rank panics with probability `prob` per fault point.
    pub fn with_rank_panics(mut self, prob: f64) -> Self {
        self.panic_prob = prob;
        self
    }

    /// Arm virtual message delays: probability `prob` per fault point, each
    /// delay uniform in `[0, max_delay)` virtual seconds.
    pub fn with_message_delays(mut self, prob: f64, max_delay: f64) -> Self {
        self.delay_prob = prob;
        self.max_delay = max_delay;
        self
    }

    /// Arm message drops: probability `prob` per fault point, each charged
    /// `retransmit_timeout` virtual seconds before the operation proceeds.
    pub fn with_message_drops(mut self, prob: f64, retransmit_timeout: f64) -> Self {
        self.drop_prob = prob;
        self.retransmit_timeout = retransmit_timeout;
        self
    }

    /// Derive the plan for one specific run attempt: the driver reseeds the
    /// fault stream per `(run index, attempt)` so a retry explores a
    /// different fault schedule while staying fully deterministic.
    pub fn reseeded(mut self, salt: u64) -> Self {
        self.seed ^= salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) | 1;
        self
    }

    /// Whether any fault mode is armed.
    pub fn is_armed(&self) -> bool {
        self.panic_prob > 0.0 || self.delay_prob > 0.0 || self.drop_prob > 0.0
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of simulated ranks (each gets an OS thread).
    pub ranks: usize,
    /// Stack size per rank thread. Recursive algorithms (Capital's Cholesky)
    /// need room; 8 MiB matches the Linux default for main threads.
    pub stack_size: usize,
    /// Wall-clock time a blocked operation may wait before the simulation is
    /// declared deadlocked.
    pub deadlock_timeout: Duration,
    /// Messages of at most this many words take the eager path (the sender
    /// does not synchronize with the receiver). 512 words = 4 KiB.
    pub eager_words: usize,
    /// Schedule perturbation injected at interception points (`None` off).
    pub perturb: Option<PerturbParams>,
    /// Fault injection (rank panics, message delays/drops) at interception
    /// points (`None` off).
    pub faults: Option<FaultPlan>,
    /// Which communicator backend hosts the rank programs (see
    /// [`crate::backend`]). Scheduling only — virtual results are
    /// backend-independent.
    pub backend: BackendKind,
    /// Number of shards the matching core is split over; `0` = auto (sized
    /// to the rank count). Scheduling only — results are shard-independent.
    pub shards: usize,
    /// Worker permits for the `tasks` backend (`0` = auto: available
    /// parallelism). Ignored by the `threads` backend.
    pub task_workers: usize,
}

impl SimConfig {
    /// Default configuration for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        SimConfig {
            ranks,
            stack_size: 8 << 20,
            deadlock_timeout: Duration::from_secs(30),
            eager_words: 512,
            perturb: None,
            faults: None,
            backend: BackendKind::default(),
            shards: 0,
            task_workers: 0,
        }
    }

    /// Select the communicator backend (`threads` default; `tasks` bounds
    /// the runnable set so 10k+ ranks fit in one process).
    pub fn with_backend(mut self, b: BackendKind) -> Self {
        self.backend = b;
        self
    }

    /// Override the matching-core shard count (`0` = auto).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Override the `tasks` backend's worker-permit count (`0` = auto).
    pub fn with_task_workers(mut self, workers: usize) -> Self {
        self.task_workers = workers;
        self
    }

    /// Override the deadlock timeout (tests of deadlock detection use a short one).
    pub fn with_deadlock_timeout(mut self, t: Duration) -> Self {
        self.deadlock_timeout = t;
        self
    }

    /// Override the eager threshold (the p2p-semantics ablation uses 0 and `usize::MAX`).
    pub fn with_eager_words(mut self, w: usize) -> Self {
        self.eager_words = w;
        self
    }

    /// Override the per-rank stack size. Pools are keyed by
    /// `(ranks, stack_size)`, so simulations with different stack sizes
    /// never share rank threads.
    pub fn with_stack_size(mut self, s: usize) -> Self {
        self.stack_size = s;
        self
    }

    /// Enable schedule perturbation (the testkit's determinism fuzzer).
    pub fn with_perturb(mut self, p: PerturbParams) -> Self {
        self.perturb = Some(p);
        self
    }

    /// Enable fault injection (seeded rank panics and message delays/drops).
    pub fn with_faults(mut self, f: FaultPlan) -> Self {
        self.faults = Some(f);
        self
    }
}

/// Result of a simulation: per-rank outputs, virtual times, and counters.
#[derive(Debug)]
pub struct SimReport<R> {
    /// Per-rank return values of the program closure.
    pub outputs: Vec<R>,
    /// Final virtual clock of each rank.
    pub rank_times: Vec<f64>,
    /// Volumetric counters of each rank.
    pub counters: Vec<RankCounters>,
}

impl<R> SimReport<R> {
    /// The simulated execution time: the maximum final clock over all ranks.
    pub fn elapsed(&self) -> f64 {
        self.rank_times.iter().copied().fold(0.0, f64::max)
    }

    /// Job-wide counter totals.
    pub fn total_counters(&self) -> RankCounters {
        let mut t = RankCounters::default();
        for c in &self.counters {
            t.merge(c);
        }
        t
    }
}

/// Run `program` on every rank of a simulated machine.
///
/// The closure receives a mutable [`RankCtx`] and may return any `Send` value;
/// outputs are collected in rank order. A panic on any rank poisons the core
/// (unblocking peers) and is re-raised on the calling thread.
///
/// Rank threads come from a process-wide pool (see [`crate::pool`]): the
/// first simulation of a given `(ranks, stack_size)` shape spawns them, and
/// subsequent runs — including runs after a panicked simulation — reuse
/// them. Concurrent calls check out distinct pools, so simulations never
/// share threads while in flight. `config.backend` picks the execution
/// backend (see [`crate::backend`]); virtual results are identical across
/// backends.
pub fn run_simulation<R, F>(
    config: SimConfig,
    machine: Arc<MachineModel>,
    program: F,
) -> SimReport<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Send + Sync,
{
    execute_ranks(config.backend.instance(), &config, machine, &program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ReduceOp;
    use critter_machine::KernelClass;
    use std::panic::AssertUnwindSafe;

    fn machine(p: usize) -> Arc<MachineModel> {
        MachineModel::test_exact(p).shared()
    }

    #[test]
    fn single_rank_compute_advances_clock() {
        let report = run_simulation(SimConfig::new(1), machine(1), |ctx| {
            let t = ctx.compute(KernelClass::Gemm, 1e6);
            assert!(t > 0.0);
            ctx.now()
        });
        assert_eq!(report.outputs.len(), 1);
        assert!(report.elapsed() > 0.0);
        assert_eq!(report.outputs[0], report.rank_times[0]);
    }

    #[test]
    fn ping_pong_transfers_data_and_time() {
        let report = run_simulation(SimConfig::new(2), machine(2), |ctx| {
            let world = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&world, 1, 7, &[1.0, 2.0, 3.0]);
                let back = ctx.recv(&world, 1, 8);
                assert_eq!(back, vec![6.0]);
            } else {
                let data = ctx.recv(&world, 0, 7);
                assert_eq!(data, vec![1.0, 2.0, 3.0]);
                ctx.send(&world, 0, 8, &[data.iter().sum::<f64>()]);
            }
            ctx.now()
        });
        // Both ranks end after two messages' worth of time.
        let alpha = 1.0e-6;
        assert!(report.elapsed() >= 2.0 * alpha);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let p = 8;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            ctx.allreduce(&world, ReduceOp::Sum, &[ctx.rank() as f64, 1.0])
        });
        let expect = vec![(0..8).sum::<usize>() as f64, 8.0];
        for out in &report.outputs {
            assert_eq!(*out, expect);
        }
        // Collectives synchronize: all ranks share one completion time.
        let t0 = report.rank_times[0];
        for &t in &report.rank_times {
            assert!((t - t0).abs() < 1e-15);
        }
    }

    #[test]
    fn bcast_distributes_root_payload() {
        let p = 4;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            let mut data = if ctx.rank() == 2 { vec![9.0, 8.0] } else { Vec::new() };
            ctx.bcast(&world, 2, &mut data);
            data
        });
        for out in &report.outputs {
            assert_eq!(*out, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let p = 4;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            let gathered = ctx.gather(&world, 0, &[ctx.rank() as f64]);
            let chunk = if ctx.rank() == 0 {
                let g = gathered.unwrap();
                assert_eq!(g, vec![0.0, 1.0, 2.0, 3.0]);
                ctx.scatter(&world, 0, &g.iter().map(|x| x * 10.0).collect::<Vec<_>>())
            } else {
                assert!(gathered.is_none());
                ctx.scatter(&world, 0, &[])
            };
            chunk
        });
        for (r, out) in report.outputs.iter().enumerate() {
            assert_eq!(*out, vec![r as f64 * 10.0]);
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let p = 3;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            ctx.allgather(&world, &[ctx.rank() as f64, -(ctx.rank() as f64)])
        });
        for out in &report.outputs {
            assert_eq!(*out, vec![0.0, -0.0, 1.0, -1.0, 2.0, -2.0]);
        }
    }

    #[test]
    fn reduce_scatter_distributes_reduced_slices() {
        let p = 4;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            // Rank r contributes [r, r, r, r] (one word per destination).
            let contrib = vec![ctx.rank() as f64; p];
            ctx.reduce_scatter(&world, ReduceOp::Sum, &contrib)
        });
        // Sum over ranks of r = 6 at every destination slice.
        for out in &report.outputs {
            assert_eq!(*out, vec![6.0]);
        }
    }

    #[test]
    fn alltoall_transposes_chunks() {
        let p = 3;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            // Rank r sends value 10·r + dest to each destination.
            let contrib: Vec<f64> = (0..p).map(|d| (10 * ctx.rank() + d) as f64).collect();
            ctx.alltoall(&world, &contrib)
        });
        for (r, out) in report.outputs.iter().enumerate() {
            let expect: Vec<f64> = (0..p).map(|src| (10 * src + r) as f64).collect();
            assert_eq!(*out, expect, "rank {r}");
        }
    }

    #[test]
    fn reduce_max_at_root_only() {
        let p = 4;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            ctx.reduce(&world, 1, ReduceOp::Max, &[ctx.rank() as f64])
        });
        for (r, out) in report.outputs.iter().enumerate() {
            if r == 1 {
                assert_eq!(out.as_deref(), Some(&[3.0][..]));
            } else {
                assert!(out.is_none());
            }
        }
    }

    #[test]
    fn split_builds_rows_and_columns() {
        let p = 4; // 2x2 grid
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            let row = ctx.split(&world, (ctx.rank() / 2) as i64, ctx.rank() as i64).unwrap();
            let col = ctx.split(&world, (ctx.rank() % 2) as i64, ctx.rank() as i64).unwrap();
            // Sum within the row, then within the column: grand total via grid.
            let rsum = ctx.allreduce(&row, ReduceOp::Sum, &[ctx.rank() as f64]);
            let total = ctx.allreduce(&col, ReduceOp::Sum, &rsum);
            (row.size(), col.size(), row.meta().stride(), col.meta().stride(), total[0])
        });
        for (r, &(rs, cs, rstride, cstride, total)) in report.outputs.iter().enumerate() {
            assert_eq!(rs, 2, "rank {r} row size");
            assert_eq!(cs, 2);
            assert_eq!(rstride, 1);
            assert_eq!(cstride, 2);
            assert_eq!(total, 6.0);
        }
    }

    #[test]
    fn split_undefined_color_returns_none() {
        let p = 3;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            let c = ctx.split(&world, if ctx.rank() == 0 { -1 } else { 0 }, 0);
            c.is_none()
        });
        assert_eq!(report.outputs, vec![true, false, false]);
    }

    #[test]
    fn split_ids_agree_among_members() {
        let p = 4;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            let sub = ctx.split(&world, (ctx.rank() % 2) as i64, 0).unwrap();
            sub.id()
        });
        assert_eq!(report.outputs[0], report.outputs[2]);
        assert_eq!(report.outputs[1], report.outputs[3]);
        assert_ne!(report.outputs[0], report.outputs[1]);
    }

    #[test]
    fn nonblocking_send_recv() {
        let report = run_simulation(SimConfig::new(2), machine(2), |ctx| {
            let world = ctx.world();
            if ctx.rank() == 0 {
                let r1 = ctx.isend(&world, 1, 1, vec![1.0]);
                let r2 = ctx.isend(&world, 1, 2, vec![2.0]);
                ctx.wait(r1);
                ctx.wait(r2);
                Vec::new()
            } else {
                // Receive in reverse tag order: matching is by tag, not arrival.
                let r2 = ctx.irecv(&world, 0, 2);
                let r1 = ctx.irecv(&world, 0, 1);
                let d2 = ctx.wait(r2).unwrap();
                let d1 = ctx.wait(r1).unwrap();
                vec![d1[0], d2[0]]
            }
        });
        assert_eq!(report.outputs[1], vec![1.0, 2.0]);
    }

    #[test]
    fn nonblocking_overlap_uses_post_time() {
        // Receiver posts irecv early, computes, then waits: completion must be
        // driven by the early post, not the wait call — i.e. overlap works.
        let p = 2;
        let big = 100_000; // rendezvous-sized
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&world, 1, 0, &vec![1.5; big]);
                ctx.now()
            } else {
                let req = ctx.irecv(&world, 0, 0);
                let compute_t = ctx.compute(KernelClass::Gemm, 5e8); // long compute
                let before_wait = ctx.now();
                let data = ctx.wait(req).unwrap();
                assert_eq!(data.len(), big);
                // If the transfer overlapped the compute, waiting is nearly free.
                assert!(ctx.now() - before_wait < 0.5 * compute_t);
                ctx.now()
            }
        });
        assert!(report.elapsed() > 0.0);
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        let p = 4;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            let right = (ctx.rank() + 1) % p;
            let left = (ctx.rank() + p - 1) % p;
            // Everyone sends right, receives from left — classic ring shift.
            let got = ctx.sendrecv(&world, right, 0, &[ctx.rank() as f64], left, 0);
            got[0]
        });
        for (r, &g) in report.outputs.iter().enumerate() {
            assert_eq!(g as usize, (r + p - 1) % p);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let m = MachineModel::test_noisy(4, 99).shared();
            run_simulation(SimConfig::new(4), m, |ctx| {
                let world = ctx.world();
                ctx.compute(KernelClass::Gemm, 1e6 * (1 + ctx.rank()) as f64);
                let s = ctx.allreduce(&world, ReduceOp::Sum, &[ctx.now()]);
                ctx.compute(KernelClass::Factorize, 2e5);
                ctx.barrier(&world);
                (ctx.now(), s[0])
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.rank_times, b.rank_times, "virtual times must be bit-identical");
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn tasks_backend_and_shard_counts_match_threads_bit_for_bit() {
        // The backend/shard knobs are pure scheduling: every virtual result
        // must be bit-identical to the default threads backend. (The testkit
        // `backend_equivalence` suite pins this at the artifact level; this
        // is the fast in-crate canary.)
        let prog = |ctx: &mut RankCtx| {
            let world = ctx.world();
            ctx.compute(KernelClass::Gemm, 1e5 * (1 + ctx.rank()) as f64);
            let s = ctx.allreduce(&world, ReduceOp::Sum, &[ctx.now()]);
            let right = (ctx.rank() + 1) % 4;
            let left = (ctx.rank() + 3) % 4;
            let got = ctx.sendrecv(&world, right, 0, &[ctx.rank() as f64], left, 0);
            let sub = ctx.split(&world, (ctx.rank() % 2) as i64, 0).unwrap();
            let t = ctx.allreduce(&sub, ReduceOp::Max, &[ctx.now()]);
            (ctx.now(), s[0], got[0], t[0])
        };
        let m = || MachineModel::test_noisy(4, 21).shared();
        let reference = run_simulation(SimConfig::new(4), m(), prog);
        for workers in [1, 2] {
            for shards in [1, 4] {
                let cfg = SimConfig::new(4)
                    .with_backend(BackendKind::Tasks)
                    .with_task_workers(workers)
                    .with_shards(shards);
                let tasks = run_simulation(cfg, m(), prog);
                assert_eq!(reference.rank_times, tasks.rank_times, "w={workers} s={shards}");
                assert_eq!(reference.outputs, tasks.outputs, "w={workers} s={shards}");
            }
        }
    }

    #[test]
    fn schedule_perturbation_leaves_virtual_results_unchanged() {
        // The determinism contract the testkit fuzzer stresses at scale:
        // yields/sleeps injected at interception points shake the real
        // thread interleaving but must not move any virtual result.
        let prog = |ctx: &mut RankCtx| {
            let world = ctx.world();
            ctx.compute(KernelClass::Gemm, 1e5 * (1 + ctx.rank()) as f64);
            let s = ctx.allreduce(&world, ReduceOp::Sum, &[ctx.now()]);
            let right = (ctx.rank() + 1) % 4;
            let left = (ctx.rank() + 3) % 4;
            let got = ctx.sendrecv(&world, right, 0, &[ctx.rank() as f64], left, 0);
            (ctx.now(), s[0], got[0])
        };
        let m = || MachineModel::test_noisy(4, 5).shared();
        let base = run_simulation(SimConfig::new(4), m(), prog);
        let perturb =
            PerturbParams { seed: 99, yield_prob: 0.7, sleep_prob: 0.5, max_sleep_us: 50 };
        let shaken = run_simulation(SimConfig::new(4).with_perturb(perturb), m(), prog);
        assert_eq!(base.rank_times, shaken.rank_times);
        assert_eq!(base.outputs, shaken.outputs);
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        let prog = |ctx: &mut RankCtx| {
            let world = ctx.world();
            ctx.compute(KernelClass::Gemm, 1e5 * (1 + ctx.rank()) as f64);
            ctx.allreduce(&world, ReduceOp::Sum, &[ctx.now()]);
            ctx.now()
        };
        let m = || MachineModel::test_noisy(4, 11).shared();
        let base = run_simulation(SimConfig::new(4), m(), prog);
        let unarmed = run_simulation(SimConfig::new(4).with_faults(FaultPlan::new(3)), m(), prog);
        assert_eq!(base.rank_times, unarmed.rank_times);
        assert_eq!(base.outputs, unarmed.outputs);
    }

    #[test]
    fn injected_delays_are_deterministic_and_slow_the_run() {
        let prog = |ctx: &mut RankCtx| {
            let world = ctx.world();
            for _ in 0..10 {
                ctx.compute(KernelClass::Gemm, 1e5 * (1 + ctx.rank()) as f64);
                ctx.allreduce(&world, ReduceOp::Sum, &[ctx.now()]);
            }
            ctx.now()
        };
        let m = || MachineModel::test_noisy(4, 11).shared();
        let plan = FaultPlan::new(42).with_message_delays(0.5, 1e-3);
        let base = run_simulation(SimConfig::new(4), m(), prog);
        let a = run_simulation(SimConfig::new(4).with_faults(plan), m(), prog);
        let b = run_simulation(SimConfig::new(4).with_faults(plan), m(), prog);
        assert_eq!(a.rank_times, b.rank_times, "fault schedule must be deterministic");
        assert_eq!(a.outputs, b.outputs);
        assert!(a.elapsed() > base.elapsed(), "injected delays must cost virtual time");
        // A different seed draws a different delay schedule.
        let c = run_simulation(SimConfig::new(4).with_faults(plan.reseeded(1)), m(), prog);
        assert_ne!(a.rank_times, c.rank_times);
    }

    #[test]
    fn dropped_messages_cost_the_retransmit_timeout() {
        let prog = |ctx: &mut RankCtx| {
            let world = ctx.world();
            for _ in 0..20 {
                ctx.barrier(&world);
            }
            ctx.now()
        };
        let m = || machine(2);
        let base = run_simulation(SimConfig::new(2), m(), prog);
        let plan = FaultPlan::new(9).with_message_drops(1.0, 0.25);
        let dropped = run_simulation(SimConfig::new(2).with_faults(plan), m(), prog);
        // Every fault point drops: elapsed grows by ≥ 20 retransmit timeouts.
        assert!(dropped.elapsed() >= base.elapsed() + 20.0 * 0.25);
    }

    #[test]
    fn injected_rank_panic_reports_the_fault_point() {
        let plan = FaultPlan::new(5).with_rank_panics(1.0); // first fault point kills
        let result = std::panic::catch_unwind(|| {
            run_simulation(SimConfig::new(2).with_faults(plan), machine(2), |ctx| {
                ctx.compute(KernelClass::Gemm, 1e5);
                let world = ctx.world();
                ctx.barrier(&world);
            })
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().map(String::as_str).unwrap_or_default();
        assert!(msg.contains("injected fault"), "panic message was {msg:?}");
    }

    #[test]
    fn noisy_machine_perturbs_times() {
        let m1 = MachineModel::test_noisy(2, 1).shared();
        let m2 = MachineModel::test_noisy(2, 2).shared();
        let prog = |ctx: &mut RankCtx| {
            ctx.compute(KernelClass::Gemm, 1e7);
            ctx.now()
        };
        let a = run_simulation(SimConfig::new(2), m1, prog);
        let b = run_simulation(SimConfig::new(2), m2, prog);
        assert_ne!(a.rank_times, b.rank_times);
    }

    #[test]
    fn counters_track_volume() {
        let p = 2;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&world, 1, 0, &[0.0; 10]);
            } else {
                ctx.recv(&world, 0, 0);
            }
            ctx.barrier(&world);
        });
        assert_eq!(report.counters[0].sends, 1);
        assert_eq!(report.counters[0].words_sent, 10);
        assert_eq!(report.counters[1].recvs, 1);
        assert_eq!(report.counters[1].words_received, 10);
        assert_eq!(report.counters[0].collectives, 1);
        assert!(report.total_counters().comm_time > 0.0);
    }

    #[test]
    fn idle_time_attributed_to_late_sender() {
        let p = 2;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            if ctx.rank() == 0 {
                ctx.compute(KernelClass::Gemm, 1e9); // slow: receiver waits
                ctx.send(&world, 1, 0, &[1.0; 4]);
            } else {
                ctx.recv(&world, 0, 0);
            }
        });
        assert!(report.counters[1].idle_time > 0.0, "receiver should record idle time");
        assert!(report.counters[0].idle_time == 0.0);
    }

    #[test]
    fn rank_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_simulation(SimConfig::new(2), machine(2), |ctx| {
                if ctx.rank() == 1 {
                    panic!("boom on rank 1");
                }
                // Rank 0 blocks on a recv that will never be matched; the
                // poison must unblock it promptly.
                let world = ctx.world();
                ctx.recv(&world, 1, 0);
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn deadlock_detection_fires() {
        let cfg = SimConfig::new(2).with_deadlock_timeout(Duration::from_millis(200));
        let result = std::panic::catch_unwind(|| {
            run_simulation(cfg, machine(2), |ctx| {
                let world = ctx.world();
                // Both ranks receive, nobody sends.
                ctx.recv(&world, 1 - ctx.rank(), 0);
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn custom_allreduce_folds_in_rank_order() {
        let p = 4;
        fn keep_max_first(a: &[f64], b: &[f64]) -> Vec<f64> {
            if a.first() >= b.first() {
                a.to_vec()
            } else {
                b.to_vec()
            }
        }
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            let payload = vec![(ctx.rank() as f64 * 7.0) % 5.0, ctx.rank() as f64];
            ctx.allreduce_custom(&world, payload, keep_max_first, Some(None))
        });
        // Values of first element: r0=0, r1=2, r2=4, r3=1 → winner rank 2.
        for out in &report.outputs {
            assert_eq!(*out, vec![4.0, 2.0]);
        }
    }

    #[test]
    fn uncharged_collective_synchronizes_without_cost() {
        let p = 2;
        fn first(a: &[f64], _b: &[f64]) -> Vec<f64> {
            a.to_vec()
        }
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            if ctx.rank() == 0 {
                ctx.compute(KernelClass::Gemm, 1e8);
            }
            let before = ctx.now();
            ctx.allreduce_custom(&world, vec![0.0], first, None);
            (before, ctx.now())
        });
        // Rank 1 must be dragged to rank 0's clock (sync), but the op is free
        // for rank 0 (no added cost).
        let (r0_before, r0_after) = report.outputs[0];
        let (_, r1_after) = report.outputs[1];
        assert_eq!(r0_before, r0_after);
        assert_eq!(r0_after, r1_after);
    }

    #[test]
    fn eager_send_does_not_wait_for_receiver() {
        let p = 2;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&world, 1, 0, &[1.0; 8]); // small → eager
                ctx.now()
            } else {
                ctx.compute(KernelClass::Gemm, 1e9); // receiver is very late
                ctx.recv(&world, 0, 0);
                ctx.now()
            }
        });
        // Sender finished long before the receiver.
        assert!(report.outputs[0] < 0.01 * report.outputs[1]);
    }

    #[test]
    fn pooled_threads_are_reused_across_consecutive_runs() {
        // A stack size no other test uses keys a private registry slot, so
        // consecutive runs here deterministically lease the same pool even
        // with the rest of the suite running in parallel.
        let cfg = SimConfig::new(2).with_stack_size((1 << 20) + 0x5EED);
        let run = || run_simulation(cfg.clone(), machine(2), |_ctx| std::thread::current().id());
        let first = run();
        let second = run();
        assert_eq!(
            first.outputs, second.outputs,
            "consecutive simulations of the same shape must reuse rank threads"
        );
    }

    #[test]
    fn simulation_recovers_after_panicked_run_on_same_pool() {
        let cfg = SimConfig::new(2).with_stack_size((1 << 20) + 0xFA11);
        let m = machine(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_simulation(cfg.clone(), Arc::clone(&m), |ctx| {
                if ctx.rank() == 0 {
                    panic!("deliberate failure");
                }
                let world = ctx.world();
                ctx.recv(&world, 0, 0);
            })
        }));
        assert!(result.is_err());
        // The pool the panicked run used must come back clean.
        let ok = run_simulation(cfg, m, |ctx| ctx.rank());
        assert_eq!(ok.outputs, vec![0, 1]);
    }

    #[test]
    fn rendezvous_send_waits_for_receiver() {
        let p = 2;
        let report = run_simulation(SimConfig::new(p), machine(p), |ctx| {
            let world = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&world, 1, 0, &vec![1.0; 100_000]); // large → rendezvous
                ctx.now()
            } else {
                ctx.compute(KernelClass::Gemm, 1e9);
                ctx.recv(&world, 0, 0);
                ctx.now()
            }
        });
        // Sender completion is coupled to the receiver's arrival.
        assert!((report.outputs[0] - report.outputs[1]).abs() < 1e-12);
    }
}

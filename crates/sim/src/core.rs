//! The central matching core: point-to-point queues, collective slots,
//! virtual-time completion rules, deadlock detection.
//!
//! All rank threads share one [`SimCore`]. The lock discipline is simple and
//! coarse — one mutex for p2p state, one for collective state, each paired
//! with a broadcast condvar — which is correct by construction and fast
//! enough: simulated programs are coarse-grained (each kernel is thousands of
//! flops), so the core is never the bottleneck.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use critter_machine::rng::stream_id;
use critter_machine::{CommOp, MachineModel};
use parking_lot::{Condvar, Mutex};

use crate::comm::Communicator;
use crate::ctx::ReduceOp;

/// Combine function for custom reductions (Critter's internal path-propagation
/// operator). A plain `fn` pointer: every participant passes the same one.
pub type CombineFn = fn(&[f64], &[f64]) -> Vec<f64>;

/// Identifies a point-to-point matching queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct P2pKey {
    pub comm: u64,
    /// World rank of the sender.
    pub src: usize,
    /// World rank of the receiver.
    pub dst: usize,
    pub tag: u64,
}

impl P2pKey {
    fn channel_hash(&self) -> u64 {
        stream_id(&[self.comm, self.src as u64, self.dst as u64, self.tag])
    }
}

/// Slot a rendezvous sender blocks on until the receiver matches.
#[derive(Debug, Default)]
pub(crate) struct SendSlot {
    done: Mutex<Option<f64>>,
    cv: Condvar,
}

pub(crate) struct SendEntry {
    pub data: Vec<f64>,
    pub post_time: f64,
    /// Sampled transfer cost, fixed at post time (deterministic per key+seq).
    pub cost: f64,
    pub slot: Option<Arc<SendSlot>>,
}

#[derive(Default)]
struct P2pState {
    queues: HashMap<P2pKey, VecDeque<SendEntry>>,
    send_seq: HashMap<P2pKey, u64>,
}

/// What a rank contributes to a collective.
pub(crate) enum Contrib {
    /// Payload data (empty for non-roots of bcast, for barrier, …).
    Data(Vec<f64>),
    /// `comm_split` participation.
    Split { color: i64, key: i64, world_rank: usize },
}

/// What a rank receives back from a collective.
pub(crate) enum Output {
    /// Payload data.
    Data(Vec<f64>),
    /// Nothing (barrier; non-root of gather/reduce).
    None,
    /// New communicator description from `comm_split` (None for undefined color).
    Split(Option<(u64, Arc<Vec<usize>>, usize)>),
}

/// The operation a collective slot performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CollKind {
    Bcast,
    Reduce(ReduceOp),
    Allreduce(ReduceOp),
    AllreduceCustom,
    Allgather,
    Gather,
    Scatter,
    ReduceScatter(ReduceOp),
    Alltoall,
    Barrier,
    Split,
}

impl CollKind {
    fn comm_op(self) -> CommOp {
        match self {
            CollKind::Bcast => CommOp::Bcast,
            CollKind::Reduce(_) => CommOp::Reduce,
            CollKind::Allreduce(_) | CollKind::AllreduceCustom => CommOp::Allreduce,
            CollKind::Allgather | CollKind::Split => CommOp::Allgather,
            CollKind::Gather => CommOp::Gather,
            CollKind::Scatter => CommOp::Scatter,
            CollKind::ReduceScatter(_) => CommOp::ReduceScatter,
            CollKind::Alltoall => CommOp::Alltoall,
            CollKind::Barrier => CommOp::Barrier,
        }
    }
}

struct CollSlot {
    kind: CollKind,
    root: usize,
    expected: usize,
    arrived: usize,
    max_post: f64,
    contribs: Vec<Option<Contrib>>,
    combine: Option<CombineFn>,
    /// Cost accounting: `None` = synchronize for free, `Some(None)` = charge
    /// the actual payload words, `Some(Some(w))` = charge `w` words.
    charge: Option<Option<usize>>,
    /// Completion time once the last participant arrives.
    done: Option<f64>,
    /// Sampled operation cost (0 when uncharged), for counters.
    cost: f64,
    outputs: Vec<Option<Output>>,
    taken: usize,
}

#[derive(Default)]
struct CollState {
    slots: HashMap<(u64, u64), CollSlot>,
}

/// Shared simulator core.
pub struct SimCore {
    pub(crate) machine: Arc<MachineModel>,
    p2p: Mutex<P2pState>,
    p2p_cv: Condvar,
    coll: Mutex<CollState>,
    coll_cv: Condvar,
    pub(crate) timeout: Duration,
    pub(crate) eager_words: usize,
    /// Schedule perturbation injected by rank contexts at interception
    /// points (testkit determinism fuzzing; `None` in normal runs).
    pub(crate) perturb: Option<crate::runner::PerturbParams>,
    /// Fault injection (seeded rank panics, message delays/drops) applied by
    /// rank contexts at the same interception points (`None` in normal runs).
    pub(crate) faults: Option<crate::runner::FaultPlan>,
    /// Set when any rank panics, so peers stop waiting immediately.
    poisoned: AtomicBool,
}

/// Outcome of matching a receive: payload, receiver completion time, and the
/// components (transfer cost, idle time) for counter accounting.
pub(crate) struct RecvOutcome {
    pub data: Vec<f64>,
    pub done: f64,
    pub cost: f64,
    pub idle: f64,
}

impl SimCore {
    pub(crate) fn new(
        machine: Arc<MachineModel>,
        timeout: Duration,
        eager_words: usize,
        perturb: Option<crate::runner::PerturbParams>,
        faults: Option<crate::runner::FaultPlan>,
    ) -> Self {
        SimCore {
            machine,
            p2p: Mutex::new(P2pState::default()),
            p2p_cv: Condvar::new(),
            coll: Mutex::new(CollState::default()),
            coll_cv: Condvar::new(),
            timeout,
            eager_words,
            perturb,
            faults,
            poisoned: AtomicBool::new(false),
        }
    }

    /// Mark the simulation as failed (a rank panicked) and wake all waiters.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        self.p2p_cv.notify_all();
        self.coll_cv.notify_all();
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::SeqCst) {
            panic!("simulation aborted: a peer rank panicked");
        }
    }

    /// Post a send. Returns `(sampled transfer cost, slot)` — the slot is
    /// `Some` iff the message takes the rendezvous path (the caller must wait
    /// on it for its completion time).
    pub(crate) fn post_send(
        &self,
        key: P2pKey,
        data: Vec<f64>,
        post_time: f64,
        force_rendezvous: bool,
        cost_words: Option<usize>,
    ) -> (f64, Option<Arc<SendSlot>>) {
        let words = data.len();
        // Cost may be overridden (Critter charges its internal piggyback
        // messages at the compact wire size of the real implementation).
        let cost_words = cost_words.unwrap_or(words);
        let rendezvous = force_rendezvous || cost_words > self.eager_words;
        // Reserve this message's per-key sequence number under the lock, then
        // sample its cost outside it: the draw is a pure function of
        // (key, seq), and all sends for one key come from the single sender
        // thread, so the queue push below still lands in seq order despite
        // the unlock window.
        let this_seq = {
            let mut st = self.p2p.lock();
            let seq = st.send_seq.entry(key).or_insert(0);
            let s = *seq;
            *seq += 1;
            s
        };
        let cost = self.machine.comm_time(
            CommOp::PointToPoint,
            cost_words,
            2,
            key.channel_hash(),
            this_seq,
        );
        let slot = rendezvous.then(|| Arc::new(SendSlot::default()));
        {
            let mut st = self.p2p.lock();
            st.queues.entry(key).or_default().push_back(SendEntry {
                data,
                post_time,
                cost,
                slot: slot.clone(),
            });
        }
        self.p2p_cv.notify_all();
        (cost, slot)
    }

    /// Block until a send matching `key` is available; complete the pair.
    /// `recv_post` is when the receive was posted (irecv post time, or "now"
    /// for a blocking receive).
    pub(crate) fn match_recv(&self, key: P2pKey, recv_post: f64) -> RecvOutcome {
        let mut st = self.p2p.lock();
        loop {
            self.check_poison();
            if let Some(q) = st.queues.get_mut(&key) {
                if let Some(entry) = q.pop_front() {
                    if q.is_empty() {
                        st.queues.remove(&key);
                    }
                    drop(st);
                    let start = entry.post_time.max(recv_post);
                    let done = start + entry.cost;
                    if let Some(slot) = &entry.slot {
                        *slot.done.lock() = Some(done);
                        slot.cv.notify_all();
                    }
                    let idle = (entry.post_time - recv_post).max(0.0);
                    return RecvOutcome { data: entry.data, done, cost: entry.cost, idle };
                }
            }
            if self.p2p_cv.wait_for(&mut st, self.timeout).timed_out() {
                panic!(
                    "simulated deadlock: receive waited {:?} on comm {:#x} src {} dst {} tag {}",
                    self.timeout, key.comm, key.src, key.dst, key.tag
                );
            }
        }
    }

    /// Wait for a rendezvous send to be matched; returns sender completion time.
    pub(crate) fn wait_send(&self, slot: &SendSlot) -> f64 {
        let mut g = slot.done.lock();
        loop {
            self.check_poison();
            if let Some(t) = *g {
                return t;
            }
            if slot.cv.wait_for(&mut g, self.timeout).timed_out() {
                panic!(
                    "simulated deadlock: rendezvous send never matched within {:?}",
                    self.timeout
                );
            }
        }
    }

    /// Execute one collective participation. Blocks until all `expected`
    /// members of `comm` have arrived at sequence `seq`, then returns
    /// `(completion time, operation cost, output)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collective(
        &self,
        comm: &Communicator,
        seq: u64,
        kind: CollKind,
        root: usize,
        contrib: Contrib,
        combine: Option<CombineFn>,
        charge: Option<Option<usize>>,
        post: f64,
    ) -> (f64, f64, Output) {
        let my_index = comm.rank();
        let expected = comm.size();
        let slot_key = (comm.id(), seq);
        let mut st = self.coll.lock();
        // A completed instance of this (comm, seq) may still be in the map
        // while its participants drain their outputs; an arrival now is a
        // replayed sequence number and must not join (or index into) the
        // finished slot. Wait for the drain, then post a fresh arrival —
        // which the watchdog below will report as a deadlock.
        while st.slots.get(&slot_key).is_some_and(|s| s.done.is_some()) {
            self.check_poison();
            if self.coll_cv.wait_for(&mut st, self.timeout).timed_out() {
                panic!(
                    "simulated deadlock: collective {:?} on comm {:#x} replayed sequence {seq} \
                     while the completed instance was still being drained",
                    kind,
                    comm.id(),
                );
            }
        }
        let completion = {
            let slot = st.slots.entry(slot_key).or_insert_with(|| CollSlot {
                kind,
                root,
                expected,
                arrived: 0,
                max_post: f64::NEG_INFINITY,
                contribs: (0..expected).map(|_| None).collect(),
                combine,
                charge,
                done: None,
                cost: 0.0,
                outputs: (0..expected).map(|_| None).collect(),
                taken: 0,
            });
            assert_eq!(
                slot.kind, kind,
                "collective mismatch on comm {:#x} seq {seq}: {:?} vs {:?} — ranks disagree on program order",
                comm.id(), slot.kind, kind
            );
            assert_eq!(
                slot.root,
                root,
                "collective root mismatch on comm {:#x} seq {seq}",
                comm.id()
            );
            assert!(
                slot.contribs.get(my_index).is_some_and(Option::is_none),
                "rank arrived twice at collective seq {seq}"
            );
            // Merge the charge spec across arrivals (participants may pass
            // different capped word counts for their own payloads): the
            // operation is charged at the largest requested size, regardless
            // of arrival order.
            slot.charge = match (slot.charge, charge) {
                (None, None) => None,
                (Some(None), Some(None)) => Some(None),
                (Some(Some(a)), Some(Some(b))) => Some(Some(a.max(b))),
                (a, b) => panic!("participants disagree on collective charging: {a:?} vs {b:?}"),
            };
            slot.contribs[my_index] = Some(contrib);
            slot.arrived += 1;
            slot.max_post = slot.max_post.max(post);
            (slot.arrived == slot.expected)
                .then(|| (slot.charge, slot.combine, std::mem::take(&mut slot.contribs)))
        };
        if let Some((charge, combine, contribs)) = completion {
            // Last arriver: sample the cost and build every rank's output
            // *outside* the lock — output construction clones payloads per
            // rank, which is the bulk of a collective's host-side work. The
            // window is race-free: every other participant is parked in the
            // wait loop below until `done` is set, the slot cannot be removed
            // while `done` is unset, and a replayed sequence number arriving
            // in the window trips the arrival assert above (its contribution
            // vector was taken) rather than corrupting the slot.
            drop(st);
            let (cost, outputs) = Self::complete_collective(
                &self.machine,
                comm,
                seq,
                kind,
                root,
                charge,
                combine,
                contribs,
            );
            st = self.coll.lock();
            let slot = st.slots.get_mut(&slot_key).expect("collective slot vanished");
            slot.cost = cost;
            slot.outputs = outputs;
            slot.done = Some(slot.max_post + cost);
            self.coll_cv.notify_all();
        }
        // Wait for completion, then take this rank's output.
        loop {
            self.check_poison();
            {
                let slot = st.slots.get_mut(&slot_key).expect("collective slot vanished");
                if let Some(done) = slot.done {
                    let cost = slot.cost;
                    let out = slot.outputs[my_index].take().expect("output already taken");
                    slot.taken += 1;
                    if slot.taken == slot.expected {
                        st.slots.remove(&slot_key);
                        // A replayed arrival may be parked waiting for this
                        // slot to drain; let it re-check promptly.
                        self.coll_cv.notify_all();
                    }
                    return (done, cost, out);
                }
            }
            if self.coll_cv.wait_for(&mut st, self.timeout).timed_out() {
                let slot = st.slots.get(&slot_key);
                panic!(
                    "simulated deadlock: collective {:?} on comm {:#x} seq {seq} has {}/{} arrivals after {:?}",
                    kind,
                    comm.id(),
                    slot.map(|s| s.arrived).unwrap_or(0),
                    expected,
                    self.timeout
                );
            }
        }
    }

    /// All participants have arrived: compute the operation's sampled cost and
    /// every rank's output. Pure with respect to core state (runs outside the
    /// collective lock); the caller installs the results into the slot.
    #[allow(clippy::too_many_arguments)]
    fn complete_collective(
        machine: &MachineModel,
        comm: &Communicator,
        seq: u64,
        kind: CollKind,
        root: usize,
        charge: Option<Option<usize>>,
        combine: Option<CombineFn>,
        mut contribs: Vec<Option<Contrib>>,
    ) -> (f64, Vec<Option<Output>>) {
        let p = contribs.len();
        let take = |c: &mut Option<Contrib>| match c.take() {
            Some(Contrib::Data(d)) => d,
            Some(Contrib::Split { .. }) => panic!("split contribution in data collective"),
            None => panic!("missing contribution"),
        };
        let mut outputs: Vec<Option<Output>> = (0..p).map(|_| None).collect();

        // Words moved per the op's calling convention (per-rank for vector ops).
        let words = match kind {
            CollKind::Bcast => contribs[root].as_ref().map_or(0, contrib_len),
            CollKind::Reduce(_) | CollKind::Allreduce(_) | CollKind::AllreduceCustom => {
                contribs.iter().map(|c| c.as_ref().map_or(0, contrib_len)).max().unwrap_or(0)
            }
            CollKind::Allgather | CollKind::Gather => {
                contribs.iter().map(|c| c.as_ref().map_or(0, contrib_len)).max().unwrap_or(0)
            }
            CollKind::Scatter => contribs[root].as_ref().map_or(0, contrib_len) / p.max(1),
            CollKind::ReduceScatter(_) | CollKind::Alltoall => {
                // Per-rank chunk convention: contributions are p·chunk words.
                contribs.iter().map(|c| c.as_ref().map_or(0, contrib_len)).max().unwrap_or(0)
                    / p.max(1)
            }
            CollKind::Barrier => 0,
            CollKind::Split => 1,
        };
        let cost = match charge {
            Some(override_words) => {
                let w = override_words.unwrap_or(words);
                machine.comm_time(kind.comm_op(), w, p, stream_id(&[comm.id()]), seq)
            }
            None => 0.0,
        };

        match kind {
            CollKind::Barrier => {
                for o in outputs.iter_mut() {
                    *o = Some(Output::None);
                }
            }
            CollKind::Bcast => {
                let data = take(&mut contribs[root]);
                for o in outputs.iter_mut() {
                    *o = Some(Output::Data(data.clone()));
                }
            }
            CollKind::Reduce(op) | CollKind::Allreduce(op) => {
                let mut acc = take(&mut contribs[0]);
                for c in contribs.iter_mut().skip(1) {
                    let d = take(c);
                    op.fold_into(&mut acc, &d);
                }
                let everyone = matches!(kind, CollKind::Allreduce(_));
                for (i, o) in outputs.iter_mut().enumerate() {
                    *o = Some(if everyone || i == root {
                        Output::Data(acc.clone())
                    } else {
                        Output::None
                    });
                }
            }
            CollKind::AllreduceCustom => {
                let combine = combine.expect("custom allreduce needs combine fn");
                let mut acc = take(&mut contribs[0]);
                for c in contribs.iter_mut().skip(1) {
                    let d = take(c);
                    acc = combine(&acc, &d);
                }
                for o in outputs.iter_mut() {
                    *o = Some(Output::Data(acc.clone()));
                }
            }
            CollKind::Allgather | CollKind::Gather => {
                let mut all = Vec::new();
                for c in contribs.iter_mut() {
                    all.extend_from_slice(&take(c));
                }
                let everyone = kind == CollKind::Allgather;
                for (i, o) in outputs.iter_mut().enumerate() {
                    *o = Some(if everyone || i == root {
                        Output::Data(all.clone())
                    } else {
                        Output::None
                    });
                }
            }
            CollKind::Scatter => {
                let data = take(&mut contribs[root]);
                assert!(
                    data.len() % p == 0,
                    "scatter payload of {} words not divisible by {p} ranks",
                    data.len()
                );
                let chunk = data.len() / p;
                for (i, o) in outputs.iter_mut().enumerate() {
                    *o = Some(Output::Data(data[i * chunk..(i + 1) * chunk].to_vec()));
                }
            }
            CollKind::ReduceScatter(op) => {
                let mut acc = take(&mut contribs[0]);
                for c in contribs.iter_mut().skip(1) {
                    let d = take(c);
                    op.fold_into(&mut acc, &d);
                }
                assert!(
                    acc.len() % p == 0,
                    "reduce_scatter payload of {} words not divisible by {p} ranks",
                    acc.len()
                );
                let chunk = acc.len() / p;
                for (i, o) in outputs.iter_mut().enumerate() {
                    *o = Some(Output::Data(acc[i * chunk..(i + 1) * chunk].to_vec()));
                }
            }
            CollKind::Alltoall => {
                let parts: Vec<Vec<f64>> = contribs.iter_mut().map(take).collect();
                let len = parts[0].len();
                assert!(
                    parts.iter().all(|d| d.len() == len),
                    "alltoall contributions must have equal length"
                );
                assert!(
                    len.is_multiple_of(p),
                    "alltoall payload of {len} words not divisible by {p} ranks"
                );
                let chunk = len / p;
                for (i, o) in outputs.iter_mut().enumerate() {
                    let mut mine = Vec::with_capacity(len);
                    for part in &parts {
                        mine.extend_from_slice(&part[i * chunk..(i + 1) * chunk]);
                    }
                    *o = Some(Output::Data(mine));
                }
            }
            CollKind::Split => {
                // Group members by color; order each group by (key, world rank).
                let mut entries: Vec<(i64, i64, usize, usize)> = contribs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, c)| match c.take() {
                        Some(Contrib::Split { color, key, world_rank }) => {
                            (color, key, world_rank, i)
                        }
                        _ => panic!("non-split contribution in split collective"),
                    })
                    .collect();
                entries.sort_by_key(|&(color, key, wr, _)| (color, key, wr));
                let mut idx = 0;
                while idx < entries.len() {
                    let color = entries[idx].0;
                    let mut group = Vec::new();
                    while idx < entries.len() && entries[idx].0 == color {
                        group.push(entries[idx]);
                        idx += 1;
                    }
                    if color < 0 {
                        // MPI_UNDEFINED: no communicator.
                        for &(_, _, _, out_idx) in &group {
                            outputs[out_idx] = Some(Output::Split(None));
                        }
                        continue;
                    }
                    let members: Arc<Vec<usize>> =
                        Arc::new(group.iter().map(|&(_, _, wr, _)| wr).collect());
                    let mut parts = vec![comm.id(), seq, color as u64];
                    parts.extend(members.iter().map(|&m| m as u64));
                    let new_id = stream_id(&parts);
                    for (pos, &(_, _, _, out_idx)) in group.iter().enumerate() {
                        outputs[out_idx] =
                            Some(Output::Split(Some((new_id, Arc::clone(&members), pos))));
                    }
                }
            }
        }
        (cost, outputs)
    }
}

fn contrib_len(c: &Contrib) -> usize {
    match c {
        Contrib::Data(d) => d.len(),
        Contrib::Split { .. } => 1,
    }
}

//! The central matching core: point-to-point queues, collective slots,
//! virtual-time completion rules, deadlock detection.
//!
//! All ranks share one [`SimCore`]. State is **sharded**: point-to-point
//! queues land in a shard chosen by the channel hash of `(communicator, src,
//! dst, tag)`, collective slots in a shard chosen by the communicator id, so
//! independent channels no longer contend on one lock and wakeups only reach
//! the waiters of the affected shard. The shard count is a scheduling knob —
//! every cost draw is a pure function of operation identity (channel hash,
//! per-key sequence number), so virtual results are bit-identical across
//! shard counts, which the testkit's `backend_equivalence` oracles pin.
//!
//! Blocked operations park on the shard's condvar. Under the `tasks` backend
//! a parked rank first releases its [`crate::backend::TaskScheduler`] worker
//! permit and reacquires it after waking, which is what bounds the runnable
//! set. The deadlock watchdog is progress-based: a wait that exceeds the
//! timeout only panics ([`crate::SimError::Stuck`]) if *no* operation
//! anywhere in the simulator completed during the window — a slow but live
//! run (10k ranks time-slicing few worker permits) never trips it.

use std::collections::{HashMap, VecDeque};
use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use critter_machine::rng::stream_id;
use critter_machine::{CommOp, MachineModel};
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::backend::TaskScheduler;
use crate::comm::Communicator;
use crate::ctx::ReduceOp;
use crate::error::{SimError, StuckOp};
use crate::runner::SimConfig;

/// Combine function for custom reductions (Critter's internal path-propagation
/// operator). A plain `fn` pointer: every participant passes the same one.
pub type CombineFn = fn(&[f64], &[f64]) -> Vec<f64>;

/// Identifies a point-to-point matching queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct P2pKey {
    pub comm: u64,
    /// World rank of the sender.
    pub src: usize,
    /// World rank of the receiver.
    pub dst: usize,
    pub tag: u64,
}

impl P2pKey {
    fn channel_hash(&self) -> u64 {
        stream_id(&[self.comm, self.src as u64, self.dst as u64, self.tag])
    }
}

/// Slot a rendezvous sender blocks on until the receiver matches.
#[derive(Debug, Default)]
pub(crate) struct SendSlot {
    done: Mutex<Option<f64>>,
    cv: Condvar,
}

pub(crate) struct SendEntry {
    pub data: Vec<f64>,
    pub post_time: f64,
    /// Sampled transfer cost, fixed at post time (deterministic per key+seq).
    pub cost: f64,
    pub slot: Option<Arc<SendSlot>>,
}

#[derive(Default)]
struct P2pState {
    queues: HashMap<P2pKey, VecDeque<SendEntry>>,
    send_seq: HashMap<P2pKey, u64>,
}

/// One point-to-point shard: all queues whose channel hash maps here, plus
/// the condvar their receivers park on.
#[derive(Default)]
struct P2pShard {
    st: Mutex<P2pState>,
    cv: Condvar,
}

/// What a rank contributes to a collective.
pub(crate) enum Contrib {
    /// Payload data (empty for non-roots of bcast, for barrier, …).
    Data(Vec<f64>),
    /// `comm_split` participation.
    Split { color: i64, key: i64, world_rank: usize },
}

/// What a rank receives back from a collective.
pub(crate) enum Output {
    /// Payload data.
    Data(Vec<f64>),
    /// Nothing (barrier; non-root of gather/reduce).
    None,
    /// New communicator description from `comm_split` (None for undefined color).
    Split(Option<(u64, Arc<Vec<usize>>, usize)>),
}

/// The operation a collective slot performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CollKind {
    Bcast,
    Reduce(ReduceOp),
    Allreduce(ReduceOp),
    AllreduceCustom,
    Allgather,
    Gather,
    Scatter,
    ReduceScatter(ReduceOp),
    Alltoall,
    Barrier,
    Split,
}

impl CollKind {
    fn comm_op(self) -> CommOp {
        match self {
            CollKind::Bcast => CommOp::Bcast,
            CollKind::Reduce(_) => CommOp::Reduce,
            CollKind::Allreduce(_) | CollKind::AllreduceCustom => CommOp::Allreduce,
            CollKind::Allgather | CollKind::Split => CommOp::Allgather,
            CollKind::Gather => CommOp::Gather,
            CollKind::Scatter => CommOp::Scatter,
            CollKind::ReduceScatter(_) => CommOp::ReduceScatter,
            CollKind::Alltoall => CommOp::Alltoall,
            CollKind::Barrier => CommOp::Barrier,
        }
    }
}

struct CollSlot {
    kind: CollKind,
    root: usize,
    expected: usize,
    arrived: usize,
    max_post: f64,
    contribs: Vec<Option<Contrib>>,
    combine: Option<CombineFn>,
    /// Cost accounting: `None` = synchronize for free, `Some(None)` = charge
    /// the actual payload words, `Some(Some(w))` = charge `w` words.
    charge: Option<Option<usize>>,
    /// Completion time once the last participant arrives.
    done: Option<f64>,
    /// Sampled operation cost (0 when uncharged), for counters.
    cost: f64,
    outputs: Vec<Option<Output>>,
    taken: usize,
}

#[derive(Default)]
struct CollState {
    slots: HashMap<(u64, u64), CollSlot>,
}

/// One collective shard: all slots of the communicators that hash here, plus
/// the condvar their participants park on.
#[derive(Default)]
struct CollShard {
    st: Mutex<CollState>,
    cv: Condvar,
}

/// Shared simulator core.
pub struct SimCore {
    pub(crate) machine: Arc<MachineModel>,
    p2p: Vec<P2pShard>,
    coll: Vec<CollShard>,
    pub(crate) timeout: Duration,
    pub(crate) eager_words: usize,
    /// Schedule perturbation injected by rank contexts at interception
    /// points (testkit determinism fuzzing; `None` in normal runs).
    pub(crate) perturb: Option<crate::runner::PerturbParams>,
    /// Fault injection (seeded rank panics, message delays/drops) applied by
    /// rank contexts at the same interception points (`None` in normal runs).
    pub(crate) faults: Option<crate::runner::FaultPlan>,
    /// Set when any rank panics, so peers stop waiting immediately.
    poisoned: AtomicBool,
    /// Bumped whenever any operation anywhere makes progress (a send posted,
    /// a receive matched, a collective arrival/completion/drain). The
    /// deadlock watchdog declares a timed-out wait stuck only if this
    /// counter did not move during the whole window.
    progress: AtomicU64,
    /// Cooperative worker-permit scheduler (`tasks` backend; `None` under
    /// thread-per-rank execution).
    sched: Option<Arc<TaskScheduler>>,
}

/// Outcome of matching a receive: payload, receiver completion time, and the
/// components (transfer cost, idle time) for counter accounting.
pub(crate) struct RecvOutcome {
    pub data: Vec<f64>,
    pub done: f64,
    pub cost: f64,
    pub idle: f64,
}

impl SimCore {
    pub(crate) fn new(
        machine: Arc<MachineModel>,
        config: &SimConfig,
        sched: Option<Arc<TaskScheduler>>,
    ) -> Self {
        // Shard count: explicit, or sized to the rank count (power of two for
        // cheap masking-friendly modulo, capped so huge runs do not allocate
        // thousands of idle mutexes).
        let shards = if config.shards > 0 {
            config.shards
        } else {
            config.ranks.clamp(1, 256).next_power_of_two()
        };
        SimCore {
            machine,
            p2p: (0..shards).map(|_| P2pShard::default()).collect(),
            coll: (0..shards).map(|_| CollShard::default()).collect(),
            timeout: config.deadlock_timeout,
            eager_words: config.eager_words,
            perturb: config.perturb,
            faults: config.faults,
            poisoned: AtomicBool::new(false),
            progress: AtomicU64::new(0),
            sched,
        }
    }

    /// Number of shards the matching state is split over (diagnostics).
    pub fn shards(&self) -> usize {
        self.p2p.len()
    }

    fn p2p_shard(&self, channel_hash: u64) -> &P2pShard {
        &self.p2p[(channel_hash % self.p2p.len() as u64) as usize]
    }

    fn coll_shard(&self, comm_id: u64) -> &CollShard {
        &self.coll[(stream_id(&[comm_id]) % self.coll.len() as u64) as usize]
    }

    /// Mark the simulation as failed (a rank panicked) and wake all waiters:
    /// shard condvars, rendezvous send slots queued anywhere, and the
    /// worker-permit scheduler. Each wake happens with the corresponding
    /// mutex held so a waiter that has checked the poison flag but not yet
    /// parked cannot miss it.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for shard in &self.p2p {
            let st = shard.st.lock();
            for q in st.queues.values() {
                for entry in q {
                    if let Some(slot) = &entry.slot {
                        let _g = slot.done.lock();
                        slot.cv.notify_all();
                    }
                }
            }
            shard.cv.notify_all();
        }
        for shard in &self.coll {
            let _st = shard.st.lock();
            shard.cv.notify_all();
        }
        if let Some(s) = &self.sched {
            s.poison_wake();
        }
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::SeqCst) {
            panic!("simulation aborted: a peer rank panicked");
        }
    }

    /// Acquire this rank's worker permit (no-op under the threads backend).
    pub(crate) fn sched_acquire(&self) {
        if let Some(s) = &self.sched {
            s.acquire(&self.poisoned);
        }
    }

    /// Release this rank's worker permit (no-op under the threads backend).
    pub(crate) fn sched_release(&self) {
        if let Some(s) = &self.sched {
            s.release();
        }
    }

    fn note_progress(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Park the calling rank on `cv` for up to one watchdog window,
    /// releasing its scheduler permit while parked. Returns the (re-locked)
    /// guard and whether the window elapsed with zero simulator-wide
    /// progress — `true` means the caller, whose condition is still unmet,
    /// should declare the simulation stuck.
    ///
    /// Lock order: the permit is reacquired only *after* the state lock is
    /// dropped, so a rank never blocks on the scheduler while holding a
    /// shard (that inversion could wedge the whole worker budget behind one
    /// lock); the state is then re-locked for the caller's re-check.
    fn park<'a, T>(
        &self,
        cv: &Condvar,
        mutex: &'a Mutex<T>,
        mut guard: MutexGuard<'a, T>,
        seen_progress: &mut u64,
    ) -> (MutexGuard<'a, T>, bool) {
        self.sched_release();
        let timed_out = cv.wait_for(&mut guard, self.timeout).timed_out();
        if self.sched.is_some() {
            drop(guard);
            self.sched_acquire();
            guard = mutex.lock();
        }
        let mut stalled = false;
        if timed_out {
            let now = self.progress.load(Ordering::Relaxed);
            stalled = now == *seen_progress;
            *seen_progress = now;
        }
        (guard, stalled)
    }

    /// Post a send. Returns `(sampled transfer cost, slot)` — the slot is
    /// `Some` iff the message takes the rendezvous path (the caller must wait
    /// on it for its completion time).
    pub(crate) fn post_send(
        &self,
        key: P2pKey,
        data: Vec<f64>,
        post_time: f64,
        force_rendezvous: bool,
        cost_words: Option<usize>,
    ) -> (f64, Option<Arc<SendSlot>>) {
        let words = data.len();
        // Cost may be overridden (Critter charges its internal piggyback
        // messages at the compact wire size of the real implementation).
        let cost_words = cost_words.unwrap_or(words);
        let rendezvous = force_rendezvous || cost_words > self.eager_words;
        let hash = key.channel_hash();
        let shard = self.p2p_shard(hash);
        // Reserve this message's per-key sequence number under the lock, then
        // sample its cost outside it: the draw is a pure function of
        // (key, seq), and all sends for one key come from the single sender
        // rank, so the queue push below still lands in seq order despite
        // the unlock window. Key→shard mapping is a pure function of the
        // key, so per-key sequencing is untouched by the shard count.
        let this_seq = {
            let mut st = shard.st.lock();
            let seq = st.send_seq.entry(key).or_insert(0);
            let s = *seq;
            *seq += 1;
            s
        };
        let cost = self.machine.comm_time(CommOp::PointToPoint, cost_words, 2, hash, this_seq);
        let slot = rendezvous.then(|| Arc::new(SendSlot::default()));
        {
            let mut st = shard.st.lock();
            st.queues.entry(key).or_default().push_back(SendEntry {
                data,
                post_time,
                cost,
                slot: slot.clone(),
            });
        }
        self.note_progress();
        shard.cv.notify_all();
        (cost, slot)
    }

    /// Block until a send matching `key` is available; complete the pair.
    /// `recv_post` is when the receive was posted (irecv post time, or "now"
    /// for a blocking receive).
    pub(crate) fn match_recv(&self, key: P2pKey, recv_post: f64) -> RecvOutcome {
        let shard = self.p2p_shard(key.channel_hash());
        let mut st = shard.st.lock();
        let mut seen = self.progress.load(Ordering::Relaxed);
        loop {
            self.check_poison();
            if let Some(q) = st.queues.get_mut(&key) {
                if let Some(entry) = q.pop_front() {
                    if q.is_empty() {
                        st.queues.remove(&key);
                    }
                    drop(st);
                    self.note_progress();
                    let start = entry.post_time.max(recv_post);
                    let done = start + entry.cost;
                    if let Some(slot) = &entry.slot {
                        *slot.done.lock() = Some(done);
                        slot.cv.notify_all();
                    }
                    let idle = (entry.post_time - recv_post).max(0.0);
                    return RecvOutcome { data: entry.data, done, cost: entry.cost, idle };
                }
            }
            let (g, stalled) = self.park(&shard.cv, &shard.st, st, &mut seen);
            st = g;
            if stalled {
                panic_any(SimError::Stuck {
                    op: StuckOp::Recv,
                    comm: key.comm,
                    detail: format!(
                        "receive waited {:?} on comm {:#x} src {} dst {} tag {}",
                        self.timeout, key.comm, key.src, key.dst, key.tag
                    ),
                });
            }
        }
    }

    /// Wait for a rendezvous send to be matched; returns sender completion time.
    pub(crate) fn wait_send(&self, slot: &SendSlot) -> f64 {
        let mut g = slot.done.lock();
        let mut seen = self.progress.load(Ordering::Relaxed);
        loop {
            self.check_poison();
            if let Some(t) = *g {
                return t;
            }
            let (g2, stalled) = self.park(&slot.cv, &slot.done, g, &mut seen);
            g = g2;
            if stalled {
                panic_any(SimError::Stuck {
                    op: StuckOp::SendRendezvous,
                    comm: 0,
                    detail: format!("rendezvous send never matched within {:?}", self.timeout),
                });
            }
        }
    }

    /// Execute one collective participation. Blocks until all `expected`
    /// members of `comm` have arrived at sequence `seq`, then returns
    /// `(completion time, operation cost, output)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collective(
        &self,
        comm: &Communicator,
        seq: u64,
        kind: CollKind,
        root: usize,
        contrib: Contrib,
        combine: Option<CombineFn>,
        charge: Option<Option<usize>>,
        post: f64,
    ) -> (f64, f64, Output) {
        let my_index = comm.rank();
        let expected = comm.size();
        let slot_key = (comm.id(), seq);
        let shard = self.coll_shard(comm.id());
        let mut st = shard.st.lock();
        let mut seen = self.progress.load(Ordering::Relaxed);
        // A completed instance of this (comm, seq) may still be in the map
        // while its participants drain their outputs; an arrival now is a
        // replayed sequence number and must not join (or index into) the
        // finished slot. Wait for the drain, then post a fresh arrival —
        // which the watchdog below will report as a deadlock. (With sequence
        // numbers derived per rank context this is defensive: the public API
        // can no longer replay a sequence number.)
        while st.slots.get(&slot_key).is_some_and(|s| s.done.is_some()) {
            self.check_poison();
            let (g, stalled) = self.park(&shard.cv, &shard.st, st, &mut seen);
            st = g;
            if stalled {
                panic_any(SimError::Stuck {
                    op: StuckOp::CollectiveDrain,
                    comm: comm.id(),
                    detail: format!(
                        "collective {:?} on comm {:#x} replayed sequence {seq} \
                         while the completed instance was still being drained",
                        kind,
                        comm.id(),
                    ),
                });
            }
        }
        let completion = {
            let slot = st.slots.entry(slot_key).or_insert_with(|| CollSlot {
                kind,
                root,
                expected,
                arrived: 0,
                max_post: f64::NEG_INFINITY,
                contribs: (0..expected).map(|_| None).collect(),
                combine,
                charge,
                done: None,
                cost: 0.0,
                outputs: (0..expected).map(|_| None).collect(),
                taken: 0,
            });
            assert_eq!(
                slot.kind, kind,
                "collective mismatch on comm {:#x} seq {seq}: {:?} vs {:?} — ranks disagree on program order",
                comm.id(), slot.kind, kind
            );
            assert_eq!(
                slot.root,
                root,
                "collective root mismatch on comm {:#x} seq {seq}",
                comm.id()
            );
            assert!(
                slot.contribs.get(my_index).is_some_and(Option::is_none),
                "rank arrived twice at collective seq {seq}"
            );
            // Merge the charge spec across arrivals (participants may pass
            // different capped word counts for their own payloads): the
            // operation is charged at the largest requested size, regardless
            // of arrival order.
            slot.charge = match (slot.charge, charge) {
                (None, None) => None,
                (Some(None), Some(None)) => Some(None),
                (Some(Some(a)), Some(Some(b))) => Some(Some(a.max(b))),
                (a, b) => panic!("participants disagree on collective charging: {a:?} vs {b:?}"),
            };
            slot.contribs[my_index] = Some(contrib);
            slot.arrived += 1;
            slot.max_post = slot.max_post.max(post);
            (slot.arrived == slot.expected)
                .then(|| (slot.charge, slot.combine, std::mem::take(&mut slot.contribs)))
        };
        self.note_progress();
        if let Some((charge, combine, contribs)) = completion {
            // Last arriver: sample the cost and build every rank's output
            // *outside* the lock — output construction clones payloads per
            // rank, which is the bulk of a collective's host-side work. The
            // window is race-free: every other participant is parked in the
            // wait loop below until `done` is set, the slot cannot be removed
            // while `done` is unset, and a replayed sequence number arriving
            // in the window trips the arrival assert above (its contribution
            // vector was taken) rather than corrupting the slot.
            drop(st);
            let (cost, outputs) = Self::complete_collective(
                &self.machine,
                comm,
                seq,
                kind,
                root,
                charge,
                combine,
                contribs,
            );
            st = shard.st.lock();
            let slot = st.slots.get_mut(&slot_key).expect("collective slot vanished");
            slot.cost = cost;
            slot.outputs = outputs;
            slot.done = Some(slot.max_post + cost);
            self.note_progress();
            shard.cv.notify_all();
        }
        // Wait for completion, then take this rank's output.
        loop {
            self.check_poison();
            {
                let slot = st.slots.get_mut(&slot_key).expect("collective slot vanished");
                if let Some(done) = slot.done {
                    let cost = slot.cost;
                    let out = slot.outputs[my_index].take().expect("output already taken");
                    slot.taken += 1;
                    if slot.taken == slot.expected {
                        st.slots.remove(&slot_key);
                        // A replayed arrival may be parked waiting for this
                        // slot to drain; let it re-check promptly.
                        shard.cv.notify_all();
                    }
                    self.note_progress();
                    return (done, cost, out);
                }
            }
            let (g, stalled) = self.park(&shard.cv, &shard.st, st, &mut seen);
            st = g;
            if stalled {
                let arrived = st.slots.get(&slot_key).map(|s| s.arrived).unwrap_or(0);
                panic_any(SimError::Stuck {
                    op: StuckOp::Collective,
                    comm: comm.id(),
                    detail: format!(
                        "collective {:?} on comm {:#x} seq {seq} has {}/{} arrivals after {:?}",
                        kind,
                        comm.id(),
                        arrived,
                        expected,
                        self.timeout
                    ),
                });
            }
        }
    }

    /// All participants have arrived: compute the operation's sampled cost and
    /// every rank's output. Pure with respect to core state (runs outside the
    /// collective lock); the caller installs the results into the slot.
    #[allow(clippy::too_many_arguments)]
    fn complete_collective(
        machine: &MachineModel,
        comm: &Communicator,
        seq: u64,
        kind: CollKind,
        root: usize,
        charge: Option<Option<usize>>,
        combine: Option<CombineFn>,
        mut contribs: Vec<Option<Contrib>>,
    ) -> (f64, Vec<Option<Output>>) {
        let p = contribs.len();
        let take = |c: &mut Option<Contrib>| match c.take() {
            Some(Contrib::Data(d)) => d,
            Some(Contrib::Split { .. }) => panic!("split contribution in data collective"),
            None => panic!("missing contribution"),
        };
        let mut outputs: Vec<Option<Output>> = (0..p).map(|_| None).collect();

        // Words moved per the op's calling convention (per-rank for vector ops).
        let words = match kind {
            CollKind::Bcast => contribs[root].as_ref().map_or(0, contrib_len),
            CollKind::Reduce(_) | CollKind::Allreduce(_) | CollKind::AllreduceCustom => {
                contribs.iter().map(|c| c.as_ref().map_or(0, contrib_len)).max().unwrap_or(0)
            }
            CollKind::Allgather | CollKind::Gather => {
                contribs.iter().map(|c| c.as_ref().map_or(0, contrib_len)).max().unwrap_or(0)
            }
            CollKind::Scatter => contribs[root].as_ref().map_or(0, contrib_len) / p.max(1),
            CollKind::ReduceScatter(_) | CollKind::Alltoall => {
                // Per-rank chunk convention: contributions are p·chunk words.
                contribs.iter().map(|c| c.as_ref().map_or(0, contrib_len)).max().unwrap_or(0)
                    / p.max(1)
            }
            CollKind::Barrier => 0,
            CollKind::Split => 1,
        };
        let cost = match charge {
            Some(override_words) => {
                let w = override_words.unwrap_or(words);
                machine.comm_time(kind.comm_op(), w, p, stream_id(&[comm.id()]), seq)
            }
            None => 0.0,
        };

        match kind {
            CollKind::Barrier => {
                for o in outputs.iter_mut() {
                    *o = Some(Output::None);
                }
            }
            CollKind::Bcast => {
                let data = take(&mut contribs[root]);
                for o in outputs.iter_mut() {
                    *o = Some(Output::Data(data.clone()));
                }
            }
            CollKind::Reduce(op) | CollKind::Allreduce(op) => {
                let mut acc = take(&mut contribs[0]);
                for c in contribs.iter_mut().skip(1) {
                    let d = take(c);
                    op.fold_into(&mut acc, &d);
                }
                let everyone = matches!(kind, CollKind::Allreduce(_));
                for (i, o) in outputs.iter_mut().enumerate() {
                    *o = Some(if everyone || i == root {
                        Output::Data(acc.clone())
                    } else {
                        Output::None
                    });
                }
            }
            CollKind::AllreduceCustom => {
                let combine = combine.expect("custom allreduce needs combine fn");
                let mut acc = take(&mut contribs[0]);
                for c in contribs.iter_mut().skip(1) {
                    let d = take(c);
                    acc = combine(&acc, &d);
                }
                for o in outputs.iter_mut() {
                    *o = Some(Output::Data(acc.clone()));
                }
            }
            CollKind::Allgather | CollKind::Gather => {
                let mut all = Vec::new();
                for c in contribs.iter_mut() {
                    all.extend_from_slice(&take(c));
                }
                let everyone = kind == CollKind::Allgather;
                for (i, o) in outputs.iter_mut().enumerate() {
                    *o = Some(if everyone || i == root {
                        Output::Data(all.clone())
                    } else {
                        Output::None
                    });
                }
            }
            CollKind::Scatter => {
                let data = take(&mut contribs[root]);
                assert!(
                    data.len() % p == 0,
                    "scatter payload of {} words not divisible by {p} ranks",
                    data.len()
                );
                let chunk = data.len() / p;
                for (i, o) in outputs.iter_mut().enumerate() {
                    *o = Some(Output::Data(data[i * chunk..(i + 1) * chunk].to_vec()));
                }
            }
            CollKind::ReduceScatter(op) => {
                let mut acc = take(&mut contribs[0]);
                for c in contribs.iter_mut().skip(1) {
                    let d = take(c);
                    op.fold_into(&mut acc, &d);
                }
                assert!(
                    acc.len() % p == 0,
                    "reduce_scatter payload of {} words not divisible by {p} ranks",
                    acc.len()
                );
                let chunk = acc.len() / p;
                for (i, o) in outputs.iter_mut().enumerate() {
                    *o = Some(Output::Data(acc[i * chunk..(i + 1) * chunk].to_vec()));
                }
            }
            CollKind::Alltoall => {
                let parts: Vec<Vec<f64>> = contribs.iter_mut().map(take).collect();
                let len = parts[0].len();
                assert!(
                    parts.iter().all(|d| d.len() == len),
                    "alltoall contributions must have equal length"
                );
                assert!(
                    len.is_multiple_of(p),
                    "alltoall payload of {len} words not divisible by {p} ranks"
                );
                let chunk = len / p;
                for (i, o) in outputs.iter_mut().enumerate() {
                    let mut mine = Vec::with_capacity(len);
                    for part in &parts {
                        mine.extend_from_slice(&part[i * chunk..(i + 1) * chunk]);
                    }
                    *o = Some(Output::Data(mine));
                }
            }
            CollKind::Split => {
                // Group members by color; order each group by (key, world rank).
                let mut entries: Vec<(i64, i64, usize, usize)> = contribs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, c)| match c.take() {
                        Some(Contrib::Split { color, key, world_rank }) => {
                            (color, key, world_rank, i)
                        }
                        _ => panic!("non-split contribution in split collective"),
                    })
                    .collect();
                entries.sort_by_key(|&(color, key, wr, _)| (color, key, wr));
                let mut idx = 0;
                while idx < entries.len() {
                    let color = entries[idx].0;
                    let mut group = Vec::new();
                    while idx < entries.len() && entries[idx].0 == color {
                        group.push(entries[idx]);
                        idx += 1;
                    }
                    if color < 0 {
                        // MPI_UNDEFINED: no communicator.
                        for &(_, _, _, out_idx) in &group {
                            outputs[out_idx] = Some(Output::Split(None));
                        }
                        continue;
                    }
                    let members: Arc<Vec<usize>> =
                        Arc::new(group.iter().map(|&(_, _, wr, _)| wr).collect());
                    let mut parts = vec![comm.id(), seq, color as u64];
                    parts.extend(members.iter().map(|&m| m as u64));
                    let new_id = stream_id(&parts);
                    for (pos, &(_, _, _, out_idx)) in group.iter().enumerate() {
                        outputs[out_idx] =
                            Some(Output::Split(Some((new_id, Arc::clone(&members), pos))));
                    }
                }
            }
        }
        (cost, outputs)
    }
}

fn contrib_len(c: &Contrib) -> usize {
    match c {
        Contrib::Data(d) => d.len(),
        Contrib::Split { .. } => 1,
    }
}

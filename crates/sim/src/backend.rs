//! Pluggable communicator backends: how simulated ranks are mapped onto OS
//! execution resources.
//!
//! The simulator's determinism contract (see [`crate`] docs) makes the
//! *virtual* results — clocks, cost draws, reports — a pure function of the
//! program and the machine model. How rank programs are *hosted* is therefore
//! a free choice, captured by [`CommBackend`]:
//!
//! * [`BackendKind::Threads`] — the classic shape: one OS thread per rank,
//!   all runnable at once, the kernel schedules them preemptively. Best
//!   latency at small rank counts.
//! * [`BackendKind::Tasks`] — ranks as cooperatively scheduled coroutines:
//!   each rank still owns a pooled thread (its coroutine stack), but a
//!   [`TaskScheduler`] permit semaphore bounds how many are *runnable* to a
//!   small worker budget. A rank parks on an unmatched recv/collective
//!   (releasing its permit to the next runnable rank) and resumes on match.
//!   With the runnable set bounded, 10k+ simulated ranks fit in one process
//!   without drowning the kernel scheduler in contending threads.
//!
//! Both backends draw rank threads from the same [`crate::pool`] registry and
//! drive the same sharded matching core; the testkit's `backend_equivalence`
//! oracles assert that reports, traces, and metrics are byte-identical across
//! backends and shard counts.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use critter_machine::MachineModel;
use parking_lot::{Condvar, Mutex};

use crate::core::SimCore;
use crate::counters::RankCounters;
use crate::ctx::RankCtx;
use crate::pool::PoolLease;
use crate::runner::{SimConfig, SimReport};

/// Which backend hosts the simulated ranks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// One preemptively scheduled OS thread per rank (the default).
    #[default]
    Threads,
    /// Cooperatively scheduled rank coroutines over a bounded worker budget.
    Tasks,
}

impl BackendKind {
    /// Every selectable backend, in a fixed order (test matrices).
    pub const ALL: [BackendKind; 2] = [BackendKind::Threads, BackendKind::Tasks];

    /// Stable lowercase name (CLI flag value, artifact labels).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Threads => "threads",
            BackendKind::Tasks => "tasks",
        }
    }

    /// The process-wide backend implementation for this kind.
    pub fn instance(self) -> &'static dyn CommBackend {
        match self {
            BackendKind::Threads => &ThreadsBackend,
            BackendKind::Tasks => &TasksBackend,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(BackendKind::Threads),
            "tasks" => Ok(BackendKind::Tasks),
            other => Err(format!("unknown backend {other:?} (expected \"threads\" or \"tasks\")")),
        }
    }
}

/// A type-erased unit of rank work a backend must run exactly once.
pub type RankJob = Box<dyn FnOnce() + Send>;

/// Completion latch for one simulation run: counts down as rank jobs finish.
///
/// The latch — not the backend — is what makes dispatching borrowed rank
/// closures sound: `execute_ranks` waits on it unconditionally before its
/// stack frame (which the jobs borrow) can unwind, so a backend that forgets
/// to wait, or even leaks a job, can at worst hang the run — never touch
/// freed memory.
pub struct RunLatch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl RunLatch {
    fn new(count: usize) -> Self {
        RunLatch { remaining: Mutex::new(count), done: Condvar::new() }
    }

    pub(crate) fn count_down(&self) {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every dispatched rank job has reported completion.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.done.wait(&mut remaining);
        }
    }
}

/// Permit semaphore bounding how many rank coroutines are runnable at once
/// (the `tasks` backend's cooperative scheduler).
///
/// A rank acquires one permit before executing program code and holds it
/// while runnable. The matching core's wait sites release the permit before
/// parking on a condvar and reacquire it after waking, so a parked rank
/// costs only its (idle) stack — the worker budget flows to ranks that can
/// make progress.
pub struct TaskScheduler {
    free: Mutex<usize>,
    cv: Condvar,
}

impl TaskScheduler {
    pub(crate) fn new(permits: usize) -> Self {
        assert!(permits > 0, "the task scheduler needs at least one worker permit");
        TaskScheduler { free: Mutex::new(permits), cv: Condvar::new() }
    }

    /// Block until a permit is free, then take it. Panics with the standard
    /// poison cascade if the run was poisoned — [`SimCore::poison`] wakes
    /// this condvar, so permit waiters never outlive a failed run.
    pub(crate) fn acquire(&self, poisoned: &AtomicBool) {
        let mut free = self.free.lock();
        loop {
            if poisoned.load(Ordering::SeqCst) {
                panic!("simulation aborted: a peer rank panicked");
            }
            if *free > 0 {
                *free -= 1;
                return;
            }
            self.cv.wait(&mut free);
        }
    }

    pub(crate) fn release(&self) {
        let mut free = self.free.lock();
        *free += 1;
        self.cv.notify_one();
    }

    /// Wake every permit waiter so they observe the poison flag. Takes the
    /// permit lock first: a waiter that checked the flag and is about to
    /// park must either see the flag or be registered on the condvar before
    /// the notification, never neither.
    pub(crate) fn poison_wake(&self) {
        let _guard = self.free.lock();
        self.cv.notify_all();
    }
}

impl std::fmt::Debug for TaskScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskScheduler").field("free", &*self.free.lock()).finish()
    }
}

/// How a backend hosts the per-rank jobs of one simulation run.
///
/// Contract:
///
/// * `scheduler` is consulted once per run, before the core is built; the
///   returned [`TaskScheduler`] (if any) is installed into the core's wait
///   sites and gates every job's execution.
/// * `execute` must run every job exactly once and must not return before
///   the latch reaches zero (leases and other per-run resources may be
///   released when it returns). Dropping or leaking a job hangs the run —
///   the harness-side latch wait makes that the *worst* possible outcome.
pub trait CommBackend {
    /// Which [`BackendKind`] this implementation realizes.
    fn kind(&self) -> BackendKind;

    /// The cooperative scheduler for this run, or `None` for preemptive
    /// thread-per-rank execution.
    fn scheduler(&self, config: &SimConfig) -> Option<Arc<TaskScheduler>>;

    /// Run all rank jobs and wait for the latch to drain.
    fn execute(&self, config: &SimConfig, jobs: Vec<RankJob>, latch: &RunLatch);
}

/// Dispatch jobs onto a pooled set of rank threads and hold the lease until
/// every job has reported (the lease must not return to the registry while
/// jobs are still in flight on its threads).
fn run_on_pooled_threads(config: &SimConfig, jobs: Vec<RankJob>, latch: &RunLatch) {
    let lease = PoolLease::checkout(config.ranks, config.stack_size);
    lease.pool().dispatch(jobs);
    latch.wait();
    lease.pool().note_run();
}

/// One preemptively scheduled OS thread per rank (see [`BackendKind::Threads`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadsBackend;

impl CommBackend for ThreadsBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Threads
    }

    fn scheduler(&self, _config: &SimConfig) -> Option<Arc<TaskScheduler>> {
        None
    }

    fn execute(&self, config: &SimConfig, jobs: Vec<RankJob>, latch: &RunLatch) {
        run_on_pooled_threads(config, jobs, latch);
    }
}

/// Cooperatively scheduled rank coroutines (see [`BackendKind::Tasks`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct TasksBackend;

impl TasksBackend {
    fn worker_permits(config: &SimConfig) -> usize {
        if config.task_workers > 0 {
            config.task_workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

impl CommBackend for TasksBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Tasks
    }

    fn scheduler(&self, config: &SimConfig) -> Option<Arc<TaskScheduler>> {
        Some(Arc::new(TaskScheduler::new(Self::worker_permits(config))))
    }

    fn execute(&self, config: &SimConfig, jobs: Vec<RankJob>, latch: &RunLatch) {
        run_on_pooled_threads(config, jobs, latch);
    }
}

/// What one rank produced: its program output, final clock, and counters —
/// or the panic payload that aborted it.
type RankResult<R> = Result<(R, f64, RankCounters), Box<dyn Any + Send>>;

/// Build the per-rank jobs for one run, hand them to `backend`, wait for
/// completion, and collect the report. This is the single launch path shared
/// by [`crate::run_simulation`] and [`crate::SimPool::run`]; panic-poisoning
/// semantics are identical everywhere.
pub(crate) fn execute_ranks<R, F>(
    backend: &dyn CommBackend,
    config: &SimConfig,
    machine: Arc<MachineModel>,
    program: &F,
) -> SimReport<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    assert!(config.ranks > 0, "simulation requires at least one rank");
    assert_eq!(
        machine.topology().ranks(),
        config.ranks,
        "machine model rank count must match the simulation"
    );
    let ranks = config.ranks;
    let sched = backend.scheduler(config);
    let core = Arc::new(SimCore::new(Arc::clone(&machine), config, sched));
    let slots: Vec<Mutex<Option<RankResult<R>>>> = (0..ranks).map(|_| Mutex::new(None)).collect();
    let latch = RunLatch::new(ranks);
    let slots_ref = &slots;
    let latch_ref = &latch;

    let mut jobs: Vec<RankJob> = Vec::with_capacity(ranks);
    for (rank, slot) in slots_ref.iter().enumerate() {
        let core = Arc::clone(&core);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                // Under the tasks backend a rank must hold a worker permit
                // before running program code; acquisition panics (inside
                // this catch) if a peer already poisoned the run.
                core.sched_acquire();
                let mut ctx = RankCtx::new(rank, ranks, Arc::clone(&core));
                let out = program(&mut ctx);
                let (clock, counters) = ctx.into_parts();
                (out, clock, counters)
            }));
            // Hand the permit back whether the program returned or panicked.
            // A rank that unwound while *parked* (poison woke it without a
            // permit) over-releases by one — harmless, because releases only
            // matter to this run's scheduler and the run is already dying.
            core.sched_release();
            if result.is_err() {
                // Unblock peers before reporting, exactly as the
                // spawn-per-run runner did before propagating.
                core.poison();
            }
            *slot.lock() = Some(result);
            latch_ref.count_down();
        });
        // SAFETY: the job borrows `program`, `slots`, and `latch`, which
        // outlive it because this function waits for the latch to drain
        // below — every dispatched job has fully run (including its final
        // store and count-down) before `execute_ranks` returns or unwinds.
        // A backend cannot break this: `execute` implementations dispatch to
        // pool workers whose sends cannot fail (workers catch all panics and
        // never exit while their sender lives), and a hypothetical backend
        // that dropped or leaked a job would leave the latch above zero and
        // hang the wait — a livelock, never a use-after-free.
        let job: RankJob =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, RankJob>(job) };
        jobs.push(job);
    }

    backend.execute(config, jobs, &latch);
    // Conforming backends have already waited; this wait is the soundness
    // backstop the SAFETY argument above relies on, so it is unconditional.
    latch.wait();

    let mut outputs = Vec::with_capacity(ranks);
    let mut rank_times = Vec::with_capacity(ranks);
    let mut counters = Vec::with_capacity(ranks);
    let mut panic_payload: Option<(Box<dyn Any + Send>, bool)> = None;
    for slot in &slots {
        match slot.lock().take().expect("rank reported") {
            Ok((out, clock, ctrs)) => {
                outputs.push(out);
                rank_times.push(clock);
                counters.push(ctrs);
            }
            Err(payload) => {
                // Re-raise the root cause: prefer any panic that is not
                // the secondary "peer rank panicked" cascade.
                let is_cascade = payload
                    .downcast_ref::<String>()
                    .map(|s| s.contains("a peer rank panicked"))
                    .or_else(|| {
                        payload.downcast_ref::<&str>().map(|s| s.contains("a peer rank panicked"))
                    })
                    .unwrap_or(false);
                let replace = match &panic_payload {
                    None => true,
                    Some((_, prev_is_cascade)) => *prev_is_cascade && !is_cascade,
                };
                if replace {
                    panic_payload = Some((payload, is_cascade));
                }
            }
        }
    }
    if let Some((payload, _)) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    SimReport { outputs, rank_times, counters }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip_through_parse() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.instance().kind(), kind);
        }
        assert!("fibers".parse::<BackendKind>().is_err());
    }

    #[test]
    fn threads_is_the_default_backend() {
        assert_eq!(BackendKind::default(), BackendKind::Threads);
    }

    #[test]
    fn task_scheduler_bounds_runnable_permits() {
        let sched = TaskScheduler::new(2);
        let poisoned = AtomicBool::new(false);
        sched.acquire(&poisoned);
        sched.acquire(&poisoned);
        assert_eq!(*sched.free.lock(), 0);
        sched.release();
        sched.acquire(&poisoned);
        sched.release();
        sched.release();
        assert_eq!(*sched.free.lock(), 2);
    }

    #[test]
    fn poisoned_acquire_panics_instead_of_waiting() {
        let sched = TaskScheduler::new(1);
        let poisoned = AtomicBool::new(true);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| sched.acquire(&poisoned)))
            .expect_err("acquire on a poisoned run must panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("a peer rank panicked"));
    }

    #[test]
    fn tasks_backend_defaults_to_available_parallelism() {
        let cfg = crate::SimConfig::new(1);
        let sched = TasksBackend.scheduler(&cfg).expect("tasks backend always schedules");
        assert!(*sched.free.lock() >= 1);
        let pinned = crate::SimConfig::new(1).with_task_workers(3);
        let sched = TasksBackend.scheduler(&pinned).unwrap();
        assert_eq!(*sched.free.lock(), 3);
    }

    #[test]
    fn latch_waits_for_all_count_downs() {
        let latch = Arc::new(RunLatch::new(2));
        let l = Arc::clone(&latch);
        let t = std::thread::spawn(move || {
            l.count_down();
            l.count_down();
        });
        latch.wait();
        t.join().unwrap();
        latch.wait(); // zero: returns immediately, repeatedly
    }
}

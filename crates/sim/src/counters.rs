//! Per-rank volumetric counters.
//!
//! These are the *local* (per-processor) measurements — message counts, words
//! moved, flops, and the communication/idle split — that complement the
//! critical-path measurements Critter derives. Figure 3's BSP trade-off panels
//! cross-check against these.

/// Volumetric counters accumulated by one simulated rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankCounters {
    /// Point-to-point sends posted.
    pub sends: u64,
    /// Point-to-point receives completed.
    pub recvs: u64,
    /// Collective operations participated in.
    pub collectives: u64,
    /// Words sent point-to-point.
    pub words_sent: u64,
    /// Words received point-to-point.
    pub words_received: u64,
    /// Compute kernels executed.
    pub compute_calls: u64,
    /// Floating-point operations performed by executed kernels.
    pub flops: f64,
    /// Virtual seconds spent computing.
    pub compute_time: f64,
    /// Virtual seconds spent in communication transfer costs.
    pub comm_time: f64,
    /// Virtual seconds spent idle (waiting for a peer to arrive).
    pub idle_time: f64,
}

impl RankCounters {
    /// Busy time: compute + communication (excludes idle).
    pub fn busy_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }

    /// Fold another rank's counters in (for job-level summaries).
    pub fn merge(&mut self, o: &RankCounters) {
        self.sends += o.sends;
        self.recvs += o.recvs;
        self.collectives += o.collectives;
        self.words_sent += o.words_sent;
        self.words_received += o.words_received;
        self.compute_calls += o.compute_calls;
        self.flops += o.flops;
        self.compute_time += o.compute_time;
        self.comm_time += o.comm_time;
        self.idle_time += o.idle_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = RankCounters { sends: 1, flops: 10.0, ..Default::default() };
        let b = RankCounters { sends: 2, recvs: 3, flops: 5.0, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.sends, 3);
        assert_eq!(a.recvs, 3);
        assert_eq!(a.flops, 15.0);
    }

    #[test]
    fn busy_excludes_idle() {
        let c = RankCounters {
            compute_time: 2.0,
            comm_time: 1.0,
            idle_time: 5.0,
            ..Default::default()
        };
        assert_eq!(c.busy_time(), 3.0);
    }
}

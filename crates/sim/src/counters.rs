//! Per-rank volumetric counters.
//!
//! These are the *local* (per-processor) measurements — message counts, words
//! moved, flops, and the communication/idle split — that complement the
//! critical-path measurements Critter derives. Figure 3's BSP trade-off panels
//! cross-check against these.

/// Volumetric counters accumulated by one simulated rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankCounters {
    /// Point-to-point sends posted.
    pub sends: u64,
    /// Point-to-point receives completed.
    pub recvs: u64,
    /// Collective operations participated in.
    pub collectives: u64,
    /// Words sent point-to-point.
    pub words_sent: u64,
    /// Words received point-to-point.
    pub words_received: u64,
    /// Compute kernels executed.
    pub compute_calls: u64,
    /// Floating-point operations performed by executed kernels.
    pub flops: f64,
    /// Virtual seconds spent computing.
    pub compute_time: f64,
    /// Virtual seconds spent in communication transfer costs.
    pub comm_time: f64,
    /// Virtual seconds spent idle (waiting for a peer to arrive).
    pub idle_time: f64,
}

impl RankCounters {
    /// Busy time: compute + communication (excludes idle).
    pub fn busy_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }

    /// Fold another rank's counters in (for job-level summaries). Event
    /// counts saturate at `u64::MAX` rather than wrapping: a merged summary
    /// over many long runs must never silently wrap back to a small value
    /// in release builds.
    pub fn merge(&mut self, o: &RankCounters) {
        self.sends = self.sends.saturating_add(o.sends);
        self.recvs = self.recvs.saturating_add(o.recvs);
        self.collectives = self.collectives.saturating_add(o.collectives);
        self.words_sent = self.words_sent.saturating_add(o.words_sent);
        self.words_received = self.words_received.saturating_add(o.words_received);
        self.compute_calls = self.compute_calls.saturating_add(o.compute_calls);
        self.flops += o.flops;
        self.compute_time += o.compute_time;
        self.comm_time += o.comm_time;
        self.idle_time += o.idle_time;
    }

    /// Reset every counter to zero (reusing a rank context across runs).
    pub fn reset(&mut self) {
        *self = RankCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = RankCounters { sends: 1, flops: 10.0, ..Default::default() };
        let b = RankCounters { sends: 2, recvs: 3, flops: 5.0, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.sends, 3);
        assert_eq!(a.recvs, 3);
        assert_eq!(a.flops, 15.0);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        // Release builds wrap on `+=`; the merged job-level summary must
        // pin at u64::MAX instead of silently restarting near zero.
        let mut a =
            RankCounters { sends: u64::MAX - 1, words_sent: u64::MAX, ..Default::default() };
        let b = RankCounters { sends: 5, words_sent: 1, recvs: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.sends, u64::MAX);
        assert_eq!(a.words_sent, u64::MAX);
        assert_eq!(a.recvs, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = RankCounters {
            sends: 3,
            recvs: 4,
            collectives: 5,
            words_sent: 6,
            words_received: 7,
            compute_calls: 8,
            flops: 9.0,
            compute_time: 1.0,
            comm_time: 2.0,
            idle_time: 3.0,
        };
        c.reset();
        assert_eq!(c, RankCounters::default());
        assert_eq!(c.busy_time(), 0.0);
    }

    #[test]
    fn default_is_zero() {
        let c = RankCounters::default();
        assert_eq!(c.sends, 0);
        assert_eq!(c.flops, 0.0);
        assert_eq!(c.busy_time(), 0.0);
    }

    #[test]
    fn busy_excludes_idle() {
        let c = RankCounters {
            compute_time: 2.0,
            comm_time: 1.0,
            idle_time: 5.0,
            ..Default::default()
        };
        assert_eq!(c.busy_time(), 3.0);
    }
}

//! Nonblocking operation handles.

use std::sync::Arc;

use crate::core::{P2pKey, SendSlot};

/// Handle on an outstanding nonblocking operation, completed by
/// [`crate::RankCtx::wait`]. Dropping an un-waited request is a program bug
/// for receives (the message would never be drained); requests are therefore
/// `#[must_use]`.
#[must_use = "nonblocking operations must be completed with wait()"]
#[derive(Debug)]
pub struct Request(pub(crate) RequestInner);

#[derive(Debug)]
pub(crate) enum RequestInner {
    /// Eager nonblocking send: completion time known at post.
    SendEager {
        /// Sender-side completion (post + cost).
        done: f64,
        /// Words sent (for counters at completion).
        words: u64,
        /// Transfer cost, attributed to comm time at wait.
        cost: f64,
    },
    /// Rendezvous nonblocking send: completion determined by the receiver.
    SendRendezvous { slot: Arc<SendSlot>, post: f64, words: u64 },
    /// Nonblocking receive: matched at wait time using the posted time.
    Recv { key: P2pKey, post: f64 },
    /// Already-completed request (returned when an operation degenerates).
    Done,
}

impl Request {
    /// A pre-completed request (no operation outstanding).
    pub fn done() -> Self {
        Request(RequestInner::Done)
    }

    /// True if this request is a receive (its `wait` yields data).
    pub fn is_recv(&self) -> bool {
        matches!(self.0, RequestInner::Recv { .. })
    }
}

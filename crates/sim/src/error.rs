//! Typed simulator errors.
//!
//! A simulated program that deadlocks (every rank parked with no possible
//! progress) or constructs an impossible communicator used to die with a
//! bare `panic!` string. Those panics now carry a [`SimError`] payload via
//! [`std::panic::panic_any`], so harnesses — the cross-backend deadlock-shape
//! oracles in particular — can assert on the *kind* of failure instead of
//! substring-matching a message. [`std::fmt::Display`] keeps the historical
//! "simulated deadlock: …" wording for human eyes and for older tests.

/// Which blocking operation a rank was parked in when the watchdog declared
/// the simulation stuck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckOp {
    /// A (blocking or nonblocking) receive that never matched a send.
    Recv,
    /// A rendezvous-mode send whose receiver never arrived.
    SendRendezvous,
    /// A collective with missing participants.
    Collective,
    /// A collective arrival replaying a sequence number whose completed
    /// instance was never fully drained.
    CollectiveDrain,
}

/// Typed payload of a simulator-detected failure, raised with
/// [`std::panic::panic_any`] on the affected rank and re-raised on the
/// calling thread by the runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The watchdog timed out with zero simulator-wide progress: a deadlock.
    Stuck {
        /// The operation the reporting rank was parked in.
        op: StuckOp,
        /// Communicator id of the stuck operation.
        comm: u64,
        /// Human-readable diagnostic (operation, peers, arrival counts).
        detail: String,
    },
    /// A communicator with zero members was constructed.
    EmptyCommunicator,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stuck { detail, .. } => write!(f, "simulated deadlock: {detail}"),
            SimError::EmptyCommunicator => {
                write!(f, "channel requires at least one member (zero-member communicator)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Extract a [`SimError`] from a caught panic payload, if it carries one.
pub fn sim_error_of(payload: &(dyn std::any::Any + Send)) -> Option<&SimError> {
    payload.downcast_ref::<SimError>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_deadlock_wording() {
        let e = SimError::Stuck { op: StuckOp::Recv, comm: 7, detail: "receive waited 1s".into() };
        assert_eq!(e.to_string(), "simulated deadlock: receive waited 1s");
        assert!(SimError::EmptyCommunicator.to_string().contains("at least one member"));
    }

    #[test]
    fn payload_roundtrips_through_panic_any() {
        let err = std::panic::catch_unwind(|| {
            std::panic::panic_any(SimError::EmptyCommunicator);
        })
        .unwrap_err();
        assert_eq!(sim_error_of(err.as_ref()), Some(&SimError::EmptyCommunicator));
    }
}

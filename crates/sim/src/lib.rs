//! # critter-sim
//!
//! A deterministic discrete-event simulator of a distributed-memory machine,
//! standing in for the MPI runtime (the `PMPI_*` layer of the paper's Fig. 2)
//! that the original Critter intercepts on Stampede2.
//!
//! ## Execution model
//!
//! Each simulated rank runs the user's program as a unit of work hosted by a
//! pluggable [`backend`] — thread-per-rank (`threads`, the default) or
//! cooperatively scheduled over a small worker-permit budget (`tasks`, which
//! lets 10k+ ranks fit in one process) — and carries a **virtual clock**.
//! Computation advances only the local clock
//! (by a cost sampled from [`critter_machine::MachineModel`]); communication
//! operations couple clocks through a central matching core:
//!
//! * a blocking point-to-point pair completes at
//!   `max(sender post, receiver post) + α + β·words` (rendezvous) or lets the
//!   sender run ahead (eager) below a configurable message-size threshold;
//! * a collective completes for all participants at
//!   `max(arrival times) + cost(op, words, p)` — the BSP view of a collective,
//!   which is also exactly the quantity Critter's critical-path reduction
//!   needs to observe;
//! * nonblocking operations record their post time; `wait` applies the
//!   completion rule with the *post* time, so communication-computation
//!   overlap is modeled.
//!
//! ## Determinism
//!
//! Every stochastic cost draw is counter-based: it depends on the identity of
//! the operation (channel id, per-channel sequence number), never on thread
//! scheduling. Two runs of the same program with the same machine seed produce
//! bit-identical virtual times — across backends and across matching-core
//! shard counts, which the testkit's `backend_equivalence` oracles pin
//! byte-for-byte at the artifact level. Communicator ids are likewise pure functions
//! of (parent id, split sequence, color, members) so that independent splits
//! racing on different threads cannot perturb them.
//!
//! ## What this substrate deliberately models
//!
//! The paper's framework consumes *per-kernel times along execution paths* and
//! their *variability*. Both are first-class here; cache effects and real
//! network contention are summarized by the machine's noise model instead of
//! being simulated microscopically (see DESIGN.md, substitution table).

#![deny(missing_docs)]

pub mod backend;
pub mod comm;
pub mod core;
pub mod counters;
pub mod ctx;
pub mod error;
pub mod pool;
pub mod request;
pub mod runner;

pub use backend::{
    BackendKind, CommBackend, RankJob, RunLatch, TaskScheduler, TasksBackend, ThreadsBackend,
};
pub use comm::{ChannelMeta, Communicator};
pub use counters::RankCounters;
pub use ctx::{RankCtx, ReduceOp};
pub use error::{sim_error_of, SimError, StuckOp};
pub use pool::SimPool;
pub use request::Request;
pub use runner::{run_simulation, FaultPlan, PerturbParams, SimConfig, SimReport};

/// Re-export of the machine-model crate the simulator is parameterized by.
pub use critter_machine as machine;

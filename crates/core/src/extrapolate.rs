//! Kernel-performance extrapolation across input sizes (§VIII).
//!
//! The paper's framework models each kernel *signature* independently, which
//! the conclusion calls out as its key limitation for algorithms like
//! CANDMC's pipelined QR: a gradually shrinking trailing matrix produces a
//! long tail of signatures that each collect only a handful of samples and
//! therefore never become predictable. The proposed extension — "extrapolation
//! of individual kernel performance models to characterize kernel performance
//! across varying input sizes … such line-fitting approaches can permit kernel
//! execution to be more selective" — is implemented here.
//!
//! For every *routine family* (e.g. all `gemm`s, regardless of dimensions) we
//! maintain a single-pass ordinary-least-squares fit of execution time
//! against the kernel's flop count: `t ≈ a + b·f`. Once the family has enough
//! samples and the fit explains the variance well (R² above a configurable
//! threshold), an unseen or under-sampled signature may be skipped using the
//! fitted prediction instead of its own (insufficient) statistics. The fit is
//! deliberately per-family and per-rank: efficiency varies by routine class
//! and node, and both are captured by the family key and the local fit.
//!
//! The fit is affine in raw space, `t ≈ a + b·f`: for saturating efficiency
//! curves of the form `eff(f) = e·f/(f+h)` this is *exact*
//! (`t = o + (f+h)/(P·e)`), and on real machines a per-family affine law is
//! the natural first-order model (a fixed startup plus a per-flop rate).
//!
//! The usability gate is the **relative residual error** of the fit — the
//! residual standard deviation divided by the predicted value — not R²:
//! when a family's sizes span a narrow range, R² is low even though the
//! line predicts every member to within the measurement noise, which is
//! exactly the regime where skipping is safe. Predictions are also confined
//! to a moderate extension of the sampled size range.

use critter_machine::CommOp;

use crate::fnv::FnvMap;
use crate::signature::ComputeOp;

/// Single-pass ordinary least squares of `y` on `x`.
#[derive(Debug, Clone, Copy)]
pub struct LineFit {
    n: u64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
    syy: f64,
    min_x: f64,
    max_x: f64,
}

impl Default for LineFit {
    fn default() -> Self {
        LineFit {
            n: 0,
            sx: 0.0,
            sy: 0.0,
            sxx: 0.0,
            sxy: 0.0,
            syy: 0.0,
            min_x: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
        }
    }
}

impl LineFit {
    /// Empty fit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
        self.syy += y * y;
        self.min_x = self.min_x.min(x);
        self.max_x = self.max_x.max(x);
    }

    /// Sampled `x` range.
    pub fn x_range(&self) -> (f64, f64) {
        (self.min_x, self.max_x)
    }

    /// The raw accumulator moments `(n, Σx, Σy, Σx², Σxy, Σy²)`, the
    /// persisted form of the fit. Together with [`x_range`](Self::x_range)
    /// and [`from_parts`](Self::from_parts) they round-trip a fit exactly.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64, f64) {
        (self.n, self.sx, self.sy, self.sxx, self.sxy, self.syy)
    }

    /// Rebuild a fit from persisted raw moments and `x` range, the inverse
    /// of [`raw_parts`](Self::raw_parts). An `n` of zero restores the empty
    /// fit (with its ±∞ range sentinels) regardless of the other arguments.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        n: u64,
        sx: f64,
        sy: f64,
        sxx: f64,
        sxy: f64,
        syy: f64,
        min_x: f64,
        max_x: f64,
    ) -> Self {
        if n == 0 {
            return Self::default();
        }
        LineFit { n, sx, sy, sxx, sxy, syy, min_x, max_x }
    }

    /// Residual standard deviation of the fit (`√(SS_res/(n−2))`);
    /// `None` when degenerate or fewer than three points.
    pub fn residual_sd(&self) -> Option<f64> {
        if self.n < 3 {
            return None;
        }
        let r2 = self.r_squared()?;
        let n = self.n as f64;
        let vy = (self.syy - self.sy * self.sy / n).max(0.0);
        Some((vy * (1.0 - r2) / (n - 2.0)).max(0.0).sqrt())
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// `(intercept, slope)` of the least-squares line, `None` when degenerate
    /// (fewer than two points or zero x-variance).
    pub fn line(&self) -> Option<(f64, f64)> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let vx = self.sxx - self.sx * self.sx / n;
        if vx <= 1e-12 * self.sxx.abs().max(1.0) {
            return None;
        }
        let cov = self.sxy - self.sx * self.sy / n;
        let slope = cov / vx;
        let intercept = (self.sy - slope * self.sx) / n;
        Some((intercept, slope))
    }

    /// Coefficient of determination R² of the fit; `None` when degenerate.
    pub fn r_squared(&self) -> Option<f64> {
        self.line()?; // degenerate fits have no R²
        let n = self.n as f64;
        let vy = self.syy - self.sy * self.sy / n;
        if vy <= 0.0 {
            // Zero variance in y: the line explains everything trivially.
            return Some(1.0);
        }
        let cov = self.sxy - self.sx * self.sy / n;
        let vx = self.sxx - self.sx * self.sx / n;
        Some((cov * cov / (vx * vy)).clamp(0.0, 1.0))
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> Option<f64> {
        let (a, b) = self.line()?;
        Some(a + b * x)
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

/// Configuration of the extrapolation extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtrapolationConfig {
    /// Minimum samples in a routine family before its fit may be used.
    pub min_fit_samples: u64,
    /// Maximum relative residual error (`residual sd / prediction`) the fit
    /// may have — the analogue of the framework's relative confidence gate.
    pub max_rel_residual: f64,
    /// How far beyond the sampled size range predictions may reach, as a
    /// multiple of the range endpoints (2.0 = up to twice the largest / half
    /// the smallest sampled flop count).
    pub range_slack: f64,
}

impl Default for ExtrapolationConfig {
    fn default() -> Self {
        ExtrapolationConfig { min_fit_samples: 8, max_rel_residual: 0.10, range_slack: 2.0 }
    }
}

/// Per-rank routine-family fits of time against flop count (computation) and
/// against message size per communicator shape (communication).
#[derive(Debug, Clone, Default)]
pub struct ExtrapolationTable {
    fits: FnvMap<ComputeOp, LineFit>,
    comm_fits: FnvMap<(CommOp, u64, u64), LineFit>,
}

impl ExtrapolationTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one executed kernel: `flops` work, `time` seconds.
    pub fn record(&mut self, op: ComputeOp, flops: f64, time: f64) {
        if flops <= 0.0 || time <= 0.0 {
            return; // zero-work or unmeasured kernels carry no signal
        }
        self.fits.entry(op).or_default().push(flops, time);
    }

    /// Predicted execution time of an `op` kernel with `flops` work, if the
    /// family's fit passes the config's gates.
    pub fn predict(&self, op: ComputeOp, flops: f64, cfg: &ExtrapolationConfig) -> Option<f64> {
        if flops <= 0.0 {
            return None;
        }
        let fit = self.fits.get(&op)?;
        if fit.count() < cfg.min_fit_samples {
            return None;
        }
        let (lo, hi) = fit.x_range();
        if flops < lo / cfg.range_slack || flops > hi * cfg.range_slack {
            return None; // too far outside the evidence
        }
        let t = fit.predict(flops)?;
        if t <= 0.0 {
            return None;
        }
        let sd = fit.residual_sd()?;
        (sd <= cfg.max_rel_residual * t).then_some(t)
    }

    /// The fit of one routine family (diagnostics).
    pub fn fit(&self, op: ComputeOp) -> Option<&LineFit> {
        self.fits.get(&op)
    }

    /// Record one executed communication kernel of family
    /// `(op, comm_size, stride)` moving `words` in `time` seconds.
    pub fn record_comm(&mut self, op: CommOp, comm_size: u64, stride: u64, words: f64, time: f64) {
        if words <= 0.0 || time <= 0.0 {
            return;
        }
        self.comm_fits.entry((op, comm_size, stride)).or_default().push(words, time);
    }

    /// Predicted time of a communication kernel, under the same gates as
    /// [`ExtrapolationTable::predict`]. The message-size axis replaces flops;
    /// the α-β cost law is affine in words, so the same model applies.
    pub fn predict_comm(
        &self,
        op: CommOp,
        comm_size: u64,
        stride: u64,
        words: f64,
        cfg: &ExtrapolationConfig,
    ) -> Option<f64> {
        if words <= 0.0 {
            return None;
        }
        let fit = self.comm_fits.get(&(op, comm_size, stride))?;
        if fit.count() < cfg.min_fit_samples {
            return None;
        }
        let (lo, hi) = fit.x_range();
        if words < lo / cfg.range_slack || words > hi * cfg.range_slack {
            return None;
        }
        let t = fit.predict(words)?;
        if t <= 0.0 {
            return None;
        }
        let sd = fit.residual_sd()?;
        (sd <= cfg.max_rel_residual * t).then_some(t)
    }

    /// The fit of one communication family (diagnostics).
    pub fn comm_fit(&self, op: CommOp, comm_size: u64, stride: u64) -> Option<&LineFit> {
        self.comm_fits.get(&(op, comm_size, stride))
    }

    /// Iterate over all compute-family fits (arbitrary map order; callers
    /// that need determinism — e.g. the profile snapshot — must sort).
    pub fn fits(&self) -> impl Iterator<Item = (&ComputeOp, &LineFit)> {
        self.fits.iter()
    }

    /// Iterate over all communication-family fits (arbitrary map order).
    pub fn comm_fits(&self) -> impl Iterator<Item = (&(CommOp, u64, u64), &LineFit)> {
        self.comm_fits.iter()
    }

    /// Install a compute-family fit wholesale (profile restore path).
    pub fn insert_fit(&mut self, op: ComputeOp, fit: LineFit) {
        self.fits.insert(op, fit);
    }

    /// Install a communication-family fit wholesale (profile restore path).
    pub fn insert_comm_fit(&mut self, op: CommOp, comm_size: u64, stride: u64, fit: LineFit) {
        self.comm_fits.insert((op, comm_size, stride), fit);
    }

    /// Drop all observations (per-configuration reset).
    pub fn clear(&mut self) {
        self.fits.clear();
        self.comm_fits.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fit_recovers_exact_line() {
        let mut f = LineFit::new();
        for i in 1..20 {
            let x = i as f64;
            f.push(x, 3.0 + 2.0 * x);
        }
        let (a, b) = f.line().unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((f.r_squared().unwrap() - 1.0).abs() < 1e-12);
        assert!((f.predict(100.0).unwrap() - 203.0).abs() < 1e-8);
    }

    #[test]
    fn line_fit_raw_parts_round_trip() {
        let mut f = LineFit::new();
        for i in 1..9 {
            f.push(i as f64 * 1e3, 2e-6 + 3e-10 * i as f64);
        }
        let (n, sx, sy, sxx, sxy, syy) = f.raw_parts();
        let (lo, hi) = f.x_range();
        let g = LineFit::from_parts(n, sx, sy, sxx, sxy, syy, lo, hi);
        assert_eq!(g.count(), f.count());
        assert_eq!(g.x_range(), f.x_range());
        assert_eq!(g.line(), f.line());
        assert_eq!(g.raw_parts(), f.raw_parts());
        // Empty fits restore with their sentinels intact.
        let e = LineFit::from_parts(0, 1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 0.0);
        assert_eq!(e.count(), 0);
        assert_eq!(e.x_range(), (f64::INFINITY, f64::NEG_INFINITY));
    }

    #[test]
    fn degenerate_fits_refuse() {
        let mut f = LineFit::new();
        assert!(f.line().is_none());
        f.push(1.0, 1.0);
        assert!(f.line().is_none(), "one point is not a line");
        f.push(1.0, 2.0);
        assert!(f.line().is_none(), "zero x-variance is degenerate");
    }

    #[test]
    fn noisy_data_has_low_r_squared() {
        let mut f = LineFit::new();
        // y unrelated to x.
        let ys = [5.0, -3.0, 7.0, 1.0, -6.0, 4.0, 0.5, -2.0];
        for (i, &y) in ys.iter().enumerate() {
            f.push(i as f64, y);
        }
        assert!(f.r_squared().unwrap() < 0.5);
        assert!(f.residual_sd().unwrap() > 1.0, "erratic data has large residuals");
        assert_eq!(f.x_range(), (0.0, 7.0));
    }

    #[test]
    fn table_predicts_affine_law() {
        let cfg = ExtrapolationConfig::default();
        let mut t = ExtrapolationTable::new();
        // t = a + b·f, the saturating-efficiency law in closed form.
        for i in 1..=10 {
            let f = 1e4 * i as f64;
            t.record(ComputeOp::Gemm, f, 2e-6 + 1e-10 * f);
        }
        let p = t.predict(ComputeOp::Gemm, 1.5e5, &cfg).unwrap();
        let expect = 2e-6 + 1e-10 * 1.5e5;
        assert!((p - expect).abs() / expect < 1e-6, "{p} vs {expect}");
    }

    #[test]
    fn table_gates_on_sample_count_and_family() {
        let cfg = ExtrapolationConfig::default();
        let mut t = ExtrapolationTable::new();
        for i in 1..=4 {
            t.record(ComputeOp::Gemm, 1e4 * i as f64, 1e-6 * i as f64);
        }
        assert!(t.predict(ComputeOp::Gemm, 1e5, &cfg).is_none(), "below min samples");
        assert!(t.predict(ComputeOp::Trsm, 1e5, &cfg).is_none(), "unknown family");
    }

    #[test]
    fn table_gates_on_relative_residual() {
        let cfg = ExtrapolationConfig::default();
        let mut t = ExtrapolationTable::new();
        // Erratic timings: residuals dwarf the prediction → no usable fit.
        let ys = [1e-3, 1e-6, 5e-4, 2e-6, 8e-4, 3e-6, 9e-4, 1e-5, 7e-4, 2e-5];
        for (i, &y) in ys.iter().enumerate() {
            t.record(ComputeOp::Syrk, 1e4 * (i + 1) as f64, y);
        }
        assert!(t.predict(ComputeOp::Syrk, 5e4, &cfg).is_none());
    }

    #[test]
    fn table_gates_on_sampled_range() {
        let cfg = ExtrapolationConfig::default();
        let mut t = ExtrapolationTable::new();
        for i in 1..=10 {
            let f = 1e4 * i as f64;
            t.record(ComputeOp::Gemm, f, 2e-6 + 1e-10 * f);
        }
        // Inside (and moderately beyond) the sampled range: fine.
        assert!(t.predict(ComputeOp::Gemm, 5e4, &cfg).is_some());
        assert!(t.predict(ComputeOp::Gemm, 1.5e5, &cfg).is_some());
        // An order of magnitude beyond the evidence: refused.
        assert!(t.predict(ComputeOp::Gemm, 5e6, &cfg).is_none());
        assert!(t.predict(ComputeOp::Gemm, 1e3, &cfg).is_none());
    }

    #[test]
    fn narrow_range_with_low_noise_is_usable() {
        // The regime that motivated the relative-residual gate: a shallow
        // slope (low R²) but residuals well under 10% of the prediction.
        let cfg = ExtrapolationConfig::default();
        let mut t = ExtrapolationTable::new();
        let base = 5.0e-6;
        for i in 0..12 {
            let f = 1e4 + 100.0 * i as f64; // narrow flop range
            let wiggle = 1.0 + 0.01 * ((i % 3) as f64 - 1.0); // ±1% noise
            t.record(ComputeOp::Trsm, f, base * wiggle);
        }
        assert!(
            t.predict(ComputeOp::Trsm, 1.05e4, &cfg).is_some(),
            "flat-but-tight families must be predictable"
        );
    }

    #[test]
    fn nonpositive_observations_ignored() {
        let mut t = ExtrapolationTable::new();
        t.record(ComputeOp::Gemm, 0.0, 1.0);
        t.record(ComputeOp::Gemm, 1.0, 0.0);
        assert!(t.fit(ComputeOp::Gemm).is_none());
    }

    #[test]
    fn clear_resets() {
        let mut t = ExtrapolationTable::new();
        t.record(ComputeOp::Gemm, 1e4, 1e-5);
        t.record_comm(CommOp::Bcast, 4, 1, 128.0, 1e-5);
        t.clear();
        assert!(t.fit(ComputeOp::Gemm).is_none());
        assert!(t.comm_fit(CommOp::Bcast, 4, 1).is_none());
    }

    #[test]
    fn comm_fit_predicts_alpha_beta_law() {
        let cfg = ExtrapolationConfig::default();
        let mut t = ExtrapolationTable::new();
        // t = α + β·w for a bcast family on a 4-rank stride-1 fiber.
        for i in 1..=10 {
            let w = 64.0 * i as f64;
            t.record_comm(CommOp::Bcast, 4, 1, w, 2e-6 + 1e-9 * w);
        }
        let p = t.predict_comm(CommOp::Bcast, 4, 1, 320.0, &cfg).unwrap();
        assert!((p - (2e-6 + 1e-9 * 320.0)).abs() < 1e-12);
        // Different shape = different family.
        assert!(t.predict_comm(CommOp::Bcast, 8, 1, 320.0, &cfg).is_none());
        assert!(t.predict_comm(CommOp::Allreduce, 4, 1, 320.0, &cfg).is_none());
    }
}

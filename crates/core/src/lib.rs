//! # critter-core
//!
//! The paper's primary contribution: **Critter**, a profiling layer that
//! performs *online critical-path analysis* and *selective kernel execution*
//! to accelerate distributed-memory autotuning (Hutter & Solomonik,
//! IPDPS 2021).
//!
//! A [`CritterEnv`] wraps a simulated rank's [`critter_sim::RankCtx`] and
//! intercepts every computation kernel (BLAS/LAPACK call) and communication
//! kernel (MPI call) the application issues — the role Fig. 2 of the paper
//! assigns to the PMPI interception layer. For each kernel *signature*
//! (routine + input size, [`signature::KernelSig`]) it maintains:
//!
//! * `K̄` — local single-pass performance statistics ([`profile::KernelStore`]);
//! * `K̃` — the kernel's execution count along the rank's current
//!   *sub-critical path*, propagated between ranks by piggybacking a
//!   max-by-execution-time reduction on every intercepted communication
//!   (the longest-path algorithm, [`message`]);
//! * a confidence interval on the kernel's mean execution time
//!   (`critter-stats`), optionally tightened by the path count.
//!
//! Once a kernel is *predictable* — relative confidence-interval size below
//! the tolerance ε, per the active [`policy::ExecutionPolicy`] — its execution
//! is skipped and its modeled mean is charged to the prediction instead. The
//! [`channels`] module implements the aggregate-channel infrastructure that
//! the *eager propagation* policy uses to switch kernels off globally across
//! a cartesian processor grid.

#![deny(missing_docs)]

pub mod channels;
pub mod env;
pub mod error;
pub mod extrapolate;
pub mod fnv;
pub mod message;
pub mod policy;
pub mod prelude;
pub mod profile;
pub mod report;
pub mod signature;
pub mod snapshot;
pub mod trace;

pub use env::CritterEnv;
pub use error::{CritterError, Result};
pub use extrapolate::{ExtrapolationConfig, ExtrapolationTable};
pub use policy::{CritterConfig, ExecutionPolicy};
pub use profile::KernelStore;
pub use report::{CritterReport, PathMetrics};
pub use signature::{ComputeOp, KernelSig};
pub use trace::{Trace, TraceEvent};

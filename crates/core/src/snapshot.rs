//! Canonical-JSON snapshot/restore of kernel-performance state.
//!
//! Everything the paper's framework learns during a sweep — the `K̄`
//! statistics, the critical-path counts, the a-priori tables, and the §VIII
//! extrapolation fits — lives in [`KernelStore`]s. This module gives that
//! state a persisted form so a tuning *session* can outlive a process:
//! checkpoints write stores to disk mid-sweep and warm starts seed a fresh
//! sweep from a prior session's profile.
//!
//! Two properties carry the whole design:
//!
//! * **Canonical text.** Objects serialize with sorted keys, collections in
//!   sorted order, and floats in shortest-round-trip form (the PR 2
//!   serializer), so equal states produce byte-identical documents — which
//!   is what makes content hashes and golden diffs meaningful.
//! * **Bit-exact restore.** Floats parse back through `f64::from_str`
//!   (correctly rounded), so `from_json(to_json(x))` reproduces every
//!   accumulator bit for bit. The kill/resume oracle in `critter-testkit`
//!   rests on this.
//!
//! Empty [`OnlineStats`] carry ±∞ min/max sentinels which JSON cannot
//! represent; they serialize as `{"count": 0}` and restore through
//! [`OnlineStats::new`].

use critter_machine::CommOp;
use critter_stats::OnlineStats;
use serde_json::{json, Map, Value};

use crate::error::{CritterError, Result};
use crate::extrapolate::{ExtrapolationTable, LineFit};
use crate::profile::{KernelModel, KernelStore};
use crate::signature::{ComputeOp, KernelSig};

// ---------------------------------------------------------------------------
// Field-access helpers. Every decoder goes through these so a malformed
// document yields a Schema error naming the missing/ill-typed key instead of
// a panic.

fn req<'a>(v: &'a Value, ctx: &str, key: &str) -> Result<&'a Value> {
    v.get(key).ok_or_else(|| CritterError::schema(ctx, format!("missing key `{key}`")))
}

fn req_f64(v: &Value, ctx: &str, key: &str) -> Result<f64> {
    req(v, ctx, key)?
        .as_f64()
        .ok_or_else(|| CritterError::schema(ctx, format!("key `{key}` is not a number")))
}

fn req_u64(v: &Value, ctx: &str, key: &str) -> Result<u64> {
    req(v, ctx, key)?
        .as_u64()
        .ok_or_else(|| CritterError::schema(ctx, format!("key `{key}` is not a u64")))
}

fn req_bool(v: &Value, ctx: &str, key: &str) -> Result<bool> {
    req(v, ctx, key)?
        .as_bool()
        .ok_or_else(|| CritterError::schema(ctx, format!("key `{key}` is not a bool")))
}

fn req_str<'a>(v: &'a Value, ctx: &str, key: &str) -> Result<&'a str> {
    req(v, ctx, key)?
        .as_str()
        .ok_or_else(|| CritterError::schema(ctx, format!("key `{key}` is not a string")))
}

fn req_array<'a>(v: &'a Value, ctx: &str, key: &str) -> Result<&'a Vec<Value>> {
    req(v, ctx, key)?
        .as_array()
        .ok_or_else(|| CritterError::schema(ctx, format!("key `{key}` is not an array")))
}

fn elem_f64(v: &Value, ctx: &str) -> Result<f64> {
    v.as_f64().ok_or_else(|| CritterError::schema(ctx, "array element is not a number"))
}

fn elem_u64(v: &Value, ctx: &str) -> Result<u64> {
    v.as_u64().ok_or_else(|| CritterError::schema(ctx, "array element is not a u64"))
}

// ---------------------------------------------------------------------------
// OnlineStats

/// Serialize a Welford accumulator. Empty accumulators reduce to
/// `{"count": 0}` (their min/max sentinels are ±∞, which JSON lacks).
pub fn stats_to_json(s: &OnlineStats) -> Value {
    if s.count() == 0 {
        return json!({ "count": 0u64 });
    }
    json!({
        "count": s.count(),
        "m2": s.m2(),
        "max": s.max(),
        "mean": s.mean(),
        "min": s.min(),
        "total": s.total(),
    })
}

/// Restore a Welford accumulator bit-exactly from [`stats_to_json`] output.
pub fn stats_from_json(v: &Value) -> Result<OnlineStats> {
    let ctx = "stats";
    let count = req_u64(v, ctx, "count")?;
    if count == 0 {
        return Ok(OnlineStats::new());
    }
    Ok(OnlineStats::from_parts(
        count,
        req_f64(v, ctx, "mean")?,
        req_f64(v, ctx, "m2")?,
        req_f64(v, ctx, "min")?,
        req_f64(v, ctx, "max")?,
        req_f64(v, ctx, "total")?,
    ))
}

// ---------------------------------------------------------------------------
// LineFit

/// Serialize a least-squares fit's raw moments. Empty fits reduce to
/// `{"n": 0}` (their x-range sentinels are ±∞). In-table fits always hold at
/// least one point, but the empty form keeps the codec total.
pub fn fit_to_json(f: &LineFit) -> Value {
    let (n, sx, sy, sxx, sxy, syy) = f.raw_parts();
    if n == 0 {
        return json!({ "n": 0u64 });
    }
    let (min_x, max_x) = f.x_range();
    json!({
        "max_x": max_x,
        "min_x": min_x,
        "n": n,
        "sx": sx,
        "sxx": sxx,
        "sxy": sxy,
        "sy": sy,
        "syy": syy,
    })
}

/// Restore a fit bit-exactly from [`fit_to_json`] output.
pub fn fit_from_json(v: &Value) -> Result<LineFit> {
    let ctx = "line fit";
    let n = req_u64(v, ctx, "n")?;
    if n == 0 {
        return Ok(LineFit::new());
    }
    Ok(LineFit::from_parts(
        n,
        req_f64(v, ctx, "sx")?,
        req_f64(v, ctx, "sy")?,
        req_f64(v, ctx, "sxx")?,
        req_f64(v, ctx, "sxy")?,
        req_f64(v, ctx, "syy")?,
        req_f64(v, ctx, "min_x")?,
        req_f64(v, ctx, "max_x")?,
    ))
}

// ---------------------------------------------------------------------------
// KernelSig

/// Serialize a kernel signature. The `op` field uses the canonical
/// (invertible) routine name, so `Custom` kernels keep their id.
pub fn sig_to_json(sig: &KernelSig) -> Value {
    match sig {
        KernelSig::Compute { op, dims } => json!({
            "dims": [dims.0 as f64, dims.1 as f64, dims.2 as f64],
            "kind": "compute",
            "op": op.canonical_name(),
        }),
        KernelSig::Comm { op, words, comm_size, stride } => json!({
            "comm_size": *comm_size,
            "kind": "comm",
            "op": op.name(),
            "stride": *stride,
            "words": *words,
        }),
    }
}

/// Restore a kernel signature from [`sig_to_json`] output.
pub fn sig_from_json(v: &Value) -> Result<KernelSig> {
    let ctx = "kernel signature";
    match req_str(v, ctx, "kind")? {
        "compute" => {
            let name = req_str(v, ctx, "op")?;
            let op = ComputeOp::from_name(name)
                .ok_or_else(|| CritterError::schema(ctx, format!("unknown routine `{name}`")))?;
            let dims = req_array(v, ctx, "dims")?;
            if dims.len() != 3 {
                return Err(CritterError::schema(ctx, "`dims` must have three entries"));
            }
            Ok(KernelSig::Compute {
                op,
                dims: (
                    elem_u64(&dims[0], ctx)?,
                    elem_u64(&dims[1], ctx)?,
                    elem_u64(&dims[2], ctx)?,
                ),
            })
        }
        "comm" => {
            let name = req_str(v, ctx, "op")?;
            let op = CommOp::from_name(name)
                .ok_or_else(|| CritterError::schema(ctx, format!("unknown routine `{name}`")))?;
            Ok(KernelSig::Comm {
                op,
                words: req_u64(v, ctx, "words")?,
                comm_size: req_u64(v, ctx, "comm_size")?,
                stride: req_u64(v, ctx, "stride")?,
            })
        }
        other => Err(CritterError::schema(ctx, format!("unknown signature kind `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// KernelModel

fn model_to_json(m: &KernelModel) -> Value {
    json!({
        "eager_coverage": m.eager_coverage,
        "eager_off": m.eager_off,
        "eager_strides": m.eager_strides.iter().map(|&s| s as f64).collect::<Vec<f64>>(),
        "executed": m.executed_this_config,
        "scheduled": m.scheduled_this_config,
        "sig": sig_to_json(&m.sig),
        "stats": stats_to_json(&m.stats),
    })
}

fn model_from_json(v: &Value) -> Result<KernelModel> {
    let ctx = "kernel model";
    let sig = sig_from_json(req(v, ctx, "sig")?)?;
    let mut m = KernelModel::from_sig(sig);
    m.stats = stats_from_json(req(v, ctx, "stats")?)?;
    m.scheduled_this_config = req_u64(v, ctx, "scheduled")?;
    m.executed_this_config = req_u64(v, ctx, "executed")?;
    m.eager_coverage = req_u64(v, ctx, "eager_coverage")?;
    m.eager_off = req_bool(v, ctx, "eager_off")?;
    m.eager_strides = req_array(v, ctx, "eager_strides")?
        .iter()
        .map(|s| elem_u64(s, ctx))
        .collect::<Result<Vec<u64>>>()?;
    Ok(m)
}

// ---------------------------------------------------------------------------
// ExtrapolationTable

/// Serialize the §VIII extrapolation fits, sorted by routine family.
pub fn table_to_json(t: &ExtrapolationTable) -> Value {
    let mut compute: Vec<(&ComputeOp, &LineFit)> = t.fits().collect();
    compute.sort_by_key(|(op, _)| **op);
    let compute: Vec<Value> = compute
        .into_iter()
        .map(|(op, fit)| json!({ "fit": fit_to_json(fit), "op": op.canonical_name() }))
        .collect();
    let mut comm: Vec<(&(CommOp, u64, u64), &LineFit)> = t.comm_fits().collect();
    comm.sort_by_key(|(key, _)| **key);
    let comm: Vec<Value> = comm
        .into_iter()
        .map(|(&(op, p, s), fit)| {
            json!({ "fit": fit_to_json(fit), "op": op.name(), "p": p, "s": s })
        })
        .collect();
    json!({ "comm": comm, "compute": compute })
}

/// Restore an extrapolation table from [`table_to_json`] output.
pub fn table_from_json(v: &Value) -> Result<ExtrapolationTable> {
    let ctx = "extrapolation table";
    let mut t = ExtrapolationTable::new();
    for entry in req_array(v, ctx, "compute")? {
        let name = req_str(entry, ctx, "op")?;
        let op = ComputeOp::from_name(name)
            .ok_or_else(|| CritterError::schema(ctx, format!("unknown routine `{name}`")))?;
        t.insert_fit(op, fit_from_json(req(entry, ctx, "fit")?)?);
    }
    for entry in req_array(v, ctx, "comm")? {
        let name = req_str(entry, ctx, "op")?;
        let op = CommOp::from_name(name)
            .ok_or_else(|| CritterError::schema(ctx, format!("unknown routine `{name}`")))?;
        let p = req_u64(entry, ctx, "p")?;
        let s = req_u64(entry, ctx, "s")?;
        t.insert_comm_fit(op, p, s, fit_from_json(req(entry, ctx, "fit")?)?);
    }
    Ok(t)
}

// ---------------------------------------------------------------------------
// KernelStore

/// Serialize one rank's complete kernel-performance state. Models sort by
/// signature key, path/a-priori tables by kernel key, so equal stores
/// serialize to byte-identical documents.
pub fn store_to_json(store: &KernelStore) -> Value {
    let mut models: Vec<&KernelModel> = store.local.values().collect();
    models.sort_by_key(|m| m.sig.key());
    let models: Vec<Value> = models.into_iter().map(model_to_json).collect();

    let mut path: Vec<(u64, u64, f64)> =
        store.path_counts.iter().map(|(&k, &(c, t))| (k, c, t)).collect();
    path.sort_by_key(|&(k, _, _)| k);
    let path: Vec<Value> = path
        .into_iter()
        .map(|(k, c, t)| Value::Array(vec![json!(k as f64), json!(c as f64), json!(t)]))
        .collect();

    let mut apriori: Vec<(u64, u64)> = store.apriori_counts.iter().map(|(&k, &c)| (k, c)).collect();
    apriori.sort_by_key(|&(k, _)| k);
    let apriori: Vec<Value> = apriori
        .into_iter()
        .map(|(k, c)| Value::Array(vec![json!(k as f64), json!(c as f64)]))
        .collect();

    let mut obj = Map::new();
    obj.insert("apriori".into(), Value::Array(apriori));
    obj.insert("extrapolation".into(), table_to_json(&store.extrapolation));
    obj.insert("local".into(), Value::Array(models));
    obj.insert("path".into(), Value::Array(path));
    Value::Object(obj)
}

/// Restore a kernel store bit-exactly from [`store_to_json`] output.
pub fn store_from_json(v: &Value) -> Result<KernelStore> {
    let ctx = "kernel store";
    let mut store = KernelStore::new();
    for entry in req_array(v, ctx, "local")? {
        let m = model_from_json(entry)?;
        store.local.insert(m.sig.key(), m);
    }
    for entry in req_array(v, ctx, "path")? {
        let row = entry
            .as_array()
            .ok_or_else(|| CritterError::schema(ctx, "`path` entries must be arrays"))?;
        if row.len() != 3 {
            return Err(CritterError::schema(ctx, "`path` entries must be [key, count, time]"));
        }
        store
            .path_counts
            .insert(elem_u64(&row[0], ctx)?, (elem_u64(&row[1], ctx)?, elem_f64(&row[2], ctx)?));
    }
    for entry in req_array(v, ctx, "apriori")? {
        let row = entry
            .as_array()
            .ok_or_else(|| CritterError::schema(ctx, "`apriori` entries must be arrays"))?;
        if row.len() != 2 {
            return Err(CritterError::schema(ctx, "`apriori` entries must be [key, count]"));
        }
        store.apriori_counts.insert(elem_u64(&row[0], ctx)?, elem_u64(&row[1], ctx)?);
    }
    store.extrapolation = table_from_json(req(v, ctx, "extrapolation")?)?;
    Ok(store)
}

/// Serialize a whole fleet of per-rank stores (index = rank).
pub fn stores_to_json(stores: &[KernelStore]) -> Value {
    Value::Array(stores.iter().map(store_to_json).collect())
}

/// Restore a fleet of per-rank stores from [`stores_to_json`] output.
pub fn stores_from_json(v: &Value) -> Result<Vec<KernelStore>> {
    v.as_array()
        .ok_or_else(|| CritterError::schema("kernel stores", "expected an array of stores"))?
        .iter()
        .map(store_from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SizeGranularity;

    fn busy_store() -> KernelStore {
        let mut s = KernelStore::new();
        let g = KernelSig::compute(ComputeOp::Gemm, 64, 64, 32);
        let c = KernelSig::compute(ComputeOp::Custom(7), 8, 8, 0);
        let b = KernelSig::p2p(100, 3, SizeGranularity::Exact);
        for i in 0..5 {
            s.record(&g, 1e-6 * (i + 1) as f64 / 3.0);
            s.schedule(&g);
        }
        s.record(&c, 0.1);
        s.schedule(&c);
        s.record(&b, 2.5e-7);
        s.schedule(&b);
        s.attribute_path_time(g.key(), 0.125);
        s.capture_apriori();
        s.model_mut(&g).eager_coverage = 4;
        s.model_mut(&g).eager_strides = vec![1, 4];
        s.model_mut(&c).eager_off = true;
        s.extrapolation.record(ComputeOp::Gemm, 1e4, 3.0e-6);
        s.extrapolation.record(ComputeOp::Gemm, 2e4, 5.0e-6);
        s.extrapolation.record_comm(CommOp::Bcast, 4, 1, 128.0, 1e-5);
        s
    }

    fn store_eq(a: &KernelStore, b: &KernelStore) -> bool {
        // The store has no PartialEq (hash maps + fits); canonical JSON is
        // its equality surface.
        serde_json::to_string(&store_to_json(a)).unwrap()
            == serde_json::to_string(&store_to_json(b)).unwrap()
    }

    #[test]
    fn store_round_trips_bit_exactly() {
        let s = busy_store();
        let text = serde_json::to_string_pretty(&store_to_json(&s)).unwrap();
        let back = store_from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert!(store_eq(&s, &back));
        // Restored state behaves identically, not just prints identically.
        let g = KernelSig::compute(ComputeOp::Gemm, 64, 64, 32);
        let (ma, mb) = (s.model(g.key()).unwrap(), back.model(g.key()).unwrap());
        assert_eq!(ma.stats, mb.stats);
        assert_eq!(ma.eager_strides, mb.eager_strides);
        assert_eq!(s.path_count(g.key()), back.path_count(g.key()));
        assert_eq!(s.apriori_counts.len(), back.apriori_counts.len());
        assert_eq!(
            s.extrapolation.fit(ComputeOp::Gemm).unwrap().raw_parts(),
            back.extrapolation.fit(ComputeOp::Gemm).unwrap().raw_parts()
        );
    }

    #[test]
    fn empty_store_round_trips() {
        let s = KernelStore::new();
        let back = store_from_json(&store_to_json(&s)).unwrap();
        assert!(store_eq(&s, &back));
    }

    #[test]
    fn fleet_round_trips() {
        let fleet = vec![busy_store(), KernelStore::new()];
        let back = stores_from_json(&stores_to_json(&fleet)).unwrap();
        assert_eq!(back.len(), 2);
        assert!(store_eq(&fleet[0], &back[0]));
        assert!(store_eq(&fleet[1], &back[1]));
    }

    #[test]
    fn custom_ops_keep_their_id() {
        let sig = KernelSig::compute(ComputeOp::Custom(42), 4, 4, 4);
        let back = sig_from_json(&sig_to_json(&sig)).unwrap();
        assert_eq!(back, sig);
        assert_eq!(back.key(), sig.key());
    }

    #[test]
    fn comm_sigs_round_trip() {
        let sig =
            KernelSig::Comm { op: CommOp::ReduceScatter, words: 512, comm_size: 8, stride: 4 };
        assert_eq!(sig_from_json(&sig_to_json(&sig)).unwrap(), sig);
    }

    #[test]
    fn empty_stats_round_trip() {
        let s = OnlineStats::new();
        let v = stats_to_json(&s);
        assert_eq!(serde_json::to_string(&v).unwrap(), r#"{"count":0}"#);
        assert_eq!(stats_from_json(&v).unwrap(), s);
    }

    #[test]
    fn malformed_documents_yield_schema_errors() {
        for bad in [
            json!({}),
            json!({ "kind": "compute", "op": "nosuch", "dims": [1.0, 2.0, 3.0] }),
            json!({ "kind": "warp", "op": "gemm" }),
        ] {
            assert!(matches!(sig_from_json(&bad), Err(CritterError::Schema { .. })));
        }
        assert!(store_from_json(&json!({ "local": 3.0 })).is_err());
    }
}

//! One-stop import for the session-facing surface of the stack.
//!
//! Pulls in the configuration, policy, profile, report, and error types a
//! caller needs to drive tuning sessions — the types that cross the
//! `critter-session` / `critter-autotune` boundary.
//!
//! # Examples
//!
//! ```
//! use critter_core::prelude::*;
//!
//! let cfg = CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.25).with_obs();
//! let store = KernelStore::new();
//! let _doc = snapshot::store_to_json(&store);
//! assert_eq!(cfg.policy.name(), "online propagation");
//! ```

pub use crate::error::{CritterError, Result};
pub use crate::extrapolate::{ExtrapolationConfig, ExtrapolationTable, LineFit};
pub use crate::policy::{CritterConfig, ExecutionPolicy};
pub use crate::profile::{KernelModel, KernelStore};
pub use crate::report::{CritterReport, PathMetrics};
pub use crate::signature::{ComputeOp, KernelSig, SizeGranularity};
pub use crate::snapshot;

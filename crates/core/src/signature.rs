//! Kernel signatures: the identity under which performance samples pool.
//!
//! §V-D: computational kernels are parameterized on the routine and its
//! matrix dimensions; communication kernels on the routine, message size, and
//! the sub-communicator's *size and stride relative to the world communicator*
//! (so a broadcast along any fiber of a processor grid shares one signature,
//! regardless of which fiber). Point-to-point communication is treated as a
//! size-2 sub-communicator.

use critter_machine::{CommOp, KernelClass};
use critter_sim::ChannelMeta;

use crate::fnv::fnv_hash;

/// Computational routines Critter intercepts (§V-D kernel inventory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComputeOp {
    /// General matrix-matrix multiply.
    Gemm,
    /// Symmetric rank-k update.
    Syrk,
    /// Triangular solve.
    Trsm,
    /// Triangular matrix multiply.
    Trmm,
    /// Cholesky factorization.
    Potrf,
    /// Triangular inversion.
    Trtri,
    /// Householder QR panel factorization.
    Geqrf,
    /// Application of Householder reflectors.
    Ormqr,
    /// Block-reflector formation.
    Larft,
    /// Triangular-pentagonal QR.
    Tpqrt,
    /// Application of triangular-pentagonal reflectors.
    Tpmqrt,
    /// LU factorization with partial pivoting.
    Getrf,
    /// User-defined kernel intercepted via preprocessor-directive-style
    /// annotation (e.g. Capital's block-to-cyclic redistribution).
    Custom(u32),
}

impl ComputeOp {
    /// Short routine name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ComputeOp::Gemm => "gemm",
            ComputeOp::Syrk => "syrk",
            ComputeOp::Trsm => "trsm",
            ComputeOp::Trmm => "trmm",
            ComputeOp::Potrf => "potrf",
            ComputeOp::Trtri => "trtri",
            ComputeOp::Geqrf => "geqrf",
            ComputeOp::Ormqr => "ormqr",
            ComputeOp::Larft => "larft",
            ComputeOp::Tpqrt => "tpqrt",
            ComputeOp::Tpmqrt => "tpmqrt",
            ComputeOp::Getrf => "getrf",
            ComputeOp::Custom(_) => "custom",
        }
    }

    /// Canonical, invertible serialization name: like [`name`](Self::name)
    /// but `Custom` kernels keep their annotation id (`custom:7`). The
    /// inverse is [`from_name`](Self::from_name).
    pub fn canonical_name(self) -> String {
        match self {
            ComputeOp::Custom(id) => format!("custom:{id}"),
            other => other.name().to_string(),
        }
    }

    /// Parse a [`canonical_name`](Self::canonical_name) back to the routine.
    pub fn from_name(s: &str) -> Option<ComputeOp> {
        Some(match s {
            "gemm" => ComputeOp::Gemm,
            "syrk" => ComputeOp::Syrk,
            "trsm" => ComputeOp::Trsm,
            "trmm" => ComputeOp::Trmm,
            "potrf" => ComputeOp::Potrf,
            "trtri" => ComputeOp::Trtri,
            "geqrf" => ComputeOp::Geqrf,
            "ormqr" => ComputeOp::Ormqr,
            "larft" => ComputeOp::Larft,
            "tpqrt" => ComputeOp::Tpqrt,
            "tpmqrt" => ComputeOp::Tpmqrt,
            "getrf" => ComputeOp::Getrf,
            _ => {
                let id = s.strip_prefix("custom:")?.parse().ok()?;
                ComputeOp::Custom(id)
            }
        })
    }

    /// Efficiency class of the routine for the machine's compute-cost model.
    pub fn class(self) -> KernelClass {
        match self {
            ComputeOp::Gemm => KernelClass::Gemm,
            ComputeOp::Syrk => KernelClass::Syrk,
            ComputeOp::Trsm | ComputeOp::Trmm => KernelClass::Triangular,
            ComputeOp::Potrf
            | ComputeOp::Trtri
            | ComputeOp::Geqrf
            | ComputeOp::Tpqrt
            | ComputeOp::Getrf => KernelClass::Factorize,
            ComputeOp::Ormqr | ComputeOp::Larft | ComputeOp::Tpmqrt => KernelClass::ApplyQ,
            ComputeOp::Custom(_) => KernelClass::Blas2,
        }
    }
}

/// How communication-kernel message sizes enter the signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeGranularity {
    /// Exact word count (the paper's default).
    Exact,
    /// Power-of-two bucket — the granularity ablation: coarser signatures pool
    /// more samples but mix distinct behaviors.
    Log2,
}

impl SizeGranularity {
    /// Apply the granularity to a word count.
    pub fn bucket(self, words: usize) -> u64 {
        match self {
            SizeGranularity::Exact => words as u64,
            SizeGranularity::Log2 => {
                if words == 0 {
                    0
                } else {
                    64 - (words as u64).leading_zeros() as u64
                }
            }
        }
    }
}

/// A kernel signature — the pooling identity for performance samples.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KernelSig {
    /// A computational kernel: routine plus (up to three) dimensions.
    Compute {
        /// The routine.
        op: ComputeOp,
        /// Routine dimensions, e.g. `(m, n, k)` for gemm; unused entries zero.
        dims: (u64, u64, u64),
    },
    /// A communication kernel: routine, message size, communicator shape.
    Comm {
        /// The MPI routine.
        op: CommOp,
        /// Message size (per the routine's convention), possibly bucketed.
        words: u64,
        /// Sub-communicator size (2 for point-to-point).
        comm_size: u64,
        /// Innermost stride of the sub-communicator relative to world
        /// (0 for irregular groups and point-to-point).
        stride: u64,
    },
}

impl KernelSig {
    /// Signature of a compute kernel.
    pub fn compute(op: ComputeOp, m: usize, n: usize, k: usize) -> Self {
        KernelSig::Compute { op, dims: (m as u64, n as u64, k as u64) }
    }

    /// Signature of a collective on a communicator described by `meta`.
    pub fn collective(op: CommOp, words: usize, meta: &ChannelMeta, gran: SizeGranularity) -> Self {
        KernelSig::Comm {
            op,
            words: gran.bucket(words),
            comm_size: meta.size as u64,
            stride: meta.stride() as u64,
        }
    }

    /// Signature of a point-to-point message (a size-2 "sub-communicator";
    /// the stride field records the rank distance, bucketing messages by
    /// neighbor topology the way grid-fiber strides do for collectives).
    pub fn p2p(words: usize, rank_distance: usize, gran: SizeGranularity) -> Self {
        KernelSig::Comm {
            op: CommOp::PointToPoint,
            words: gran.bucket(words),
            comm_size: 2,
            stride: rank_distance as u64,
        }
    }

    /// Whether this is a communication kernel.
    pub fn is_comm(&self) -> bool {
        matches!(self, KernelSig::Comm { .. })
    }

    /// Stable 52-bit key (fits losslessly in an `f64` mantissa, so keys can
    /// travel inside internal path-propagation payloads).
    pub fn key(&self) -> u64 {
        fnv_hash(self) & ((1 << 52) - 1)
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            KernelSig::Compute { op, dims } => {
                format!("{}[{}x{}x{}]", op.name(), dims.0, dims.1, dims.2)
            }
            KernelSig::Comm { op, words, comm_size, stride } => {
                format!("{}[w={words},p={comm_size},s={stride}]", op.name())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_routine_same_dims_pool() {
        let a = KernelSig::compute(ComputeOp::Gemm, 64, 64, 32);
        let b = KernelSig::compute(ComputeOp::Gemm, 64, 64, 32);
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn dims_distinguish() {
        let a = KernelSig::compute(ComputeOp::Gemm, 64, 64, 32);
        let b = KernelSig::compute(ComputeOp::Gemm, 64, 64, 64);
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn comm_sig_ignores_fiber_position() {
        // Two different columns of a 4x4 grid: same (stride, size) → same sig.
        let col_a = ChannelMeta::from_sorted_ranks(&[0, 4, 8, 12]);
        let col_b = ChannelMeta::from_sorted_ranks(&[2, 6, 10, 14]);
        let sa = KernelSig::collective(CommOp::Bcast, 100, &col_a, SizeGranularity::Exact);
        let sb = KernelSig::collective(CommOp::Bcast, 100, &col_b, SizeGranularity::Exact);
        assert_eq!(sa, sb);
        // A row has a different stride → different signature.
        let row = ChannelMeta::from_sorted_ranks(&[0, 1, 2, 3]);
        let sr = KernelSig::collective(CommOp::Bcast, 100, &row, SizeGranularity::Exact);
        assert_ne!(sa, sr);
    }

    #[test]
    fn p2p_is_size_two() {
        let s = KernelSig::p2p(10, 3, SizeGranularity::Exact);
        match s {
            KernelSig::Comm { comm_size, .. } => assert_eq!(comm_size, 2),
            _ => panic!(),
        }
    }

    #[test]
    fn log2_bucketing_pools_nearby_sizes() {
        let g = SizeGranularity::Log2;
        assert_eq!(g.bucket(1000), g.bucket(700));
        assert_ne!(g.bucket(1000), g.bucket(3000));
        assert_eq!(g.bucket(0), 0);
        assert_eq!(SizeGranularity::Exact.bucket(77), 77);
    }

    #[test]
    fn key_fits_f64() {
        let s = KernelSig::compute(ComputeOp::Tpqrt, 1 << 20, 1 << 10, 0);
        let k = s.key();
        assert_eq!(k as f64 as u64, k, "key must round-trip through f64");
    }

    #[test]
    fn names_invert() {
        let ops = [
            ComputeOp::Gemm,
            ComputeOp::Syrk,
            ComputeOp::Trsm,
            ComputeOp::Trmm,
            ComputeOp::Potrf,
            ComputeOp::Trtri,
            ComputeOp::Geqrf,
            ComputeOp::Ormqr,
            ComputeOp::Larft,
            ComputeOp::Tpqrt,
            ComputeOp::Tpmqrt,
            ComputeOp::Getrf,
            ComputeOp::Custom(0),
            ComputeOp::Custom(917),
        ];
        for op in ops {
            assert_eq!(ComputeOp::from_name(&op.canonical_name()), Some(op));
        }
        assert_eq!(ComputeOp::from_name("nosuch"), None);
        assert_eq!(ComputeOp::from_name("custom:x"), None);
    }

    #[test]
    fn class_mapping() {
        assert_eq!(ComputeOp::Gemm.class(), KernelClass::Gemm);
        assert_eq!(ComputeOp::Potrf.class(), KernelClass::Factorize);
        assert_eq!(ComputeOp::Custom(3).class(), KernelClass::Blas2);
    }
}

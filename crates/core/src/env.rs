//! The Critter interception environment (the paper's Fig. 2).
//!
//! [`CritterEnv`] wraps a simulated rank's [`RankCtx`] and exposes the same
//! compute/communication surface the application would use against MPI and
//! BLAS/LAPACK directly. Every call is intercepted:
//!
//! 1. the kernel's signature is generated from the call "envelope";
//! 2. an internal message with this rank's execution vote, sub-critical-path
//!    execution time, cost metrics, and `K̃` kernel frequencies is exchanged
//!    among the participating ranks (piggybacked custom reduction for
//!    collectives, an internal sendrecv for blocking point-to-point, a one-way
//!    eager message for nonblocking point-to-point);
//! 3. the longest-path combine is applied ([`crate::message`]);
//! 4. the user operation is **selectively executed** according to the merged
//!    vote, its measured time (or its modeled mean, when skipped) is folded
//!    into the pathset `P`, and the kernel's statistics are updated.
//!
//! Skipping is allowed to corrupt application numerics — exactly as in the
//! paper, where input matrices are reset between runs because selective
//! execution leaves wrong values behind. Correctness tests therefore run
//! under [`ExecutionPolicy::Full`].

use critter_machine::CommOp;
use critter_obs::{Event, EventKind, RankRecorder, TraceSink};
use critter_sim::{Communicator, RankCtx, ReduceOp, Request};

use crate::channels::ChannelRegistry;
use crate::message::{combine_internal, EagerEntry, InternalMsg};
use crate::policy::{CritterConfig, ExecutionPolicy};
use crate::profile::KernelStore;
use crate::report::{CritterReport, PathMetrics};
use crate::signature::{ComputeOp, KernelSig};
use critter_stats::ConfidenceLevel;

/// Combine for the finalization busy-time reduction: `[sum, max, count]`.
fn combine_busy(a: &[f64], b: &[f64]) -> Vec<f64> {
    vec![a[0] + b[0], a[1].max(b[1]), a[2] + b[2]]
}

/// Tag-space offset of internal sender→receiver messages.
const TAG_S2R: u64 = 1 << 40;
/// Tag-space offset of internal receiver→sender replies.
const TAG_R2S: u64 = 1 << 41;

/// Outstanding nonblocking operation through the interception layer.
#[must_use = "critter requests must be completed with wait()"]
pub struct CritterRequest {
    inner: ReqInner,
}

enum ReqInner {
    Send { sig: KernelSig, internal: Request, user: Option<Request> },
    Recv { sig: KernelSig, internal: Request, user: Request, words: usize },
}

/// The per-rank Critter profiling environment.
pub struct CritterEnv<'a> {
    ctx: &'a mut RankCtx,
    cfg: CritterConfig,
    level: ConfidenceLevel,
    store: KernelStore,
    registry: ChannelRegistry,
    /// `P.exec_time`: the predicted execution time along this rank's current
    /// sub-critical path.
    exec_time: f64,
    metrics: PathMetrics,
    report: CritterReport,
    /// Structured observability recorder (`cfg.obs`): events stamped with
    /// the virtual clock plus the rank's metrics registry. `None` keeps the
    /// recording entirely out of the hot path.
    obs: Option<RankRecorder>,
    /// Interned per-signature event labels, keyed by `KernelSig::key()`: the
    /// same signature recurs across thousands of events, so each distinct
    /// label is formatted (and heap-allocated) once and then shared.
    labels: std::collections::HashMap<u64, std::sync::Arc<str>>,
    /// Interned `propagate[<channel>]` counter names, keyed by communicator
    /// id (same motivation as `labels`).
    propagate_counters: std::collections::HashMap<u64, String>,
    /// Shared label for path-adoption events.
    path_adopt_label: std::sync::Arc<str>,
}

impl<'a> CritterEnv<'a> {
    /// Wrap a rank context (the `MPI_Init` interception: registers the world
    /// channel) with a fresh or persisted kernel store.
    pub fn new(ctx: &'a mut RankCtx, cfg: CritterConfig, store: KernelStore) -> Self {
        let registry = ChannelRegistry::new(ctx.size());
        let level = cfg.level();
        let obs = cfg.obs.then(|| RankRecorder::with_capacity(ctx.rank(), cfg.obs_capacity));
        CritterEnv {
            ctx,
            cfg,
            level,
            store,
            registry,
            exec_time: 0.0,
            metrics: PathMetrics::default(),
            report: CritterReport::default(),
            obs,
            labels: std::collections::HashMap::new(),
            propagate_counters: std::collections::HashMap::new(),
            path_adopt_label: "path_adopt".into(),
        }
    }

    /// This rank's world rank.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.ctx.size()
    }

    /// World communicator.
    pub fn world(&self) -> Communicator {
        self.ctx.world()
    }

    /// Escape hatch to the raw simulator context (un-intercepted setup work:
    /// data generation, result verification).
    pub fn ctx(&mut self) -> &mut RankCtx {
        self.ctx
    }

    /// The active configuration.
    pub fn config(&self) -> &CritterConfig {
        &self.cfg
    }

    /// Read access to the kernel store (tests, diagnostics).
    pub fn store(&self) -> &KernelStore {
        &self.store
    }

    /// Current predicted critical-path execution time.
    pub fn exec_time(&self) -> f64 {
        self.exec_time
    }

    // ------------------------------------------------------------------
    // Observability recording (cfg.obs)
    // ------------------------------------------------------------------

    /// Whether the structured observability recorder is active. Call sites
    /// guard on this before building event labels, keeping the obs-off hot
    /// path free of allocation.
    fn observing(&self) -> bool {
        self.obs.is_some()
    }

    fn obs_event(
        &mut self,
        kind: EventKind,
        label: std::sync::Arc<str>,
        start: f64,
        dur: f64,
        arg: f64,
    ) {
        if let Some(rec) = &mut self.obs {
            rec.record(Event { kind, label, start, dur, arg });
        }
    }

    /// The interned label for `sig`: formatted once per distinct signature,
    /// cloned (refcount bump) per event thereafter.
    fn sig_label(&mut self, sig: &KernelSig) -> std::sync::Arc<str> {
        self.labels.entry(sig.key()).or_insert_with(|| sig.label().into()).clone()
    }

    fn obs_count(&mut self, name: &str, by: u64) {
        if let Some(rec) = &mut self.obs {
            rec.metrics_mut().incr(name, by);
        }
    }

    fn obs_observe(&mut self, name: &str, x: f64) {
        if let Some(rec) = &mut self.obs {
            rec.metrics_mut().observe(name, x);
        }
    }

    // ------------------------------------------------------------------
    // Decision machinery
    // ------------------------------------------------------------------

    fn effective_count(&self, key: u64) -> u64 {
        match self.cfg.policy {
            ExecutionPolicy::Full
            | ExecutionPolicy::ConditionalExecution
            | ExecutionPolicy::EagerPropagation => 1,
            ExecutionPolicy::LocalPropagation | ExecutionPolicy::OnlinePropagation => {
                self.store.path_count(key).max(1)
            }
            ExecutionPolicy::APrioriPropagation => {
                self.store.apriori_counts.get(&key).copied().unwrap_or(1).max(1)
            }
        }
    }

    /// Whether this rank wants `sig` executed (true = not yet predictable).
    fn want_execute(&mut self, sig: &KernelSig) -> bool {
        if self.cfg.policy == ExecutionPolicy::Full {
            return true;
        }
        let k = self.effective_count(sig.key());
        let policy = self.cfg.policy;
        let epsilon = self.cfg.epsilon;
        let min_samples = self.cfg.min_samples;
        let level = &self.level;
        let m = self.store.model_mut(sig);
        if policy == ExecutionPolicy::EagerPropagation && m.eager_off {
            return false;
        }
        if policy.executes_once_per_config() && m.executed_this_config == 0 {
            return true;
        }
        if m.stats.count() < min_samples {
            return true;
        }
        let ci = m.interval(level);
        let predictable = ci.predictable(epsilon, k);
        if self.observing() {
            let rel = ci.relative_scaled(k);
            let now = self.ctx.now();
            self.obs_observe("ci_rel_width", rel);
            self.obs_count(if predictable { "decisions_skip" } else { "decisions_execute" }, 1);
            let label = self.sig_label(sig);
            self.obs_event(EventKind::Decision, label, now, 0.0, rel);
        }
        !predictable
    }

    fn model_mean(&self, key: u64) -> f64 {
        self.store.model(key).map(|m| m.stats.mean()).unwrap_or(0.0)
    }

    /// Collective charge spec for an internal payload of `len` words: free
    /// when overhead charging is off, otherwise capped at the compact wire
    /// size of the real implementation's profile messages.
    fn internal_charge(&self, len: usize) -> Option<Option<usize>> {
        if self.cfg.charge_internal {
            Some(Some(len.min(self.cfg.internal_words_cap)))
        } else {
            None
        }
    }

    /// Point-to-point cost override for an internal payload.
    fn internal_p2p_cost(&self, len: usize) -> Option<usize> {
        if self.cfg.charge_internal {
            Some(len.min(self.cfg.internal_words_cap))
        } else {
            Some(0)
        }
    }

    /// Deterministic estimate of an internal point-to-point message's cost,
    /// folded into the predicted path time (the noise-free model cost of the
    /// charged wire size — both endpoints compute the same value).
    fn internal_p2p_time(&self, len: usize) -> f64 {
        let words = self.internal_p2p_cost(len).unwrap_or(len);
        self.ctx.machine().comm_time_exact(CommOp::PointToPoint, words, 2)
    }

    // ------------------------------------------------------------------
    // Internal message plumbing
    // ------------------------------------------------------------------

    fn build_internal(
        &mut self,
        vote: bool,
        user_words: u64,
        reply_expected: bool,
        eager_meta: Option<&critter_sim::ChannelMeta>,
    ) -> InternalMsg {
        let path: Vec<(u64, u64, f64)> =
            self.store.path_counts.iter().map(|(&k, &(f, t))| (k, f, t)).collect();
        let mut eager = Vec::new();
        if self.cfg.policy == ExecutionPolicy::EagerPropagation {
            if let Some(meta) = eager_meta {
                let epsilon = self.cfg.epsilon;
                let min_samples = self.cfg.min_samples;
                for (key, m) in self.store.local.iter() {
                    if m.eager_off || m.stats.count() < min_samples {
                        continue;
                    }
                    // Only kernels whose local CI already meets ε travel; only
                    // along grid dimensions not yet covered for this kernel.
                    if self
                        .registry
                        .extend_coverage(&m.eager_strides, m.eager_coverage, meta)
                        .is_none()
                    {
                        continue;
                    }
                    if m.interval(&self.level).predictable(epsilon, 1) {
                        eager.push(EagerEntry::from_stats(*key, &m.stats, m.eager_coverage));
                    }
                }
                eager.sort_by_key(|e| e.key);
            }
        }
        InternalMsg {
            vote,
            exec_time: self.exec_time,
            metrics: self.metrics,
            path,
            eager,
            user_words,
            reply_expected,
        }
    }

    /// Fold a merged internal message into local state: longest-path adoption,
    /// metric maxima, eager statistics aggregation.
    fn absorb(&mut self, merged: &InternalMsg, comm_meta: Option<&critter_sim::ChannelMeta>) {
        if merged.exec_time > self.exec_time {
            if self.observing() {
                let delta = merged.exec_time - self.exec_time;
                let now = self.ctx.now();
                self.obs_count("path_adoptions", 1);
                let label = self.path_adopt_label.clone();
                self.obs_event(EventKind::PathAdopt, label, now, 0.0, delta);
            }
            if self.cfg.policy.adopts_remote_path() {
                self.store.adopt_path(merged.path.iter().copied());
            }
            self.exec_time = merged.exec_time;
        }
        self.metrics = self.metrics.max(merged.metrics);
        if self.cfg.policy == ExecutionPolicy::EagerPropagation {
            if let Some(meta) = comm_meta {
                let world = self.registry.world_size() as u64;
                for e in &merged.eager {
                    let Some(m) = self.store.local.get_mut(&e.key) else {
                        // Kernel unknown locally: it will never execute here,
                        // so its statistics are irrelevant to local decisions.
                        continue;
                    };
                    if m.eager_off {
                        continue;
                    }
                    let Some((strides, cov)) =
                        self.registry.extend_coverage(&m.eager_strides, m.eager_coverage, meta)
                    else {
                        continue;
                    };
                    // Replacement semantics: every participant leaves with the
                    // identical merged statistics, keeping later aggregations
                    // along other grid dimensions free of double counting.
                    m.stats = e.to_stats();
                    m.eager_strides = strides;
                    m.eager_coverage = cov;
                    if m.eager_coverage >= world {
                        let ci = m.interval(&self.level);
                        if ci.predictable(self.cfg.epsilon, 1) {
                            m.eager_off = true;
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Computation kernels
    // ------------------------------------------------------------------

    /// Intercept a computational kernel of signature `(op, m, n, k)` costing
    /// `flops`. When executed, `body` performs the real numerical work and the
    /// sampled time is recorded; when skipped, `body` does not run and the
    /// kernel's modeled mean is charged to the prediction. Returns the time
    /// contributed to the path (measured or predicted).
    pub fn kernel<F: FnOnce()>(
        &mut self,
        op: ComputeOp,
        m: usize,
        n: usize,
        k: usize,
        flops: f64,
        body: F,
    ) -> f64 {
        let sig = KernelSig::compute(op, m, n, k);
        self.store.schedule(&sig);
        let mut extrapolated = None;
        let execute = if self.want_execute(&sig) {
            // §VIII extension: an under-sampled signature may still be
            // skipped when its routine family's line fit predicts it well.
            if let Some(xcfg) = self.cfg.extrapolate {
                if self.cfg.policy != ExecutionPolicy::Full {
                    extrapolated = self.store.extrapolation.predict(op, flops, &xcfg);
                }
            }
            extrapolated.is_none()
        } else {
            false
        };
        self.metrics.flops += flops;
        let start = self.ctx.now();
        let charged = if execute {
            let t = self.ctx.compute(op.class(), flops);
            body();
            self.store.record(&sig, t);
            self.store.extrapolation.record(op, flops, t);
            self.store.attribute_path_time(sig.key(), t);
            self.exec_time += t;
            self.metrics.comp_time += t;
            self.report.local_comp_executed += t;
            self.report.local_comp_predicted += t;
            self.report.kernels_executed += 1;
            t
        } else {
            let mean = extrapolated.unwrap_or_else(|| self.model_mean(sig.key()));
            self.store.attribute_path_time(sig.key(), mean);
            self.exec_time += mean;
            self.metrics.comp_time += mean;
            self.report.local_comp_predicted += mean;
            self.report.kernels_skipped += 1;
            mean
        };
        if self.cfg.trace {
            self.report.trace.push(crate::trace::TraceEvent {
                label: sig.label(),
                start,
                duration: self.ctx.now() - start,
                predicted: charged,
                executed: execute,
                is_comm: false,
            });
        }
        if self.observing() {
            let end = self.ctx.now();
            let (kind, counter) = if execute {
                (EventKind::KernelExec, "samples_taken")
            } else {
                (EventKind::KernelSkip, "samples_skipped")
            };
            self.obs_count(counter, 1);
            let label = self.sig_label(&sig);
            self.obs_event(kind, label, start, end - start, charged);
        }
        charged
    }

    /// Intercept a user-annotated code region (the paper's preprocessor-
    /// directive interception, e.g. Capital's block-to-cyclic kernels).
    pub fn custom_kernel<F: FnOnce()>(&mut self, id: u32, size: usize, flops: f64, body: F) -> f64 {
        self.kernel(ComputeOp::Custom(id), size, 0, 0, flops, body)
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Common pre-step for collectives: schedule, vote, piggyback reduction.
    /// Returns `(signature, execute, extrapolated mean)` — the last is `Some`
    /// when this rank's vote to skip came from a communication-family line
    /// fit rather than the kernel's own statistics.
    fn pre_collective(
        &mut self,
        op: CommOp,
        comm: &Communicator,
        words: usize,
    ) -> (KernelSig, bool, Option<f64>) {
        let sig = KernelSig::collective(op, words, comm.meta(), self.cfg.granularity);
        self.store.schedule(&sig);
        let mut vote = self.want_execute(&sig);
        let mut extrapolated = None;
        if vote && self.cfg.policy != ExecutionPolicy::Full {
            if let Some(xcfg) = self.cfg.extrapolate {
                let meta = comm.meta();
                extrapolated = self.store.extrapolation.predict_comm(
                    op,
                    meta.size as u64,
                    meta.stride() as u64,
                    words as f64,
                    &xcfg,
                );
                if extrapolated.is_some() {
                    vote = false;
                }
            }
        }
        let meta = comm.meta().clone();
        let msg = self.build_internal(vote, words as u64, false, Some(&meta));
        let payload = msg.encode();
        self.report.internal_words += payload.len() as u64;
        let charge = self.internal_charge(payload.len());
        let t0 = self.ctx.now();
        let (merged_raw, internal_cost) =
            self.ctx.allreduce_custom_timed(comm, payload, combine_internal, charge);
        let merged = InternalMsg::decode(&merged_raw);
        self.absorb(&merged, Some(&meta));
        // The piggyback reduction is on the critical path of every
        // participant; its (identical) cost is part of the predicted time.
        self.exec_time += internal_cost;
        self.metrics.syncs += 1.0;
        self.metrics.comm_words += words as f64;
        if self.observing() {
            let now = self.ctx.now();
            // Interned per-channel counter name: one `format!` per distinct
            // communicator, not one per propagation.
            if let Some(rec) = &mut self.obs {
                let name = self
                    .propagate_counters
                    .entry(comm.id())
                    .or_insert_with(|| format!("propagate[{}]", meta.label()));
                rec.metrics_mut().incr(name, 1);
            }
            let label = self.sig_label(&sig);
            self.obs_event(EventKind::Propagate, label, t0, now - t0, internal_cost);
        }
        (sig, merged.vote, extrapolated)
    }

    fn post_executed_comm(&mut self, sig: &KernelSig, t: f64) {
        self.store.record(sig, t);
        if let KernelSig::Comm { op, words, comm_size, stride } = sig {
            // Feed the communication-family line fit (§VIII extension). With
            // exact size granularity `words` is the true message size; log2
            // buckets would warp the size axis, so skip them.
            if self.cfg.granularity == crate::signature::SizeGranularity::Exact {
                self.store.extrapolation.record_comm(*op, *comm_size, *stride, *words as f64, t);
            }
        }
        self.store.attribute_path_time(sig.key(), t);
        self.exec_time += t;
        self.metrics.comm_time += t;
        self.report.local_comm_executed += t;
        self.report.local_comm_predicted += t;
        self.report.kernels_executed += 1;
        if self.cfg.trace {
            self.report.trace.push(crate::trace::TraceEvent {
                label: sig.label(),
                start: self.ctx.now() - t,
                duration: t,
                predicted: t,
                executed: true,
                is_comm: true,
            });
        }
        if self.observing() {
            let now = self.ctx.now();
            self.obs_count("samples_taken", 1);
            let label = self.sig_label(sig);
            self.obs_event(EventKind::CommExec, label, now - t, t, t);
        }
    }

    fn post_skipped_comm(&mut self, sig: &KernelSig) {
        self.post_skipped_comm_with(sig, None)
    }

    fn post_skipped_comm_with(&mut self, sig: &KernelSig, extrapolated: Option<f64>) {
        let own = self.model_mean(sig.key());
        let mean = if own > 0.0 { own } else { extrapolated.unwrap_or(0.0) };
        self.store.attribute_path_time(sig.key(), mean);
        self.exec_time += mean;
        self.metrics.comm_time += mean;
        self.report.local_comm_predicted += mean;
        self.report.kernels_skipped += 1;
        if self.cfg.trace {
            self.report.trace.push(crate::trace::TraceEvent {
                label: sig.label(),
                start: self.ctx.now(),
                duration: 0.0,
                predicted: mean,
                executed: false,
                is_comm: true,
            });
        }
        if self.observing() {
            let now = self.ctx.now();
            self.obs_count("samples_skipped", 1);
            let label = self.sig_label(sig);
            self.obs_event(EventKind::CommSkip, label, now, 0.0, mean);
        }
    }

    /// Intercepted broadcast. As in MPI, `data` must be sized identically on
    /// every rank; non-roots receive the root's payload (or zeros on a skip).
    pub fn bcast(&mut self, comm: &Communicator, root: usize, data: &mut Vec<f64>) {
        let words = data.len();
        let (sig, execute, xmean) = self.pre_collective(CommOp::Bcast, comm, words);
        if execute {
            let t0 = self.ctx.now();
            self.ctx.bcast(comm, root, data);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
        } else {
            if comm.rank() != root {
                data.iter_mut().for_each(|x| *x = 0.0);
            }
            self.post_skipped_comm_with(&sig, xmean);
        }
    }

    /// Intercepted allreduce.
    pub fn allreduce(&mut self, comm: &Communicator, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        let (sig, execute, xmean) = self.pre_collective(CommOp::Allreduce, comm, data.len());
        if execute {
            let t0 = self.ctx.now();
            let out = self.ctx.allreduce(comm, op, data);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
            out
        } else {
            self.post_skipped_comm_with(&sig, xmean);
            vec![0.0; data.len()]
        }
    }

    /// Intercepted reduce (result at `root`).
    pub fn reduce(
        &mut self,
        comm: &Communicator,
        root: usize,
        op: ReduceOp,
        data: &[f64],
    ) -> Option<Vec<f64>> {
        let (sig, execute, xmean) = self.pre_collective(CommOp::Reduce, comm, data.len());
        if execute {
            let t0 = self.ctx.now();
            let out = self.ctx.reduce(comm, root, op, data);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
            out
        } else {
            self.post_skipped_comm_with(&sig, xmean);
            (comm.rank() == root).then(|| vec![0.0; data.len()])
        }
    }

    /// Intercepted allgather (per-rank contribution `data`).
    pub fn allgather(&mut self, comm: &Communicator, data: &[f64]) -> Vec<f64> {
        let (sig, execute, xmean) = self.pre_collective(CommOp::Allgather, comm, data.len());
        if execute {
            let t0 = self.ctx.now();
            let out = self.ctx.allgather(comm, data);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
            out
        } else {
            self.post_skipped_comm_with(&sig, xmean);
            vec![0.0; data.len() * comm.size()]
        }
    }

    /// Intercepted gather onto `root`.
    pub fn gather(&mut self, comm: &Communicator, root: usize, data: &[f64]) -> Option<Vec<f64>> {
        let (sig, execute, xmean) = self.pre_collective(CommOp::Gather, comm, data.len());
        if execute {
            let t0 = self.ctx.now();
            let out = self.ctx.gather(comm, root, data);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
            out
        } else {
            self.post_skipped_comm_with(&sig, xmean);
            (comm.rank() == root).then(|| vec![0.0; data.len() * comm.size()])
        }
    }

    /// Intercepted scatter from `root`: the root supplies `size()·chunk`
    /// words; every rank receives `chunk` words.
    pub fn scatter(
        &mut self,
        comm: &Communicator,
        root: usize,
        data: &[f64],
        chunk: usize,
    ) -> Vec<f64> {
        if comm.rank() == root {
            assert_eq!(data.len(), chunk * comm.size(), "scatter root payload size");
        }
        let (sig, execute, xmean) = self.pre_collective(CommOp::Scatter, comm, chunk);
        if execute {
            let t0 = self.ctx.now();
            let out = self.ctx.scatter(comm, root, data);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
            out
        } else {
            self.post_skipped_comm_with(&sig, xmean);
            vec![0.0; chunk]
        }
    }

    /// Intercepted reduce-scatter (`size()·chunk`-word contribution, `chunk`
    /// words returned).
    pub fn reduce_scatter(&mut self, comm: &Communicator, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        let chunk = data.len() / comm.size().max(1);
        let (sig, execute, xmean) = self.pre_collective(CommOp::ReduceScatter, comm, chunk);
        if execute {
            let t0 = self.ctx.now();
            let out = self.ctx.reduce_scatter(comm, op, data);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
            out
        } else {
            self.post_skipped_comm_with(&sig, xmean);
            vec![0.0; chunk]
        }
    }

    /// Intercepted all-to-all (`size()·chunk`-word contribution and result).
    pub fn alltoall(&mut self, comm: &Communicator, data: &[f64]) -> Vec<f64> {
        let chunk = data.len() / comm.size().max(1);
        let (sig, execute, xmean) = self.pre_collective(CommOp::Alltoall, comm, chunk);
        if execute {
            let t0 = self.ctx.now();
            let out = self.ctx.alltoall(comm, data);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
            out
        } else {
            self.post_skipped_comm_with(&sig, xmean);
            vec![0.0; data.len()]
        }
    }

    /// Intercepted barrier. The internal reduction has already synchronized
    /// the participants, so a skipped barrier loses no synchronization.
    pub fn barrier(&mut self, comm: &Communicator) {
        let (sig, execute, _xmean) = self.pre_collective(CommOp::Barrier, comm, 0);
        if execute {
            let t0 = self.ctx.now();
            self.ctx.barrier(comm);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
        } else {
            self.post_skipped_comm(&sig);
        }
    }

    /// Intercepted communicator split (registers the new channel with the
    /// aggregate infrastructure, per Fig. 2's `MPI_Comm_split`).
    pub fn split(&mut self, comm: &Communicator, color: i64, key: i64) -> Option<Communicator> {
        let new = self.ctx.split(comm, color, key);
        if let Some(c) = &new {
            self.registry.register(c.meta());
            if self.observing() {
                let label = c.meta().label();
                let size = c.size() as f64;
                let now = self.ctx.now();
                self.obs_count("channels_registered", 1);
                self.obs_event(EventKind::Channel, label.into(), now, 0.0, size);
            }
        }
        new
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    fn p2p_sig(&self, comm: &Communicator, peer: usize, words: usize) -> KernelSig {
        let me = comm.world_rank_of(comm.rank());
        let them = comm.world_rank_of(peer);
        KernelSig::p2p(words, me.abs_diff(them), self.cfg.granularity)
    }

    /// Intercepted blocking send (Fig. 2's symmetric protocol: internal
    /// messages are exchanged both ways; the pair executes the user message
    /// iff either side votes execute).
    pub fn send(&mut self, comm: &Communicator, dst: usize, tag: u64, data: &[f64]) {
        assert!(tag < TAG_S2R, "user tags must stay below the internal tag space");
        let sig = self.p2p_sig(comm, dst, data.len());
        self.store.schedule(&sig);
        let vote = self.want_execute(&sig);
        let msg = self.build_internal(vote, data.len() as u64, true, None);
        let payload = msg.encode();
        self.report.internal_words += payload.len() as u64;
        let cost = self.internal_p2p_cost(payload.len());
        let t0 = self.ctx.now();
        let ireq = self.ctx.isend_with_cost(comm, dst, tag + TAG_S2R, payload, cost);
        let reply_raw = self.ctx.recv(comm, dst, tag + TAG_R2S);
        self.ctx.wait(ireq);
        let reply_len = reply_raw.len();
        let merged = msg.combine(&InternalMsg::decode(&reply_raw));
        self.absorb(&merged, None);
        let internal_time = self.internal_p2p_time(reply_len);
        self.exec_time += internal_time;
        self.metrics.syncs += 1.0;
        self.metrics.comm_words += data.len() as f64;
        if self.observing() {
            let now = self.ctx.now();
            self.obs_count("propagate[p2p]", 1);
            let label = self.sig_label(&sig);
            self.obs_event(EventKind::Propagate, label, t0, now - t0, internal_time);
        }
        if merged.vote {
            let t0 = self.ctx.now();
            self.ctx.send(comm, dst, tag, data);
            let t = self.ctx.now() - t0;
            self.post_executed_comm(&sig, t);
        } else {
            self.post_skipped_comm(&sig);
        }
    }

    /// Intercepted blocking receive of `words` words (the count is part of
    /// the MPI envelope, so it is known to the receiver). Handles both the
    /// blocking-sender and nonblocking-sender protocols.
    pub fn recv(&mut self, comm: &Communicator, src: usize, tag: u64, words: usize) -> Vec<f64> {
        assert!(tag < TAG_S2R, "user tags must stay below the internal tag space");
        let sig = self.p2p_sig(comm, src, words);
        self.store.schedule(&sig);
        let vote = self.want_execute(&sig);
        let t0 = self.ctx.now();
        let their_raw = self.ctx.recv(comm, src, tag + TAG_S2R);
        let their = InternalMsg::decode(&their_raw);
        let (merged, execute) = if their.reply_expected {
            // Symmetric protocol: reply with our state; execute on OR of votes.
            let mine = self.build_internal(vote, words as u64, false, None);
            let payload = mine.encode();
            self.report.internal_words += payload.len() as u64;
            let cost = self.internal_p2p_cost(payload.len());
            let r = self.ctx.isend_with_cost(comm, src, tag + TAG_R2S, payload, cost);
            self.ctx.wait(r);
            let merged = mine.combine(&their);
            let ex = merged.vote;
            (merged, ex)
        } else {
            // Nonblocking sender: its decision governs; we still merge for
            // path propagation.
            let mine = self.build_internal(vote, words as u64, false, None);
            let ex = their.vote;
            (mine.combine(&their), ex)
        };
        self.absorb(&merged, None);
        let internal_time = self.internal_p2p_time(their_raw.len());
        self.exec_time += internal_time;
        self.metrics.syncs += 1.0;
        self.metrics.comm_words += words as f64;
        if self.observing() {
            let now = self.ctx.now();
            self.obs_count("propagate[p2p]", 1);
            let label = self.sig_label(&sig);
            self.obs_event(EventKind::Propagate, label, t0, now - t0, internal_time);
        }
        if execute {
            let t0 = self.ctx.now();
            let data = self.ctx.recv(comm, src, tag);
            let t = self.ctx.now() - t0;
            debug_assert_eq!(data.len(), words, "received payload size mismatch");
            self.post_executed_comm(&sig, t);
            data
        } else {
            self.post_skipped_comm(&sig);
            vec![0.0; words]
        }
    }

    /// Intercepted nonblocking send. The sender's vote alone governs
    /// execution (the deadlock-free default protocol for nonblocking
    /// communication, §IV-A).
    pub fn isend(
        &mut self,
        comm: &Communicator,
        dst: usize,
        tag: u64,
        data: Vec<f64>,
    ) -> CritterRequest {
        assert!(tag < TAG_S2R, "user tags must stay below the internal tag space");
        let sig = self.p2p_sig(comm, dst, data.len());
        self.store.schedule(&sig);
        let vote = self.want_execute(&sig);
        let words = data.len();
        let msg = self.build_internal(vote, words as u64, false, None);
        let payload = msg.encode();
        self.report.internal_words += payload.len() as u64;
        let cost = self.internal_p2p_cost(payload.len());
        let internal = self.ctx.isend_with_cost(comm, dst, tag + TAG_S2R, payload, cost);
        let overhead = self.ctx.machine().params().per_call_overhead;
        self.exec_time += overhead;
        self.metrics.syncs += 1.0;
        self.metrics.comm_words += words as f64;
        if self.observing() {
            let now = self.ctx.now();
            self.obs_count("propagate[p2p]", 1);
            let label = self.sig_label(&sig);
            self.obs_event(EventKind::Propagate, label, now, 0.0, overhead);
        }
        let user = if vote {
            Some(self.ctx.isend(comm, dst, tag, data))
        } else {
            // Charged as predicted at post time; the wait will be free.
            self.post_skipped_comm(&sig);
            None
        };
        CritterRequest { inner: ReqInner::Send { sig, internal, user } }
    }

    /// Intercepted nonblocking receive of `words` words.
    pub fn irecv(
        &mut self,
        comm: &Communicator,
        src: usize,
        tag: u64,
        words: usize,
    ) -> CritterRequest {
        assert!(tag < TAG_S2R, "user tags must stay below the internal tag space");
        let sig = self.p2p_sig(comm, src, words);
        let internal = self.ctx.irecv(comm, src, tag + TAG_S2R);
        let user = self.ctx.irecv(comm, src, tag);
        CritterRequest { inner: ReqInner::Recv { sig, internal, user, words } }
    }

    /// Complete a nonblocking operation; returns data for receives.
    pub fn wait(&mut self, req: CritterRequest) -> Option<Vec<f64>> {
        match req.inner {
            ReqInner::Send { sig, internal, user } => {
                self.ctx.wait(internal);
                if let Some(u) = user {
                    let t0 = self.ctx.now();
                    self.ctx.wait(u);
                    let t = self.ctx.now() - t0;
                    self.post_executed_comm(&sig, t);
                }
                None
            }
            ReqInner::Recv { sig, internal, user, words } => {
                self.store.schedule(&sig);
                let t0 = self.ctx.now();
                let their_raw = self.ctx.wait(internal).expect("internal message missing");
                let their = InternalMsg::decode(&their_raw);
                assert!(
                    !their.reply_expected,
                    "blocking send matched with nonblocking receive is not supported"
                );
                let vote = self.want_execute(&sig);
                let mine = self.build_internal(vote, words as u64, false, None);
                let merged = mine.combine(&their);
                self.absorb(&merged, None);
                let internal_time = self.internal_p2p_time(their_raw.len());
                self.exec_time += internal_time;
                self.metrics.syncs += 1.0;
                self.metrics.comm_words += words as f64;
                if self.observing() {
                    let now = self.ctx.now();
                    self.obs_count("propagate[p2p]", 1);
                    let label = self.sig_label(&sig);
                    self.obs_event(EventKind::Propagate, label, t0, now - t0, internal_time);
                }
                if their.vote {
                    let t0 = self.ctx.now();
                    let data = self.ctx.wait(user).expect("user payload missing");
                    let t = self.ctx.now() - t0;
                    debug_assert_eq!(data.len(), words, "received payload size mismatch");
                    self.post_executed_comm(&sig, t);
                    Some(data)
                } else {
                    drop(user); // never matched; harmless in the simulator
                    self.post_skipped_comm(&sig);
                    Some(vec![0.0; words])
                }
            }
        }
    }

    /// Intercepted deadlock-free exchange (nonblocking send + blocking recv).
    #[allow(clippy::too_many_arguments)] // mirrors MPI_Sendrecv's argument list
    pub fn sendrecv(
        &mut self,
        comm: &Communicator,
        dst: usize,
        send_tag: u64,
        data: &[f64],
        src: usize,
        recv_tag: u64,
        recv_words: usize,
    ) -> Vec<f64> {
        let sreq = self.isend(comm, dst, send_tag, data.to_vec());
        let out = self.recv(comm, src, recv_tag, recv_words);
        self.wait(sreq);
        out
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    /// Final world-wide propagation (the `critter::stop` call): agree on the
    /// configuration's predicted critical-path execution time and metrics,
    /// then return the report and the (persistable) kernel store.
    pub fn finish(mut self) -> (CritterReport, KernelStore) {
        let world = self.ctx.world();
        let msg = self.build_internal(false, 0, false, None);
        let payload = msg.encode();
        self.report.internal_words += payload.len() as u64;
        let charge = self.internal_charge(payload.len());
        let (merged_raw, internal_cost) =
            self.ctx.allreduce_custom_timed(&world, payload, combine_internal, charge);
        let merged = InternalMsg::decode(&merged_raw);
        self.absorb(&merged, None);
        self.exec_time += internal_cost;
        // Busy-time statistics across ranks (load-imbalance diagnostics):
        // one small sum+max reduction, charged like the other internals.
        let busy = self.report.local_comp_executed + self.report.local_comm_executed;
        let charge = self.internal_charge(2);
        let sums = self.ctx.allreduce_custom(&world, vec![busy, busy, 1.0], combine_busy, charge);
        self.report.mean_busy = sums[0] / sums[2].max(1.0);
        self.report.max_busy = sums[1];
        // The winning path's per-kernel profile, labeled where known locally.
        self.report.top_kernels = self
            .store
            .path_profile()
            .into_iter()
            .take(10)
            .map(|(key, count, time)| {
                let label = self
                    .store
                    .model(key)
                    .map(|m| m.sig.label())
                    .unwrap_or_else(|| format!("kernel#{key:x}"));
                (label, count, time)
            })
            .collect();
        self.report.predicted_time = self.exec_time;
        self.report.path = self.metrics;
        self.report.distinct_kernels = self.store.local.len() as u64;
        if self.observing() {
            let kernels_executed = self.report.kernels_executed;
            let kernels_skipped = self.report.kernels_skipped;
            let internal_words = self.report.internal_words;
            let distinct_kernels = self.report.distinct_kernels;
            let c = *self.ctx.counters();
            if let Some(rec) = &mut self.obs {
                let m = rec.metrics_mut();
                m.incr("kernels_executed", kernels_executed);
                m.incr("kernels_skipped", kernels_skipped);
                m.incr("internal_words", internal_words);
                m.incr("distinct_kernels", distinct_kernels);
                m.incr("sim_sends", c.sends);
                m.incr("sim_recvs", c.recvs);
                m.incr("sim_collectives", c.collectives);
                m.incr("sim_words_sent", c.words_sent);
                m.incr("sim_words_received", c.words_received);
                m.incr("sim_compute_calls", c.compute_calls);
                m.add_sum("sim_flops", c.flops);
                m.add_sum("sim_compute_time", c.compute_time);
                m.add_sum("sim_comm_time", c.comm_time);
                m.add_sum("sim_idle_time", c.idle_time);
            }
        }
        self.report.obs = self.obs.take().map(RankRecorder::into_trace);
        (self.report, self.store)
    }
}

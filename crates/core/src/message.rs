//! Internal path-propagation payloads (the paper's `int_msg`).
//!
//! Every intercepted communication piggybacks one of these messages among the
//! participating ranks (Fig. 2). The payload carries: the sender's execution
//! vote, its current sub-critical-path execution time and cost metrics, its
//! `K̃` kernel-frequency table, and — under eager propagation — the local
//! statistics of kernels ready to be aggregated across the sub-communicator.
//!
//! Payloads are serialized as `Vec<f64>` so they travel through the same
//! simulated communication layer as application data, and are folded with a
//! plain-`fn` combine operator ([`combine_internal`]) inside the simulator's
//! custom allreduce — the analogue of the paper's `custom_op` MPI reduction.
//! The combine rule is the **longest-path algorithm**: the contribution with
//! the larger `exec_time` wins wholesale (its `K̃` replaces the others'),
//! votes are OR-ed, cost metrics are maximized elementwise, and eager entries
//! are merged with Welford's parallel combination.

use critter_stats::OnlineStats;

use crate::report::PathMetrics;

/// Statistics of one kernel carried by eager propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EagerEntry {
    /// Kernel signature key (52-bit, exact in f64).
    pub key: u64,
    /// Sample count.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Welford M2 (sum of squared deviations).
    pub m2: f64,
    /// Coverage: how many world ranks these statistics have reached.
    pub coverage: u64,
}

impl EagerEntry {
    /// Build from single-pass stats.
    pub fn from_stats(key: u64, stats: &OnlineStats, coverage: u64) -> Self {
        EagerEntry {
            key,
            count: stats.count(),
            mean: stats.mean(),
            m2: stats.variance() * (stats.count().saturating_sub(1)) as f64,
            coverage,
        }
    }

    /// Reconstruct `OnlineStats` (count/mean/variance; extrema are lost, which
    /// the selective-execution criterion never uses).
    pub fn to_stats(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        if self.count == 0 {
            return s;
        }
        // Rebuild a two-point sketch with the same count, mean, and M2:
        // push `count` synthetic samples mean±d where d² ·count = m2.
        let d = (self.m2 / self.count as f64).sqrt();
        let half = self.count / 2;
        for _ in 0..half {
            s.push(self.mean - d);
            s.push(self.mean + d);
        }
        if self.count % 2 == 1 {
            s.push(self.mean);
        }
        s
    }

    /// Welford parallel merge of two entries with the same key.
    pub fn merge(&self, o: &EagerEntry) -> EagerEntry {
        assert_eq!(self.key, o.key, "cannot merge different kernels");
        let n1 = self.count as f64;
        let n2 = o.count as f64;
        if self.count == 0 {
            return *o;
        }
        if o.count == 0 {
            return *self;
        }
        let n = n1 + n2;
        let delta = o.mean - self.mean;
        EagerEntry {
            key: self.key,
            count: self.count + o.count,
            mean: self.mean + delta * n2 / n,
            m2: self.m2 + o.m2 + delta * delta * n1 * n2 / n,
            coverage: self.coverage.max(o.coverage),
        }
    }
}

/// The internal message exchanged on every intercepted communication.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InternalMsg {
    /// Execution vote: true = this participant wants the user operation
    /// executed (its kernel is not yet predictable).
    pub vote: bool,
    /// Sender's current sub-critical-path execution-time estimate.
    pub exec_time: f64,
    /// Independently max-propagated path cost metrics.
    pub metrics: PathMetrics,
    /// `K̃` — (kernel key, frequency along the path, accumulated time the
    /// kernel contributed along the path). The per-kernel time component is
    /// the paper's "critical path performance profile of each kernel",
    /// constructed online.
    pub path: Vec<(u64, u64, f64)>,
    /// Eager-propagation statistics entries.
    pub eager: Vec<EagerEntry>,
    /// For point-to-point: word count of the (possibly skipped) user payload,
    /// so a skipping receiver can size its placeholder buffer.
    pub user_words: u64,
    /// Point-to-point protocol flag: true when the sender blocks for the
    /// receiver's internal reply (blocking send — Fig. 2's `PMPI_Sendrecv`
    /// exchange), false for the one-way nonblocking protocol where the
    /// sender's vote governs execution.
    pub reply_expected: bool,
}

const HEADER: usize = 1 + 1 + PathMetrics::LEN + 4;

impl InternalMsg {
    /// Serialize to a flat `f64` payload.
    pub fn encode(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(HEADER + 3 * self.path.len() + 5 * self.eager.len());
        v.push(if self.vote { 1.0 } else { 0.0 });
        v.push(self.exec_time);
        v.extend_from_slice(&self.metrics.to_array());
        v.push(self.path.len() as f64);
        v.push(self.eager.len() as f64);
        v.push(self.user_words as f64);
        v.push(if self.reply_expected { 1.0 } else { 0.0 });
        for &(k, f, t) in &self.path {
            v.push(k as f64);
            v.push(f as f64);
            v.push(t);
        }
        for e in &self.eager {
            v.push(e.key as f64);
            v.push(e.count as f64);
            v.push(e.mean);
            v.push(e.m2);
            v.push(e.coverage as f64);
        }
        v
    }

    /// Deserialize from a flat payload (panics on malformed input — internal
    /// messages are produced only by [`InternalMsg::encode`]).
    pub fn decode(v: &[f64]) -> Self {
        assert!(v.len() >= HEADER, "internal message too short: {}", v.len());
        let vote = v[0] > 0.5;
        let exec_time = v[1];
        let mut arr = [0.0; PathMetrics::LEN];
        arr.copy_from_slice(&v[2..2 + PathMetrics::LEN]);
        let metrics = PathMetrics::from_array(arr);
        let n_path = v[2 + PathMetrics::LEN] as usize;
        let n_eager = v[3 + PathMetrics::LEN] as usize;
        let user_words = v[4 + PathMetrics::LEN] as u64;
        let reply_expected = v[5 + PathMetrics::LEN] > 0.5;
        let mut off = HEADER;
        let mut path = Vec::with_capacity(n_path);
        for _ in 0..n_path {
            path.push((v[off] as u64, v[off + 1] as u64, v[off + 2]));
            off += 3;
        }
        let mut eager = Vec::with_capacity(n_eager);
        for _ in 0..n_eager {
            eager.push(EagerEntry {
                key: v[off] as u64,
                count: v[off + 1] as u64,
                mean: v[off + 2],
                m2: v[off + 3],
                coverage: v[off + 4] as u64,
            });
            off += 5;
        }
        InternalMsg { vote, exec_time, metrics, path, eager, user_words, reply_expected }
    }

    /// The longest-path combine: winner-takes-all on `exec_time` (and `K̃`),
    /// OR on votes, elementwise max on metrics, Welford merge on eager entries.
    pub fn combine(&self, o: &InternalMsg) -> InternalMsg {
        let (winner, loser) = if self.exec_time >= o.exec_time { (self, o) } else { (o, self) };
        let mut eager = winner.eager.clone();
        for e in &loser.eager {
            if let Some(mine) = eager.iter_mut().find(|x| x.key == e.key) {
                *mine = mine.merge(e);
            } else {
                eager.push(*e);
            }
        }
        eager.sort_by_key(|e| e.key);
        InternalMsg {
            vote: self.vote || o.vote,
            exec_time: winner.exec_time,
            metrics: self.metrics.max(o.metrics),
            path: winner.path.clone(),
            eager,
            user_words: self.user_words.max(o.user_words),
            reply_expected: self.reply_expected || o.reply_expected,
        }
    }
}

/// `fn`-pointer combine over serialized payloads, used as the simulator's
/// custom-allreduce operator.
pub fn combine_internal(a: &[f64], b: &[f64]) -> Vec<f64> {
    InternalMsg::decode(a).combine(&InternalMsg::decode(b)).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(vote: bool, t: f64) -> InternalMsg {
        InternalMsg {
            vote,
            exec_time: t,
            metrics: PathMetrics {
                comm_words: t * 2.0,
                syncs: 1.0,
                flops: 10.0,
                comp_time: t,
                comm_time: 0.0,
            },
            path: vec![(1, 3, 0.5), (9, 1, 0.1)],
            eager: vec![],
            user_words: 0,
            reply_expected: false,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut m = msg(true, 2.5);
        m.eager.push(EagerEntry { key: 77, count: 4, mean: 1.5, m2: 0.25, coverage: 8 });
        m.user_words = 123;
        assert_eq!(InternalMsg::decode(&m.encode()), m);
    }

    #[test]
    fn combine_winner_takes_path() {
        let a = msg(false, 1.0);
        let mut b = msg(false, 2.0);
        b.path = vec![(5, 9, 2.5)];
        let c = a.combine(&b);
        assert_eq!(c.exec_time, 2.0);
        assert_eq!(c.path, vec![(5, 9, 2.5)]);
        // Symmetric call yields identical result (order independence).
        assert_eq!(b.combine(&a), c);
    }

    #[test]
    fn combine_or_votes_and_max_metrics() {
        let a = msg(true, 3.0);
        let b = msg(false, 1.0);
        let c = a.combine(&b);
        assert!(c.vote);
        assert_eq!(c.metrics.comm_words, 6.0);
        let d = msg(false, 1.0).combine(&msg(false, 0.5));
        assert!(!d.vote);
    }

    #[test]
    fn combine_merges_eager_entries() {
        let mut a = msg(false, 1.0);
        a.eager.push(EagerEntry { key: 7, count: 2, mean: 1.0, m2: 0.0, coverage: 2 });
        let mut b = msg(false, 0.5);
        b.eager.push(EagerEntry { key: 7, count: 2, mean: 3.0, m2: 0.0, coverage: 4 });
        b.eager.push(EagerEntry { key: 8, count: 1, mean: 5.0, m2: 0.0, coverage: 1 });
        let c = a.combine(&b);
        assert_eq!(c.eager.len(), 2);
        let e7 = c.eager.iter().find(|e| e.key == 7).unwrap();
        assert_eq!(e7.count, 4);
        assert_eq!(e7.mean, 2.0);
        assert!(e7.m2 > 0.0, "merged spread must appear in M2");
        assert_eq!(e7.coverage, 4);
    }

    #[test]
    fn eager_entry_stats_roundtrip() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        let e = EagerEntry::from_stats(42, &s, 1);
        let back = e.to_stats();
        assert_eq!(back.count(), 4);
        assert!((back.mean() - s.mean()).abs() < 1e-12);
        assert!((back.variance() - s.variance()).abs() < 1e-9);
    }

    #[test]
    fn combine_fn_pointer_works() {
        let a = msg(false, 1.0).encode();
        let b = msg(true, 4.0).encode();
        let c = combine_internal(&a, &b);
        let m = InternalMsg::decode(&c);
        assert!(m.vote);
        assert_eq!(m.exec_time, 4.0);
    }

    #[test]
    fn combine_is_associative_on_exec_time() {
        let (a, b, c) = (msg(false, 1.0), msg(true, 5.0), msg(false, 3.0));
        let left = a.combine(&b).combine(&c);
        let right = a.combine(&b.combine(&c));
        assert_eq!(left.exec_time, right.exec_time);
        assert_eq!(left.vote, right.vote);
        assert_eq!(left.path, right.path);
    }
}

//! Aggregate-channel infrastructure (§III-B, Fig. 2 `MPI_Init`/`MPI_Comm_split`).
//!
//! A *channel* is a communicator's `(stride, size)` shape relative to the
//! world grid. An *aggregate* is a combination of channels with pairwise
//! disjoint stride sets; when the sizes of an aggregate's dimensions multiply
//! to the world size, the aggregate is **maximal** — statistics propagated
//! along its constituent channels have reached every rank, which is the
//! condition under which eager propagation may switch a kernel off globally.
//!
//! The registry also implements the per-kernel coverage bookkeeping: each time
//! a kernel's statistics are aggregated across a communicator whose dimensions
//! are disjoint from those already covered, the kernel's covered-rank product
//! grows by the communicator size (replacement semantics keep the sample sets
//! disjoint, preventing the sampling bias the paper warns about for
//! overlapping partitions).

use critter_sim::ChannelMeta;

use crate::fnv::FnvMap;

/// One aggregate: a set of combined channels.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// XOR of the constituent channels' shape hashes (Fig. 2's aggregate id).
    pub hash: u64,
    /// Union of the constituent dimensions (stride, size).
    pub dims: Vec<(usize, usize)>,
    /// Product of dimension sizes: ranks covered.
    pub coverage: usize,
    /// Whether a strict super-aggregate exists.
    pub is_maximal: bool,
}

impl Aggregate {
    fn from_meta(meta: &ChannelMeta) -> Self {
        Aggregate {
            hash: meta.shape_hash(),
            dims: meta.dims.clone(),
            coverage: meta.size,
            is_maximal: true,
        }
    }

    /// Whether `self` and `other` may combine (disjoint stride sets).
    pub fn disjoint(&self, other: &Aggregate) -> bool {
        !self.dims.iter().any(|(s, _)| other.dims.iter().any(|(t, _)| s == t))
    }

    fn combined(&self, other: &Aggregate) -> Aggregate {
        let mut dims = self.dims.clone();
        dims.extend_from_slice(&other.dims);
        dims.sort_unstable();
        Aggregate {
            hash: self.hash ^ other.hash,
            dims,
            coverage: self.coverage * other.coverage,
            is_maximal: true,
        }
    }
}

/// Per-rank registry of channels and their aggregates.
#[derive(Debug, Clone)]
pub struct ChannelRegistry {
    world_size: usize,
    aggregates: FnvMap<u64, Aggregate>,
}

impl ChannelRegistry {
    /// Create the registry with the world channel pre-registered (the paper's
    /// `MPI_Init` interception).
    pub fn new(world_size: usize) -> Self {
        let mut r = ChannelRegistry { world_size, aggregates: FnvMap::default() };
        r.register(&ChannelMeta::from_sorted_ranks(&(0..world_size).collect::<Vec<_>>()));
        r
    }

    /// Number of world ranks.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Register a new communicator's channel (the `MPI_Comm_split`
    /// interception): insert it and recursively build combined aggregates
    /// with every existing disjoint aggregate.
    pub fn register(&mut self, meta: &ChannelMeta) {
        if meta.irregular || meta.size == 0 {
            return;
        }
        let chan = Aggregate::from_meta(meta);
        if self.aggregates.contains_key(&chan.hash) {
            return;
        }
        // Combine with existing aggregates where the stride sets are disjoint
        // and the result still fits in the machine.
        let mut new_aggs: Vec<Aggregate> = vec![chan.clone()];
        for agg in self.aggregates.values() {
            if agg.disjoint(&chan) && agg.coverage * chan.coverage <= self.world_size {
                let combined = agg.combined(&chan);
                if !self.aggregates.contains_key(&combined.hash) {
                    new_aggs.push(combined);
                }
            }
        }
        for mut a in new_aggs {
            a.is_maximal = true;
            self.aggregates.insert(a.hash, a);
        }
        self.recompute_maximality();
    }

    fn recompute_maximality(&mut self) {
        let hashes: Vec<u64> = self.aggregates.keys().copied().collect();
        for h in hashes {
            let covered_by_super = {
                let me = &self.aggregates[&h];
                self.aggregates.values().any(|other| {
                    other.hash != me.hash
                        && other.coverage > me.coverage
                        && me.dims.iter().all(|d| other.dims.contains(d))
                })
            };
            self.aggregates.get_mut(&h).unwrap().is_maximal = !covered_by_super;
        }
    }

    /// All registered aggregates.
    pub fn aggregates(&self) -> impl Iterator<Item = &Aggregate> {
        self.aggregates.values()
    }

    /// Whether some registered aggregate covers the whole machine.
    pub fn has_full_coverage(&self) -> bool {
        self.aggregates.values().any(|a| a.coverage >= self.world_size)
    }

    /// Per-kernel coverage step: given a kernel's already-covered strides and
    /// coverage product, decide whether aggregating across a communicator of
    /// shape `meta` extends coverage. Returns the new `(strides, coverage)` if
    /// it does, `None` if the channel overlaps what is already covered.
    pub fn extend_coverage(
        &self,
        covered_strides: &[u64],
        coverage: u64,
        meta: &ChannelMeta,
    ) -> Option<(Vec<u64>, u64)> {
        if meta.irregular {
            return None;
        }
        if meta.dims.iter().any(|&(s, _)| covered_strides.contains(&(s as u64))) {
            return None;
        }
        let mut strides = covered_strides.to_vec();
        strides.extend(meta.dims.iter().map(|&(s, _)| s as u64));
        let cov = (coverage * meta.size as u64).min(self.world_size as u64);
        Some((strides, cov))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(ranks: &[usize]) -> ChannelMeta {
        ChannelMeta::from_sorted_ranks(ranks)
    }

    #[test]
    fn world_is_registered_at_init() {
        let r = ChannelRegistry::new(8);
        assert!(r.has_full_coverage());
        assert_eq!(r.aggregates().count(), 1);
    }

    #[test]
    fn row_and_column_combine_to_grid() {
        let mut r = ChannelRegistry::new(16);
        let row = meta(&[0, 1, 2, 3]); // stride 1, size 4
        let col = meta(&[0, 4, 8, 12]); // stride 4, size 4
        r.register(&row);
        r.register(&col);
        // world + row + col + (row×col) — and row×col covers the machine.
        let full: Vec<&Aggregate> = r.aggregates().filter(|a| a.coverage == 16).collect();
        assert!(full.len() >= 2, "combined aggregate should cover all 16 ranks");
        let combined =
            r.aggregates().find(|a| a.dims == vec![(1, 4), (4, 4)]).expect("row x col aggregate");
        assert_eq!(combined.hash, row.shape_hash() ^ col.shape_hash());
    }

    #[test]
    fn overlapping_channels_do_not_combine() {
        let mut r = ChannelRegistry::new(16);
        r.register(&meta(&[0, 1, 2, 3]));
        r.register(&meta(&[0, 1])); // stride 1 again — overlaps
        assert!(!r.aggregates().any(|a| a.dims == vec![(1, 2), (1, 4)]));
    }

    #[test]
    fn sub_aggregates_lose_maximality() {
        let mut r = ChannelRegistry::new(16);
        let row = meta(&[0, 1, 2, 3]);
        let col = meta(&[0, 4, 8, 12]);
        r.register(&row);
        r.register(&col);
        let row_agg = r.aggregates().find(|a| a.dims == vec![(1, 4)]).unwrap();
        assert!(!row_agg.is_maximal, "row is contained in row×col");
    }

    #[test]
    fn irregular_channels_are_ignored() {
        let mut r = ChannelRegistry::new(8);
        let before = r.aggregates().count();
        r.register(&meta(&[0, 1, 3, 6]));
        assert_eq!(r.aggregates().count(), before);
    }

    #[test]
    fn kernel_coverage_extends_across_disjoint_dims() {
        let r = ChannelRegistry::new(16);
        let row = meta(&[0, 1, 2, 3]);
        let col = meta(&[0, 4, 8, 12]);
        let (s1, c1) = r.extend_coverage(&[], 1, &row).unwrap();
        assert_eq!(c1, 4);
        let (s2, c2) = r.extend_coverage(&s1, c1, &col).unwrap();
        assert_eq!(c2, 16);
        assert!(s2.contains(&1) && s2.contains(&4));
        // Re-covering the same stride is rejected.
        assert!(r.extend_coverage(&s2, c2, &row).is_none());
    }

    #[test]
    fn coverage_saturates_at_world() {
        let r = ChannelRegistry::new(8);
        let world = meta(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let (_, c) = r.extend_coverage(&[], 4, &world).unwrap();
        assert_eq!(c, 8, "coverage clamps to world size");
    }

    #[test]
    fn three_d_grid_aggregation() {
        // 2x2x2 grid: three fiber channels with strides 1, 2, 4.
        let mut r = ChannelRegistry::new(8);
        r.register(&meta(&[0, 1]));
        r.register(&meta(&[0, 2]));
        r.register(&meta(&[0, 4]));
        let full =
            r.aggregates().find(|a| a.dims == vec![(1, 2), (2, 2), (4, 2)]).expect("3D aggregate");
        assert_eq!(full.coverage, 8);
        assert!(full.is_maximal);
    }
}

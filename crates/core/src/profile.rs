//! Per-rank kernel performance state: the paper's `K̄` (local statistics) and
//! `K̃` (current sub-critical-path execution counts).

use critter_stats::{ConfidenceInterval, ConfidenceLevel, OnlineStats};

use crate::extrapolate::ExtrapolationTable;
use crate::fnv::FnvMap;
use crate::signature::KernelSig;

/// Local performance model of one kernel signature (an entry of `K̄`).
#[derive(Debug, Clone)]
pub struct KernelModel {
    /// The signature (kept for reporting).
    pub sig: KernelSig,
    /// Single-pass statistics over executed samples.
    pub stats: OnlineStats,
    /// Times this kernel was *scheduled* during the current tuning iteration
    /// (executed or skipped) — used by the execute-at-least-once rule.
    pub scheduled_this_config: u64,
    /// Times this kernel was *executed* during the current tuning iteration.
    pub executed_this_config: u64,
    /// Eager propagation: fraction of the machine this kernel's statistics
    /// have been propagated across, as a covered-rank product. The kernel may
    /// be switched off globally once coverage reaches the world size.
    pub eager_coverage: u64,
    /// Eager propagation: permanently switched off.
    pub eager_off: bool,
    /// Eager propagation: strides of the grid dimensions across which this
    /// kernel's statistics have already been aggregated.
    pub eager_strides: Vec<u64>,
}

impl KernelModel {
    /// A fresh (sample-less) model of `sig` — the state every entry of `K̄`
    /// starts from, and the base the profile-restore path fills in.
    pub fn from_sig(sig: KernelSig) -> Self {
        KernelModel {
            sig,
            stats: OnlineStats::new(),
            scheduled_this_config: 0,
            executed_this_config: 0,
            eager_coverage: 1,
            eager_off: false,
            eager_strides: Vec::new(),
        }
    }

    fn new(sig: KernelSig) -> Self {
        Self::from_sig(sig)
    }

    /// Confidence interval on the mean under `level`.
    pub fn interval(&self, level: &ConfidenceLevel) -> ConfidenceInterval {
        ConfidenceInterval::from_stats(&self.stats, level)
    }
}

/// A rank's complete kernel-performance state, persisted across tuning
/// iterations when the policy reuses models (eager propagation on Capital).
#[derive(Debug, Clone, Default)]
pub struct KernelStore {
    /// `K̄`: local models keyed by signature key.
    pub local: FnvMap<u64, KernelModel>,
    /// `K̃`: per-kernel `(execution count, accumulated time)` along the
    /// current sub-critical path — the online critical-path profile.
    pub path_counts: FnvMap<u64, (u64, f64)>,
    /// A-priori propagation: critical-path counts captured by the offline
    /// iteration, applied immediately during the tuning run.
    pub apriori_counts: FnvMap<u64, u64>,
    /// §VIII extension: per-routine-family time-vs-flops fits.
    pub extrapolation: ExtrapolationTable,
}

impl KernelStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the local model for `sig`.
    pub fn model_mut(&mut self, sig: &KernelSig) -> &mut KernelModel {
        self.local.entry(sig.key()).or_insert_with(|| KernelModel::new(sig.clone()))
    }

    /// Look up the local model by key.
    pub fn model(&self, key: u64) -> Option<&KernelModel> {
        self.local.get(&key)
    }

    /// Record a measured execution time for `sig`.
    pub fn record(&mut self, sig: &KernelSig, time: f64) {
        let m = self.model_mut(sig);
        m.stats.push(time);
        m.executed_this_config += 1;
    }

    /// Count one scheduled occurrence (executed or skipped) of `sig` on the
    /// local path; returns the updated path count.
    pub fn schedule(&mut self, sig: &KernelSig) -> u64 {
        let key = sig.key();
        self.model_mut(sig).scheduled_this_config += 1;
        let c = self.path_counts.entry(key).or_insert((0, 0.0));
        c.0 += 1;
        c.0
    }

    /// Attribute `time` seconds contributed by kernel `key` to the local
    /// sub-critical-path profile.
    pub fn attribute_path_time(&mut self, key: u64, time: f64) {
        self.path_counts.entry(key).or_insert((0, 0.0)).1 += time;
    }

    /// Current path count (`K̃` frequency) of a kernel.
    pub fn path_count(&self, key: u64) -> u64 {
        self.path_counts.get(&key).map(|&(c, _)| c).unwrap_or(0)
    }

    /// Replace `K̃` wholesale with a winning remote path (longest-path
    /// propagation: the loser adopts the winner's kernel frequencies and
    /// per-kernel path times).
    pub fn adopt_path(&mut self, entries: impl Iterator<Item = (u64, u64, f64)>) {
        self.path_counts.clear();
        for (key, freq, time) in entries {
            self.path_counts.insert(key, (freq, time));
        }
    }

    /// The current path profile sorted by contributed time, largest first.
    pub fn path_profile(&self) -> Vec<(u64, u64, f64)> {
        let mut v: Vec<(u64, u64, f64)> =
            self.path_counts.iter().map(|(&k, &(c, t))| (k, c, t)).collect();
        v.sort_by(|a, b| b.2.total_cmp(&a.2));
        v
    }

    /// Reset per-configuration state: path counts and per-config execution
    /// counters. Sample statistics are kept or dropped per `keep_models`
    /// (the paper resets all statistics between configurations for SLATE and
    /// CANDMC, and lets eager propagation reuse models for Capital).
    pub fn start_config(&mut self, keep_models: bool) {
        self.path_counts.clear();
        if keep_models {
            for m in self.local.values_mut() {
                m.scheduled_this_config = 0;
                m.executed_this_config = 0;
            }
        } else {
            self.local.clear();
            self.extrapolation.clear();
        }
    }

    /// Snapshot the current path counts into the a-priori table (end of the
    /// offline iteration of *a-priori propagation*).
    pub fn capture_apriori(&mut self) {
        self.apriori_counts = self.path_counts.iter().map(|(&k, &(c, _))| (k, c)).collect();
    }

    /// Total executed kernel time accumulated in the local models.
    pub fn total_sampled_time(&self) -> f64 {
        self.local.values().map(|m| m.stats.total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::ComputeOp;

    fn sig() -> KernelSig {
        KernelSig::compute(ComputeOp::Gemm, 8, 8, 8)
    }

    #[test]
    fn record_accumulates() {
        let mut s = KernelStore::new();
        s.record(&sig(), 1.0);
        s.record(&sig(), 3.0);
        let m = s.model(sig().key()).unwrap();
        assert_eq!(m.stats.count(), 2);
        assert_eq!(m.stats.mean(), 2.0);
        assert_eq!(m.executed_this_config, 2);
    }

    #[test]
    fn schedule_counts_path() {
        let mut s = KernelStore::new();
        assert_eq!(s.schedule(&sig()), 1);
        assert_eq!(s.schedule(&sig()), 2);
        assert_eq!(s.path_count(sig().key()), 2);
    }

    #[test]
    fn adopt_path_replaces() {
        let mut s = KernelStore::new();
        s.schedule(&sig());
        s.adopt_path(vec![(42u64, 7u64, 1.5)].into_iter());
        assert_eq!(s.path_count(42), 7);
        assert_eq!(s.path_profile()[0], (42, 7, 1.5));
        assert_eq!(s.path_count(sig().key()), 0);
    }

    #[test]
    fn start_config_keep_models() {
        let mut s = KernelStore::new();
        s.record(&sig(), 1.0);
        s.schedule(&sig());
        s.start_config(true);
        assert_eq!(s.path_count(sig().key()), 0);
        let m = s.model(sig().key()).unwrap();
        assert_eq!(m.stats.count(), 1, "samples persist");
        assert_eq!(m.scheduled_this_config, 0);
    }

    #[test]
    fn start_config_reset_models() {
        let mut s = KernelStore::new();
        s.record(&sig(), 1.0);
        s.start_config(false);
        assert!(s.model(sig().key()).is_none());
    }

    #[test]
    fn apriori_capture() {
        let mut s = KernelStore::new();
        s.schedule(&sig());
        s.schedule(&sig());
        s.capture_apriori();
        s.start_config(true);
        assert_eq!(s.apriori_counts.get(&sig().key()), Some(&2));
    }
}

//! FNV-1a hashing for kernel-signature maps.
//!
//! Signature lookups sit on the interception hot path (every kernel and every
//! message), and keys are small integers/enums — exactly the case where the
//! default SipHash is needlessly slow (Rust perf book, "Hashing"). A 20-line
//! FNV-1a hasher keeps the dependency list clean.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `HashMap` keyed with FNV-1a.
pub type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// `HashSet` keyed with FNV-1a.
pub type FnvSet<K> = HashSet<K, BuildHasherDefault<FnvHasher>>;

/// Hash any `Hash` value with FNV-1a to a stable `u64`.
pub fn fnv_hash<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FnvHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_distinguishing() {
        assert_eq!(fnv_hash(&(1u64, 2u64)), fnv_hash(&(1u64, 2u64)));
        assert_ne!(fnv_hash(&(1u64, 2u64)), fnv_hash(&(2u64, 1u64)));
    }

    #[test]
    fn map_works() {
        let mut m: FnvMap<u64, &str> = FnvMap::default();
        m.insert(42, "x");
        assert_eq!(m.get(&42), Some(&"x"));
    }
}

//! Selective-execution policies and framework configuration (§IV-B).

use critter_stats::ConfidenceLevel;

use crate::extrapolate::ExtrapolationConfig;
use crate::signature::SizeGranularity;

/// The kernel-execution policies the paper evaluates (§IV-B), plus the
/// full-execution baseline.
///
/// # Examples
///
/// ```
/// use critter_core::ExecutionPolicy;
///
/// // Only online propagation adopts the remote winner's path counts during
/// // the longest-path reduction (besides the full/offline recording pass).
/// assert!(ExecutionPolicy::OnlinePropagation.adopts_remote_path());
/// assert!(!ExecutionPolicy::LocalPropagation.adopts_remote_path());
///
/// // A-priori propagation pays an extra offline full execution up front.
/// assert!(ExecutionPolicy::APrioriPropagation.needs_offline_pass());
///
/// // The paper evaluates five selective policies against the baseline.
/// assert_eq!(ExecutionPolicy::ALL_SELECTIVE.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionPolicy {
    /// Execute everything; collect statistics and paths but never skip.
    /// This is the paper's red reference line and the offline pass of
    /// *a-priori propagation*.
    Full,
    /// *Conditional execution*: skip only when the kernel's own confidence
    /// interval meets ε — no execution-count scaling, no count propagation.
    ConditionalExecution,
    /// *Local propagation*: scale the criterion by the kernel's locally
    /// observed path count; never adopt remote paths' counts.
    LocalPropagation,
    /// *Online propagation*: scale by the critical-path execution count,
    /// adopted on-line from whichever execution path currently dominates.
    OnlinePropagation,
    /// *A-priori propagation*: an initial full execution captures the
    /// critical-path counts, which then apply from the first tuning step.
    APrioriPropagation,
    /// *Eager propagation*: skip a kernel everywhere once one processor deems
    /// it predictable and its statistics have been propagated across a set of
    /// channels covering the whole processor grid. Models persist across
    /// configurations; kernels stay off permanently.
    EagerPropagation,
}

impl ExecutionPolicy {
    /// All selective policies, in the paper's presentation order.
    pub const ALL_SELECTIVE: [ExecutionPolicy; 5] = [
        ExecutionPolicy::ConditionalExecution,
        ExecutionPolicy::LocalPropagation,
        ExecutionPolicy::OnlinePropagation,
        ExecutionPolicy::APrioriPropagation,
        ExecutionPolicy::EagerPropagation,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionPolicy::Full => "full execution",
            ExecutionPolicy::ConditionalExecution => "conditional execution",
            ExecutionPolicy::LocalPropagation => "local propagation",
            ExecutionPolicy::OnlinePropagation => "online propagation",
            ExecutionPolicy::APrioriPropagation => "a priori propagation",
            ExecutionPolicy::EagerPropagation => "eager propagation",
        }
    }

    /// Parse a [`name`](Self::name) back to the policy (reports and CLI
    /// flags round-trip through this).
    pub fn from_name(s: &str) -> Option<ExecutionPolicy> {
        Some(match s {
            "full execution" => ExecutionPolicy::Full,
            "conditional execution" => ExecutionPolicy::ConditionalExecution,
            "local propagation" => ExecutionPolicy::LocalPropagation,
            "online propagation" => ExecutionPolicy::OnlinePropagation,
            "a priori propagation" => ExecutionPolicy::APrioriPropagation,
            "eager propagation" => ExecutionPolicy::EagerPropagation,
            _ => return None,
        })
    }

    /// Whether this policy adopts the remote winner's `K̃` during the
    /// longest-path reduction (only *online propagation* does, plus the
    /// full/offline pass that records a-priori counts).
    pub fn adopts_remote_path(self) -> bool {
        matches!(self, ExecutionPolicy::OnlinePropagation | ExecutionPolicy::Full)
    }

    /// Whether every kernel must execute at least once per tuning iteration
    /// (§VI-A: all methods except eager propagation).
    pub fn executes_once_per_config(self) -> bool {
        !matches!(self, ExecutionPolicy::EagerPropagation | ExecutionPolicy::Full)
    }

    /// Whether kernel models persist across configurations by default.
    pub fn reuses_models(self) -> bool {
        matches!(self, ExecutionPolicy::EagerPropagation)
    }

    /// Whether an extra offline full execution is required before tuning.
    pub fn needs_offline_pass(self) -> bool {
        matches!(self, ExecutionPolicy::APrioriPropagation)
    }
}

/// Configuration of the Critter environment.
///
/// # Examples
///
/// ```
/// use critter_core::{CritterConfig, ExecutionPolicy};
///
/// // The paper's defaults: 95% confidence, two samples minimum, internal
/// // messages charged at their compact wire size.
/// let cfg = CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.25);
/// assert_eq!(cfg.confidence, 0.95);
/// assert_eq!(cfg.min_samples, 2);
/// assert!(cfg.charge_internal);
///
/// // `with_*` builders toggle the ablation switches and the observability
/// // layer — the one builder vocabulary shared with `TuningOptions` and
/// // `SessionConfig`.
/// let cfg = cfg.with_internal_charging(false).with_obs();
/// assert!(!cfg.charge_internal);
/// assert!(cfg.obs);
///
/// // The full-execution baseline never skips, so ε is irrelevant.
/// assert_eq!(CritterConfig::full().policy, ExecutionPolicy::Full);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CritterConfig {
    /// The selective-execution policy.
    pub policy: ExecutionPolicy,
    /// Confidence tolerance ε: a kernel becomes predictable when the relative
    /// (possibly path-count-scaled) confidence-interval size drops below it.
    pub epsilon: f64,
    /// Confidence level for the intervals (the paper uses 95%).
    pub confidence: f64,
    /// Minimum samples before a kernel may be considered predictable.
    pub min_samples: u64,
    /// Whether internal (profiling) messages are charged communication time.
    /// True models real piggyback traffic; false isolates pure algorithmic
    /// effects (the overhead ablation).
    pub charge_internal: bool,
    /// Wire-size cap (in words) for charged internal messages. The real
    /// Critter piggybacks compact fixed-size profile arrays; our serialized
    /// `K̃` payloads are semantically equivalent but verbose, so their cost is
    /// charged at the compact size to keep the modeled overhead faithful.
    pub internal_words_cap: usize,
    /// Message-size granularity of communication-kernel signatures.
    pub granularity: SizeGranularity,
    /// §VIII extension: extrapolate computation-kernel performance across
    /// input sizes with per-routine-family line fits, allowing under-sampled
    /// signatures (e.g. CANDMC's shrinking trailing matrix) to be skipped.
    /// `None` (the default) reproduces the paper's per-signature behavior.
    pub extrapolate: Option<ExtrapolationConfig>,
    /// Record a per-rank chronological event trace (offline analysis /
    /// debugging; adds memory proportional to the number of interceptions).
    pub trace: bool,
    /// Record structured observability events and metrics (`critter-obs`):
    /// every interception point emits a virtual-clock-stamped event into a
    /// per-rank buffer that surfaces as `CritterReport::obs`. Deterministic
    /// (see `docs/OBSERVABILITY.md`); adds memory proportional to the
    /// number of interceptions.
    pub obs: bool,
    /// Pre-size hint (in events) for the per-rank observability buffers.
    /// Capacity never affects recorded contents — callers (the autotune
    /// driver) feed back the event count of earlier repetitions so later
    /// ones skip the buffer's growth reallocations. `0` means no hint.
    pub obs_capacity: usize,
}

impl CritterConfig {
    /// Config for `policy` at tolerance ε with the paper's defaults.
    pub fn new(policy: ExecutionPolicy, epsilon: f64) -> Self {
        CritterConfig {
            policy,
            epsilon,
            confidence: 0.95,
            min_samples: 2,
            charge_internal: true,
            internal_words_cap: 32,
            granularity: SizeGranularity::Exact,
            extrapolate: None,
            trace: false,
            obs: false,
            obs_capacity: 0,
        }
    }

    /// Enable per-rank event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enable structured observability recording (`critter-obs` events and
    /// metrics in `CritterReport::obs`).
    pub fn with_obs(mut self) -> Self {
        self.obs = true;
        self
    }

    /// Pre-size the per-rank observability event buffers for `capacity`
    /// events. A pure allocation hint: recorded contents are identical for
    /// every capacity value.
    pub fn with_obs_capacity(mut self, capacity: usize) -> Self {
        self.obs_capacity = capacity;
        self
    }

    /// Enable the §VIII input-size extrapolation extension.
    pub fn with_extrapolation(mut self) -> Self {
        self.extrapolate = Some(ExtrapolationConfig::default());
        self
    }

    /// The full-execution baseline (never skips; ε is irrelevant).
    pub fn full() -> Self {
        CritterConfig::new(ExecutionPolicy::Full, 0.0)
    }

    /// Set whether internal (profiling) messages are charged communication
    /// time. `false` is the overhead ablation.
    pub fn with_internal_charging(mut self, charge: bool) -> Self {
        self.charge_internal = charge;
        self
    }

    /// Set the confidence level of the per-kernel intervals (paper: 0.95).
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Set the minimum samples before a kernel may be deemed predictable.
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Use log2 message-size buckets (granularity ablation).
    pub fn with_log2_sizes(mut self) -> Self {
        self.granularity = SizeGranularity::Log2;
        self
    }

    /// Construct the confidence-level helper for this configuration.
    pub fn level(&self) -> ConfidenceLevel {
        ConfidenceLevel::new(self.confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_traits_match_paper() {
        use ExecutionPolicy::*;
        assert!(OnlinePropagation.adopts_remote_path());
        assert!(!LocalPropagation.adopts_remote_path());
        assert!(!ConditionalExecution.adopts_remote_path());
        assert!(ConditionalExecution.executes_once_per_config());
        assert!(!EagerPropagation.executes_once_per_config());
        assert!(EagerPropagation.reuses_models());
        assert!(APrioriPropagation.needs_offline_pass());
        assert!(!OnlinePropagation.needs_offline_pass());
    }

    #[test]
    fn config_defaults() {
        let c = CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.25);
        assert_eq!(c.confidence, 0.95);
        assert_eq!(c.min_samples, 2);
        assert!(c.charge_internal);
        assert!(!c.with_internal_charging(false).charge_internal);
    }

    #[test]
    fn policy_names_invert() {
        let mut all = ExecutionPolicy::ALL_SELECTIVE.to_vec();
        all.push(ExecutionPolicy::Full);
        for p in all {
            assert_eq!(ExecutionPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(ExecutionPolicy::from_name("bogus"), None);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> =
            ExecutionPolicy::ALL_SELECTIVE.iter().map(|p| p.name()).collect();
        names.push(ExecutionPolicy::Full.name());
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}

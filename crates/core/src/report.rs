//! Path metrics and per-run reports.

use crate::error::{CritterError, Result};

/// Cost metrics accumulated along a rank's current sub-critical path and
/// propagated by elementwise maximum at every intercepted communication —
/// the independent-max counterpart of the winner-takes-all execution-time
/// path (different metrics may be maximized by different paths, Fig. 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathMetrics {
    /// Words communicated along the path (BSP `W`).
    pub comm_words: f64,
    /// Communication operations along the path (BSP synchronization count `S`).
    pub syncs: f64,
    /// Flops along the path (BSP `F`).
    pub flops: f64,
    /// Predicted computation-kernel time along the path (seconds).
    pub comp_time: f64,
    /// Predicted communication-kernel time along the path (seconds).
    pub comm_time: f64,
}

impl PathMetrics {
    pub(crate) const LEN: usize = 5;

    pub(crate) fn to_array(self) -> [f64; Self::LEN] {
        [self.comm_words, self.syncs, self.flops, self.comp_time, self.comm_time]
    }

    pub(crate) fn from_array(a: [f64; Self::LEN]) -> Self {
        PathMetrics { comm_words: a[0], syncs: a[1], flops: a[2], comp_time: a[3], comm_time: a[4] }
    }

    /// JSON object with one key per metric (sorted keys, deterministic
    /// shortest-round-trip float formatting).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "comm_time": self.comm_time,
            "comm_words": self.comm_words,
            "comp_time": self.comp_time,
            "flops": self.flops,
            "syncs": self.syncs,
        })
    }

    /// Restore metrics bit-exactly from [`PathMetrics::to_json`] output.
    pub fn from_json(v: &serde_json::Value) -> Result<PathMetrics> {
        let get = |key: &str| {
            v.get(key)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| CritterError::schema("path metrics", format!("bad key `{key}`")))
        };
        Ok(PathMetrics {
            comm_words: get("comm_words")?,
            syncs: get("syncs")?,
            flops: get("flops")?,
            comp_time: get("comp_time")?,
            comm_time: get("comm_time")?,
        })
    }

    /// Elementwise maximum (the independent-max propagation rule).
    pub fn max(self, o: PathMetrics) -> PathMetrics {
        PathMetrics {
            comm_words: self.comm_words.max(o.comm_words),
            syncs: self.syncs.max(o.syncs),
            flops: self.flops.max(o.flops),
            comp_time: self.comp_time.max(o.comp_time),
            comm_time: self.comm_time.max(o.comm_time),
        }
    }
}

/// What one rank reports at the end of a profiled run.
///
/// `PartialEq` is bit-exact on the float fields — the determinism contract
/// (counter-based noise keyed by operation identity, never thread schedule)
/// promises identical reports across reruns, and the testkit's perturbation
/// fuzzer asserts exactly that.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CritterReport {
    /// Predicted critical-path execution time (`P.exec_time` after the final
    /// propagation): executed kernels contribute measured time, skipped ones
    /// their modeled mean.
    pub predicted_time: f64,
    /// Critical-path cost metrics after the final propagation.
    pub path: PathMetrics,
    /// This rank's locally *executed* kernel time (computation).
    pub local_comp_executed: f64,
    /// This rank's locally executed communication-kernel time.
    pub local_comm_executed: f64,
    /// This rank's predicted local kernel time (executed + skipped means),
    /// computation part.
    pub local_comp_predicted: f64,
    /// Predicted local communication-kernel time.
    pub local_comm_predicted: f64,
    /// Kernels executed on this rank during the run.
    pub kernels_executed: u64,
    /// Kernels skipped on this rank during the run.
    pub kernels_skipped: u64,
    /// Words of internal (profiling) traffic this rank contributed.
    pub internal_words: u64,
    /// Number of distinct kernel signatures seen locally.
    pub distinct_kernels: u64,
    /// The critical-path kernel profile after the final propagation: up to the
    /// ten largest contributors as `(label, path count, path time)` — the
    /// paper's per-kernel critical-path performance profile.
    pub top_kernels: Vec<(String, u64, f64)>,
    /// Per-rank chronological event trace (only when tracing is enabled).
    pub trace: crate::trace::Trace,
    /// Structured observability trace and metrics (only when
    /// [`crate::CritterConfig::obs`] is set). Like `trace`, this is a
    /// debugging/analysis surface and is intentionally excluded from
    /// [`CritterReport::to_json`]; the autotuner assembles per-run traces
    /// into a global timeline instead (`critter_obs::ObsReport`).
    pub obs: Option<critter_obs::RankTrace>,
    /// Mean over ranks of locally executed kernel time (busy time).
    pub mean_busy: f64,
    /// Maximum over ranks of locally executed kernel time.
    pub max_busy: f64,
}

impl CritterReport {
    /// Load imbalance of executed kernel time: `max_busy / mean_busy`
    /// (1.0 = perfectly balanced; meaningful for full executions).
    pub fn imbalance(&self) -> f64 {
        if self.mean_busy <= 0.0 {
            1.0
        } else {
            self.max_busy / self.mean_busy
        }
    }

    /// Fraction of kernel invocations that were skipped.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.kernels_executed + self.kernels_skipped;
        if total == 0 {
            0.0
        } else {
            self.kernels_skipped as f64 / total as f64
        }
    }

    /// Structured JSON rendering of the report — the golden-snapshot surface.
    ///
    /// Keys are sorted and floats print in shortest-round-trip form, so equal
    /// reports serialize to byte-identical text. The per-event trace is
    /// summarized by its length rather than dumped (traces are a debugging
    /// aid, not part of the stable report surface).
    pub fn to_json(&self) -> serde_json::Value {
        let kernels: Vec<serde_json::Value> = self
            .top_kernels
            .iter()
            .map(|&(ref label, count, time)| {
                serde_json::json!({ "count": count, "label": label.as_str(), "path_time": time })
            })
            .collect();
        serde_json::json!({
            "distinct_kernels": self.distinct_kernels,
            "internal_words": self.internal_words,
            "kernels_executed": self.kernels_executed,
            "kernels_skipped": self.kernels_skipped,
            "local_comm_executed": self.local_comm_executed,
            "local_comm_predicted": self.local_comm_predicted,
            "local_comp_executed": self.local_comp_executed,
            "local_comp_predicted": self.local_comp_predicted,
            "max_busy": self.max_busy,
            "mean_busy": self.mean_busy,
            "path": self.path.to_json(),
            "predicted_time": self.predicted_time,
            "top_kernels": kernels,
            "trace_events": self.trace.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_roundtrip_array() {
        let m =
            PathMetrics { comm_words: 1.0, syncs: 2.0, flops: 3.0, comp_time: 4.0, comm_time: 5.0 };
        assert_eq!(PathMetrics::from_array(m.to_array()), m);
    }

    #[test]
    fn metrics_roundtrip_json_bit_exactly() {
        let m = PathMetrics {
            comm_words: 1024.0,
            syncs: 17.0,
            flops: 3.5e9,
            comp_time: 0.1 + 0.2, // a value with no short decimal form
            comm_time: 1.0 / 3.0,
        };
        let text = serde_json::to_string(&m.to_json()).unwrap();
        let back = PathMetrics::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, m);
        assert!(PathMetrics::from_json(&serde_json::json!({ "syncs": 1.0 })).is_err());
    }

    #[test]
    fn max_is_elementwise() {
        let a = PathMetrics { comm_words: 1.0, syncs: 9.0, ..Default::default() };
        let b = PathMetrics { comm_words: 5.0, syncs: 2.0, ..Default::default() };
        let m = a.max(b);
        assert_eq!(m.comm_words, 5.0);
        assert_eq!(m.syncs, 9.0);
    }

    #[test]
    fn to_json_is_deterministic_and_sorted() {
        let r = CritterReport {
            predicted_time: 1.25,
            kernels_executed: 3,
            top_kernels: vec![("gemm[8x8x8]".into(), 4, 0.5)],
            ..Default::default()
        };
        let a = serde_json::to_string_pretty(&r.to_json()).unwrap();
        let b = serde_json::to_string_pretty(&r.clone().to_json()).unwrap();
        assert_eq!(a, b);
        // Keys emerge sorted, so the serialization is canonical.
        let i_pred = a.find("\"predicted_time\"").unwrap();
        let i_kern = a.find("\"kernels_executed\"").unwrap();
        assert!(i_kern < i_pred);
        assert!(a.contains("\"gemm[8x8x8]\""));
    }

    #[test]
    fn skip_fraction() {
        let r = CritterReport { kernels_executed: 3, kernels_skipped: 1, ..Default::default() };
        assert_eq!(r.skip_fraction(), 0.25);
        assert_eq!(CritterReport::default().skip_fraction(), 0.0);
    }
}

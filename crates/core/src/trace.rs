//! Per-rank event tracing — the offline-analysis counterpart of Critter's
//! online path analysis (§II notes offline mechanisms save profiling data for
//! later passes; this is the equivalent hook for debugging and visualizing a
//! simulated schedule).
//!
//! Tracing is opt-in (`CritterConfig::trace`): every intercepted kernel —
//! executed or skipped — appends one [`TraceEvent`] with its virtual-time
//! span. The trace rides in the per-rank [`crate::CritterReport`].

use crate::fnv::FnvMap;

/// One intercepted kernel occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Kernel signature label (e.g. `gemm[64x64x64]`, `bcast[w=512,p=4,s=1]`).
    pub label: String,
    /// Virtual time at which the interception began.
    pub start: f64,
    /// Measured duration (0 for skipped kernels, whose clock does not move).
    pub duration: f64,
    /// Time charged to the critical-path prediction (measured when executed,
    /// the model mean when skipped).
    pub predicted: f64,
    /// Whether the kernel actually executed.
    pub executed: bool,
    /// Whether this is a communication kernel.
    pub is_comm: bool,
}

/// A rank's chronological event trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (events arrive in virtual-time order per rank).
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// All events, chronologically.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Aggregate by label: `(label, occurrences, executed, total duration,
    /// total predicted)`, sorted by total predicted time descending.
    pub fn by_kernel(&self) -> Vec<(String, u64, u64, f64, f64)> {
        let mut agg: FnvMap<&str, (u64, u64, f64, f64)> = FnvMap::default();
        for e in &self.events {
            let a = agg.entry(e.label.as_str()).or_insert((0, 0, 0.0, 0.0));
            a.0 += 1;
            a.1 += e.executed as u64;
            a.2 += e.duration;
            a.3 += e.predicted;
        }
        let mut v: Vec<(String, u64, u64, f64, f64)> = agg
            .into_iter()
            .map(|(label, (n, ex, d, p))| (label.to_string(), n, ex, d, p))
            .collect();
        v.sort_by(|a, b| b.4.total_cmp(&a.4));
        v
    }

    /// Render a compact text summary (top `k` kernels by predicted time).
    pub fn render(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<30} {:>7} {:>7} {:>12} {:>12}",
            "kernel", "occurs", "exec", "measured(s)", "predicted(s)"
        );
        for (label, n, ex, d, p) in self.by_kernel().into_iter().take(k) {
            let _ = writeln!(out, "{label:<30} {n:>7} {ex:>7} {d:>12.6} {p:>12.6}");
        }
        out
    }

    /// Fraction of events that were skipped.
    pub fn skip_fraction(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().filter(|e| !e.executed).count() as f64 / self.events.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &str, start: f64, dur: f64, executed: bool) -> TraceEvent {
        TraceEvent {
            label: label.into(),
            start,
            duration: dur,
            predicted: if executed { dur } else { dur + 0.5 },
            executed,
            is_comm: false,
        }
    }

    #[test]
    fn aggregates_by_label() {
        let mut t = Trace::new();
        t.push(ev("gemm[8x8x8]", 0.0, 1.0, true));
        t.push(ev("gemm[8x8x8]", 1.0, 2.0, true));
        t.push(ev("potrf[8x0x0]", 3.0, 4.0, true));
        let agg = t.by_kernel();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].0, "potrf[8x0x0]", "sorted by predicted time");
        let gemm = agg.iter().find(|a| a.0.starts_with("gemm")).unwrap();
        assert_eq!(gemm.1, 2);
        assert_eq!(gemm.3, 3.0);
    }

    #[test]
    fn by_kernel_tolerates_nan_predictions() {
        // Regression: a NaN predicted time (e.g. a degenerate model mean)
        // previously made the sort comparator non-transitive via
        // `partial_cmp(..).unwrap_or(Equal)`. With `total_cmp`, NaN has a
        // defined position and all finite entries stay correctly sorted.
        let mut t = Trace::new();
        t.push(TraceEvent { predicted: f64::NAN, ..ev("nan", 0.0, 0.0, true) });
        t.push(ev("small", 0.0, 1.0, true));
        t.push(ev("big", 0.0, 5.0, true));
        let v = t.by_kernel();
        assert_eq!(v.len(), 3);
        let finite: Vec<&str> =
            v.iter().filter(|x| x.4.is_finite()).map(|x| x.0.as_str()).collect();
        assert_eq!(finite, ["big", "small"]);
        // NaN (positive bit pattern) sorts above +5.0 in descending total order.
        assert_eq!(v[0].0, "nan");
    }

    #[test]
    fn skip_fraction_counts_non_executed() {
        let mut t = Trace::new();
        t.push(ev("a", 0.0, 1.0, true));
        t.push(ev("a", 1.0, 0.0, false));
        t.push(ev("a", 1.0, 0.0, false));
        assert!((t.skip_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn render_contains_labels() {
        let mut t = Trace::new();
        t.push(ev("bcast[w=4,p=2,s=1]", 0.0, 0.5, true));
        let s = t.render(5);
        assert!(s.contains("bcast[w=4,p=2,s=1]"));
        assert!(s.contains("predicted"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.skip_fraction(), 0.0);
        assert!(t.by_kernel().is_empty());
    }
}

//! Typed errors for the fallible public surface (persistence, sessions,
//! export).
//!
//! The interception layer itself is infallible by design — it runs inside
//! the simulated ranks where an error has nowhere to go — but everything
//! that touches the filesystem or decodes persisted state returns
//! [`Result`]. The enum is deliberately small and hand-rolled (no derive
//! crate): each variant answers one question a caller can act on — was it
//! the OS ([`Io`](CritterError::Io)), the bytes
//! ([`Parse`](CritterError::Parse)), the document shape
//! ([`Schema`](CritterError::Schema)), or a valid document for the wrong
//! sweep ([`Mismatch`](CritterError::Mismatch))?

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Result alias for critter's fallible entry points.
pub type Result<T> = std::result::Result<T, CritterError>;

/// Error from a persistence, session, or export entry point.
///
/// # Examples
///
/// ```
/// use critter_core::prelude::*;
///
/// fn load(text: &str) -> Result<f64> {
///     let v = serde_json::from_str(text)
///         .map_err(|e| CritterError::parse("profile", e.to_string()))?;
///     v.as_f64().ok_or_else(|| CritterError::schema("profile", "expected a number"))
/// }
///
/// assert_eq!(load("2.5").unwrap(), 2.5);
/// assert!(matches!(load("[oops").unwrap_err(), CritterError::Parse { .. }));
/// assert!(matches!(load("[]").unwrap_err(), CritterError::Schema { .. }));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum CritterError {
    /// A filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A persisted document is not valid JSON.
    Parse {
        /// What was being decoded (a path or a logical name).
        context: String,
        /// Parser diagnostic.
        detail: String,
    },
    /// A persisted document is valid JSON but has the wrong shape, schema
    /// version, or content hash.
    Schema {
        /// What was being decoded (a path or a logical name).
        context: String,
        /// What was wrong.
        detail: String,
    },
    /// A well-formed checkpoint or profile belongs to a different sweep
    /// (its fingerprint disagrees with the running options).
    Mismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The sweep was stopped on purpose by its progress hook (see
    /// `Autotuner::with_progress`): not a failure — completed units are
    /// checkpointed and the sweep resumes from where it stopped.
    Cancelled {
        /// What asked for the stop.
        detail: String,
    },
    /// The sweep was paused by its progress hook to yield to other work
    /// (see `Autotuner::with_progress`): like
    /// [`Cancelled`](Self::Cancelled), a deliberate checkpoint-consistent
    /// stop — but the caller intends to resume, so schedulers re-queue the
    /// work instead of finalizing it.
    Preempted {
        /// What asked for the pause.
        detail: String,
    },
}

impl CritterError {
    /// An [`Io`](Self::Io) error at `path`.
    pub fn io(path: impl AsRef<Path>, source: io::Error) -> Self {
        CritterError::Io { path: path.as_ref().to_path_buf(), source }
    }

    /// A [`Parse`](Self::Parse) error while decoding `context`.
    pub fn parse(context: impl Into<String>, detail: impl Into<String>) -> Self {
        CritterError::Parse { context: context.into(), detail: detail.into() }
    }

    /// A [`Schema`](Self::Schema) error while decoding `context`.
    pub fn schema(context: impl Into<String>, detail: impl Into<String>) -> Self {
        CritterError::Schema { context: context.into(), detail: detail.into() }
    }

    /// A [`Mismatch`](Self::Mismatch) between a document and the live sweep.
    pub fn mismatch(detail: impl Into<String>) -> Self {
        CritterError::Mismatch { detail: detail.into() }
    }

    /// A deliberate [`Cancelled`](Self::Cancelled) stop.
    pub fn cancelled(detail: impl Into<String>) -> Self {
        CritterError::Cancelled { detail: detail.into() }
    }

    /// True for a deliberate [`Cancelled`](Self::Cancelled) stop, so callers
    /// can distinguish "asked to stop" from real failures without matching
    /// on the (non-exhaustive) enum.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, CritterError::Cancelled { .. })
    }

    /// A deliberate [`Preempted`](Self::Preempted) pause.
    pub fn preempted(detail: impl Into<String>) -> Self {
        CritterError::Preempted { detail: detail.into() }
    }

    /// True for a deliberate [`Preempted`](Self::Preempted) pause — "stop
    /// now, resume later" — as opposed to cancellation or a real failure.
    pub fn is_preempted(&self) -> bool {
        matches!(self, CritterError::Preempted { .. })
    }
}

impl fmt::Display for CritterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CritterError::Io { path, source } => {
                write!(f, "io error at {}: {source}", path.display())
            }
            CritterError::Parse { context, detail } => {
                write!(f, "invalid JSON in {context}: {detail}")
            }
            CritterError::Schema { context, detail } => {
                write!(f, "schema error in {context}: {detail}")
            }
            CritterError::Mismatch { detail } => {
                write!(f, "checkpoint/profile mismatch: {detail}")
            }
            CritterError::Cancelled { detail } => {
                write!(f, "sweep cancelled: {detail}")
            }
            CritterError::Preempted { detail } => {
                write!(f, "sweep preempted: {detail}")
            }
        }
    }
}

impl std::error::Error for CritterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CritterError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_contextual() {
        let e = CritterError::io("/tmp/x.json", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("/tmp/x.json"));
        let e = CritterError::parse("profile.json", "bad byte");
        assert!(e.to_string().contains("profile.json"));
        let e = CritterError::schema("ckpt", "missing key `stores`");
        assert!(e.to_string().contains("missing key"));
        let e = CritterError::mismatch("epsilon 0.25 vs 0.5");
        assert!(e.to_string().contains("epsilon"));
        let e = CritterError::cancelled("DELETE /v1/jobs/job-000001");
        assert!(e.is_cancelled());
        assert!(!e.is_preempted());
        assert!(!CritterError::mismatch("d").is_cancelled());
        assert!(e.to_string().contains("cancelled"));
        let e = CritterError::preempted("higher-priority job");
        assert!(e.is_preempted());
        assert!(!e.is_cancelled());
        assert!(e.to_string().contains("preempted"));
    }

    #[test]
    fn io_error_exposes_source() {
        use std::error::Error as _;
        let e = CritterError::io("p", io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(CritterError::mismatch("d").source().is_none());
    }
}

//! Property-based tests of Critter's propagation machinery: serialization
//! roundtrips, combine-operator algebra, channel factorization.

use critter_core::message::{EagerEntry, InternalMsg};
use critter_core::PathMetrics;
use critter_sim::ChannelMeta;
use proptest::prelude::*;

fn arb_metrics() -> impl Strategy<Value = PathMetrics> {
    (0.0f64..1e6, 0.0f64..1e4, 0.0f64..1e9, 0.0f64..1e3, 0.0f64..1e3).prop_map(
        |(w, s, f, ct, mt)| PathMetrics {
            comm_words: w,
            syncs: s,
            flops: f,
            comp_time: ct,
            comm_time: mt,
        },
    )
}

fn arb_msg() -> impl Strategy<Value = InternalMsg> {
    (
        any::<bool>(),
        0.0f64..1e3,
        arb_metrics(),
        proptest::collection::vec((0u64..(1 << 52), 1u64..1000, 0.0f64..100.0), 0..20),
        proptest::collection::vec(
            (0u64..(1 << 52), 1u64..100, 0.0f64..10.0, 0.0f64..5.0, 1u64..64),
            0..8,
        ),
        0u64..100_000,
        any::<bool>(),
    )
        .prop_map(|(vote, exec_time, metrics, path, eager_raw, user_words, reply)| {
            let path = path.into_iter().collect();
            let eager = eager_raw
                .into_iter()
                .map(|(key, count, mean, m2, coverage)| EagerEntry {
                    key,
                    count,
                    mean,
                    m2,
                    coverage,
                })
                .collect();
            InternalMsg { vote, exec_time, metrics, path, eager, user_words, reply_expected: reply }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_roundtrip(msg in arb_msg()) {
        prop_assert_eq!(InternalMsg::decode(&msg.encode()), msg);
    }

    #[test]
    fn combine_is_commutative_in_observables(a in arb_msg(), b in arb_msg()) {
        let ab = a.combine(&b);
        let ba = b.combine(&a);
        prop_assert_eq!(ab.vote, ba.vote);
        prop_assert_eq!(ab.exec_time, ba.exec_time);
        prop_assert_eq!(ab.metrics, ba.metrics);
        // Eager entries are sorted by key, so full equality holds there too.
        prop_assert_eq!(ab.eager.len(), ba.eager.len());
    }

    #[test]
    fn combine_vote_is_or(a in arb_msg(), b in arb_msg()) {
        prop_assert_eq!(a.combine(&b).vote, a.vote || b.vote);
    }

    #[test]
    fn combine_exec_time_is_max(a in arb_msg(), b in arb_msg()) {
        prop_assert_eq!(a.combine(&b).exec_time, a.exec_time.max(b.exec_time));
    }

    #[test]
    fn combine_metrics_dominate_inputs(a in arb_msg(), b in arb_msg()) {
        let c = a.combine(&b);
        for (x, lo) in [
            (c.metrics.comm_words, a.metrics.comm_words.max(b.metrics.comm_words)),
            (c.metrics.syncs, a.metrics.syncs.max(b.metrics.syncs)),
            (c.metrics.flops, a.metrics.flops.max(b.metrics.flops)),
        ] {
            prop_assert_eq!(x, lo);
        }
    }

    #[test]
    fn eager_merge_preserves_count_and_mass(
        key in 0u64..(1 << 52),
        c1 in 1u64..1000, m1 in 0.0f64..10.0,
        c2 in 1u64..1000, m2 in 0.0f64..10.0,
    ) {
        let a = EagerEntry { key, count: c1, mean: m1, m2: 0.0, coverage: 1 };
        let b = EagerEntry { key, count: c2, mean: m2, m2: 0.0, coverage: 2 };
        let m = a.merge(&b);
        prop_assert_eq!(m.count, c1 + c2);
        let mass = c1 as f64 * m1 + c2 as f64 * m2;
        prop_assert!((m.mean * (c1 + c2) as f64 - mass).abs() < 1e-9 * (1.0 + mass.abs()));
        prop_assert!(m.m2 >= -1e-12, "merged spread must be nonnegative");
    }

    #[test]
    fn channel_factorization_roundtrip(
        s1 in 1usize..5, n1 in 2usize..5,
        f2 in 1usize..4, n2 in 2usize..4,
        offset in 0usize..7,
    ) {
        // Build a genuine 2-level strided product and check the decomposition
        // reproduces the member set.
        let s2 = s1 * n1 * f2; // outer stride strictly larger than the inner span
        let mut ranks = Vec::new();
        for j in 0..n2 {
            for i in 0..n1 {
                ranks.push(offset + i * s1 + j * s2);
            }
        }
        ranks.sort_unstable();
        ranks.dedup();
        prop_assume!(ranks.len() == n1 * n2); // distinct members only
        let meta = ChannelMeta::from_sorted_ranks(&ranks);
        prop_assert!(!meta.irregular, "true products must factor");
        prop_assert_eq!(meta.offset, offset);
        prop_assert_eq!(meta.size, n1 * n2);
        // Reconstruct members from the factored dims.
        let mut rebuilt = vec![meta.offset];
        for &(stride, size) in &meta.dims {
            let mut next = Vec::new();
            for &base in &rebuilt {
                for i in 0..size {
                    next.push(base + i * stride);
                }
            }
            rebuilt = next;
        }
        rebuilt.sort_unstable();
        prop_assert_eq!(rebuilt, ranks);
    }
}

//! Allocation-count regression tests for the simulated hot paths.
//!
//! The speed pass eliminated per-event heap allocations from the compute
//! loop (batched noise draws, cached samplers) and from the observability
//! event path (interned `Arc<str>` labels, get-mut-first metrics). These
//! tests pin that property with a counting global allocator: a warmed-up
//! compute loop must allocate nothing at all, and a warmed-up observed
//! kernel loop may allocate only for amortized buffer growth — never per
//! event.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use critter_core::{ComputeOp, CritterConfig, CritterEnv, ExecutionPolicy, KernelStore};
use critter_machine::{KernelClass, MachineModel};
use critter_sim::{run_simulation, RankCtx, SimConfig};

/// Counts allocation events per thread. The rank closures run on their own
/// threads, so a rank reads exactly its own traffic — the harness threads
/// never pollute the count.
struct CountingAlloc;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.with(|c| c.get())
}

#[test]
fn pure_compute_loop_allocates_nothing() {
    // The noisy machine exercises the full sampler path (node factor +
    // per-invocation jitter draw), which must be allocation-free.
    let machine = MachineModel::test_noisy(2, 42).shared();
    let report = run_simulation(SimConfig::new(2), machine, |ctx: &mut RankCtx| {
        // Warm up: first draws may fault in lazy thread state.
        for _ in 0..8 {
            ctx.compute(KernelClass::Gemm, 1.0e6);
        }
        let before = alloc_events();
        for _ in 0..10_000 {
            ctx.compute(KernelClass::Gemm, 1.0e6);
        }
        alloc_events() - before
    });
    for (rank, allocs) in report.outputs.iter().enumerate() {
        assert_eq!(*allocs, 0, "rank {rank}: compute hot path allocated {allocs} times");
    }
}

#[test]
fn observed_kernel_loop_allocates_only_for_buffer_growth() {
    // A single repeated signature through the full interception layer with
    // observability on: after warm-up, labels are interned, metric slots
    // exist, and the Welford state is in place. The only legitimate
    // allocations left are the event buffer's amortized doublings (and the
    // store's occasional rehash) — O(log n) total, not O(n).
    let iters = 4_096u64;
    let machine = MachineModel::test_noisy(1, 7).shared();
    let cfg = CritterConfig::new(ExecutionPolicy::Full, 0.1).with_obs();
    let report = run_simulation(SimConfig::new(1), machine, move |ctx: &mut RankCtx| {
        let mut env = CritterEnv::new(ctx, cfg.clone(), KernelStore::new());
        for _ in 0..16 {
            env.kernel(ComputeOp::Gemm, 32, 32, 32, 2.0 * 32f64.powi(3), || {});
        }
        let before = alloc_events();
        for _ in 0..iters {
            env.kernel(ComputeOp::Gemm, 32, 32, 32, 2.0 * 32f64.powi(3), || {});
        }
        let allocs = alloc_events() - before;
        let _ = env.finish();
        allocs
    });
    let allocs = report.outputs[0];
    // Two events per kernel → 2 * 4096 pushes. Amortized growth of a Vec
    // plus incidental rehashes stays far under one alloc per 64 events; a
    // per-event allocation regression lands at >= 4096 and fails loudly.
    let bound = iters / 16;
    assert!(
        allocs < bound,
        "observed kernel loop allocated {allocs} times over {iters} kernels (bound {bound}) — \
         a per-event allocation crept back into the hot path"
    );
}

#[test]
fn pre_sized_recorder_removes_growth_allocations() {
    // With an exact capacity hint (what the autotune driver feeds back),
    // even the buffer-growth allocations disappear from the steady state.
    let iters = 1_024u64;
    let machine = MachineModel::test_exact(1).shared();
    let cfg = CritterConfig::new(ExecutionPolicy::Full, 0.1)
        .with_obs()
        .with_obs_capacity(3 * (iters as usize) + 64);
    let report = run_simulation(SimConfig::new(1), machine, move |ctx: &mut RankCtx| {
        let mut env = CritterEnv::new(ctx, cfg.clone(), KernelStore::new());
        for _ in 0..16 {
            env.kernel(ComputeOp::Gemm, 32, 32, 32, 2.0 * 32f64.powi(3), || {});
        }
        let before = alloc_events();
        for _ in 0..iters {
            env.kernel(ComputeOp::Gemm, 32, 32, 32, 2.0 * 32f64.powi(3), || {});
        }
        let allocs = alloc_events() - before;
        let _ = env.finish();
        allocs
    });
    assert_eq!(
        report.outputs[0], 0,
        "pre-sized observed kernel loop should be allocation-free in steady state"
    );
}

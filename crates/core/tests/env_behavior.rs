//! Behavioral tests of the Critter interception layer on the simulator:
//! selective execution, path propagation, policy semantics.

use critter_core::{ComputeOp, CritterConfig, CritterEnv, ExecutionPolicy, KernelStore};
use critter_machine::MachineModel;
use critter_sim::{run_simulation, RankCtx, ReduceOp, SimConfig};

fn run_env<R: Send>(
    ranks: usize,
    machine: MachineModel,
    cfg: CritterConfig,
    f: impl Fn(&mut CritterEnv) -> R + Send + Sync,
) -> Vec<(R, critter_core::CritterReport, f64)> {
    let machine = machine.shared();
    let report = run_simulation(SimConfig::new(ranks), machine, |ctx: &mut RankCtx| {
        let mut env = CritterEnv::new(ctx, cfg.clone(), KernelStore::new());
        let out = f(&mut env);
        let (rep, _store) = env.finish();
        (out, rep)
    });
    report.outputs.into_iter().zip(report.rank_times).map(|((out, rep), t)| (out, rep, t)).collect()
}

#[test]
fn full_policy_prediction_matches_clock() {
    // With no skipping and uncharged internals, P.exec_time must track the
    // virtual clock exactly for a compute+allreduce program.
    let out = run_env(
        4,
        MachineModel::test_exact(4),
        CritterConfig::full().with_internal_charging(false),
        |env| {
            let world = env.world();
            for _ in 0..5 {
                env.kernel(ComputeOp::Gemm, 32, 32, 32, 2.0 * 32f64.powi(3), || {});
                env.allreduce(&world, ReduceOp::Sum, &[1.0; 64]);
            }
            env.exec_time()
        },
    );
    for (pred, rep, clock) in &out {
        assert!((pred - clock).abs() < 1e-9 * clock, "pred {pred} clock {clock}");
        assert_eq!(rep.kernels_skipped, 0);
        assert!(rep.kernels_executed >= 10);
    }
}

#[test]
fn conditional_skips_after_convergence_with_zero_noise() {
    // Noise-free machine: two samples pin the variance at zero, so the CI is
    // degenerate and everything after the warmup is skipped.
    let reps = 20;
    let out = run_env(
        1,
        MachineModel::test_exact(1),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.1),
        |env| {
            for _ in 0..reps {
                env.kernel(ComputeOp::Gemm, 64, 64, 64, 2.0 * 64f64.powi(3), || {});
            }
        },
    );
    let rep = &out[0].1;
    assert_eq!(rep.kernels_executed, 2, "warmup takes exactly min_samples executions");
    assert_eq!(rep.kernels_skipped, reps - 2);
}

#[test]
fn prediction_accurate_when_skipping_zero_noise() {
    let reps = 50u64;
    let out = run_env(
        1,
        MachineModel::test_exact(1),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.1)
            .with_internal_charging(false),
        |env| {
            for _ in 0..reps {
                env.kernel(ComputeOp::Syrk, 48, 48, 16, 1e6, || {});
            }
            env.exec_time()
        },
    );
    let (pred, _, clock) = &out[0];
    // Clock only advanced for 2 executions; prediction covers all 50 at the
    // exact per-kernel time.
    assert!(*clock < *pred, "skipping must save time");
    let per = clock / 2.0;
    assert!((pred - per * reps as f64).abs() < 1e-9 * pred, "prediction must extrapolate exactly");
}

#[test]
fn tight_epsilon_never_skips_noisy_kernels() {
    let out = run_env(
        1,
        MachineModel::test_noisy(1, 7),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 1e-9),
        |env| {
            for _ in 0..30 {
                env.kernel(ComputeOp::Gemm, 64, 64, 64, 1e7, || {});
            }
        },
    );
    assert_eq!(out[0].1.kernels_skipped, 0, "ε→0 approaches full execution");
}

#[test]
fn loose_epsilon_skips_noisy_kernels_eventually() {
    let out = run_env(
        1,
        MachineModel::test_noisy(1, 7),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 1.0),
        |env| {
            for _ in 0..60 {
                env.kernel(ComputeOp::Gemm, 64, 64, 64, 1e7, || {});
            }
        },
    );
    let rep = &out[0].1;
    assert!(rep.kernels_skipped > 30, "loose ε should skip most of the loop");
    assert!(rep.kernels_executed >= 2);
}

#[test]
fn online_propagation_skips_sooner_than_conditional() {
    // A kernel appearing k times along the path has its criterion scaled by
    // 1/√k under online propagation, so it converges with fewer samples.
    let prog = |env: &mut CritterEnv| {
        for _ in 0..100 {
            env.kernel(ComputeOp::Trsm, 32, 32, 0, 5e5, || {});
        }
    };
    let cond = run_env(
        1,
        MachineModel::test_noisy(1, 3),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.05),
        prog,
    );
    let online = run_env(
        1,
        MachineModel::test_noisy(1, 3),
        CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.05),
        prog,
    );
    assert!(
        online[0].1.kernels_executed < cond[0].1.kernels_executed,
        "online ({}) should execute fewer than conditional ({})",
        online[0].1.kernels_executed,
        cond[0].1.kernels_executed
    );
}

#[test]
fn comm_kernel_skips_require_unanimity() {
    // Rank 1 executes a *different-size* compute kernel mix, but both see the
    // same allreduce kernel. The allreduce may only be skipped when every
    // rank's model deems it predictable; with a noise-free machine both
    // converge after 2 samples, so skips must happen and be symmetric.
    let out = run_env(
        2,
        MachineModel::test_exact(2),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.5),
        |env| {
            let world = env.world();
            for _ in 0..10 {
                env.allreduce(&world, ReduceOp::Max, &[0.0; 128]);
            }
            (env.store().local.len(), env.exec_time())
        },
    );
    let r0 = &out[0].1;
    let r1 = &out[1].1;
    assert_eq!(r0.kernels_executed, r1.kernels_executed, "decisions must agree");
    assert!(r0.kernels_skipped > 0);
}

#[test]
fn path_time_propagates_to_idle_ranks() {
    // Rank 0 computes a lot; rank 1 computes nothing. After the allreduce the
    // longest-path estimate on rank 1 must reflect rank 0's compute time.
    let out = run_env(
        2,
        MachineModel::test_exact(2),
        CritterConfig::full().with_internal_charging(false),
        |env| {
            let world = env.world();
            if env.rank() == 0 {
                env.kernel(ComputeOp::Gemm, 128, 128, 128, 2.0 * 128f64.powi(3), || {});
            }
            env.allreduce(&world, ReduceOp::Sum, &[1.0]);
            env.exec_time()
        },
    );
    let (p0, _, _) = &out[0];
    let (p1, _, _) = &out[1];
    assert!((p0 - p1).abs() < 1e-12, "exec_time must agree after propagation");
    assert!(*p1 > 1e-4, "idle rank must inherit the busy rank's path time");
}

#[test]
fn eager_switches_off_globally_and_persists() {
    // World-communicator broadcasts cover the whole grid in one aggregation,
    // so a locally-predictable kernel is switched off everywhere, without the
    // execute-once-per-config requirement.
    let machine = MachineModel::test_exact(4).shared();
    let cfg = CritterConfig::new(ExecutionPolicy::EagerPropagation, 0.5);
    let report = run_simulation(SimConfig::new(4), machine, |ctx: &mut RankCtx| {
        let mut env = CritterEnv::new(ctx, cfg.clone(), KernelStore::new());
        let world = env.world();
        for _ in 0..4 {
            env.kernel(ComputeOp::Potrf, 32, 0, 0, 1e5, || {});
            let mut buf = vec![1.0; 16];
            env.bcast(&world, 0, &mut buf);
        }
        let (rep, store) = env.finish();
        let key = critter_core::KernelSig::compute(ComputeOp::Potrf, 32, 0, 0).key();
        let off = store.model(key).map(|m| m.eager_off).unwrap_or(false);
        (rep, off)
    });
    for (rep, off) in &report.outputs {
        assert!(*off, "potrf kernel must be globally off after propagation");
        assert!(rep.kernels_skipped > 0);
    }
}

#[test]
fn isend_decision_governs_receiver() {
    // Noise-free: after two executions the sender skips; the receiver must
    // follow and fabricate a zero buffer of the right size.
    let out = run_env(
        2,
        MachineModel::test_exact(2),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.5),
        |env| {
            let world = env.world();
            let mut received = Vec::new();
            for i in 0..6 {
                if env.rank() == 0 {
                    let req = env.isend(&world, 1, i, vec![7.0; 10]);
                    env.wait(req);
                } else {
                    received = env.recv(&world, 0, i, 10);
                }
            }
            received
        },
    );
    // Rank 1's last receive was skipped (sender predictable): zeros.
    assert_eq!(out[1].0, vec![0.0; 10]);
    assert_eq!(out[0].1.kernels_skipped, out[1].1.kernels_skipped);
}

#[test]
fn blocking_send_uses_vote_or() {
    // Symmetric protocol: both sides converge on the same execute count.
    let out = run_env(
        2,
        MachineModel::test_exact(2),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.5),
        |env| {
            let world = env.world();
            for i in 0..8u64 {
                if env.rank() == 0 {
                    env.send(&world, 1, i, &[1.0; 20]);
                } else {
                    let d = env.recv(&world, 0, i, 20);
                    assert_eq!(d.len(), 20);
                }
            }
        },
    );
    assert_eq!(out[0].1.kernels_executed, out[1].1.kernels_executed);
    assert!(out[0].1.kernels_skipped > 0, "pair must converge and skip");
}

#[test]
fn skipped_bcast_zeroes_non_root_buffers() {
    let out = run_env(
        2,
        MachineModel::test_exact(2),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.5),
        |env| {
            let world = env.world();
            let mut last = Vec::new();
            for _ in 0..6 {
                let mut buf = if env.rank() == 0 { vec![3.0; 8] } else { vec![9.9; 8] };
                env.bcast(&world, 0, &mut buf);
                last = buf;
            }
            last
        },
    );
    assert_eq!(out[1].0, vec![0.0; 8], "skipped bcast leaves a zeroed placeholder");
    assert_eq!(out[0].0, vec![3.0; 8], "root keeps its own payload");
}

#[test]
fn custom_kernel_is_profiled() {
    let out = run_env(1, MachineModel::test_exact(1), CritterConfig::full(), |env| {
        env.custom_kernel(1, 1000, 5e4, || {});
        env.custom_kernel(1, 1000, 5e4, || {});
        env.store().local.len()
    });
    assert_eq!(out[0].0, 1, "one distinct custom kernel signature");
    assert_eq!(out[0].1.kernels_executed, 2);
}

#[test]
fn apriori_counts_enable_scaling_from_start() {
    // Offline full pass captures path counts; the tuning pass then skips
    // sooner than conditional would with the same sample budget.
    let machine = MachineModel::test_noisy(1, 11).shared();
    let reps = 64;
    let report = run_simulation(SimConfig::new(1), machine, |ctx: &mut RankCtx| {
        // Offline pass.
        let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
        for _ in 0..reps {
            env.kernel(ComputeOp::Gemm, 24, 24, 24, 3e5, || {});
        }
        let (_, mut store) = env.finish();
        store.capture_apriori();
        store.start_config(true);
        // Tuning pass under a-priori propagation.
        let mut env = CritterEnv::new(
            ctx,
            CritterConfig::new(ExecutionPolicy::APrioriPropagation, 0.05),
            store,
        );
        for _ in 0..reps {
            env.kernel(ComputeOp::Gemm, 24, 24, 24, 3e5, || {});
        }
        let (rep, store) = env.finish();
        let key = critter_core::KernelSig::compute(ComputeOp::Gemm, 24, 24, 24).key();
        (rep, store.apriori_counts.get(&key).copied())
    });
    let (rep, count) = &report.outputs[0];
    assert_eq!(*count, Some(reps as u64), "offline pass must record the path count");
    assert!(rep.kernels_skipped > 0, "a-priori counts should allow skipping");
}

#[test]
fn internal_traffic_is_accounted() {
    let out = run_env(4, MachineModel::test_exact(4), CritterConfig::full(), |env| {
        let world = env.world();
        env.allreduce(&world, ReduceOp::Sum, &[1.0; 4]);
        env.barrier(&world);
    });
    for (_, rep, _) in &out {
        assert!(rep.internal_words > 0, "piggyback payloads must be measured");
    }
}

#[test]
fn charged_internals_slow_the_run() {
    let prog = |env: &mut CritterEnv| {
        let world = env.world();
        for _ in 0..10 {
            env.allreduce(&world, ReduceOp::Sum, &[1.0; 8]);
        }
    };
    let charged = run_env(2, MachineModel::test_exact(2), CritterConfig::full(), prog);
    let free = run_env(
        2,
        MachineModel::test_exact(2),
        CritterConfig::full().with_internal_charging(false),
        prog,
    );
    assert!(charged[0].2 > free[0].2, "profiling overhead must be visible when charged");
}

#[test]
fn extrapolation_skips_unseen_sizes_accurately() {
    // A family of gemms over many distinct sizes, each appearing once: the
    // paper's framework can never skip them (min_samples unmet per signature),
    // but the §VIII line-fit extension can — and its predictions must track
    // the exact per-size cost on a noise-free machine.
    let run = |cfg: CritterConfig| {
        run_env(1, MachineModel::test_exact(1), cfg, |env| {
            for i in 1..=40usize {
                let n = 16 + 4 * i;
                env.kernel(ComputeOp::Gemm, n, n, n, 2.0 * (n as f64).powi(3), || {});
            }
            env.exec_time()
        })
        .remove(0)
    };
    let baseline = run(CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.25));
    let extrap =
        run(CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.25).with_extrapolation());
    assert_eq!(baseline.1.kernels_skipped, 0, "distinct sizes cannot converge per-signature");
    assert!(
        extrap.1.kernels_skipped > 20,
        "line fit should skip most of the tail, skipped {}",
        extrap.1.kernels_skipped
    );
    // Prediction stays close to the fully-executed time.
    let err = (extrap.0 - baseline.0).abs() / baseline.0;
    assert!(err < 0.05, "extrapolated prediction error {err}");
}

#[test]
fn extrapolation_disabled_by_default() {
    let cfg = CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.25);
    assert!(cfg.extrapolate.is_none());
}

#[test]
fn trace_records_all_interceptions() {
    let out = run_env(
        2,
        MachineModel::test_exact(2),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.5).with_trace(),
        |env| {
            let world = env.world();
            for _ in 0..6 {
                env.kernel(ComputeOp::Gemm, 16, 16, 16, 1e5, || {});
                env.allreduce(&world, ReduceOp::Sum, &[1.0; 8]);
            }
        },
    );
    for (_, rep, _) in &out {
        assert_eq!(rep.trace.len() as u64, rep.kernels_executed + rep.kernels_skipped);
        assert!(rep.trace.skip_fraction() > 0.0, "noise-free loop must skip");
        // Events are chronological and skipped events are instantaneous.
        let evs = rep.trace.events();
        for w in evs.windows(2) {
            assert!(w[1].start >= w[0].start);
        }
        assert!(evs.iter().filter(|e| !e.executed).all(|e| e.duration == 0.0));
        // Aggregation covers both kernel families.
        let agg = rep.trace.by_kernel();
        assert_eq!(agg.len(), 2);
    }
}

#[test]
fn trace_disabled_is_empty() {
    let out = run_env(1, MachineModel::test_exact(1), CritterConfig::full(), |env| {
        env.kernel(ComputeOp::Gemm, 16, 16, 16, 1e5, || {});
    });
    assert!(out[0].1.trace.is_empty());
}

#[test]
fn reduce_scatter_and_alltoall_are_intercepted() {
    let out = run_env(
        2,
        MachineModel::test_exact(2),
        CritterConfig::new(ExecutionPolicy::ConditionalExecution, 0.5),
        |env| {
            let world = env.world();
            let mut last_rs = Vec::new();
            let mut last_a2a = Vec::new();
            for _ in 0..6 {
                last_rs = env.reduce_scatter(&world, ReduceOp::Sum, &[1.0, 2.0]);
                last_a2a = env.alltoall(&world, &[env.rank() as f64, env.rank() as f64]);
            }
            (last_rs, last_a2a)
        },
    );
    // Both kernels converge on the noise-free machine and are later skipped
    // (zero placeholders), with symmetric decisions across ranks.
    assert_eq!(out[0].1.kernels_skipped, out[1].1.kernels_skipped);
    assert!(out[0].1.kernels_skipped > 0);
    assert_eq!(out[0].0 .0, vec![0.0]);
    assert_eq!(out[0].0 .1, vec![0.0, 0.0]);
}

#[test]
fn reduce_scatter_semantics_under_full_execution() {
    let p = 4;
    let out = run_env(p, MachineModel::test_exact(p), CritterConfig::full(), |env| {
        let world = env.world();
        let contrib = vec![1.0; p];
        let rs = env.reduce_scatter(&world, ReduceOp::Sum, &contrib);
        let a2a =
            env.alltoall(&world, &(0..p).map(|d| (env.rank() * 10 + d) as f64).collect::<Vec<_>>());
        (rs, a2a)
    });
    for (r, (rs, a2a)) in out.iter().map(|(o, _, _)| o).enumerate() {
        assert_eq!(*rs, vec![p as f64]);
        let expect: Vec<f64> = (0..p).map(|src| (src * 10 + r) as f64).collect();
        assert_eq!(*a2a, expect);
    }
}

#[test]
fn comm_extrapolation_skips_unseen_message_sizes() {
    // A bcast family over many distinct message sizes on the same fiber: each
    // signature occurs once, so per-signature statistics never converge — but
    // the (op, shape) line fit does.
    let run = |cfg: CritterConfig| {
        run_env(2, MachineModel::test_exact(2), cfg, |env| {
            let world = env.world();
            for i in 1..=30usize {
                let mut buf = vec![1.0; 32 * i];
                env.bcast(&world, 0, &mut buf);
            }
            env.exec_time()
        })
        .remove(0)
    };
    let base = run(CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.25));
    let extrap =
        run(CritterConfig::new(ExecutionPolicy::OnlinePropagation, 0.25).with_extrapolation());
    assert_eq!(base.1.kernels_skipped, 0, "distinct sizes cannot converge per-signature");
    assert!(
        extrap.1.kernels_skipped > 10,
        "comm line fit should skip the tail, skipped {}",
        extrap.1.kernels_skipped
    );
    // Prediction remains close to the fully-executed path time.
    let err = (extrap.0 - base.0).abs() / base.0;
    assert!(err < 0.05, "extrapolated comm prediction error {err}");
}

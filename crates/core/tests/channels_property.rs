//! Property tests of the aggregate-channel registry (§III-B): the algebra of
//! channel combination must not depend on registration order, `disjoint`
//! must be symmetric, no aggregate may claim more ranks than the machine
//! has, and maximality flags must agree with the subset order on dimension
//! sets.

use critter_core::channels::{Aggregate, ChannelRegistry};
use critter_sim::ChannelMeta;
use proptest::prelude::*;

/// A stride-`s` fiber of `k` ranks starting at 0: `{0, s, 2s, ...}`.
fn fiber(stride: usize, size: usize) -> ChannelMeta {
    let ranks: Vec<usize> = (0..size).map(|i| i * stride).collect();
    ChannelMeta::from_sorted_ranks(&ranks)
}

/// Decode a list of generated `(stride_exp, size_exp)` pairs into channels
/// that fit a `2^world_exp`-rank machine.
fn channels(world_exp: u32, picks: &[(u32, u32)]) -> (usize, Vec<ChannelMeta>) {
    let world = 1usize << world_exp;
    let metas = picks
        .iter()
        .map(|&(se, ke)| {
            let stride = 1usize << (se % world_exp);
            let size = 1usize << (1 + ke % 2); // 2 or 4 ranks per fiber
            let size = size.min(world / stride);
            fiber(stride, size.max(1))
        })
        .filter(|m| m.size > 1)
        .collect();
    (world, metas)
}

fn registry_with(world: usize, metas: &[ChannelMeta]) -> ChannelRegistry {
    let mut r = ChannelRegistry::new(world);
    for m in metas {
        r.register(m);
    }
    r
}

/// Canonical row: (hash, fiber dims, coverage, is_maximal).
type ChannelRow = (u64, Vec<(usize, usize)>, usize, bool);

/// Canonical summary of a registry's aggregate set, sorted for comparison.
fn summary(r: &ChannelRegistry) -> Vec<ChannelRow> {
    let mut v: Vec<_> =
        r.aggregates().map(|a| (a.hash, a.dims.clone(), a.coverage, a.is_maximal)).collect();
    v.sort();
    v
}

proptest! {
    /// Combination is commutative: any rotation of the registration order
    /// builds the identical aggregate set (hashes, dims, coverage, and
    /// maximality all match).
    #[test]
    fn registration_order_is_irrelevant(
        world_exp in 2u32..5,
        picks in collection::vec((0u32..8, 0u32..8), 1..6),
        rot in 0usize..6,
    ) {
        let (world, metas) = channels(world_exp, &picks);
        let base = registry_with(world, &metas);
        let mut rotated = metas.clone();
        if !rotated.is_empty() {
            let mid = rot % rotated.len();
            rotated.rotate_left(mid);
        }
        let permuted = registry_with(world, &rotated);
        prop_assert_eq!(summary(&base), summary(&permuted));
    }

    /// `disjoint` is symmetric, and combination never claims more ranks than
    /// the machine has.
    #[test]
    fn disjoint_symmetric_and_coverage_bounded(
        world_exp in 2u32..5,
        picks in collection::vec((0u32..8, 0u32..8), 1..6),
    ) {
        let (world, metas) = channels(world_exp, &picks);
        let r = registry_with(world, &metas);
        let aggs: Vec<&Aggregate> = r.aggregates().collect();
        for a in &aggs {
            prop_assert!(a.coverage <= world, "aggregate covers {} > {} ranks", a.coverage, world);
            prop_assert!(a.coverage >= 1);
            for b in &aggs {
                prop_assert_eq!(a.disjoint(b), b.disjoint(a));
            }
            // An aggregate is never disjoint from itself (it shares every
            // stride), except the degenerate single-rank case.
            if !a.dims.is_empty() {
                prop_assert!(!a.disjoint(a));
            }
        }
    }

    /// Maximality agrees with the subset order on dimension sets: an
    /// aggregate is non-maximal iff a strictly larger aggregate contains all
    /// its dimensions — and full machine coverage always implies maximality.
    #[test]
    fn maximality_is_consistent_with_coverage(
        world_exp in 2u32..5,
        picks in collection::vec((0u32..8, 0u32..8), 1..6),
    ) {
        let (world, metas) = channels(world_exp, &picks);
        let r = registry_with(world, &metas);
        let aggs: Vec<&Aggregate> = r.aggregates().collect();
        for a in &aggs {
            let has_super = aggs.iter().any(|b| {
                b.hash != a.hash
                    && b.coverage > a.coverage
                    && a.dims.iter().all(|d| b.dims.contains(d))
            });
            prop_assert_eq!(!a.is_maximal, has_super);
            if a.coverage == world {
                prop_assert!(a.is_maximal, "full-coverage aggregate must be maximal");
            }
        }
    }
}

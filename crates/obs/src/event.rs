//! The event taxonomy: one variant per interception point of the Critter
//! layer (`critter-core`'s `CritterEnv`, the paper's Fig. 2 PMPI shim).

/// What kind of interception produced an event.
///
/// The taxonomy mirrors the decision structure of selective execution
/// (§IV-B of the paper): kernels either execute (a sample is taken) or are
/// skipped (the model mean is charged), every intercepted communication
/// piggybacks a path-propagation reduction, and the longest-path combine
/// may adopt a remote rank's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A computation kernel executed; `arg` is the measured time charged to
    /// the path.
    KernelExec,
    /// A computation kernel skipped; `arg` is the modeled mean charged.
    KernelSkip,
    /// A communication kernel executed; `arg` is the measured time.
    CommExec,
    /// A communication kernel skipped; `arg` is the modeled mean.
    CommSkip,
    /// A path-propagation piggyback exchange (the internal `K̃`/vote
    /// message); `arg` is the internal cost charged to the predicted path.
    Propagate,
    /// The longest-path combine adopted a remote rank's path; `arg` is the
    /// execution-time gap to the adopted path.
    PathAdopt,
    /// A skip/execute policy decision consulted a confidence interval;
    /// `arg` is the path-count-scaled relative CI width compared against ε.
    Decision,
    /// A communicator split registered a new aggregate channel; `arg` is
    /// the channel size.
    Channel,
}

impl EventKind {
    /// Stable snake-case name (the Chrome trace `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::KernelExec => "kernel_exec",
            EventKind::KernelSkip => "kernel_skip",
            EventKind::CommExec => "comm_exec",
            EventKind::CommSkip => "comm_skip",
            EventKind::Propagate => "propagate",
            EventKind::PathAdopt => "path_adopt",
            EventKind::Decision => "decision",
            EventKind::Channel => "channel",
        }
    }

    /// Whether `arg` is a time charged to the critical-path prediction
    /// (these kinds carry weight in the folded-stack export).
    pub fn charges_path(self) -> bool {
        matches!(
            self,
            EventKind::KernelExec
                | EventKind::KernelSkip
                | EventKind::CommExec
                | EventKind::CommSkip
                | EventKind::Propagate
        )
    }
}

/// One interception event on one rank.
///
/// All fields are *virtual* quantities: `start` and `dur` come from the
/// rank's virtual clock, `arg` is a kind-specific scalar (see
/// [`EventKind`]). No wall-clock value ever enters an event, which is what
/// makes exported traces bit-reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Which interception point fired.
    pub kind: EventKind,
    /// Kernel-signature or channel label (e.g. `gemm[64x64x64]`,
    /// `bcast[w=512,p=4,s=1]`).
    pub label: String,
    /// Virtual time at which the interception began (seconds).
    pub start: f64,
    /// Virtual duration of the interception (seconds; 0 for instantaneous
    /// events such as decisions and skips).
    pub dur: f64,
    /// Kind-specific scalar (charged time, CI width, channel size, …).
    pub arg: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_stable() {
        let kinds = [
            EventKind::KernelExec,
            EventKind::KernelSkip,
            EventKind::CommExec,
            EventKind::CommSkip,
            EventKind::Propagate,
            EventKind::PathAdopt,
            EventKind::Decision,
            EventKind::Channel,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
        assert_eq!(EventKind::KernelExec.name(), "kernel_exec");
    }

    #[test]
    fn path_charging_kinds() {
        assert!(EventKind::KernelSkip.charges_path());
        assert!(EventKind::Propagate.charges_path());
        assert!(!EventKind::Decision.charges_path());
        assert!(!EventKind::Channel.charges_path());
        assert!(!EventKind::PathAdopt.charges_path());
    }
}

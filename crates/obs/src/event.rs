//! The event taxonomy: one variant per interception point of the Critter
//! layer (`critter-core`'s `CritterEnv`, the paper's Fig. 2 PMPI shim).

/// What kind of interception produced an event.
///
/// The taxonomy mirrors the decision structure of selective execution
/// (§IV-B of the paper): kernels either execute (a sample is taken) or are
/// skipped (the model mean is charged), every intercepted communication
/// piggybacks a path-propagation reduction, and the longest-path combine
/// may adopt a remote rank's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A computation kernel executed; `arg` is the measured time charged to
    /// the path.
    KernelExec,
    /// A computation kernel skipped; `arg` is the modeled mean charged.
    KernelSkip,
    /// A communication kernel executed; `arg` is the measured time.
    CommExec,
    /// A communication kernel skipped; `arg` is the modeled mean.
    CommSkip,
    /// A path-propagation piggyback exchange (the internal `K̃`/vote
    /// message); `arg` is the internal cost charged to the predicted path.
    Propagate,
    /// The longest-path combine adopted a remote rank's path; `arg` is the
    /// execution-time gap to the adopted path.
    PathAdopt,
    /// A skip/execute policy decision consulted a confidence interval;
    /// `arg` is the path-count-scaled relative CI width compared against ε.
    Decision,
    /// A communicator split registered a new aggregate channel; `arg` is
    /// the channel size.
    Channel,
    /// A fault fired during the run (an injected rank panic observed by the
    /// driver); `arg` is the run index the fault hit.
    Fault,
    /// The driver retried a faulted run with a reseeded fault plan; `arg`
    /// is the attempt number.
    Retry,
    /// The driver quarantined a configuration after exhausting its retry
    /// budget; `arg` is the number of attempts spent.
    Quarantine,
    /// A session checkpoint was written; `arg` is the number of completed
    /// run units it covers.
    Checkpoint,
    /// The sweep was preempted at a committed-unit boundary (the progress
    /// hook returned a preempt verdict); `arg` is the number of units
    /// committed — and checkpointed — at the preemption point.
    Preempt,
    /// A session resumed from a checkpoint; `arg` is the number of run
    /// units restored from disk.
    Restore,
    /// Kernel models were warm-started from a persisted profile; `arg` is
    /// the number of models seeded.
    WarmStart,
}

impl EventKind {
    /// Stable snake-case name (the Chrome trace `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::KernelExec => "kernel_exec",
            EventKind::KernelSkip => "kernel_skip",
            EventKind::CommExec => "comm_exec",
            EventKind::CommSkip => "comm_skip",
            EventKind::Propagate => "propagate",
            EventKind::PathAdopt => "path_adopt",
            EventKind::Decision => "decision",
            EventKind::Channel => "channel",
            EventKind::Fault => "fault",
            EventKind::Retry => "retry",
            EventKind::Quarantine => "quarantine",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Preempt => "preempt",
            EventKind::Restore => "restore",
            EventKind::WarmStart => "warm_start",
        }
    }

    /// Inverse of [`EventKind::name`]: `None` for unknown names.
    pub fn from_name(name: &str) -> Option<EventKind> {
        Some(match name {
            "kernel_exec" => EventKind::KernelExec,
            "kernel_skip" => EventKind::KernelSkip,
            "comm_exec" => EventKind::CommExec,
            "comm_skip" => EventKind::CommSkip,
            "propagate" => EventKind::Propagate,
            "path_adopt" => EventKind::PathAdopt,
            "decision" => EventKind::Decision,
            "channel" => EventKind::Channel,
            "fault" => EventKind::Fault,
            "retry" => EventKind::Retry,
            "quarantine" => EventKind::Quarantine,
            "checkpoint" => EventKind::Checkpoint,
            "preempt" => EventKind::Preempt,
            "restore" => EventKind::Restore,
            "warm_start" => EventKind::WarmStart,
            _ => return None,
        })
    }

    /// Whether `arg` is a time charged to the critical-path prediction
    /// (these kinds carry weight in the folded-stack export).
    pub fn charges_path(self) -> bool {
        matches!(
            self,
            EventKind::KernelExec
                | EventKind::KernelSkip
                | EventKind::CommExec
                | EventKind::CommSkip
                | EventKind::Propagate
        )
    }
}

/// One interception event on one rank.
///
/// All fields are *virtual* quantities: `start` and `dur` come from the
/// rank's virtual clock, `arg` is a kind-specific scalar (see
/// [`EventKind`]). No wall-clock value ever enters an event, which is what
/// makes exported traces bit-reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Which interception point fired.
    pub kind: EventKind,
    /// Kernel-signature or channel label (e.g. `gemm[64x64x64]`,
    /// `bcast[w=512,p=4,s=1]`). Shared (`Arc<str>`) because the same label
    /// recurs across thousands of events: producers intern one allocation
    /// per distinct signature and clone the handle per event.
    pub label: std::sync::Arc<str>,
    /// Virtual time at which the interception began (seconds).
    pub start: f64,
    /// Virtual duration of the interception (seconds; 0 for instantaneous
    /// events such as decisions and skips).
    pub dur: f64,
    /// Kind-specific scalar (charged time, CI width, channel size, …).
    pub arg: f64,
}

impl Event {
    /// Canonical JSON form: `{"arg", "dur", "kind", "label", "start"}`.
    ///
    /// Floats survive a write/parse round trip bit-exactly, so a trace
    /// restored from a checkpoint compares equal to the original.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "arg": self.arg,
            "dur": self.dur,
            "kind": self.kind.name(),
            "label": &*self.label,
            "start": self.start,
        })
    }

    /// Inverse of [`Event::to_json`]. Errors describe the offending key.
    pub fn from_json(v: &serde_json::Value) -> Result<Event, String> {
        let f = |key: &str| {
            v.get(key).and_then(|x| x.as_f64()).ok_or_else(|| format!("event: bad key `{key}`"))
        };
        let kind_name = v
            .get("kind")
            .and_then(|x| x.as_str())
            .ok_or_else(|| "event: bad key `kind`".to_string())?;
        let kind = EventKind::from_name(kind_name)
            .ok_or_else(|| format!("event: unknown kind `{kind_name}`"))?;
        let label: std::sync::Arc<str> = v
            .get("label")
            .and_then(|x| x.as_str())
            .ok_or_else(|| "event: bad key `label`".to_string())?
            .into();
        Ok(Event { kind, label, start: f("start")?, dur: f("dur")?, arg: f("arg")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_stable() {
        let kinds = [
            EventKind::KernelExec,
            EventKind::KernelSkip,
            EventKind::CommExec,
            EventKind::CommSkip,
            EventKind::Propagate,
            EventKind::PathAdopt,
            EventKind::Decision,
            EventKind::Channel,
            EventKind::Fault,
            EventKind::Retry,
            EventKind::Quarantine,
            EventKind::Checkpoint,
            EventKind::Preempt,
            EventKind::Restore,
            EventKind::WarmStart,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
        assert_eq!(EventKind::KernelExec.name(), "kernel_exec");
        for k in kinds {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("no_such_kind"), None);
    }

    #[test]
    fn session_kinds_never_charge_the_path() {
        for k in [
            EventKind::Fault,
            EventKind::Retry,
            EventKind::Quarantine,
            EventKind::Checkpoint,
            EventKind::Preempt,
            EventKind::Restore,
            EventKind::WarmStart,
        ] {
            assert!(!k.charges_path());
        }
    }

    #[test]
    fn event_json_round_trips_bit_exactly() {
        let e = Event {
            kind: EventKind::Fault,
            label: "pr4pc4nb16/rep0/full".into(),
            start: 0.1 + 0.2,
            dur: 1.0 / 3.0,
            arg: 7.0,
        };
        let text = serde_json::to_string(&e.to_json()).unwrap();
        let back = Event::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.start.to_bits(), e.start.to_bits());
        assert!(Event::from_json(&serde_json::json!({"kind": "bogus"})).is_err());
    }

    #[test]
    fn path_charging_kinds() {
        assert!(EventKind::KernelSkip.charges_path());
        assert!(EventKind::Propagate.charges_path());
        assert!(!EventKind::Decision.charges_path());
        assert!(!EventKind::Channel.charges_path());
        assert!(!EventKind::PathAdopt.charges_path());
    }
}

//! Deterministic metrics: counters, sums, and log2-bucket histograms.
//!
//! Everything is keyed by name in `BTreeMap`s, so iteration (and therefore
//! JSON serialization through the canonical sorted-key writer) is
//! independent of insertion order. Histogram buckets are power-of-two
//! exponent ranges — bucketing a sample costs one `log2().floor()`, which
//! is a pure function of the value, so two runs that observe the same
//! virtual quantities produce bit-identical registries no matter how their
//! threads interleaved.

use std::collections::BTreeMap;

use serde_json::Value;

/// A histogram over power-of-two buckets: a finite sample `x > 0` lands in
/// bucket `⌊log2 x⌋`; non-positive or non-finite samples are counted
/// separately (CI widths, for instance, are `+∞` until a model has two
/// samples).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    out_of_range: u64,
    total: f64,
    buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if x > 0.0 && x.is_finite() {
            self.total += x;
            let exp = x.log2().floor() as i32;
            *self.buckets.entry(exp).or_insert(0) += 1;
        } else {
            self.out_of_range += 1;
        }
    }

    /// Total samples observed (bucketed + out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples that were non-positive or non-finite.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Sum of the finite positive samples.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Occupied buckets as `(exponent, count)` in ascending exponent order.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&e, &c)| (e, c))
    }

    /// Fold another histogram in, as if its samples had been observed here.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.out_of_range += other.out_of_range;
        self.total += other.total;
        for (&e, &c) in &other.buckets {
            *self.buckets.entry(e).or_insert(0) += c;
        }
    }

    /// Canonical JSON: counts, the out-of-range tally, the sum, and the
    /// occupied buckets as sorted `[exponent, count]` rows.
    pub fn to_json(&self) -> Value {
        let rows: Vec<Value> = self
            .buckets
            .iter()
            .map(|(&e, &c)| serde_json::json!({ "count": c, "exp": e }))
            .collect();
        serde_json::json!({
            "buckets": rows,
            "count": self.count,
            "out_of_range": self.out_of_range,
            "total": self.total,
        })
    }

    /// Inverse of [`Histogram::to_json`]; `total` restores bit-exactly.
    pub fn from_json(v: &Value) -> Result<Histogram, String> {
        let u = |key: &str| {
            v.get(key).and_then(|x| x.as_u64()).ok_or_else(|| format!("histogram: bad key `{key}`"))
        };
        let total = v
            .get("total")
            .and_then(|x| x.as_f64())
            .ok_or_else(|| "histogram: bad key `total`".to_string())?;
        let rows = v
            .get("buckets")
            .and_then(|x| x.as_array())
            .ok_or_else(|| "histogram: bad key `buckets`".to_string())?;
        let mut buckets = BTreeMap::new();
        for row in rows {
            let exp = row
                .get("exp")
                .and_then(|x| x.as_i64())
                .ok_or_else(|| "histogram: bad bucket `exp`".to_string())?
                as i32;
            let count = row
                .get("count")
                .and_then(|x| x.as_u64())
                .ok_or_else(|| "histogram: bad bucket `count`".to_string())?;
            buckets.insert(exp, count);
        }
        Ok(Histogram { count: u("count")?, out_of_range: u("out_of_range")?, total, buckets })
    }
}

/// A named registry of counters (`u64`), sums (`f64`), and [`Histogram`]s.
///
/// Registries are built per rank and merged across ranks and runs in a
/// fixed `(run, rank)` order, so the aggregated values — including the
/// floating-point sums, whose addition order is part of the contract — are
/// schedule-independent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    sums: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to the counter `name` (saturating; counters never wrap).
    ///
    /// Hot path: looks the key up by `&str` first, so the `String` key is
    /// allocated only the first time a name is seen.
    pub fn incr(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(by),
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Add `x` to the sum `name` (allocation-free after first use of a name).
    pub fn add_sum(&mut self, name: &str, x: f64) {
        match self.sums.get_mut(name) {
            Some(s) => *s += x,
            None => {
                self.sums.insert(name.to_string(), x);
            }
        }
    }

    /// Record one sample into the histogram `name` (allocation-free after
    /// first use of a name).
    pub fn observe(&mut self, name: &str, x: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(x),
            None => {
                let mut h = Histogram::new();
                h.observe(x);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a sum (0.0 when absent).
    pub fn sum(&self, name: &str) -> f64 {
        self.sums.get(name).copied().unwrap_or(0.0)
    }

    /// The histogram `name`, when any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.sums.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry in (key-wise; counters saturate, sums add,
    /// histograms merge). Callers must merge in a fixed order — the
    /// autotuner folds per-rank registries in ascending `(run, rank)` —
    /// to keep floating-point sums bit-stable.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (k, &v) in &other.sums {
            *self.sums.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Canonical JSON rendering: three sorted objects (`counters`, `sums`,
    /// `histograms`). Equal registries serialize to byte-identical text.
    pub fn to_json(&self) -> Value {
        let mut counters = serde_json::Map::new();
        for (k, &v) in &self.counters {
            counters.insert(k.clone(), serde_json::json!(v));
        }
        let mut sums = serde_json::Map::new();
        for (k, &v) in &self.sums {
            sums.insert(k.clone(), serde_json::json!(v));
        }
        let mut histograms = serde_json::Map::new();
        for (k, h) in &self.histograms {
            histograms.insert(k.clone(), h.to_json());
        }
        let counters = Value::Object(counters);
        let sums = Value::Object(sums);
        let histograms = Value::Object(histograms);
        serde_json::json!({
            "counters": counters,
            "histograms": histograms,
            "sums": sums,
        })
    }

    /// Inverse of [`MetricsRegistry::to_json`]; sums restore bit-exactly.
    pub fn from_json(v: &Value) -> Result<MetricsRegistry, String> {
        let obj = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_object())
                .ok_or_else(|| format!("metrics: bad key `{key}`"))
        };
        let mut counters = BTreeMap::new();
        for (k, x) in obj("counters")?.iter() {
            let c = x.as_u64().ok_or_else(|| format!("metrics: bad counter `{k}`"))?;
            counters.insert(k.clone(), c);
        }
        let mut sums = BTreeMap::new();
        for (k, x) in obj("sums")?.iter() {
            let s = x.as_f64().ok_or_else(|| format!("metrics: bad sum `{k}`"))?;
            sums.insert(k.clone(), s);
        }
        let mut histograms = BTreeMap::new();
        for (k, x) in obj("histograms")?.iter() {
            histograms.insert(k.clone(), Histogram::from_json(x)?);
        }
        Ok(MetricsRegistry { counters, sums, histograms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.observe(1.5); // 2^0 bucket
        h.observe(3.0); // 2^1 bucket
        h.observe(0.25); // 2^-2 bucket
        h.observe(0.0); // out of range
        h.observe(f64::INFINITY); // out of range
        assert_eq!(h.count(), 5);
        assert_eq!(h.out_of_range(), 2);
        let buckets: Vec<(i32, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(-2, 1), (0, 1), (1, 1)]);
        assert_eq!(h.total(), 4.75);
    }

    #[test]
    fn histogram_merge_matches_sequential_observation() {
        let xs = [0.5, 1.0, 2.0, 7.5];
        let ys = [0.125, 3.0];
        let mut a = Histogram::new();
        xs.iter().for_each(|&x| a.observe(x));
        let mut b = Histogram::new();
        ys.iter().for_each(|&y| b.observe(y));
        a.merge(&b);
        let mut all = Histogram::new();
        xs.iter().chain(ys.iter()).for_each(|&x| all.observe(x));
        assert_eq!(a, all);
    }

    #[test]
    fn registry_counters_saturate() {
        let mut r = MetricsRegistry::new();
        r.incr("n", u64::MAX - 1);
        r.incr("n", 5);
        assert_eq!(r.counter("n"), u64::MAX);
        let mut o = MetricsRegistry::new();
        o.incr("n", 7);
        r.merge(&o);
        assert_eq!(r.counter("n"), u64::MAX);
    }

    #[test]
    fn registry_json_is_sorted_and_deterministic() {
        let mut r = MetricsRegistry::new();
        r.incr("zeta", 1);
        r.incr("alpha", 2);
        r.add_sum("time", 1.25);
        r.observe("widths", 0.5);
        let a = serde_json::to_string_pretty(&r.to_json()).unwrap();
        let b = serde_json::to_string_pretty(&r.clone().to_json()).unwrap();
        assert_eq!(a, b);
        let i_alpha = a.find("\"alpha\"").unwrap();
        let i_zeta = a.find("\"zeta\"").unwrap();
        assert!(i_alpha < i_zeta);
        assert!(a.contains("\"out_of_range\": 0"));
    }

    #[test]
    fn merge_is_keywise() {
        let mut a = MetricsRegistry::new();
        a.incr("x", 1);
        a.add_sum("s", 1.0);
        let mut b = MetricsRegistry::new();
        b.incr("x", 2);
        b.incr("y", 3);
        b.add_sum("s", 0.5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 3);
        assert_eq!(a.sum("s"), 1.5);
        assert!(!a.is_empty());
        assert!(MetricsRegistry::new().is_empty());
    }

    proptest! {
        #[test]
        fn prop_histogram_count_invariant(xs in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let mut h = Histogram::new();
            for &x in &xs { h.observe(x); }
            let bucketed: u64 = h.buckets().map(|(_, c)| c).sum();
            prop_assert_eq!(bucketed + h.out_of_range(), h.count());
            prop_assert_eq!(h.count(), xs.len() as u64);
        }

        #[test]
        fn prop_merge_commutes_on_counts(
            xs in proptest::collection::vec(1e-6f64..1e6, 1..50),
            ys in proptest::collection::vec(1e-6f64..1e6, 1..50),
        ) {
            let mut a = Histogram::new();
            xs.iter().for_each(|&x| a.observe(x));
            let mut b = Histogram::new();
            ys.iter().for_each(|&y| b.observe(y));
            let mut ab = a.clone(); ab.merge(&b);
            let mut ba = b.clone(); ba.merge(&a);
            prop_assert_eq!(ab.count(), ba.count());
            let l: Vec<(i32, u64)> = ab.buckets().collect();
            let r: Vec<(i32, u64)> = ba.buckets().collect();
            prop_assert_eq!(l, r);
        }
    }
}

//! Per-rank event collection: the [`TraceSink`] abstraction and the
//! buffer/registry pair each simulated rank records into.

use crate::event::Event;
use crate::metrics::MetricsRegistry;

/// Anything events can be recorded into.
///
/// The interception layer is generic over the sink only in spirit — in
/// practice it records into a [`RankRecorder`] — but the trait keeps the
/// recording surface minimal and lets tests capture events in a plain
/// `Vec`.
///
/// # Examples
///
/// ```
/// use critter_obs::{Event, EventKind, TraceSink};
///
/// // A Vec<Event> is the simplest sink.
/// let mut sink: Vec<Event> = Vec::new();
/// sink.record(Event {
///     kind: EventKind::KernelExec,
///     label: "gemm[8x8x8]".into(),
///     start: 0.0,
///     dur: 1.5e-6,
///     arg: 1.5e-6,
/// });
/// assert_eq!(sink.len(), 1);
/// assert_eq!(sink[0].kind, EventKind::KernelExec);
/// ```
pub trait TraceSink {
    /// Append one event. Sinks must preserve arrival order: per-rank
    /// buffers are the unit of ordering in the exported timeline.
    fn record(&mut self, event: Event);
}

impl TraceSink for Vec<Event> {
    fn record(&mut self, event: Event) {
        self.push(event);
    }
}

/// The per-rank recording state: an event buffer plus a metrics registry,
/// both filled strictly in the rank's program order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankRecorder {
    rank: usize,
    events: Vec<Event>,
    metrics: MetricsRegistry,
}

impl RankRecorder {
    /// A fresh recorder for `rank`.
    pub fn new(rank: usize) -> Self {
        RankRecorder { rank, events: Vec::new(), metrics: MetricsRegistry::new() }
    }

    /// A fresh recorder whose event buffer is pre-sized for `capacity`
    /// events. Capacity never affects recorded contents — callers (the
    /// autotune driver) feed back the event count of earlier repetitions so
    /// later ones skip the buffer's growth reallocations.
    pub fn with_capacity(rank: usize, capacity: usize) -> Self {
        RankRecorder { rank, events: Vec::with_capacity(capacity), metrics: MetricsRegistry::new() }
    }

    /// The rank being recorded.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Events recorded so far, in program order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Mutable access to the rank's metrics registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Finalize into an immutable [`RankTrace`].
    pub fn into_trace(self) -> RankTrace {
        RankTrace { rank: self.rank, events: self.events, metrics: self.metrics }
    }
}

impl TraceSink for RankRecorder {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// One rank's finished trace: the event buffer and the metrics gathered
/// alongside it. `PartialEq` is bit-exact — the determinism oracles compare
/// whole traces across schedules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    /// The rank the events belong to.
    pub rank: usize,
    /// Events in the rank's program order (nondecreasing virtual start
    /// times; see `docs/OBSERVABILITY.md` on the ordering guarantee).
    pub events: Vec<Event>,
    /// Counters, sums, and histograms recorded by this rank.
    pub metrics: MetricsRegistry,
}

impl RankTrace {
    /// Canonical JSON form: `{"events", "metrics", "rank"}`. A trace
    /// restored via [`RankTrace::from_json`] compares equal (bit-exact)
    /// to the original, which is what lets checkpointed observability
    /// state survive a kill/resume without perturbing the export.
    pub fn to_json(&self) -> serde_json::Value {
        let events: Vec<serde_json::Value> = self.events.iter().map(|e| e.to_json()).collect();
        let metrics = self.metrics.to_json();
        serde_json::json!({
            "events": events,
            "metrics": metrics,
            "rank": self.rank as u64,
        })
    }

    /// Inverse of [`RankTrace::to_json`]. Errors describe the bad key.
    pub fn from_json(v: &serde_json::Value) -> Result<RankTrace, String> {
        let rank = v
            .get("rank")
            .and_then(|x| x.as_u64())
            .ok_or_else(|| "rank trace: bad key `rank`".to_string())? as usize;
        let rows = v
            .get("events")
            .and_then(|x| x.as_array())
            .ok_or_else(|| "rank trace: bad key `events`".to_string())?;
        let events = rows.iter().map(Event::from_json).collect::<Result<Vec<_>, _>>()?;
        let metrics = MetricsRegistry::from_json(
            v.get("metrics").ok_or_else(|| "rank trace: bad key `metrics`".to_string())?,
        )?;
        Ok(RankTrace { rank, events, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(label: &str, start: f64) -> Event {
        Event { kind: EventKind::KernelExec, label: label.into(), start, dur: 1.0, arg: 1.0 }
    }

    #[test]
    fn recorder_preserves_order() {
        let mut r = RankRecorder::new(3);
        r.record(ev("a", 0.0));
        r.record(ev("b", 2.0));
        r.metrics_mut().incr("samples_taken", 2);
        let t = r.into_trace();
        assert_eq!(t.rank, 3);
        assert_eq!(t.events.len(), 2);
        assert_eq!(&*t.events[0].label, "a");
        assert_eq!(t.metrics.counter("samples_taken"), 2);
    }

    #[test]
    fn vec_is_a_sink() {
        let mut v: Vec<Event> = Vec::new();
        v.record(ev("x", 1.0));
        assert_eq!(v.len(), 1);
    }
}

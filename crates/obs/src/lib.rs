//! # critter-obs
//!
//! A structured, **deterministic** tracing and metrics layer for the
//! critter-rs stack — the observability counterpart of the paper's online
//! critical-path analysis (Hutter & Solomonik, IPDPS 2021). Where
//! `critter-core` *acts* on execution paths (skipping kernels once their
//! confidence intervals meet ε, §III), this crate makes those actions
//! *inspectable*: every interception point in the simulator emits an
//! [`Event`] into a per-rank buffer stamped with the rank's **virtual
//! clock**, and the buffers drain into one globally ordered [`Timeline`].
//!
//! ## Determinism contract
//!
//! The simulator's promise — counter-based noise keyed by operation
//! identity, never by thread schedule — extends to everything this crate
//! records. Events carry only virtual quantities (virtual timestamps,
//! charged path times, CI widths), per-rank buffers are appended in each
//! rank's program order, and all cross-rank aggregation happens in a fixed
//! `(run, rank, sequence)` order. With a fixed seed, an exported trace is
//! therefore **byte-identical** across reruns, across `--jobs` levels, and
//! under `critter-testkit`'s schedule-perturbation fuzzing (asserted by
//! `testkit/tests/trace_determinism.rs`).
//!
//! ## Export formats
//!
//! * [`Timeline::to_chrome_string`] — Chrome/Perfetto trace-event JSON
//!   (open in `ui.perfetto.dev` or `chrome://tracing`);
//! * [`Timeline::to_folded`] — folded-stack output for flamegraph tools,
//!   weighted by each event's charged critical-path time;
//! * [`MetricsRegistry::to_json`] — counters, sums, and log2-bucket
//!   histograms (samples taken/skipped, CI widths, per-channel propagation
//!   counts) rendered through the canonical sorted-key JSON writer.
//!
//! See `docs/OBSERVABILITY.md` for the event taxonomy and the ordering
//! guarantee in detail.

#![deny(missing_docs)]

pub mod event;
pub mod metrics;
pub mod sink;
pub mod timeline;

pub use event::{Event, EventKind};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{RankRecorder, RankTrace, TraceSink};
pub use timeline::{ObsReport, Timeline, TimelineRun};

//! The globally ordered timeline and its export formats.
//!
//! Per-rank buffers drain into a [`Timeline`] of runs; each run's rank
//! traces are kept in ascending rank order and each rank's events in its
//! program order. Exports iterate runs in ascending run-id order, so the
//! serialized output is a pure function of the recorded virtual events —
//! never of the schedule that produced them.

use crate::metrics::MetricsRegistry;
use crate::sink::RankTrace;
use serde_json::Value;

/// One simulated run's traces: an id (the autotuner's deterministic run
/// index), a human-readable label, and the per-rank traces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineRun {
    /// Deterministic run id (doubles as the Chrome trace `pid`).
    pub id: u64,
    /// Label, e.g. `pr4pc4nb16/rep0/tuned`.
    pub label: String,
    /// Per-rank traces, ascending by rank.
    pub ranks: Vec<RankTrace>,
}

impl TimelineRun {
    /// Canonical JSON form: `{"id", "label", "ranks"}` — the unit the
    /// session checkpoint persists so a resumed sweep re-exports the very
    /// same timeline bytes.
    pub fn to_json(&self) -> Value {
        let ranks: Vec<Value> = self.ranks.iter().map(|r| r.to_json()).collect();
        serde_json::json!({
            "id": self.id,
            "label": self.label.as_str(),
            "ranks": ranks,
        })
    }

    /// Inverse of [`TimelineRun::to_json`]. Errors describe the bad key.
    pub fn from_json(v: &Value) -> Result<TimelineRun, String> {
        let id =
            v.get("id").and_then(|x| x.as_u64()).ok_or_else(|| "run: bad key `id`".to_string())?;
        let label = v
            .get("label")
            .and_then(|x| x.as_str())
            .ok_or_else(|| "run: bad key `label`".to_string())?
            .to_string();
        let rows = v
            .get("ranks")
            .and_then(|x| x.as_array())
            .ok_or_else(|| "run: bad key `ranks`".to_string())?;
        let ranks = rows.iter().map(RankTrace::from_json).collect::<Result<Vec<_>, _>>()?;
        Ok(TimelineRun { id, label, ranks })
    }
}

/// An ordered collection of runs ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    runs: Vec<TimelineRun>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Append one run's rank traces. Ranks are sorted into ascending rank
    /// order so the export order never depends on collection order.
    pub fn add_run(&mut self, id: u64, label: impl Into<String>, mut ranks: Vec<RankTrace>) {
        ranks.sort_by_key(|r| r.rank);
        self.runs.push(TimelineRun { id, label: label.into(), ranks });
    }

    /// The recorded runs.
    pub fn runs(&self) -> &[TimelineRun] {
        &self.runs
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no run was recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total events across all runs and ranks.
    pub fn event_count(&self) -> usize {
        self.runs.iter().map(|r| r.ranks.iter().map(|t| t.events.len()).sum::<usize>()).sum()
    }

    /// Runs in ascending id order (the canonical export order).
    fn ordered(&self) -> Vec<&TimelineRun> {
        let mut v: Vec<&TimelineRun> = self.runs.iter().collect();
        v.sort_by_key(|r| r.id);
        v
    }

    /// Chrome/Perfetto trace-event JSON (the `{"traceEvents": [...]}`
    /// envelope). Each run becomes one process (`pid` = run id, named by a
    /// `process_name` metadata event), each rank one thread; events are
    /// complete (`"X"`) spans with microsecond virtual timestamps.
    pub fn to_chrome(&self) -> Value {
        let mut events: Vec<Value> = Vec::new();
        for run in self.ordered() {
            let name_args = serde_json::json!({ "name": run.label.as_str() });
            events.push(serde_json::json!({
                "args": name_args,
                "cat": "__metadata",
                "name": "process_name",
                "ph": "M",
                "pid": run.id,
                "tid": 0u64,
                "ts": 0.0,
            }));
            for trace in &run.ranks {
                let rank_args = serde_json::json!({ "name": format!("rank {}", trace.rank) });
                events.push(serde_json::json!({
                    "args": rank_args,
                    "cat": "__metadata",
                    "name": "thread_name",
                    "ph": "M",
                    "pid": run.id,
                    "tid": trace.rank,
                    "ts": 0.0,
                }));
                for e in &trace.events {
                    let args = serde_json::json!({ "arg": e.arg });
                    events.push(serde_json::json!({
                        "args": args,
                        "cat": e.kind.name(),
                        "dur": e.dur * 1e6,
                        "name": &*e.label,
                        "ph": "X",
                        "pid": run.id,
                        "tid": trace.rank,
                        "ts": e.start * 1e6,
                    }));
                }
            }
        }
        let events = Value::Array(events);
        serde_json::json!({ "displayTimeUnit": "ms", "traceEvents": events })
    }

    /// The Chrome trace as canonical pretty-printed text (trailing
    /// newline included) — the byte surface the determinism oracles and
    /// the golden trace fixture compare.
    pub fn to_chrome_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_chrome()).expect("json writer is total");
        s.push('\n');
        s
    }

    /// Folded-stack output for flamegraph tools: one line per distinct
    /// `run;rank;category;label` stack, weighted by the summed charged
    /// path time in integer nanoseconds. Only path-charging event kinds
    /// ([`crate::EventKind::charges_path`]) contribute. Lines are sorted,
    /// so equal timelines fold to byte-identical text.
    pub fn to_folded(&self) -> String {
        use std::collections::BTreeMap;
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for run in self.ordered() {
            for trace in &run.ranks {
                for e in &trace.events {
                    if !e.kind.charges_path() {
                        continue;
                    }
                    let ns = (e.arg * 1e9).round();
                    // Drop non-positive and NaN weights alike.
                    if ns.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                        continue;
                    }
                    let stack =
                        format!("{};rank {};{};{}", run.label, trace.rank, e.kind.name(), e.label);
                    *stacks.entry(stack).or_insert(0) += ns as u64;
                }
            }
        }
        let mut out = String::new();
        for (stack, weight) in stacks {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

/// A timeline bundled with the metrics aggregated over its runs — what a
/// tuning sweep attaches to its `TuningReport` and what the figure drivers
/// write behind `--trace-out`/`--folded-out`/`--metrics-out`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// The ordered trace timeline.
    pub timeline: Timeline,
    /// Metrics merged over all runs and ranks in `(run, rank)` order.
    pub metrics: MetricsRegistry,
}

impl ObsReport {
    /// An empty report.
    pub fn new() -> Self {
        ObsReport::default()
    }

    /// Add one run: its rank traces join the timeline and their registries
    /// are folded into the aggregate metrics in ascending rank order.
    /// Callers must add runs in ascending id order (or sort before
    /// exporting — the timeline does) and fold metrics exactly once.
    pub fn add_run(&mut self, id: u64, label: impl Into<String>, ranks: Vec<RankTrace>) {
        let mut ranks = ranks;
        ranks.sort_by_key(|r| r.rank);
        for r in &ranks {
            self.metrics.merge(&r.metrics);
        }
        self.timeline.add_run(id, label, ranks);
    }

    /// Fold another report in, re-basing its run ids after this report's
    /// and prefixing its run labels with `prefix/`. Metrics merge once
    /// (they were already aggregated per report). Used by the figure
    /// drivers to combine independent sweeps in serial order, which keeps
    /// the combined export independent of `--jobs`.
    pub fn absorb(&mut self, other: ObsReport, prefix: &str) {
        let base = self.timeline.runs.len() as u64;
        let mut runs = other.timeline.runs;
        runs.sort_by_key(|r| r.id);
        for (i, run) in runs.into_iter().enumerate() {
            self.timeline.add_run(base + i as u64, format!("{prefix}/{}", run.label), run.ranks);
        }
        self.metrics.merge(&other.metrics);
    }

    /// Canonical pretty-printed metrics JSON (trailing newline included).
    pub fn metrics_string(&self) -> String {
        let mut s =
            serde_json::to_string_pretty(&self.metrics.to_json()).expect("json writer is total");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::sink::RankRecorder;
    use crate::sink::TraceSink;

    fn trace(rank: usize, label: &str, start: f64, arg: f64) -> RankTrace {
        let mut r = RankRecorder::new(rank);
        r.record(Event { kind: EventKind::KernelExec, label: label.into(), start, dur: arg, arg });
        r.metrics_mut().incr("samples_taken", 1);
        r.into_trace()
    }

    #[test]
    fn chrome_export_is_deterministic_and_ordered() {
        let mut a = Timeline::new();
        a.add_run(1, "run-b", vec![trace(1, "gemm", 1.0, 0.5), trace(0, "trsm", 0.0, 0.25)]);
        a.add_run(0, "run-a", vec![trace(0, "potrf", 0.0, 0.125)]);
        let s1 = a.to_chrome_string();
        let s2 = a.clone().to_chrome_string();
        assert_eq!(s1, s2);
        // Runs export in id order regardless of insertion order.
        assert!(s1.find("run-a").unwrap() < s1.find("run-b").unwrap());
        // Ranks export in rank order regardless of collection order.
        assert!(s1.find("trsm").unwrap() < s1.find("gemm").unwrap());
        assert!(s1.contains("\"ph\": \"X\""));
        assert!(s1.contains("\"traceEvents\""));
        assert_eq!(a.event_count(), 3);
    }

    #[test]
    fn folded_weights_sum_per_stack() {
        let mut t = Timeline::new();
        let mut r = RankRecorder::new(0);
        for _ in 0..2 {
            r.record(Event {
                kind: EventKind::KernelExec,
                label: "gemm".into(),
                start: 0.0,
                dur: 1e-6,
                arg: 1e-6,
            });
        }
        // A decision event must not contribute weight.
        r.record(Event {
            kind: EventKind::Decision,
            label: "gemm".into(),
            start: 0.0,
            dur: 0.0,
            arg: 0.5,
        });
        t.add_run(0, "sweep", vec![r.into_trace()]);
        let folded = t.to_folded();
        assert_eq!(folded, "sweep;rank 0;kernel_exec;gemm 2000\n");
    }

    #[test]
    fn obs_report_aggregates_metrics_once() {
        let mut a = ObsReport::new();
        a.add_run(0, "r0", vec![trace(0, "gemm", 0.0, 1.0), trace(1, "gemm", 0.0, 1.0)]);
        assert_eq!(a.metrics.counter("samples_taken"), 2);
        let mut b = ObsReport::new();
        b.add_run(0, "r0", vec![trace(0, "trsm", 0.0, 1.0)]);
        a.absorb(b, "space");
        assert_eq!(a.metrics.counter("samples_taken"), 3);
        assert_eq!(a.timeline.len(), 2);
        assert_eq!(a.timeline.runs()[1].label, "space/r0");
        // Rebased id continues after the existing runs.
        assert_eq!(a.timeline.runs()[1].id, 1);
    }

    #[test]
    fn run_json_round_trips_bit_exactly() {
        let run = TimelineRun {
            id: 42,
            label: "pr4pc4nb16/rep0/full".into(),
            ranks: vec![trace(0, "gemm", 0.1 + 0.2, 1.0 / 3.0), trace(1, "trsm", 0.5, 0.25)],
        };
        let text = serde_json::to_string_pretty(&run.to_json()).unwrap();
        let back = TimelineRun::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, run);
        // Bit-exactness carries through to the export surface.
        let mut a = Timeline::new();
        a.add_run(run.id, run.label.clone(), run.ranks.clone());
        let mut b = Timeline::new();
        b.add_run(back.id, back.label.clone(), back.ranks.clone());
        assert_eq!(a.to_chrome_string(), b.to_chrome_string());
        assert!(TimelineRun::from_json(&serde_json::json!({"id": 1})).is_err());
    }

    #[test]
    fn empty_exports() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.to_folded(), "");
        assert!(t.to_chrome_string().contains("\"traceEvents\": []"));
    }
}

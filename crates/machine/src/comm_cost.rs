//! Analytic cost of communication operations.
//!
//! Costs follow the standard α-β(-γ) models that MPI implementations realize:
//! small operations use binomial/recursive-doubling trees (latency-optimal),
//! large operations use the bandwidth-optimal Rabenseifner/ring family. Like an
//! MPI library's algorithm selector, each collective takes the **minimum** of
//! its candidate algorithms, which yields the familiar piecewise cost surface
//! autotuners must navigate.
//!
//! Word counts are in 8-byte elements. For "vector" collectives (allgather,
//! gather, scatter) `words` is the per-rank contribution, matching the MPI
//! calling convention used by the simulator.

use crate::params::MachineParams;

/// The communication operations the simulator can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommOp {
    /// Point-to-point send/recv pair (blocking or nonblocking).
    PointToPoint,
    /// One-to-all broadcast of `words` elements.
    Bcast,
    /// All-to-one reduction of `words` elements.
    Reduce,
    /// All-ranks reduction of `words` elements.
    Allreduce,
    /// Each rank contributes `words` elements, everyone gets all `p·words`.
    Allgather,
    /// Each rank contributes `words` elements to the root.
    Gather,
    /// Root distributes `words` elements to each rank.
    Scatter,
    /// Each rank contributes `p·words` elements; every rank receives its
    /// `words`-element slice of the elementwise reduction.
    ReduceScatter,
    /// Each rank sends a distinct `words`-element block to every other rank.
    Alltoall,
    /// Pure synchronization.
    Barrier,
}

impl CommOp {
    /// Short lowercase name matching the MPI routine (for reports/signatures).
    pub fn name(self) -> &'static str {
        match self {
            CommOp::PointToPoint => "p2p",
            CommOp::Bcast => "bcast",
            CommOp::Reduce => "reduce",
            CommOp::Allreduce => "allreduce",
            CommOp::Allgather => "allgather",
            CommOp::Gather => "gather",
            CommOp::Scatter => "scatter",
            CommOp::ReduceScatter => "reduce_scatter",
            CommOp::Alltoall => "alltoall",
            CommOp::Barrier => "barrier",
        }
    }

    /// Inverse of [`name`](Self::name), used when restoring persisted
    /// kernel signatures.
    pub fn from_name(s: &str) -> Option<CommOp> {
        Some(match s {
            "p2p" => CommOp::PointToPoint,
            "bcast" => CommOp::Bcast,
            "reduce" => CommOp::Reduce,
            "allreduce" => CommOp::Allreduce,
            "allgather" => CommOp::Allgather,
            "gather" => CommOp::Gather,
            "scatter" => CommOp::Scatter,
            "reduce_scatter" => CommOp::ReduceScatter,
            "alltoall" => CommOp::Alltoall,
            "barrier" => CommOp::Barrier,
            _ => return None,
        })
    }
}

/// Analytic communication cost model over [`MachineParams`].
#[derive(Debug, Clone)]
pub struct CommCostModel {
    params: MachineParams,
    /// Per-element reduction time (seconds/word) for Reduce/Allreduce local
    /// combining — a γ-term; tiny but keeps huge reductions from being free.
    reduce_flop_time: f64,
}

impl CommCostModel {
    /// Build a cost model over `params`. The reduction γ is derived from the
    /// machine's peak rate at a conservative 10% efficiency (reductions are
    /// memory bound).
    pub fn new(params: MachineParams) -> Self {
        let reduce_flop_time = 1.0 / (params.peak_flops * 0.10);
        CommCostModel { params, reduce_flop_time }
    }

    /// Underlying machine parameters.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// ⌈log₂ p⌉ as f64, 0 for p ≤ 1.
    #[inline]
    fn ceil_log2(p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            (usize::BITS - (p - 1).leading_zeros()) as f64
        }
    }

    /// Time for the given operation over a communicator of `comm_size` ranks
    /// moving `words` elements (per-rank for vector collectives). This is the
    /// *noise-free* base cost; jitter is applied by [`crate::MachineModel`].
    pub fn base_cost(&self, op: CommOp, words: usize, comm_size: usize) -> f64 {
        let a = self.params.alpha;
        let b = self.params.beta;
        let g = self.reduce_flop_time;
        let n = words as f64;
        let p = comm_size.max(1) as f64;
        let lg = Self::ceil_log2(comm_size);
        let o = self.params.per_call_overhead;
        if comm_size <= 1 {
            // Self-communication degenerates to a memcpy-ish cost.
            return o + b * n * 0.25;
        }
        let t = match op {
            CommOp::PointToPoint => a + b * n,
            CommOp::Bcast => {
                // Binomial tree vs scatter+allgather (van de Geijn).
                let tree = lg * (a + b * n);
                let large = 2.0 * lg * a + 2.0 * b * n * (p - 1.0) / p;
                tree.min(large)
            }
            CommOp::Reduce => {
                let tree = lg * (a + b * n + g * n);
                let large = 2.0 * lg * a + 2.0 * b * n * (p - 1.0) / p + g * n * (p - 1.0) / p;
                tree.min(large)
            }
            CommOp::Allreduce => {
                // Recursive doubling vs Rabenseifner (reduce-scatter + allgather).
                let rd = lg * (a + b * n + g * n);
                let rab = 2.0 * lg * a + 2.0 * b * n * (p - 1.0) / p + g * n * (p - 1.0) / p;
                rd.min(rab)
            }
            CommOp::Allgather => {
                // Recursive doubling / ring: every rank receives (p-1)·n words.
                let rd = lg * a + b * n * (p - 1.0);
                let ring = (p - 1.0) * a + b * n * (p - 1.0);
                rd.min(ring)
            }
            CommOp::Gather | CommOp::Scatter => {
                // Binomial tree: root moves (p-1)·n words in lg rounds.
                lg * a + b * n * (p - 1.0)
            }
            CommOp::ReduceScatter => {
                // Recursive halving: lg rounds, each moving half the data.
                lg * a + b * n * (p - 1.0) + g * n * (p - 1.0)
            }
            CommOp::Alltoall => {
                // Pairwise exchange: p−1 rounds of n-word messages.
                (p - 1.0) * a + b * n * (p - 1.0)
            }
            CommOp::Barrier => lg * a,
        };
        o + t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CommCostModel {
        CommCostModel::new(MachineParams::test_machine())
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(CommCostModel::ceil_log2(1), 0.0);
        assert_eq!(CommCostModel::ceil_log2(2), 1.0);
        assert_eq!(CommCostModel::ceil_log2(3), 2.0);
        assert_eq!(CommCostModel::ceil_log2(8), 3.0);
        assert_eq!(CommCostModel::ceil_log2(9), 4.0);
    }

    #[test]
    fn p2p_is_affine_in_words() {
        let m = model();
        let t0 = m.base_cost(CommOp::PointToPoint, 0, 2);
        let t1 = m.base_cost(CommOp::PointToPoint, 1_000_000, 2);
        assert!(t1 > t0);
        let beta = m.params().beta;
        assert!((t1 - t0 - beta * 1e6).abs() / (beta * 1e6) < 1e-9);
    }

    #[test]
    fn bcast_large_message_beats_tree() {
        let m = model();
        // For large n the scatter-allgather bound 2βn(p-1)/p must win over lg·βn.
        let p = 64;
        let n = 10_000_000;
        let cost = m.base_cost(CommOp::Bcast, n, p);
        let tree_only = 6.0 * (m.params().alpha + m.params().beta * n as f64);
        assert!(cost < tree_only * 0.5, "cost {cost} tree {tree_only}");
    }

    #[test]
    fn collective_cost_grows_with_p() {
        let m = model();
        for op in [CommOp::Bcast, CommOp::Allreduce, CommOp::Allgather, CommOp::Barrier] {
            let c4 = m.base_cost(op, 1024, 4);
            let c64 = m.base_cost(op, 1024, 64);
            assert!(c64 > c4, "{op:?} should grow with p");
        }
    }

    #[test]
    fn self_comm_is_cheap() {
        let m = model();
        assert!(m.base_cost(CommOp::Bcast, 1024, 1) < m.base_cost(CommOp::Bcast, 1024, 2));
    }

    #[test]
    fn allreduce_at_least_reduce() {
        let m = model();
        let n = 4096;
        let p = 32;
        assert!(m.base_cost(CommOp::Allreduce, n, p) >= m.base_cost(CommOp::Reduce, n, p) * 0.99);
    }

    #[test]
    fn barrier_is_latency_only() {
        let m = model();
        let c = m.base_cost(CommOp::Barrier, 0, 16);
        assert!(c < 10.0 * m.params().alpha);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CommOp::Allreduce.name(), "allreduce");
        assert_eq!(CommOp::PointToPoint.name(), "p2p");
        assert_eq!(CommOp::ReduceScatter.name(), "reduce_scatter");
        assert_eq!(CommOp::Alltoall.name(), "alltoall");
        for op in [
            CommOp::PointToPoint,
            CommOp::Bcast,
            CommOp::Reduce,
            CommOp::Allreduce,
            CommOp::Allgather,
            CommOp::Gather,
            CommOp::Scatter,
            CommOp::ReduceScatter,
            CommOp::Alltoall,
            CommOp::Barrier,
        ] {
            assert_eq!(CommOp::from_name(op.name()), Some(op));
        }
        assert_eq!(CommOp::from_name("nosuch"), None);
    }

    #[test]
    fn reduce_scatter_cheaper_than_allreduce() {
        // An allreduce is a reduce-scatter plus an allgather, so the
        // reduce-scatter alone must not cost more (per-rank convention:
        // allreduce n = p·reduce-scatter n).
        let m = model();
        let (p, chunk) = (16, 1024);
        let rs = m.base_cost(CommOp::ReduceScatter, chunk, p);
        let ar = m.base_cost(CommOp::Allreduce, chunk * p, p);
        assert!(rs < ar, "reduce_scatter {rs} vs allreduce {ar}");
    }

    #[test]
    fn alltoall_latency_scales_linearly() {
        let m = model();
        let a4 = m.base_cost(CommOp::Alltoall, 0, 4);
        let a32 = m.base_cost(CommOp::Alltoall, 0, 32);
        let alpha = m.params().alpha;
        assert!((a32 - a4 - 28.0 * alpha).abs() < 1e-12, "pairwise rounds are α-bound");
    }
}

//! # critter-machine
//!
//! Machine performance model for the `critter-rs` distributed-memory simulator.
//!
//! The paper's evaluation ran on Stampede2 (Intel KNL nodes, Omni-Path fat-tree).
//! We do not have that machine, so every cost a simulated program pays is produced
//! by this crate: an α-β(-γ) communication model, a kernel compute model built
//! from flop counts and size-dependent efficiency curves, and a stochastic noise
//! model that reproduces the *variability* the paper observes on a shared cluster
//! (per-node contention, per-invocation jitter).
//!
//! Determinism is a hard requirement: the simulator runs ranks on OS threads, so
//! any draw taken from a shared stateful RNG would depend on scheduling order.
//! All stochastic draws here are **counter-based** ([`CounterRng`]): a draw is a
//! pure function of `(seed, stream, counter)`, so simulations are bit-reproducible
//! regardless of thread interleaving.

#![deny(missing_docs)]

pub mod calibrate;
pub mod comm_cost;
pub mod compute_cost;
pub mod model;
pub mod noise;
pub mod params;
pub mod rng;
pub mod topology;

pub use calibrate::{fit_compute, fit_ptp, params_from_fits, ComputeFit, PtpFit};
pub use comm_cost::{CommCostModel, CommOp};
pub use compute_cost::{ComputeCostModel, KernelClass};
pub use model::MachineModel;
pub use noise::{ComputeSampler, NoiseModel, NoiseParams};
pub use params::MachineParams;
pub use rng::CounterRng;
pub use topology::Topology;

//! Analytic cost of computational kernels.
//!
//! A kernel's base time is `flops / (peak · efficiency)`, where efficiency
//! depends on (a) the kernel class — `gemm` streams at near peak, triangular
//! and factorization kernels lose efficiency to dependencies, BLAS-2 is memory
//! bound — and (b) the problem size, through a saturation curve
//! `eff(f) = eff_max · f / (f + f_half)`: tiny kernels are dominated by call
//! overhead and never reach peak. This reproduces the behavior the paper leans
//! on: Capital's recursion produces a few large near-peak kernels and many tiny
//! inefficient ones, while SLATE's fixed tile size repeats one mid-size kernel
//! thousands of times.

use crate::params::MachineParams;

/// Broad efficiency class of a computational kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelClass {
    /// Dense matrix-matrix multiply (`gemm`): best case.
    Gemm,
    /// Symmetric rank-k update (`syrk`).
    Syrk,
    /// Triangular solve / triangular multiply (`trsm`, `trmm`).
    Triangular,
    /// Factorization kernels (`potrf`, `geqrf`, `tpqrt`, `trtri`): sequential
    /// dependency chains limit vectorization.
    Factorize,
    /// Application of orthogonal transforms (`ormqr`, `tpmqrt`, `larfb`).
    ApplyQ,
    /// Memory-bound BLAS-2 / data reshuffles (packing, block-to-cyclic).
    Blas2,
}

impl KernelClass {
    /// Peak fraction this class can reach on large inputs.
    pub fn max_efficiency(self) -> f64 {
        match self {
            KernelClass::Gemm => 0.85,
            KernelClass::Syrk => 0.75,
            KernelClass::Triangular => 0.60,
            KernelClass::Factorize => 0.45,
            KernelClass::ApplyQ => 0.70,
            KernelClass::Blas2 => 0.06,
        }
    }

    /// Flop count at which the class reaches half its max efficiency.
    /// Bigger for kernels with more startup (blocked factorizations).
    pub fn half_saturation_flops(self) -> f64 {
        match self {
            KernelClass::Gemm => 2.0e5,
            KernelClass::Syrk => 2.0e5,
            KernelClass::Triangular => 3.0e5,
            KernelClass::Factorize => 5.0e5,
            KernelClass::ApplyQ => 3.0e5,
            KernelClass::Blas2 => 1.0e4,
        }
    }
}

/// Analytic compute-kernel cost model over [`MachineParams`].
#[derive(Debug, Clone)]
pub struct ComputeCostModel {
    params: MachineParams,
    /// Fixed per-call overhead (seconds): dispatch, packing setup.
    call_overhead: f64,
}

impl ComputeCostModel {
    /// Build a model over `params` with a default 0.5 µs kernel-call overhead.
    pub fn new(params: MachineParams) -> Self {
        ComputeCostModel { params, call_overhead: 5.0e-7 }
    }

    /// Underlying machine parameters.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Size-dependent efficiency of `class` at `flops` total work.
    #[inline]
    pub fn efficiency(&self, class: KernelClass, flops: f64) -> f64 {
        let emax = class.max_efficiency();
        let fh = class.half_saturation_flops();
        emax * flops / (flops + fh)
    }

    /// Noise-free time for a kernel of `class` performing `flops` flops.
    #[inline]
    pub fn base_cost(&self, class: KernelClass, flops: f64) -> f64 {
        if flops <= 0.0 {
            return self.call_overhead;
        }
        let eff = self.efficiency(class, flops).max(1e-6);
        self.call_overhead + flops / (self.params.peak_flops * eff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ComputeCostModel {
        ComputeCostModel::new(MachineParams::test_machine())
    }

    #[test]
    fn efficiency_saturates() {
        let m = model();
        let small = m.efficiency(KernelClass::Gemm, 1e3);
        let large = m.efficiency(KernelClass::Gemm, 1e9);
        assert!(small < 0.05);
        assert!(large > 0.8);
        assert!(large <= KernelClass::Gemm.max_efficiency());
    }

    #[test]
    fn gemm_beats_factorize() {
        let m = model();
        let f = 1e8;
        assert!(
            m.base_cost(KernelClass::Gemm, f) < m.base_cost(KernelClass::Factorize, f),
            "gemm should be faster per flop"
        );
    }

    #[test]
    fn blas2_is_memory_bound() {
        let m = model();
        // At the same flop count BLAS-2 should be an order of magnitude slower.
        let f = 1e7;
        let r = m.base_cost(KernelClass::Blas2, f) / m.base_cost(KernelClass::Gemm, f);
        assert!(r > 5.0, "ratio {r}");
    }

    #[test]
    fn cost_is_monotone_in_flops() {
        let m = model();
        let mut prev = 0.0;
        for e in 2..10 {
            let c = m.base_cost(KernelClass::Syrk, 10f64.powi(e));
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn zero_flops_costs_overhead() {
        let m = model();
        assert_eq!(m.base_cost(KernelClass::Gemm, 0.0), m.call_overhead);
    }

    #[test]
    fn small_kernels_dominated_by_overhead() {
        // Many tiny kernels must be far less efficient than one big kernel of
        // the same total flops — this drives the block-size trade-off.
        let m = model();
        let total = 1e8;
        let one = m.base_cost(KernelClass::Gemm, total);
        let many = 1e4 * m.base_cost(KernelClass::Gemm, total / 1e4);
        assert!(many > 2.0 * one, "many {many} one {one}");
    }
}

//! Counter-based pseudo-random number generation.
//!
//! Every stochastic draw in the simulator is a pure function of
//! `(seed, stream, counter)`. This is the property that makes simulations
//! bit-reproducible even though simulated ranks execute on freely scheduled OS
//! threads: no draw ever depends on *when* it was taken, only on *which* draw it
//! is. The construction is two rounds of the SplitMix64 finalizer over a mixed
//! key, which passes the statistical bar needed here (noise factors, matrix
//! fills) without pulling in a heavyweight counter-based cipher.

/// The 64-bit SplitMix64 finalizer: a fast, well-mixed bijection on `u64`.
///
/// Used as the mixing core of [`CounterRng`] and as a convenient way to derive
/// independent seeds from one another.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic counter-based random stream.
///
/// A `CounterRng` is identified by a global `seed` and a `stream` id (e.g. a
/// rank index, or a hash of a communicator id). Draws are indexed by an
/// internal monotone counter; [`CounterRng::at`] gives random access to any
/// index without disturbing the counter.
#[derive(Debug, Clone)]
pub struct CounterRng {
    key: u64,
    counter: u64,
}

impl CounterRng {
    /// Create a stream identified by `(seed, stream)` with its counter at zero.
    pub fn new(seed: u64, stream: u64) -> Self {
        // Mix seed and stream so that nearby (seed, stream) pairs are unrelated.
        let key = splitmix64(seed ^ splitmix64(stream ^ 0x51ed_2701_89ab_cdef));
        CounterRng { key, counter: 0 }
    }

    /// The raw 64-bit output at absolute position `counter` (random access).
    #[inline]
    pub fn at(&self, counter: u64) -> u64 {
        splitmix64(self.key.wrapping_add(splitmix64(counter)))
    }

    /// Current counter position (number of sequential draws taken so far).
    pub fn position(&self) -> u64 {
        self.counter
    }

    /// Next raw 64-bit value, advancing the counter.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let v = self.at(self.counter);
        self.counter += 1;
        v
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the half-open interval `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Uses rejection-free multiply-shift, whose
    /// tiny bias is irrelevant for simulation noise.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A standard normal draw via Box–Muller (consumes two uniforms).
    pub fn normal(&mut self) -> f64 {
        // Guard against log(0).
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A lognormal draw `exp(mu + sigma * N(0,1))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// A gamma draw with shape `k > 0` and scale `theta > 0`
    /// (Marsaglia–Tsang method; boosts shapes below one).
    pub fn gamma(&mut self, k: f64, theta: f64) -> f64 {
        assert!(k > 0.0 && theta > 0.0, "gamma requires positive parameters");
        if k < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
            let u = self.next_f64().max(f64::MIN_POSITIVE);
            return self.gamma(k + 1.0, theta) * u.powf(1.0 / k);
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = self.next_f64().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * theta;
            }
        }
    }
}

/// Derive a 64-bit stream id from arbitrary labelled parts.
///
/// Convenience for building deterministic streams like
/// `stream_id(&[comm_hash, op_index])`.
pub fn stream_id(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_access_matches_sequential() {
        let mut a = CounterRng::new(42, 7);
        let b = CounterRng::new(42, 7);
        let seq: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ra: Vec<u64> = (0..16).map(|i| b.at(i)).collect();
        assert_eq!(seq, ra);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = CounterRng::new(1, 0);
        let mut b = CounterRng::new(1, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = CounterRng::new(3, 3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = CounterRng::new(9, 1);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = CounterRng::new(11, 2);
        let (k, theta) = (4.0, 0.5);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gamma(k, theta)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - k * theta).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gamma_small_shape() {
        let mut r = CounterRng::new(13, 4);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gamma(0.5, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.06, "mean {mean}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_positive_and_median() {
        let mut r = CounterRng::new(17, 5);
        let n = 20_000;
        let mut xs: Vec<f64> = (0..n).map(|_| r.lognormal(0.0, 0.3)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        assert!((median - 1.0).abs() < 0.03, "median {median}");
    }

    #[test]
    fn below_is_in_range() {
        let mut r = CounterRng::new(23, 6);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn stream_id_distinguishes_order() {
        assert_ne!(stream_id(&[1, 2]), stream_id(&[2, 1]));
        assert_ne!(stream_id(&[1]), stream_id(&[1, 0]));
    }
}

//! Core machine parameters (α, β, γ and node shape).
//!
//! The defaults are calibrated to the paper's testbed: Stampede2 KNL nodes
//! (68 cores, run with 64 MPI ranks per node, ~3 Tflop/s double-precision per
//! node) connected by an Intel Omni-Path fat-tree with 12.5 GB/s injection
//! bandwidth per node. Absolute values only need to be plausible — the
//! reproduction targets the *shape* of the paper's results — but keeping them
//! near the real hardware keeps the communication/computation trade-offs that
//! drive configuration selection realistic.

/// Fundamental machine cost parameters, in seconds and 8-byte words.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineParams {
    /// Point-to-point message latency (seconds per message), the BSP α.
    pub alpha: f64,
    /// Inverse bandwidth (seconds per 8-byte word), the BSP β.
    ///
    /// Derived from per-node injection bandwidth divided across the ranks of a
    /// node, since the paper runs 64 ranks per node sharing one OPA port.
    pub beta: f64,
    /// Peak double-precision rate of one rank (flops/second). The BSP γ is
    /// `1 / (peak_flops * efficiency)` and efficiency is kernel dependent, so
    /// γ lives in [`crate::ComputeCostModel`].
    pub peak_flops: f64,
    /// MPI ranks per node (used by the noise model for node-level contention).
    pub ranks_per_node: usize,
    /// Fixed software overhead added to every communication call (seconds):
    /// envelope matching, progress engine. Small relative to α.
    pub per_call_overhead: f64,
}

impl MachineParams {
    /// Parameters modeled on Stampede2's KNL partition as used in the paper:
    /// 64 ranks/node, ~46 Gflop/s peak per rank (3 Tflop/s node / 64),
    /// 12.5 GB/s injection shared per node, ~2 µs latency (KNL cores drive
    /// MPI slowly).
    pub fn stampede2_knl() -> Self {
        let node_bw_bytes = 12.5e9;
        let ranks_per_node = 64;
        MachineParams {
            alpha: 2.0e-6,
            // Per-rank share of node injection bandwidth, per 8-byte word.
            beta: 8.0 / (node_bw_bytes / ranks_per_node as f64),
            peak_flops: 3.0e12 / ranks_per_node as f64,
            ranks_per_node,
            per_call_overhead: 2.5e-7,
        }
    }

    /// A small, fast "laptop-like" machine useful in unit tests: lower latency,
    /// higher per-rank bandwidth, modest flops, 8 ranks per node.
    pub fn test_machine() -> Self {
        MachineParams {
            alpha: 1.0e-6,
            beta: 1.0e-9,
            peak_flops: 1.0e10,
            ranks_per_node: 8,
            per_call_overhead: 1.0e-7,
        }
    }

    /// Time to move `words` 8-byte words point-to-point: `α + β·words`.
    #[inline]
    pub fn ptp_time(&self, words: usize) -> f64 {
        self.alpha + self.beta * words as f64
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams::stampede2_knl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_defaults_are_sane() {
        let p = MachineParams::stampede2_knl();
        assert!(p.alpha > 0.0 && p.alpha < 1e-4);
        // 12.5 GB/s / 64 ranks ≈ 195 MB/s/rank → beta ≈ 41 ns/word.
        assert!((p.beta - 4.096e-8).abs() / p.beta < 0.01);
        assert!((p.peak_flops - 46.875e9).abs() / p.peak_flops < 0.01);
    }

    #[test]
    fn ptp_time_is_affine() {
        let p = MachineParams::test_machine();
        let t0 = p.ptp_time(0);
        let t1 = p.ptp_time(1000);
        assert_eq!(t0, p.alpha);
        assert!((t1 - t0 - 1000.0 * p.beta).abs() < 1e-18);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let p = MachineParams::stampede2_knl();
        assert!(p.alpha > p.beta * 8.0, "one-word message should be latency bound");
    }
}

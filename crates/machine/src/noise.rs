//! Stochastic perturbation of modeled costs.
//!
//! The paper stresses that Stampede2 timings are noisy — enough that each
//! experiment is repeated on two node allocations and each configuration five
//! times, with the variance of five full executions used to quantify the noise
//! floor. Critter's statistical machinery (confidence intervals, selective
//! execution) only makes sense on noisy measurements, so the simulator must
//! perturb every modeled cost.
//!
//! The model has three multiplicative components applied to a base cost `t`:
//!
//! * **node factor** — one lognormal draw per `(allocation, node)`: a slow node
//!   stays slow for the whole job, which is what creates persistent load
//!   imbalance and distinct critical paths across allocations;
//! * **invocation jitter** — one lognormal draw per kernel invocation: OS
//!   interference, cache state, turbo variation;
//! * **communication jitter** — same, but with its own (typically larger)
//!   sigma for network operations, drawn per operation.
//!
//! All draws are counter-based (see [`crate::rng`]), so they are reproducible
//! under any thread schedule: the compute jitter stream is indexed by
//! `(rank, invocation number)` and the communication stream by
//! `(channel id, operation sequence number)`.

use crate::rng::{splitmix64, stream_id, CounterRng};
use crate::topology::Topology;

/// Parameters of the multiplicative noise model.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseParams {
    /// Sigma of the per-(allocation, node) lognormal factor.
    pub node_sigma: f64,
    /// Sigma of the per-invocation lognormal jitter on compute kernels.
    pub compute_sigma: f64,
    /// Sigma of the per-operation lognormal jitter on communication.
    pub comm_sigma: f64,
}

impl NoiseParams {
    /// Noise levels representative of the paper's shared-cluster environment:
    /// a few percent persistent node skew, ~5% compute jitter, ~15%
    /// communication jitter.
    pub fn cluster() -> Self {
        NoiseParams { node_sigma: 0.03, compute_sigma: 0.05, comm_sigma: 0.15 }
    }

    /// No noise at all — useful for exact-cost unit tests.
    pub fn none() -> Self {
        NoiseParams { node_sigma: 0.0, compute_sigma: 0.0, comm_sigma: 0.0 }
    }

    /// Scale every sigma by `f` (used by the noise-amplitude ablation bench).
    pub fn scaled(&self, f: f64) -> Self {
        NoiseParams {
            node_sigma: self.node_sigma * f,
            compute_sigma: self.compute_sigma * f,
            comm_sigma: self.comm_sigma * f,
        }
    }
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams::cluster()
    }
}

/// Deterministic noise source bound to a seed and a topology.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    params: NoiseParams,
    seed: u64,
}

/// Internal stream labels, kept distinct so compute/comm/node draws never alias.
const STREAM_NODE: u64 = 0x4e4f_4445; // "NODE"
const STREAM_COMPUTE: u64 = 0x434f_4d50; // "COMP"
const STREAM_COMM: u64 = 0x434f_4d4d; // "COMM"

impl NoiseModel {
    /// Create a noise model from `params` rooted at `seed`.
    pub fn new(params: NoiseParams, seed: u64) -> Self {
        NoiseModel { params, seed }
    }

    /// The parameters in force.
    pub fn params(&self) -> &NoiseParams {
        &self.params
    }

    /// Persistent slowdown factor of `rank`'s node within `topo`'s allocation.
    ///
    /// Lognormal with median one; identical for all ranks of a node, and
    /// redrawn when the allocation id changes.
    pub fn node_factor(&self, topo: &Topology, rank: usize) -> f64 {
        if self.params.node_sigma == 0.0 {
            return 1.0;
        }
        let node = topo.node_of(rank) as u64;
        let mut rng =
            CounterRng::new(self.seed, stream_id(&[STREAM_NODE, topo.allocation(), node]));
        rng.lognormal(0.0, self.params.node_sigma)
    }

    /// Jitter factor for the `invocation`-th compute kernel on `rank`.
    #[inline]
    pub fn compute_jitter(&self, rank: usize, invocation: u64) -> f64 {
        if self.params.compute_sigma == 0.0 {
            return 1.0;
        }
        let rng = CounterRng::new(self.seed, stream_id(&[STREAM_COMPUTE, rank as u64]));
        lognormal_at(&rng, invocation, self.params.compute_sigma)
    }

    /// Jitter factor for the `sequence`-th operation on communication channel
    /// `channel` (a hash identifying the matched communication event, shared by
    /// all participants so that they observe the *same* perturbation).
    #[inline]
    pub fn comm_jitter(&self, channel: u64, sequence: u64) -> f64 {
        if self.params.comm_sigma == 0.0 {
            return 1.0;
        }
        let rng = CounterRng::new(self.seed, stream_id(&[STREAM_COMM, channel]));
        lognormal_at(&rng, sequence, self.params.comm_sigma)
    }

    /// Derive an unrelated noise model (e.g. for a second tuning repetition).
    pub fn reseeded(&self, salt: u64) -> Self {
        NoiseModel { params: self.params.clone(), seed: splitmix64(self.seed ^ salt) }
    }

    /// Build a [`ComputeSampler`] for `rank`: the persistent node factor and
    /// the rank's jitter stream are resolved once, so the per-invocation cost
    /// of a draw is a single random-access lognormal instead of re-deriving
    /// the stream (and re-drawing the node factor) on every call.
    pub fn compute_sampler(&self, topo: &Topology, rank: usize) -> ComputeSampler {
        ComputeSampler {
            node_factor: self.node_factor(topo, rank),
            jitter: (self.params.compute_sigma != 0.0).then(|| {
                (
                    CounterRng::new(self.seed, stream_id(&[STREAM_COMPUTE, rank as u64])),
                    self.params.compute_sigma,
                )
            }),
        }
    }
}

/// Per-rank compute-noise sampler with the node factor and jitter stream
/// cached (see [`NoiseModel::compute_sampler`]). The draws it produces are
/// bit-identical to [`NoiseModel::node_factor`] × [`NoiseModel::compute_jitter`]:
/// the stream identity and draw indices are unchanged, only the per-call
/// stream setup is hoisted. One sampler is created per `(config, rep)` run
/// per rank, which batches the noise-stream setup at that granularity.
#[derive(Debug, Clone)]
pub struct ComputeSampler {
    node_factor: f64,
    /// Jitter stream and sigma; `None` when `compute_sigma == 0` (exact).
    jitter: Option<(CounterRng, f64)>,
}

impl ComputeSampler {
    /// The persistent node slowdown factor (1.0 under zero node sigma).
    #[inline]
    pub fn node_factor(&self) -> f64 {
        self.node_factor
    }

    /// Jitter factor of the `invocation`-th compute kernel on this rank.
    #[inline]
    pub fn jitter(&self, invocation: u64) -> f64 {
        match &self.jitter {
            Some((rng, sigma)) => lognormal_at(rng, invocation, *sigma),
            None => 1.0,
        }
    }
}

/// Random-access lognormal draw at counter `idx`: Box–Muller on the pair of
/// uniforms at positions `2·idx` and `2·idx + 1`.
#[inline]
fn lognormal_at(rng: &CounterRng, idx: u64, sigma: f64) -> f64 {
    let u1 = ((rng.at(2 * idx) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(f64::MIN_POSITIVE);
    let u2 = (rng.at(2 * idx + 1) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * n).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(16, 4, 0)
    }

    #[test]
    fn node_factor_shared_within_node() {
        let m = NoiseModel::new(NoiseParams::cluster(), 7);
        let t = topo();
        assert_eq!(m.node_factor(&t, 0), m.node_factor(&t, 3));
        assert_ne!(m.node_factor(&t, 0), m.node_factor(&t, 4));
    }

    #[test]
    fn node_factor_changes_with_allocation() {
        let m = NoiseModel::new(NoiseParams::cluster(), 7);
        let t0 = Topology::new(16, 4, 0);
        let t1 = Topology::new(16, 4, 1);
        assert_ne!(m.node_factor(&t0, 0), m.node_factor(&t1, 0));
    }

    #[test]
    fn zero_sigma_is_exact() {
        let m = NoiseModel::new(NoiseParams::none(), 7);
        assert_eq!(m.node_factor(&topo(), 5), 1.0);
        assert_eq!(m.compute_jitter(3, 100), 1.0);
        assert_eq!(m.comm_jitter(9, 2), 1.0);
    }

    #[test]
    fn jitter_is_reproducible_and_indexed() {
        let m = NoiseModel::new(NoiseParams::cluster(), 11);
        let a = m.compute_jitter(2, 5);
        let b = m.compute_jitter(2, 5);
        let c = m.compute_jitter(2, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a > 0.0);
    }

    #[test]
    fn comm_jitter_shared_across_participants() {
        // Participants identify the operation by (channel, seq); they therefore
        // see the same factor no matter which rank asks.
        let m = NoiseModel::new(NoiseParams::cluster(), 13);
        assert_eq!(m.comm_jitter(42, 17), m.comm_jitter(42, 17));
    }

    #[test]
    fn jitter_median_near_one() {
        let m = NoiseModel::new(NoiseParams::cluster(), 17);
        let mut xs: Vec<f64> = (0..10_001).map(|i| m.compute_jitter(0, i)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median - 1.0).abs() < 0.02, "median {median}");
    }

    #[test]
    fn reseeded_differs() {
        let m = NoiseModel::new(NoiseParams::cluster(), 19);
        let m2 = m.reseeded(1);
        assert_ne!(m.compute_jitter(0, 0), m2.compute_jitter(0, 0));
    }
}

//! Calibrating [`crate::MachineParams`] from measurements.
//!
//! The simulator ships with parameters matched to the paper's Stampede2
//! figures, but porting the model to another machine means fitting α, β and
//! the compute rate from benchmarks — exactly the ping-pong and kernel-timing
//! runs an MPI user would do. This module performs those fits from
//! `(size, time)` samples with ordinary least squares, so a user can point
//! the simulator at their own cluster's microbenchmark output.

use crate::params::MachineParams;

/// Ordinary least squares of `y = a + b·x` over sample pairs.
/// Returns `(a, b)`; `None` for fewer than two distinct `x` values.
fn ols(samples: &[(f64, f64)]) -> Option<(f64, f64)> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|&(x, _)| x).sum();
    let sy: f64 = samples.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = samples.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = samples.iter().map(|&(x, y)| x * y).sum();
    let vx = sxx - sx * sx / n;
    if vx <= 1e-30 {
        return None;
    }
    let b = (sxy - sx * sy / n) / vx;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

/// Result of a point-to-point calibration fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtpFit {
    /// Fitted message latency α (seconds).
    pub alpha: f64,
    /// Fitted inverse bandwidth β (seconds per 8-byte word).
    pub beta: f64,
}

/// Fit `α + β·words` to one-way point-to-point times.
///
/// `samples` are `(words, seconds)` pairs, e.g. halved ping-pong round trips
/// across a range of message sizes. Negative fitted values are clamped to
/// tiny positive numbers (measurement noise on a fast machine can produce a
/// slightly negative intercept).
pub fn fit_ptp(samples: &[(f64, f64)]) -> Option<PtpFit> {
    let (a, b) = ols(samples)?;
    Some(PtpFit { alpha: a.max(1e-9), beta: b.max(1e-13) })
}

/// Result of a compute-rate calibration fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeFit {
    /// Fitted per-call overhead (seconds).
    pub overhead: f64,
    /// Fitted sustained rate (flops/second) at large sizes.
    pub sustained_flops: f64,
}

/// Fit `overhead + flops/rate` to kernel timings.
///
/// `samples` are `(flops, seconds)` pairs from a compute kernel (e.g. `gemm`)
/// across sizes. The slope of the affine fit is `1/rate`.
pub fn fit_compute(samples: &[(f64, f64)]) -> Option<ComputeFit> {
    let (a, b) = ols(samples)?;
    if b <= 0.0 {
        return None; // time must grow with work
    }
    Some(ComputeFit { overhead: a.max(0.0), sustained_flops: 1.0 / b })
}

/// Build [`MachineParams`] from point-to-point and compute fits.
///
/// `gemm_efficiency` is the efficiency the compute samples ran at (use the
/// asymptotic gemm efficiency, ~0.85, when fitting with large kernels), so
/// the stored peak is the fitted sustained rate divided by it.
///
/// The fitted point-to-point α already *includes* the software call overhead
/// (a ping-pong cannot separate the two), so the calibrated parameters carry
/// it inside `alpha` and set `per_call_overhead` to zero. The compute fit's
/// intercept is likewise a blend of call overhead and the efficiency curve's
/// half-saturation cost, so it must not be reused as a per-call overhead —
/// that mistake inflates every modeled operation by the saturation term.
pub fn params_from_fits(
    ptp: PtpFit,
    compute: ComputeFit,
    gemm_efficiency: f64,
    ranks_per_node: usize,
) -> MachineParams {
    assert!(gemm_efficiency > 0.0 && gemm_efficiency <= 1.0, "efficiency must be in (0,1]");
    MachineParams {
        alpha: ptp.alpha,
        beta: ptp.beta,
        peak_flops: compute.sustained_flops / gemm_efficiency,
        ranks_per_node,
        per_call_overhead: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;
    use crate::CommOp;

    #[test]
    fn ptp_fit_recovers_known_machine() {
        // Generate noise-free ping-pong data from a known machine and check
        // the fit returns its parameters.
        let m = MachineModel::test_exact(2);
        let truth = m.params().clone();
        let samples: Vec<(f64, f64)> = [64usize, 256, 1024, 4096, 16384, 65536]
            .iter()
            .map(|&w| (w as f64, m.comm_time_exact(CommOp::PointToPoint, w, 2)))
            .collect();
        let fit = fit_ptp(&samples).unwrap();
        // The model adds a per-call overhead to α; accept it in the intercept.
        let expect_alpha = truth.alpha + truth.per_call_overhead;
        assert!((fit.alpha - expect_alpha).abs() / expect_alpha < 1e-9, "alpha {}", fit.alpha);
        assert!((fit.beta - truth.beta).abs() / truth.beta < 1e-9, "beta {}", fit.beta);
    }

    #[test]
    fn compute_fit_recovers_rate() {
        // t = 1µs + f / 10 Gflop/s.
        let samples: Vec<(f64, f64)> =
            (1..=8).map(|i| (1e7 * i as f64, 1e-6 + 1e7 * i as f64 / 1e10)).collect();
        let fit = fit_compute(&samples).unwrap();
        assert!((fit.sustained_flops - 1e10).abs() / 1e10 < 1e-9);
        assert!((fit.overhead - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn fits_reject_degenerate_input() {
        assert!(fit_ptp(&[(8.0, 1e-6)]).is_none());
        assert!(fit_ptp(&[(8.0, 1e-6), (8.0, 2e-6)]).is_none(), "no size variation");
        assert!(fit_compute(&[(1e6, 2e-3), (2e6, 1e-3)]).is_none(), "negative slope");
    }

    #[test]
    fn params_roundtrip_through_model() {
        // Calibrate from a known machine, rebuild params, and check costs of
        // the rebuilt machine match the original.
        let m = MachineModel::test_exact(2);
        let ptp_samples: Vec<(f64, f64)> = [256usize, 4096, 65536]
            .iter()
            .map(|&w| (w as f64, m.comm_time_exact(CommOp::PointToPoint, w, 2)))
            .collect();
        let ptp = fit_ptp(&ptp_samples).unwrap();
        // Large-gemm samples near asymptotic efficiency.
        let class = crate::KernelClass::Gemm;
        let comp_samples: Vec<(f64, f64)> =
            (10..16).map(|i| (10f64.powi(i), m.compute_time_exact(class, 10f64.powi(i)))).collect();
        let comp = fit_compute(&comp_samples).unwrap();
        let params = params_from_fits(ptp, comp, class.max_efficiency(), 8);
        let rebuilt = crate::CommCostModel::new(params.clone());
        let orig = m.comm_time_exact(CommOp::PointToPoint, 8192, 2);
        let new = rebuilt.base_cost(CommOp::PointToPoint, 8192, 2);
        assert!((orig - new).abs() / orig < 0.05, "{orig} vs {new}");
        // Peak within 10% (asymptotic efficiency is only approached, not hit).
        assert!((params.peak_flops - m.params().peak_flops).abs() / m.params().peak_flops < 0.1);
    }

    #[test]
    fn clamps_noisy_negative_intercepts() {
        let fit = fit_ptp(&[(10.0, 1e-8), (1000.0, 5e-6), (100.0, 2e-7)]).unwrap();
        assert!(fit.alpha > 0.0);
        assert!(fit.beta > 0.0);
    }
}

//! Rank-to-node topology.
//!
//! The noise model needs to know which ranks share a node (they contend for
//! memory bandwidth and the injection port) and which node of the *allocation*
//! a rank landed on (the paper runs every experiment on two distinct node
//! allocations precisely because allocations differ). This module provides that
//! mapping for a block rank placement, the scheme used by the paper's runs.

/// Maps simulated ranks onto nodes of a specific allocation.
#[derive(Debug, Clone)]
pub struct Topology {
    ranks: usize,
    ranks_per_node: usize,
    /// Identifier of the node allocation (a different allocation re-draws all
    /// node-level noise factors, modeling a new `sbatch` placement).
    allocation: u64,
}

impl Topology {
    /// Block placement of `ranks` ranks, `ranks_per_node` to a node, within
    /// allocation `allocation`.
    pub fn new(ranks: usize, ranks_per_node: usize, allocation: u64) -> Self {
        assert!(ranks > 0, "topology requires at least one rank");
        assert!(ranks_per_node > 0, "ranks_per_node must be positive");
        Topology { ranks, ranks_per_node, allocation }
    }

    /// Total number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Number of ranks placed on each node.
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Number of nodes this job spans (ceiling division).
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node)
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.ranks);
        rank / self.ranks_per_node
    }

    /// The allocation identifier.
    pub fn allocation(&self) -> u64 {
        self.allocation
    }

    /// All ranks co-located with `rank` on its node (including itself).
    pub fn node_peers(&self, rank: usize) -> std::ops::Range<usize> {
        let node = self.node_of(rank);
        let lo = node * self.ranks_per_node;
        let hi = ((node + 1) * self.ranks_per_node).min(self.ranks);
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement() {
        let t = Topology::new(16, 4, 0);
        assert_eq!(t.nodes(), 4);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(15), 3);
    }

    #[test]
    fn partial_last_node() {
        let t = Topology::new(10, 4, 1);
        assert_eq!(t.nodes(), 3);
        assert_eq!(t.node_peers(9), 8..10);
    }

    #[test]
    fn peers_cover_node() {
        let t = Topology::new(12, 3, 2);
        assert_eq!(t.node_peers(4), 3..6);
        for r in t.node_peers(4) {
            assert_eq!(t.node_of(r), 1);
        }
    }
}

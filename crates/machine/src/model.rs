//! The full machine model: analytic costs × stochastic noise × topology.
//!
//! [`MachineModel`] is the single object the simulator consults for every cost.
//! It is immutable and shared (`Arc`) across all rank threads; all state needed
//! for determinism lives in the counters its callers supply.

use std::sync::Arc;

use crate::comm_cost::{CommCostModel, CommOp};
use crate::compute_cost::{ComputeCostModel, KernelClass};
use crate::noise::{ComputeSampler, NoiseModel, NoiseParams};
use crate::params::MachineParams;
use crate::topology::Topology;

/// Immutable description of the simulated machine.
#[derive(Debug, Clone)]
pub struct MachineModel {
    comm: CommCostModel,
    compute: ComputeCostModel,
    noise: NoiseModel,
    topo: Topology,
    /// Persistent node slowdown factor per rank, drawn once at construction.
    /// The values are exactly what `noise.node_factor(&topo, rank)` returns;
    /// precomputing them keeps the Box–Muller transform off the per-invocation
    /// `compute_time` path.
    node_factors: Vec<f64>,
}

impl MachineModel {
    /// Assemble a machine from parameters, noise, rank count and allocation id.
    pub fn new(
        params: MachineParams,
        noise: NoiseParams,
        ranks: usize,
        seed: u64,
        allocation: u64,
    ) -> Self {
        let topo = Topology::new(ranks, params.ranks_per_node, allocation);
        let noise = NoiseModel::new(noise, seed);
        let node_factors = (0..ranks).map(|r| noise.node_factor(&topo, r)).collect();
        MachineModel {
            comm: CommCostModel::new(params.clone()),
            compute: ComputeCostModel::new(params),
            noise,
            topo,
            node_factors,
        }
    }

    /// The paper's testbed with cluster-level noise.
    pub fn stampede2(ranks: usize, seed: u64, allocation: u64) -> Self {
        Self::new(MachineParams::stampede2_knl(), NoiseParams::cluster(), ranks, seed, allocation)
    }

    /// Small noiseless machine for exact unit tests.
    pub fn test_exact(ranks: usize) -> Self {
        Self::new(MachineParams::test_machine(), NoiseParams::none(), ranks, 0, 0)
    }

    /// Small noisy machine for statistical unit tests.
    pub fn test_noisy(ranks: usize, seed: u64) -> Self {
        Self::new(MachineParams::test_machine(), NoiseParams::cluster(), ranks, seed, 0)
    }

    /// Shared handle.
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Rank→node topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Machine parameters.
    pub fn params(&self) -> &MachineParams {
        self.comm.params()
    }

    /// The noise model (exposed for re-seeding between tuning repetitions).
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Replace the noise model's seed, keeping everything else (used to model a
    /// fresh run of the same job in a new environment sample).
    pub fn with_noise_seed(&self, salt: u64) -> Self {
        let noise = self.noise.reseeded(salt);
        let node_factors =
            (0..self.topo.ranks()).map(|r| noise.node_factor(&self.topo, r)).collect();
        MachineModel {
            comm: self.comm.clone(),
            compute: self.compute.clone(),
            noise,
            topo: self.topo.clone(),
            node_factors,
        }
    }

    /// Precomputed node factor for `rank` (falls back to a direct draw for
    /// out-of-range ranks so the result matches `noise.node_factor` always).
    #[inline]
    fn node_factor(&self, rank: usize) -> f64 {
        match self.node_factors.get(rank) {
            Some(f) => *f,
            None => self.noise.node_factor(&self.topo, rank),
        }
    }

    /// Sampled execution time of a compute kernel on `rank`:
    /// `base(class, flops) · node_factor(rank) · jitter(rank, invocation)`.
    pub fn compute_time(
        &self,
        class: KernelClass,
        flops: f64,
        rank: usize,
        invocation: u64,
    ) -> f64 {
        self.compute.base_cost(class, flops)
            * self.node_factor(rank)
            * self.noise.compute_jitter(rank, invocation)
    }

    /// Per-rank sampler caching the node factor and jitter stream; feed it to
    /// [`MachineModel::compute_time_with`] for draws bit-identical to
    /// [`MachineModel::compute_time`] without per-call stream setup.
    pub fn compute_sampler(&self, rank: usize) -> ComputeSampler {
        self.noise.compute_sampler(&self.topo, rank)
    }

    /// `compute_time` through a sampler created by
    /// [`MachineModel::compute_sampler`] for the same rank. The multiplication
    /// order matches `compute_time` exactly, so the result is bit-identical.
    #[inline]
    pub fn compute_time_with(
        &self,
        sampler: &ComputeSampler,
        class: KernelClass,
        flops: f64,
        invocation: u64,
    ) -> f64 {
        self.compute.base_cost(class, flops) * sampler.node_factor() * sampler.jitter(invocation)
    }

    /// Noise-free compute time (the model mean up to the lognormal's mean
    /// factor — used by analytic cross-checks and the BSP models).
    pub fn compute_time_exact(&self, class: KernelClass, flops: f64) -> f64 {
        self.compute.base_cost(class, flops)
    }

    /// Sampled duration of a communication operation identified by
    /// `(channel, sequence)`. All participants must pass the same identifiers
    /// and therefore observe the same sampled duration.
    pub fn comm_time(
        &self,
        op: CommOp,
        words: usize,
        comm_size: usize,
        channel: u64,
        sequence: u64,
    ) -> f64 {
        self.comm.base_cost(op, words, comm_size) * self.noise.comm_jitter(channel, sequence)
    }

    /// Noise-free communication time.
    pub fn comm_time_exact(&self, op: CommOp, words: usize, comm_size: usize) -> f64 {
        self.comm.base_cost(op, words, comm_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_machine_has_no_noise() {
        let m = MachineModel::test_exact(8);
        let a = m.compute_time(KernelClass::Gemm, 1e6, 0, 0);
        let b = m.compute_time(KernelClass::Gemm, 1e6, 5, 99);
        assert_eq!(a, b);
        assert_eq!(a, m.compute_time_exact(KernelClass::Gemm, 1e6));
    }

    #[test]
    fn noisy_machine_varies_by_invocation() {
        let m = MachineModel::test_noisy(8, 42);
        let a = m.compute_time(KernelClass::Gemm, 1e6, 0, 0);
        let b = m.compute_time(KernelClass::Gemm, 1e6, 0, 1);
        assert_ne!(a, b);
        // But re-asking is reproducible.
        assert_eq!(a, m.compute_time(KernelClass::Gemm, 1e6, 0, 0));
    }

    #[test]
    fn comm_time_shared_by_participants() {
        let m = MachineModel::test_noisy(8, 42);
        let a = m.comm_time(CommOp::Allreduce, 1024, 8, 77, 3);
        let b = m.comm_time(CommOp::Allreduce, 1024, 8, 77, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn allocations_differ() {
        let m0 = MachineModel::new(MachineParams::test_machine(), NoiseParams::cluster(), 16, 5, 0);
        let m1 = MachineModel::new(MachineParams::test_machine(), NoiseParams::cluster(), 16, 5, 1);
        let t0 = m0.compute_time(KernelClass::Gemm, 1e7, 0, 0);
        let t1 = m1.compute_time(KernelClass::Gemm, 1e7, 0, 0);
        assert_ne!(t0, t1);
    }

    #[test]
    fn sampler_matches_compute_time_bitwise() {
        for (m, seed) in [(MachineModel::test_noisy(8, 42), 42), (MachineModel::test_exact(8), 0)] {
            for rank in [0usize, 3, 7] {
                let s = m.compute_sampler(rank);
                for inv in [0u64, 1, 17, 100_000] {
                    let direct = m.compute_time(KernelClass::Gemm, 1e6, rank, inv);
                    let sampled = m.compute_time_with(&s, KernelClass::Gemm, 1e6, inv);
                    assert_eq!(direct.to_bits(), sampled.to_bits(), "seed {seed} rank {rank}");
                }
            }
        }
    }

    #[test]
    fn noise_seed_salting() {
        let m = MachineModel::test_noisy(8, 42);
        let m2 = m.with_noise_seed(1);
        assert_ne!(
            m.compute_time(KernelClass::Gemm, 1e6, 0, 0),
            m2.compute_time(KernelClass::Gemm, 1e6, 0, 0)
        );
    }
}

//! # critter-bsp
//!
//! Analytic bulk-synchronous-parallel (BSP) cost models for the paper's four
//! factorization schedules (§V-A/B). A schedule's cost is
//! `α·S + β·W + γ·F`: `S` supersteps (latency/synchronization), `W` words
//! moved along the critical path (bandwidth), `F` flops along the critical
//! path (computation).
//!
//! These models serve two purposes: Fig. 3's trade-off panels plot exactly
//! these quantities per configuration, and the integration tests cross-check
//! the simulator's *measured* critical-path counters against the analytic
//! scaling (same winner, same crossovers).

#![deny(missing_docs)]

use critter_machine::MachineParams;

/// BSP cost triple of one schedule configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspCost {
    /// Synchronization cost: number of supersteps `S`.
    pub supersteps: f64,
    /// Bandwidth cost: words moved along the critical path `W`.
    pub words: f64,
    /// Computation cost: flops along the critical path `F`.
    pub flops: f64,
}

impl BspCost {
    /// Evaluate `α·S + β·W + γ·F` for a machine (γ from peak at the given
    /// efficiency).
    pub fn seconds(&self, params: &MachineParams, efficiency: f64) -> f64 {
        params.alpha * self.supersteps
            + params.beta * self.words
            + self.flops / (params.peak_flops * efficiency)
    }
}

/// Capital's recursive 3D-grid Cholesky (§V-A):
/// `Θ(α·n/b + β·(n²/p^{2/3} + n·b) + γ·(n³/p + n·b²))`.
pub fn capital_cholesky(n: usize, p: usize, b: usize) -> BspCost {
    let (nf, pf, bf) = (n as f64, p as f64, b as f64);
    BspCost {
        supersteps: nf / bf,
        words: nf * nf / pf.powf(2.0 / 3.0) + nf * bf,
        flops: nf.powi(3) / pf + nf * bf * bf,
    }
}

/// CANDMC's pipelined 2D QR (§V-B):
/// `Θ(α·n/b + β·(mn/p_r + n²/p_c + nb) + γ·(mn²/p + nb² + mnb/p_r + n²b/p_c))`.
pub fn candmc_qr(m: usize, n: usize, pr: usize, pc: usize, b: usize) -> BspCost {
    let (mf, nf, prf, pcf, bf) = (m as f64, n as f64, pr as f64, pc as f64, b as f64);
    let p = prf * pcf;
    BspCost {
        supersteps: nf / bf,
        words: mf * nf / prf + nf * nf / pcf + nf * bf,
        flops: mf * nf * nf / p + nf * bf * bf + mf * nf * bf / prf + nf * nf * bf / pcf,
    }
}

/// SLATE's task-based tile Cholesky: estimate for an `n×n` matrix in `t×t`
/// tiles on a `p_r×p_c` grid with lookahead depth `la`.
///
/// The panel chain (`potrf` → column `trsm` → `syrk`) is the critical path;
/// lookahead hides one panel's update behind the previous trailing update.
pub fn slate_cholesky(n: usize, pr: usize, pc: usize, t: usize, la: usize) -> BspCost {
    let nt = (n as f64 / t as f64).ceil();
    let tf = t as f64;
    let nf = n as f64;
    // Per panel step: potrf (t³/3) + one trsm (t³) + one syrk (t³) on the
    // chain; lookahead overlaps the chain across steps.
    let chain = nt * (tf.powi(3) / 3.0 + 2.0 * tf.powi(3)) / (1.0 + la as f64 * 0.5);
    // Per-processor trailing work.
    let volume = nf.powi(3) / (3.0 * (pr * pc) as f64);
    BspCost {
        // Each step: panel bcast down (log p_r hops as p2p chains) + row/col
        // distribution; task scheduling makes supersteps ∝ tiles on the path.
        supersteps: nt * (pr as f64).log2().max(1.0) * 2.0,
        words: nt * tf * tf * ((pr + pc) as f64) / 2.0 + nf * tf,
        flops: chain + volume,
    }
}

/// SLATE's tile QR: estimate for `m×n` in `nb`-wide panels with inner
/// blocking `w` on a `p_r×p_c` grid.
pub fn slate_qr(m: usize, n: usize, pr: usize, pc: usize, nb: usize, w: usize) -> BspCost {
    let (mf, nf, nbf) = (m as f64, n as f64, nb as f64);
    let kt = (nf / nbf).ceil();
    let mt = (mf / nbf).ceil();
    // Panel chain: geqrt + a flat-tree tpqrt chain down the column of tiles.
    let chain_len = kt * (mt / pr as f64).max(1.0);
    let panel_flops = chain_len * 2.0 * nbf.powi(3);
    // Inner blocking trades fewer larger kernels (large w) for more smaller
    // ones; model the overhead as a 1/w startup term.
    let w_overhead = 1.0 + nbf / (w as f64 * 8.0);
    BspCost {
        supersteps: chain_len * 2.0 * (pc as f64).max(1.0),
        words: kt * nbf * nbf * (mt / pr as f64 + kt / pc as f64),
        flops: (2.0 * mf * nf * nf / (pr * pc) as f64 + panel_flops) * w_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capital_block_size_tradeoff() {
        // Latency falls and bandwidth/compute rise with b — the §V-A trade-off.
        let small = capital_cholesky(512, 64, 16);
        let large = capital_cholesky(512, 64, 256);
        assert!(large.supersteps < small.supersteps);
        assert!(large.words > small.words);
        assert!(large.flops > small.flops);
    }

    #[test]
    fn capital_crossover_exists() {
        // With α dominant, large blocks win; with γ dominant, small blocks win.
        let latency_bound = MachineParams { alpha: 1e-3, ..MachineParams::test_machine() };
        let compute_bound =
            MachineParams { alpha: 1e-9, peak_flops: 1e8, ..MachineParams::test_machine() };
        let t_small = |p: &MachineParams| capital_cholesky(512, 64, 16).seconds(p, 0.5);
        let t_large = |p: &MachineParams| capital_cholesky(512, 64, 256).seconds(p, 0.5);
        assert!(t_large(&latency_bound) < t_small(&latency_bound));
        assert!(t_small(&compute_bound) < t_large(&compute_bound));
    }

    #[test]
    fn candmc_grid_tradeoff() {
        // Tall grids (large p_r) reduce the m-term, raise the n²-term.
        let tall = candmc_qr(2048, 256, 64, 1, 8);
        let square = candmc_qr(2048, 256, 16, 4, 8);
        assert!(tall.words != square.words);
        assert!((tall.flops - square.flops).abs() > 0.0);
        // Same synchronization (b fixed).
        assert_eq!(tall.supersteps, square.supersteps);
    }

    #[test]
    fn candmc_block_size_latency() {
        let b4 = candmc_qr(2048, 256, 16, 4, 4);
        let b64 = candmc_qr(2048, 256, 16, 4, 64);
        assert!(b64.supersteps < b4.supersteps);
        assert!(b64.flops > b4.flops);
    }

    #[test]
    fn slate_cholesky_tile_tradeoff() {
        let small = slate_cholesky(768, 4, 4, 32, 0);
        let large = slate_cholesky(768, 4, 4, 176, 0);
        assert!(large.supersteps < small.supersteps);
        assert!(large.flops > small.flops, "bigger tiles lengthen the panel chain");
    }

    #[test]
    fn slate_cholesky_lookahead_shortens_chain() {
        let la0 = slate_cholesky(768, 4, 4, 64, 0);
        let la1 = slate_cholesky(768, 4, 4, 64, 1);
        assert!(la1.flops < la0.flops);
        assert_eq!(la0.supersteps, la1.supersteps);
    }

    #[test]
    fn slate_qr_inner_blocking() {
        let w_small = slate_qr(2048, 256, 16, 4, 64, 4);
        let w_large = slate_qr(2048, 256, 16, 4, 64, 16);
        assert!(w_large.flops < w_small.flops, "larger inner blocks reduce overhead");
    }

    #[test]
    fn seconds_combines_terms() {
        let p = MachineParams::test_machine();
        let c = BspCost { supersteps: 10.0, words: 1000.0, flops: 1e6 };
        let t = c.seconds(&p, 0.5);
        let expect = p.alpha * 10.0 + p.beta * 1000.0 + 1e6 / (p.peak_flops * 0.5);
        assert!((t - expect).abs() < 1e-18);
    }
}

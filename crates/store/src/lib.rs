//! `critter-store`: an embedded, crash-safe, content-addressed profile
//! database pooling kernel-model statistics across sweeps, processes, and
//! machines.
//!
//! The paper's speedup comes from reusing kernel-execution statistics so
//! later configurations skip work; a single sweep's profile file
//! (`critter-session::profile`) already carries them across sessions on
//! one machine. This crate generalizes that file into a fleet-wide
//! database:
//!
//! * **Content-addressed blobs** — every published profile is an
//!   immutable envelope named by the 52-bit FNV hash of its canonical
//!   JSON payload (the exact payload a profile file carries, which is
//!   what makes store and file warm starts byte-identical).
//! * **Versioned index generations** — a complete entry listing per
//!   generation, published by `hard_link` CAS so any number of
//!   concurrent writers (threads, processes, daemons sharing a
//!   directory) commit atomically without locks held across I/O, and a
//!   `kill -9` anywhere recovers by pure re-listing.
//! * **Keyed reads with staleness** — entries are keyed by
//!   `(machine fingerprint, algorithm, ranks)`; kernel-signature-level
//!   merging happens inside the blobs, most-recent-first, through the
//!   session [`StalenessPolicy`](critter_session::StalenessPolicy).
//! * **Cross-machine priors** — where this machine has no samples, the
//!   nearest recorded machine's models are rescaled through the α-β-γ
//!   cost model and discounted with distance-calibrated variance
//!   inflation (a performance-model prior in the spirit of Peise &
//!   Bientinesi), so a brand-new machine's first tune still starts warm.
//!
//! See `docs/STORE.md` for the on-disk layout and commit protocol, and
//! the `critter-store` binary for the `ls`/`show`/`verify`/`gc`
//! maintenance surface.

#![deny(missing_docs)]

mod index;
mod machine;
mod merge;
mod store;

pub use index::{Index, StoreEntry, INDEX_KIND};
pub use machine::MachineSpec;
pub use merge::WarmStartSource;
pub use store::{Census, GcReport, StagedEntry, Store, VerifyReport, BLOB_KIND};

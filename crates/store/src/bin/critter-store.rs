//! Maintenance CLI for a profile-store directory.
//!
//! ```text
//! critter-store ls     --dir STORE [--json]
//! critter-store show   --dir STORE HASH [--json]
//! critter-store verify --dir STORE [--json]
//! critter-store gc     --dir STORE [--keep N] [--json]
//! critter-store stress --dir STORE [--writers N] [--commits N] [--seed S]
//! ```
//!
//! `verify` is the fsck: exit 0 only when every index generation opens
//! cleanly, every entry's blob resolves, and every blob re-hashes to its
//! name. `gc` keeps the newest `--keep` generations and drops everything
//! they don't reference. `stress` fans `--writers` threads each
//! publishing `--commits` synthetic profiles — the concurrent-writer
//! smoke workload, and the process the kill -9 crash drill shoots down
//! mid-commit.

use critter_core::signature::{ComputeOp, KernelSig};
use critter_core::KernelStore;
use critter_machine::{MachineParams, NoiseParams};
use critter_store::{MachineSpec, Store};

fn usage() -> ! {
    eprintln!(
        "usage: critter-store <command> --dir STORE [options]\n\
         \n\
         commands:\n\
         \x20 ls      list the latest generation's entries\n\
         \x20 show    print one blob by 13-hex-digit content hash\n\
         \x20 verify  fsck the store (exit 1 on any corruption)\n\
         \x20 gc      keep the newest generations, drop the rest\n\
         \x20 stress  hammer the store with concurrent batch commits\n\
         \n\
         options:\n\
         \x20 --dir STORE    store directory (required)\n\
         \x20 --json         machine-readable output (ls, show, verify, gc)\n\
         \x20 --keep N       gc: generations to keep (default 4)\n\
         \x20 --writers N    stress: concurrent writer threads (default 4)\n\
         \x20 --commits N    stress: commits per writer (default 8)\n\
         \x20 --seed S       stress: synthetic-sample seed (default 1)"
    );
    std::process::exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("critter-store: {msg}");
    std::process::exit(1)
}

struct Args {
    command: String,
    dir: Option<String>,
    hash: Option<String>,
    json: bool,
    keep: u64,
    writers: u64,
    commits: u64,
    seed: u64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        usage();
    }
    let mut args = Args {
        command: argv[0].clone(),
        dir: None,
        hash: None,
        json: false,
        keep: 4,
        writers: 4,
        commits: 8,
        seed: 1,
    };
    let mut i = 1;
    while i < argv.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--dir" => args.dir = Some(take(&mut i)),
            "--json" => args.json = true,
            "--keep" => args.keep = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--writers" => args.writers = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--commits" => args.commits = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            other if !other.starts_with('-') && args.hash.is_none() => {
                args.hash = Some(other.to_string())
            }
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn open(args: &Args) -> Store {
    let Some(dir) = &args.dir else {
        eprintln!("critter-store: --dir is required");
        usage()
    };
    Store::open(dir).unwrap_or_else(|e| fail(e))
}

fn ls(args: &Args) {
    let store = open(args);
    let census = store.census().unwrap_or_else(|e| fail(e));
    let index = store.latest().unwrap_or_else(|e| fail(e));
    if args.json {
        let entries: Vec<serde_json::Value> =
            index.iter().flat_map(|i| i.entries.iter().map(|e| e.to_json())).collect();
        let doc = serde_json::json!({
            "blobs": census.blobs,
            "entries": entries,
            "generation": census.generation,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("json writer is total"));
        return;
    }
    println!(
        "generation {} ({} entries, {} blobs)",
        census.generation, census.entries, census.blobs
    );
    if let Some(index) = index {
        for e in &index.entries {
            println!(
                "  seq {:>4}  machine {:013x}  ranks {:>5}  blob {:013x}  {}",
                e.seq, e.machine_fp, e.ranks, e.blob, e.algo
            );
        }
    }
}

fn show(args: &Args) {
    let store = open(args);
    let Some(hex) = &args.hash else {
        eprintln!("critter-store: show needs a blob hash");
        usage()
    };
    let hash = u64::from_str_radix(hex, 16)
        .unwrap_or_else(|_| fail(format!("`{hex}` is not a hex content hash")));
    let stores = store.load_blob(hash).unwrap_or_else(|e| fail(e));
    if args.json {
        let doc = critter_core::snapshot::stores_to_json(&stores);
        println!("{}", serde_json::to_string_pretty(&doc).expect("json writer is total"));
        return;
    }
    println!("blob {hash:013x}: {} rank stores", stores.len());
    for (rank, s) in stores.iter().enumerate() {
        let samples: u64 = s.local.values().map(|m| m.stats.count()).sum();
        println!(
            "  rank {rank}: {} kernel models, {samples} samples, {:.3e}s sampled",
            s.local.len(),
            s.total_sampled_time()
        );
    }
}

fn verify(args: &Args) {
    let store = open(args);
    let report = store.verify().unwrap_or_else(|e| fail(e));
    if args.json {
        let problems: Vec<serde_json::Value> =
            report.problems.iter().map(|p| serde_json::Value::String(p.clone())).collect();
        let doc = serde_json::json!({
            "blobs": report.blobs,
            "entries": report.entries,
            "generations": report.generations,
            "ok": report.ok(),
            "problems": problems,
            "tmp_strays": report.tmp_strays,
            "unreferenced": report.unreferenced,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("json writer is total"));
    } else {
        println!(
            "{} generations, {} entries, {} blobs ({} unreferenced, {} tmp strays)",
            report.generations,
            report.entries,
            report.blobs,
            report.unreferenced,
            report.tmp_strays
        );
        for p in &report.problems {
            eprintln!("problem: {p}");
        }
        println!("{}", if report.ok() { "clean" } else { "CORRUPT" });
    }
    if !report.ok() {
        std::process::exit(1);
    }
}

fn gc(args: &Args) {
    let store = open(args);
    let report = store.gc(args.keep).unwrap_or_else(|e| fail(e));
    if args.json {
        let doc = serde_json::json!({
            "kept_generations": report.kept_generations,
            "removed_blobs": report.removed_blobs,
            "removed_generations": report.removed_generations,
            "removed_tmp": report.removed_tmp,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("json writer is total"));
    } else {
        println!(
            "kept {} generations; removed {} generations, {} blobs, {} tmp strays",
            report.kept_generations,
            report.removed_generations,
            report.removed_blobs,
            report.removed_tmp
        );
    }
}

/// Deterministic synthetic profile for writer `w`, commit `c`: distinct
/// content per (seed, writer, commit) so every publish stages a fresh blob.
fn synthetic_stores(seed: u64, writer: u64, commit: u64) -> Vec<KernelStore> {
    let mut s = KernelStore::new();
    let sig = KernelSig::compute(ComputeOp::Gemm, 8, 8, 8);
    for i in 0..4u64 {
        let jitter = (seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(writer * 1_000_003 + commit * 101 + i))
            % 1000;
        s.record(&sig, 1.0e-3 + jitter as f64 * 1.0e-9);
    }
    vec![s]
}

fn stress(args: &Args) {
    let store = open(args);
    let machine = MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster());
    let handles: Vec<_> = (0..args.writers.max(1))
        .map(|w| {
            let store = store.clone();
            let machine = machine.clone();
            let (commits, seed) = (args.commits, args.seed);
            std::thread::spawn(move || {
                for c in 0..commits {
                    let stores = synthetic_stores(seed, w, c);
                    store
                        .publish(&machine, &format!("stress-{w}"), &stores)
                        .unwrap_or_else(|e| fail(e));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap_or_else(|_| fail("stress writer panicked"));
    }
    let census = store.census().unwrap_or_else(|e| fail(e));
    println!("stress done: generation {}, {} entries", census.generation, census.entries);
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "ls" => ls(&args),
        "show" => show(&args),
        "verify" => verify(&args),
        "gc" => gc(&args),
        "stress" => stress(&args),
        _ => usage(),
    }
}

//! The versioned index: one immutable, envelope-sealed JSON document per
//! generation, listing every live entry of the store.
//!
//! A generation is complete or absent — index files are only ever
//! published by `hard_link`ing a fully written temp file into place, so a
//! reader that re-lists the index directory and takes the highest
//! generation whose envelope validates always sees a consistent store,
//! no matter how many writers died mid-commit.

use critter_core::{CritterError, Result};
use serde_json::Value;

use crate::machine::MachineSpec;

/// Envelope kind of an index generation document.
pub const INDEX_KIND: &str = "store-index";

/// One published profile: the key it is filed under plus the
/// content hash of the blob holding its kernel stores.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// The machine the profile was measured on.
    pub machine: MachineSpec,
    /// Cached [`MachineSpec::fingerprint`] (validated on load).
    pub machine_fp: u64,
    /// Algorithm identity: the sweep's workload names joined with `;` —
    /// the same string the autotuner folds into its options fingerprint.
    pub algo: String,
    /// Rank count of the profile's per-rank store vector.
    pub ranks: u64,
    /// 52-bit content hash of the profile blob (its filename in `blobs/`).
    pub blob: u64,
    /// Store-wide monotone publication sequence number; higher = more
    /// recent. Recency drives the staleness ordering of warm-start merges.
    pub seq: u64,
}

impl StoreEntry {
    /// Canonical JSON form of one entry.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "algo": self.algo,
            "blob": self.blob,
            "machine": self.machine.to_json(),
            "machine_fp": self.machine_fp,
            "ranks": self.ranks,
            "seq": self.seq,
        })
    }

    /// Parse and validate one entry; the cached fingerprint must match the
    /// machine spec it claims to summarize.
    pub fn from_json(v: &Value) -> Result<StoreEntry> {
        let u = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| CritterError::schema("store entry", format!("bad key `{key}`")))
        };
        let algo = v
            .get("algo")
            .and_then(|x| x.as_str())
            .ok_or_else(|| CritterError::schema("store entry", "bad key `algo`"))?
            .to_string();
        let machine = MachineSpec::from_json(
            v.get("machine")
                .ok_or_else(|| CritterError::schema("store entry", "bad key `machine`"))?,
        )?;
        let machine_fp = u("machine_fp")?;
        if machine_fp != machine.fingerprint() {
            return Err(CritterError::schema(
                "store entry",
                format!(
                    "cached machine fingerprint {machine_fp} does not match the spec ({})",
                    machine.fingerprint()
                ),
            ));
        }
        Ok(StoreEntry {
            machine,
            machine_fp,
            algo,
            ranks: u("ranks")?,
            blob: u("blob")?,
            seq: u("seq")?,
        })
    }
}

/// One complete index generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Index {
    /// The generation number (also the envelope fingerprint of its file).
    pub generation: u64,
    /// Every live entry, in ascending `seq` order.
    pub entries: Vec<StoreEntry>,
}

impl Index {
    /// Canonical JSON payload of this generation (the envelope's body).
    pub fn to_json(&self) -> Value {
        let entries: Vec<Value> = self.entries.iter().map(StoreEntry::to_json).collect();
        serde_json::json!({
            "entries": entries,
            "generation": self.generation,
        })
    }

    /// Parse a generation payload; `generation` must match the number the
    /// file name (and envelope fingerprint) claims.
    pub fn from_json(v: &Value, generation: u64) -> Result<Index> {
        let found = v
            .get("generation")
            .and_then(|x| x.as_u64())
            .ok_or_else(|| CritterError::schema("store index", "bad key `generation`"))?;
        if found != generation {
            return Err(CritterError::schema(
                "store index",
                format!("payload generation {found} does not match file generation {generation}"),
            ));
        }
        let entries = v
            .get("entries")
            .and_then(|x| x.as_array())
            .ok_or_else(|| CritterError::schema("store index", "bad key `entries`"))?
            .iter()
            .map(StoreEntry::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(Index { generation, entries })
    }

    /// The highest publication sequence number in this generation.
    pub fn max_seq(&self) -> u64 {
        self.entries.iter().map(|e| e.seq).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_machine::{MachineParams, NoiseParams};

    fn entry(seq: u64) -> StoreEntry {
        let machine =
            MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster());
        let machine_fp = machine.fingerprint();
        StoreEntry { machine, machine_fp, algo: "a;b".into(), ranks: 4, blob: 0xabc, seq }
    }

    #[test]
    fn index_round_trips() {
        let idx = Index { generation: 3, entries: vec![entry(1), entry(2)] };
        let back = Index::from_json(&idx.to_json(), 3).unwrap();
        assert_eq!(idx, back);
        assert_eq!(back.max_seq(), 2);
        assert!(Index::from_json(&idx.to_json(), 4).is_err(), "generation binding");
    }

    #[test]
    fn tampered_machine_fingerprint_is_rejected() {
        let mut doc = entry(1).to_json();
        if let Value::Object(m) = &mut doc {
            m.insert("machine_fp".into(), serde_json::json!(1u64));
        }
        let err = StoreEntry::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "got: {err}");
    }
}

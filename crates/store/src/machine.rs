//! Machine identity: the α-β-γ fingerprint store entries are keyed by,
//! and the log-space distance used to pick a donor machine for
//! cross-machine priors.

use critter_core::fnv::fnv_hash;
use critter_core::{CritterError, Result};
use critter_machine::{MachineParams, NoiseParams};
use serde_json::Value;

/// Mask keeping fingerprints inside the integers canonical JSON
/// round-trips exactly (the same 52-bit guarantee the envelope hash and
/// `KernelSig::key` rely on).
pub(crate) const HASH_MASK: u64 = (1 << 52) - 1;

/// The full machine description a store entry is recorded under: the
/// α-β-γ cost parameters plus the noise sigmas, i.e. every knob of the
/// simulated machine that changes measured kernel times.
///
/// Two sweeps share statistics only when their specs are identical
/// ([`MachineSpec::fingerprint`] collides exactly on equal canonical
/// JSON); across different machines the spec is what lets the store
/// compute an α-β-γ distance and rescale a donor machine's models into a
/// calibrated prior.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Point-to-point message latency in seconds (BSP α).
    pub alpha: f64,
    /// Inverse bandwidth in seconds per 8-byte word (BSP β).
    pub beta: f64,
    /// Peak double-precision rate of one rank in flops/second (1/γ).
    pub peak_flops: f64,
    /// MPI ranks per node.
    pub ranks_per_node: u64,
    /// Fixed software overhead per communication call, in seconds.
    pub per_call_overhead: f64,
    /// Sigma of the per-(allocation, node) lognormal noise factor.
    pub node_sigma: f64,
    /// Sigma of the per-invocation lognormal jitter on compute kernels.
    pub compute_sigma: f64,
    /// Sigma of the per-operation lognormal jitter on communication.
    pub comm_sigma: f64,
}

impl MachineSpec {
    /// Build the spec describing a sweep's simulated machine from the
    /// tuner's machine and noise parameters.
    pub fn from_models(params: &MachineParams, noise: &NoiseParams) -> Self {
        MachineSpec {
            alpha: params.alpha,
            beta: params.beta,
            peak_flops: params.peak_flops,
            ranks_per_node: params.ranks_per_node as u64,
            per_call_overhead: params.per_call_overhead,
            node_sigma: noise.node_sigma,
            compute_sigma: noise.compute_sigma,
            comm_sigma: noise.comm_sigma,
        }
    }

    /// Canonical JSON form (sorted keys, shortest-round-trip floats) — the
    /// bytes the fingerprint is computed over.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "alpha": self.alpha,
            "beta": self.beta,
            "comm_sigma": self.comm_sigma,
            "compute_sigma": self.compute_sigma,
            "node_sigma": self.node_sigma,
            "peak_flops": self.peak_flops,
            "per_call_overhead": self.per_call_overhead,
            "ranks_per_node": self.ranks_per_node,
        })
    }

    /// Parse a spec back out of its canonical JSON form.
    pub fn from_json(v: &Value) -> Result<MachineSpec> {
        let f = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| CritterError::schema("machine spec", format!("bad key `{key}`")))
        };
        let ranks_per_node = v
            .get("ranks_per_node")
            .and_then(|x| x.as_u64())
            .ok_or_else(|| CritterError::schema("machine spec", "bad key `ranks_per_node`"))?;
        Ok(MachineSpec {
            alpha: f("alpha")?,
            beta: f("beta")?,
            peak_flops: f("peak_flops")?,
            ranks_per_node,
            per_call_overhead: f("per_call_overhead")?,
            node_sigma: f("node_sigma")?,
            compute_sigma: f("compute_sigma")?,
            comm_sigma: f("comm_sigma")?,
        })
    }

    /// 52-bit FNV digest of the canonical JSON form — the machine key of
    /// every store entry.
    pub fn fingerprint(&self) -> u64 {
        let text = serde_json::to_string(&self.to_json()).expect("json writer is total");
        fnv_hash(&text) & HASH_MASK
    }

    /// Log-space α-β-γ distance to another machine: the Euclidean norm of
    /// the log ratios of latency, inverse bandwidth, and inverse flops.
    /// Ratios (not differences) because machine parameters span orders of
    /// magnitude; a machine 2× slower in every dimension is "near", one
    /// 1000× off in bandwidth alone is "far".
    pub fn distance(&self, other: &MachineSpec) -> f64 {
        let ratio = |a: f64, b: f64| {
            let (a, b) = (a.max(f64::MIN_POSITIVE), b.max(f64::MIN_POSITIVE));
            (a / b).ln()
        };
        let da = ratio(self.alpha, other.alpha);
        let db = ratio(self.beta, other.beta);
        // γ is 1/peak_flops; ln(γ1/γ2) = -ln(f1/f2).
        let dg = ratio(other.peak_flops, self.peak_flops);
        (da * da + db * db + dg * dg).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let a = MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster());
        let b = MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint() <= HASH_MASK);
        let c = MachineSpec::from_models(&MachineParams::stampede2_knl(), &NoiseParams::cluster());
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::none());
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn json_round_trips() {
        let a = MachineSpec::from_models(&MachineParams::stampede2_knl(), &NoiseParams::cluster());
        let back = MachineSpec::from_json(&a.to_json()).unwrap();
        assert_eq!(a, back);
        assert_eq!(a.fingerprint(), back.fingerprint());
        assert!(MachineSpec::from_json(&serde_json::json!({"alpha": 1.0})).is_err());
    }

    #[test]
    fn distance_is_a_log_space_metric() {
        let a = MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster());
        assert_eq!(a.distance(&a), 0.0);
        let mut b = a.clone();
        b.alpha *= std::f64::consts::E; // one e-fold in latency
        assert!((a.distance(&b) - 1.0).abs() < 1e-12);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        // Doubling flops moves γ, not α/β.
        let mut c = a.clone();
        c.peak_flops *= 2.0;
        assert!((a.distance(&c) - 2.0f64.ln()).abs() < 1e-12);
    }
}

//! The store itself: content-addressed blobs, generation-numbered index
//! files, and the lock-free atomic batch-commit protocol.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   blobs/<13-hex-digit content hash>.json   immutable sealed profile blobs
//!   index/gen-<20-digit generation>.json     immutable sealed index generations
//!   tmp/                                     staging area (strays are garbage)
//! ```
//!
//! # Commit protocol
//!
//! 1. **Stage** every blob: write it fully under `tmp/`, then `rename`
//!    it to its content-addressed name under `blobs/`. Blobs are
//!    immutable and named by their hash, so two writers staging the same
//!    content race harmlessly.
//! 2. **Commit** the index under optimistic concurrency control: re-list
//!    `index/`, take the highest *valid* generation `N` as the base,
//!    append the staged entries with fresh sequence numbers, write the
//!    new index fully under `tmp/`, and publish it with
//!    `hard_link(tmp, index/gen-(N+1))`. `hard_link` fails atomically
//!    with `AlreadyExists` when another writer claimed the number first —
//!    the loser re-lists and retries on top of the winner. No lock is
//!    ever held across I/O.
//!
//! A `kill -9` at any point leaves only stray `tmp/` files and staged
//! blobs no index references; every published generation is complete by
//! construction, so recovery is pure re-listing (take the highest valid
//! generation) — the same crash-only discipline as the serve job
//! registry.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use critter_core::fnv::fnv_hash;
use critter_core::{snapshot, CritterError, KernelStore, Result};
use critter_session::envelope;
use serde_json::Value;

use crate::index::{Index, StoreEntry, INDEX_KIND};
use crate::machine::{MachineSpec, HASH_MASK};

/// Envelope kind of a profile blob. The payload is exactly the
/// `snapshot::stores_to_json` document a profile file carries, so a blob
/// and a profile file holding the same stores have byte-identical
/// payloads — the basis of the store-vs-file warm-start byte-identity
/// guarantee.
pub const BLOB_KIND: &str = "store-blob";

/// Hard cap on commit retries; optimistic retry loses a race only to a
/// writer that made progress, so hitting this means the filesystem is
/// misbehaving (e.g. `hard_link` reporting `AlreadyExists` spuriously).
const MAX_COMMIT_RETRIES: u64 = 10_000;

/// A directory listing split into files whose names parse to a number
/// (generation or content hash, with their paths) and foreign strays.
type Listing = (Vec<(u64, PathBuf)>, Vec<PathBuf>);

/// Process-global staging counter; combined with the pid it makes every
/// temp file name unique across the threads and processes sharing a store.
static STAGE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A staged entry awaiting [`Store::commit`]: the key it will be filed
/// under plus the content hash [`Store::stage`] returned.
#[derive(Debug, Clone)]
pub struct StagedEntry {
    /// The machine the profile was measured on.
    pub machine: MachineSpec,
    /// Algorithm identity (workload names joined with `;`).
    pub algo: String,
    /// Rank count of the staged store vector.
    pub ranks: u64,
    /// Content hash of the staged blob.
    pub blob: u64,
}

/// Store census: the numbers `/v1/healthz` and `critter-store ls` report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Census {
    /// Latest complete generation (0 when the store is empty).
    pub generation: u64,
    /// Entries in that generation.
    pub entries: u64,
    /// Blob files on disk (referenced or staged).
    pub blobs: u64,
}

/// What `verify` (fsck) found.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Index generations checked.
    pub generations: u64,
    /// Index entries whose blob reference was resolved.
    pub entries: u64,
    /// Blob files whose content hash was re-checked.
    pub blobs: u64,
    /// Blob files no surviving generation references (staged-but-never-
    /// committed work; legal, reclaimed by `gc`).
    pub unreferenced: u64,
    /// Stray files in `tmp/` (garbage from killed writers; legal).
    pub tmp_strays: u64,
    /// Everything that is actually wrong: unreadable or corrupt index
    /// generations, dangling blob references, blobs whose content does not
    /// match their name, foreign files.
    pub problems: Vec<String>,
}

impl VerifyReport {
    /// True when the store is fsck-clean.
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

/// What `gc` removed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GcReport {
    /// Generations kept (the newest ones).
    pub kept_generations: u64,
    /// Index files removed (older generations plus corrupt strays).
    pub removed_generations: u64,
    /// Unreferenced blob files removed.
    pub removed_blobs: u64,
    /// Staging strays removed from `tmp/`.
    pub removed_tmp: u64,
}

/// An open store directory. Cheap to clone-by-reopen; all state lives on
/// disk, so any number of `Store` handles (across threads, processes, or
/// machines sharing a filesystem) cooperate through the commit protocol.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store> {
        let root = dir.into();
        for sub in ["blobs", "index", "tmp"] {
            let p = root.join(sub);
            fs::create_dir_all(&p).map_err(|e| CritterError::io(&p, e))?;
        }
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn blobs_dir(&self) -> PathBuf {
        self.root.join("blobs")
    }

    fn index_dir(&self) -> PathBuf {
        self.root.join("index")
    }

    fn tmp_path(&self) -> PathBuf {
        let n = STAGE_COUNTER.fetch_add(1, Ordering::Relaxed);
        self.root.join("tmp").join(format!("stage-{}-{n}.json", std::process::id()))
    }

    /// 52-bit content hash of a blob payload (its name in `blobs/`).
    pub fn blob_hash(payload: &Value) -> u64 {
        fnv_hash(&serde_json::to_string(payload).expect("json writer is total")) & HASH_MASK
    }

    fn blob_path(&self, hash: u64) -> PathBuf {
        self.blobs_dir().join(format!("{hash:013x}.json"))
    }

    /// Stage a profile blob: write the sealed envelope under `tmp/`, then
    /// `rename` it to its content-addressed name. Idempotent — staging
    /// content that is already present is a no-op returning the same hash.
    pub fn stage(&self, stores: &[KernelStore]) -> Result<u64> {
        let payload = snapshot::stores_to_json(stores);
        let hash = Self::blob_hash(&payload);
        let dst = self.blob_path(hash);
        if dst.is_file() {
            return Ok(hash); // content-addressed: same name ⇒ same bytes
        }
        let doc = envelope::seal(BLOB_KIND, hash, payload);
        let tmp = self.tmp_path();
        critter_session::store::write_value(&tmp, &doc)?;
        fs::rename(&tmp, &dst).map_err(|e| CritterError::io(&dst, e))?;
        Ok(hash)
    }

    /// Load a blob's kernel stores back by content hash, verifying the
    /// envelope and the name binding on the way.
    pub fn load_blob(&self, hash: u64) -> Result<Vec<KernelStore>> {
        let path = self.blob_path(hash);
        let doc = critter_session::store::read_value(&path)?;
        let payload = envelope::open(&doc, BLOB_KIND, Some(hash))?;
        snapshot::stores_from_json(payload)
    }

    /// List `(generation, path)` for every parseable index file name,
    /// sorted descending by generation. Unparseable names are returned
    /// separately for `verify`/`gc`.
    fn list_index(&self) -> Result<Listing> {
        let dir = self.index_dir();
        let mut gens = Vec::new();
        let mut foreign = Vec::new();
        let rd = fs::read_dir(&dir).map_err(|e| CritterError::io(&dir, e))?;
        for entry in rd {
            let entry = entry.map_err(|e| CritterError::io(&dir, e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let parsed = name
                .strip_prefix("gen-")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u64>().ok());
            match parsed {
                Some(g) => gens.push((g, path)),
                None => foreign.push(path),
            }
        }
        gens.sort_by_key(|g| std::cmp::Reverse(g.0));
        Ok((gens, foreign))
    }

    /// Read one index generation, validating the envelope against the
    /// generation number its file name claims.
    fn read_index(&self, generation: u64, path: &Path) -> Result<Index> {
        let doc = critter_session::store::read_value(path)?;
        let payload = envelope::open(&doc, INDEX_KIND, Some(generation))?;
        Index::from_json(payload, generation)
    }

    /// The latest complete generation, or `None` for an empty store.
    /// Invalid or torn index files (which the commit protocol never
    /// produces, but a hostile editor might) are skipped, not fatal.
    pub fn latest(&self) -> Result<Option<Index>> {
        let (gens, _) = self.list_index()?;
        for (g, path) in &gens {
            if let Ok(idx) = self.read_index(*g, path) {
                return Ok(Some(idx));
            }
        }
        Ok(None)
    }

    /// Commit staged entries as one new index generation (the atomic
    /// batch commit). Returns the generation published. An empty batch
    /// publishes nothing and returns the current generation.
    pub fn commit(&self, staged: &[StagedEntry]) -> Result<u64> {
        if staged.is_empty() {
            return Ok(self.latest()?.map(|i| i.generation).unwrap_or(0));
        }
        for _ in 0..MAX_COMMIT_RETRIES {
            let (gens, _) = self.list_index()?;
            // Base = highest valid generation; next number = one past the
            // highest *listed* number, so a corrupt file squatting on
            // gen-N+1 cannot wedge the CAS loop.
            let max_listed = gens.first().map(|&(g, _)| g).unwrap_or(0);
            let base = gens.iter().find_map(|(g, p)| self.read_index(*g, p).ok());
            let (base_gen, mut entries) = match base {
                Some(idx) => (idx.generation, idx.entries),
                None => (0, Vec::new()),
            };
            let last_seq = entries.iter().map(|e| e.seq).max().unwrap_or(0);
            for (i, s) in staged.iter().enumerate() {
                entries.push(StoreEntry {
                    machine: s.machine.clone(),
                    machine_fp: s.machine.fingerprint(),
                    algo: s.algo.clone(),
                    ranks: s.ranks,
                    blob: s.blob,
                    seq: last_seq + 1 + i as u64,
                });
            }
            let next = max_listed.max(base_gen) + 1;
            let doc =
                envelope::seal(INDEX_KIND, next, Index { generation: next, entries }.to_json());
            let tmp = self.tmp_path();
            critter_session::store::write_value(&tmp, &doc)?;
            let dst = self.index_dir().join(format!("gen-{next:020}.json"));
            let linked = fs::hard_link(&tmp, &dst);
            let _ = fs::remove_file(&tmp);
            match linked {
                Ok(()) => return Ok(next),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(CritterError::io(&dst, e)),
            }
        }
        Err(CritterError::mismatch(format!(
            "store commit at {} lost {MAX_COMMIT_RETRIES} races in a row; \
             the filesystem is not honoring atomic hard_link semantics",
            self.root.display()
        )))
    }

    /// Stage one profile and commit it as a batch of one: the whole
    /// publication path a session runs at sweep end.
    pub fn publish(
        &self,
        machine: &MachineSpec,
        algo: &str,
        stores: &[KernelStore],
    ) -> Result<u64> {
        let blob = self.stage(stores)?;
        self.commit(&[StagedEntry {
            machine: machine.clone(),
            algo: algo.to_string(),
            ranks: stores.len() as u64,
            blob,
        }])
    }

    /// List `(hash, path)` for every parseable blob file name; foreign
    /// names separately.
    fn list_blobs(&self) -> Result<Listing> {
        let dir = self.blobs_dir();
        let mut blobs = Vec::new();
        let mut foreign = Vec::new();
        let rd = fs::read_dir(&dir).map_err(|e| CritterError::io(&dir, e))?;
        for entry in rd {
            let entry = entry.map_err(|e| CritterError::io(&dir, e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let parsed = name.strip_suffix(".json").and_then(|s| u64::from_str_radix(s, 16).ok());
            match parsed {
                Some(h) => blobs.push((h, path)),
                None => foreign.push(path),
            }
        }
        blobs.sort_by_key(|&(h, _)| h);
        Ok((blobs, foreign))
    }

    /// Quick census for health endpoints: latest generation, its entry
    /// count, and the number of blob files on disk.
    pub fn census(&self) -> Result<Census> {
        let latest = self.latest()?;
        let (blobs, _) = self.list_blobs()?;
        Ok(Census {
            generation: latest.as_ref().map(|i| i.generation).unwrap_or(0),
            entries: latest.map(|i| i.entries.len() as u64).unwrap_or(0),
            blobs: blobs.len() as u64,
        })
    }

    /// Full fsck: every index generation must open cleanly, every entry's
    /// blob reference must resolve, and every blob's content must re-hash
    /// to its file name. Unreferenced blobs and `tmp/` strays are counted
    /// but legal (they are exactly what killed writers leave behind).
    pub fn verify(&self) -> Result<VerifyReport> {
        let mut report = VerifyReport::default();
        let (gens, foreign_idx) = self.list_index()?;
        for path in &foreign_idx {
            report.problems.push(format!("foreign file in index dir: {}", path.display()));
        }
        let (blobs, foreign_blobs) = self.list_blobs()?;
        for path in &foreign_blobs {
            report.problems.push(format!("foreign file in blobs dir: {}", path.display()));
        }
        let present: std::collections::BTreeSet<u64> = blobs.iter().map(|&(h, _)| h).collect();
        let mut referenced = std::collections::BTreeSet::new();
        for (g, path) in &gens {
            match self.read_index(*g, path) {
                Ok(idx) => {
                    report.generations += 1;
                    for e in &idx.entries {
                        if present.contains(&e.blob) {
                            report.entries += 1;
                        } else {
                            report.problems.push(format!(
                                "generation {g} entry seq {} references missing blob {:013x}",
                                e.seq, e.blob
                            ));
                        }
                        referenced.insert(e.blob);
                    }
                }
                Err(e) => report.problems.push(format!("generation {g}: {e}")),
            }
        }
        for (hash, path) in &blobs {
            match critter_session::store::read_value(path)
                .and_then(|doc| envelope::open(&doc, BLOB_KIND, Some(*hash)).cloned())
            {
                Ok(payload) => {
                    report.blobs += 1;
                    if Self::blob_hash(&payload) != *hash {
                        report.problems.push(format!(
                            "blob {:013x}: payload re-hashes to {:013x}",
                            hash,
                            Self::blob_hash(&payload)
                        ));
                    }
                }
                Err(e) => report.problems.push(format!("blob {hash:013x}: {e}")),
            }
            if !referenced.contains(hash) {
                report.unreferenced += 1;
            }
        }
        let tmp = self.root.join("tmp");
        let rd = fs::read_dir(&tmp).map_err(|e| CritterError::io(&tmp, e))?;
        report.tmp_strays = rd.count() as u64;
        Ok(report)
    }

    /// Garbage-collect: keep the newest `keep` valid generations (at
    /// least one), drop older and corrupt index files, drop blobs no kept
    /// generation references, and clear `tmp/`.
    ///
    /// `gc` assumes quiescence — a writer staging a blob concurrently
    /// could see it reclaimed before its commit lands. Run it from the
    /// CLI during maintenance, not alongside live publishers.
    pub fn gc(&self, keep: u64) -> Result<GcReport> {
        let keep = keep.max(1);
        let mut report = GcReport::default();
        let (gens, foreign_idx) = self.list_index()?;
        let mut kept: Vec<Index> = Vec::new();
        for (g, path) in &gens {
            let idx =
                if (kept.len() as u64) < keep { self.read_index(*g, path).ok() } else { None };
            match idx {
                Some(idx) => {
                    kept.push(idx);
                    report.kept_generations += 1;
                }
                None => {
                    fs::remove_file(path).map_err(|e| CritterError::io(path, e))?;
                    report.removed_generations += 1;
                }
            }
        }
        for path in &foreign_idx {
            fs::remove_file(path).map_err(|e| CritterError::io(path, e))?;
            report.removed_generations += 1;
        }
        let referenced: std::collections::BTreeSet<u64> =
            kept.iter().flat_map(|i| i.entries.iter().map(|e| e.blob)).collect();
        let (blobs, foreign_blobs) = self.list_blobs()?;
        for (hash, path) in &blobs {
            if !referenced.contains(hash) {
                fs::remove_file(path).map_err(|e| CritterError::io(path, e))?;
                report.removed_blobs += 1;
            }
        }
        for path in &foreign_blobs {
            fs::remove_file(path).map_err(|e| CritterError::io(path, e))?;
            report.removed_blobs += 1;
        }
        let tmp = self.root.join("tmp");
        let rd = fs::read_dir(&tmp).map_err(|e| CritterError::io(&tmp, e))?;
        for entry in rd {
            let entry = entry.map_err(|e| CritterError::io(&tmp, e))?;
            fs::remove_file(entry.path()).map_err(|e| CritterError::io(entry.path(), e))?;
            report.removed_tmp += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::signature::{ComputeOp, KernelSig};
    use critter_machine::{MachineParams, NoiseParams};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("critter-store-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn machine() -> MachineSpec {
        MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster())
    }

    fn stores(ranks: usize, base: f64) -> Vec<KernelStore> {
        (0..ranks)
            .map(|r| {
                let mut s = KernelStore::new();
                let sig = KernelSig::compute(ComputeOp::Gemm, 8, 8, 8);
                for i in 0..4 {
                    s.record(&sig, base * (r + 1) as f64 + i as f64 * 1e-3);
                }
                s
            })
            .collect()
    }

    #[test]
    fn publish_and_read_back() {
        let dir = scratch("publish");
        let store = Store::open(&dir).unwrap();
        assert!(store.latest().unwrap().is_none());
        let g1 = store.publish(&machine(), "a;b", &stores(2, 0.1)).unwrap();
        assert_eq!(g1, 1);
        let g2 = store.publish(&machine(), "a;b", &stores(2, 0.2)).unwrap();
        assert_eq!(g2, 2);
        let idx = store.latest().unwrap().unwrap();
        assert_eq!(idx.generation, 2);
        assert_eq!(idx.entries.len(), 2);
        assert_eq!(idx.entries[0].seq, 1);
        assert_eq!(idx.entries[1].seq, 2);
        let back = store.load_blob(idx.entries[0].blob).unwrap();
        assert_eq!(
            serde_json::to_string(&snapshot::stores_to_json(&back)).unwrap(),
            serde_json::to_string(&snapshot::stores_to_json(&stores(2, 0.1))).unwrap()
        );
        assert!(store.verify().unwrap().ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staging_is_idempotent_and_census_counts() {
        let dir = scratch("idempotent");
        let store = Store::open(&dir).unwrap();
        let h1 = store.stage(&stores(2, 0.1)).unwrap();
        let h2 = store.stage(&stores(2, 0.1)).unwrap();
        assert_eq!(h1, h2);
        let census = store.census().unwrap();
        assert_eq!(census, Census { generation: 0, entries: 0, blobs: 1 });
        // Staged-but-uncommitted work is fsck-legal, just unreferenced.
        let report = store.verify().unwrap();
        assert!(report.ok(), "problems: {:?}", report.problems);
        assert_eq!(report.unreferenced, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_survives_a_squatting_corrupt_generation() {
        let dir = scratch("squatter");
        let store = Store::open(&dir).unwrap();
        store.publish(&machine(), "a", &stores(1, 0.1)).unwrap();
        // A hand-corrupted file on the next generation number must not
        // wedge the CAS loop: the commit skips past it.
        fs::write(dir.join("index").join(format!("gen-{:020}.json", 2)), "{torn").unwrap();
        let g = store.publish(&machine(), "a", &stores(1, 0.2)).unwrap();
        assert_eq!(g, 3);
        let idx = store.latest().unwrap().unwrap();
        assert_eq!(idx.generation, 3);
        assert_eq!(idx.entries.len(), 2, "no lost update");
        let report = store.verify().unwrap();
        assert!(!report.ok(), "the corrupt squatter is a finding");
        // gc reclaims the corrupt file and old generations.
        let gc = store.gc(1).unwrap();
        assert_eq!(gc.kept_generations, 1);
        assert!(gc.removed_generations >= 2);
        assert!(store.verify().unwrap().ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_drops_unreferenced_blobs_and_tmp_strays() {
        let dir = scratch("gc");
        let store = Store::open(&dir).unwrap();
        store.publish(&machine(), "a", &stores(1, 0.1)).unwrap();
        store.stage(&stores(1, 0.9)).unwrap(); // never committed
        fs::write(dir.join("tmp").join("stale-123.json"), "junk").unwrap();
        let gc = store.gc(8).unwrap();
        assert_eq!(gc.kept_generations, 1);
        assert_eq!(gc.removed_blobs, 1);
        assert_eq!(gc.removed_tmp, 1);
        let report = store.verify().unwrap();
        assert!(report.ok());
        assert_eq!(report.unreferenced, 0);
        assert_eq!(report.tmp_strays, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_flags_dangling_refs_and_content_tampering() {
        let dir = scratch("fsck");
        let store = Store::open(&dir).unwrap();
        store.publish(&machine(), "a", &stores(1, 0.1)).unwrap();
        let blob = store.latest().unwrap().unwrap().entries[0].blob;
        fs::remove_file(store.blob_path(blob)).unwrap();
        let report = store.verify().unwrap();
        assert!(!report.ok());
        assert!(
            report.problems.iter().any(|p| p.contains("missing blob")),
            "{:?}",
            report.problems
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Read-side semantics: merging matching store entries into warm-start
//! kernel models, and synthesizing a calibrated cross-machine prior when
//! this machine has no samples of its own.

use critter_core::signature::KernelSig;
use critter_core::{CritterError, KernelStore, Result};
use critter_session::StalenessPolicy;
use critter_stats::OnlineStats;

use crate::index::StoreEntry;
use crate::machine::MachineSpec;
use crate::store::Store;

/// Sample-count decay applied on top of the scaling when a prior is
/// transferred from another machine: a transferred sample is worth a
/// quarter of a native one.
const PRIOR_DECAY: f64 = 0.25;

/// Base variance inflation of a transferred prior, further scaled by
/// `1 + distance` so far-away donors yield wide intervals — the tuner
/// must re-verify every transferred kernel from real observations.
const PRIOR_INFLATION: f64 = 4.0;

/// Where a store warm start got its models from.
#[derive(Debug, Clone, PartialEq)]
pub enum WarmStartSource {
    /// Entries recorded on this exact machine fingerprint.
    Native {
        /// How many store entries were merged.
        entries: usize,
    },
    /// No native entries; models transferred from the nearest recorded
    /// machine and rescaled through the α-β-γ model.
    Prior {
        /// Fingerprint of the donor machine.
        machine_fp: u64,
        /// Log-space α-β-γ distance to the donor.
        distance: f64,
        /// How many of the donor's entries were merged.
        entries: usize,
    },
}

impl WarmStartSource {
    /// Human-readable label for session logs.
    pub fn describe(&self) -> String {
        match self {
            WarmStartSource::Native { entries } => format!("store:native:{entries}"),
            WarmStartSource::Prior { machine_fp, distance, entries } => {
                format!("store:prior:{machine_fp:013x}:d{distance:.3}:{entries}")
            }
        }
    }
}

/// The α-β-γ rescaling factor moving one kernel's measured times from
/// `src` to `dst`: compute kernels scale with the peak-flops ratio (γ),
/// communication kernels with the affine `α + β·words + overhead` cost of
/// their message size. Degenerate parameters fall back to 1.
fn scale_factor(sig: &KernelSig, src: &MachineSpec, dst: &MachineSpec) -> f64 {
    let f = match sig {
        KernelSig::Compute { .. } => src.peak_flops / dst.peak_flops,
        KernelSig::Comm { words, .. } => {
            let cost = |m: &MachineSpec| m.alpha + m.beta * (*words as f64) + m.per_call_overhead;
            cost(dst) / cost(src)
        }
    };
    if f.is_finite() && f > 0.0 {
        f
    } else {
        1.0
    }
}

/// Scale every moment of `stats` by `f` (time units scale linearly, so
/// the second moment scales quadratically).
fn scale_stats(stats: &mut OnlineStats, f: f64) {
    *stats = OnlineStats::from_parts(
        stats.count(),
        stats.mean() * f,
        stats.m2() * f * f,
        stats.min() * f,
        stats.max() * f,
        stats.total() * f,
    );
}

impl Store {
    /// Merge the blobs of `entries` (already sorted most-recent-first)
    /// into one store vector. The newest entry is the base — taken
    /// verbatim, exactly as loading its blob as a profile file would — and
    /// each older entry has the staleness policy applied once per step of
    /// recency before its statistics are `OnlineStats::merge`d in. With a
    /// fresh (identity) policy every entry merges at full weight.
    fn merge_entries(
        &self,
        entries: &[&StoreEntry],
        ranks: usize,
        staleness: &StalenessPolicy,
    ) -> Result<Vec<KernelStore>> {
        let mut merged = self.load_blob(entries[0].blob)?;
        if merged.len() != ranks {
            return Err(CritterError::mismatch(format!(
                "store blob {:013x} holds {} rank stores but its entry claims {ranks}",
                entries[0].blob,
                merged.len()
            )));
        }
        for (step, entry) in entries[1..].iter().enumerate() {
            let mut older = self.load_blob(entry.blob)?;
            if older.len() != ranks {
                return Err(CritterError::mismatch(format!(
                    "store blob {:013x} holds {} rank stores but its entry claims {ranks}",
                    entry.blob,
                    older.len()
                )));
            }
            for _ in 0..=step {
                staleness.apply(&mut older);
            }
            for (dst, src) in merged.iter_mut().zip(older.iter()) {
                for (key, model) in src.local.iter() {
                    match dst.local.get_mut(key) {
                        Some(existing) => existing.stats.merge(&model.stats),
                        None => {
                            dst.local.insert(*key, model.clone());
                        }
                    }
                }
            }
        }
        Ok(merged)
    }

    /// Seed warm-start kernel models for a sweep on `machine` running
    /// `algo` over `ranks` ranks.
    ///
    /// Resolution order:
    ///
    /// 1. **Native**: entries recorded under this exact machine
    ///    fingerprint, merged most-recent-first with staleness decay per
    ///    recency step, then discounted once by `staleness` — so a store
    ///    holding exactly one entry reproduces
    ///    `critter_session::profile::warm_start` on the equivalent file
    ///    byte for byte.
    /// 2. **Prior**: no native entries, but some other machine has
    ///    matching `(algo, ranks)` entries. The nearest donor by α-β-γ
    ///    distance (fingerprint breaks ties) is merged the same way, its
    ///    models are rescaled through the cost model, and a calibrated
    ///    extra discount (count decay + distance-scaled variance
    ///    inflation) widens every confidence interval so the tuner
    ///    re-verifies the transfer against real observations.
    /// 3. **Cold**: nothing matches; `Ok(None)` and the sweep starts
    ///    from empty models.
    ///
    /// Returns the seeded stores, the number of models touched by the
    /// final discount pass (the session log's `warm_start` arg), and the
    /// provenance.
    pub fn warm_start(
        &self,
        machine: &MachineSpec,
        algo: &str,
        ranks: usize,
        staleness: &StalenessPolicy,
    ) -> Result<Option<(Vec<KernelStore>, u64, WarmStartSource)>> {
        let Some(index) = self.latest()? else {
            return Ok(None);
        };
        let fp = machine.fingerprint();
        let matches = |e: &&StoreEntry| e.algo == algo && e.ranks == ranks as u64;
        let mut native: Vec<&StoreEntry> =
            index.entries.iter().filter(|e| e.machine_fp == fp).filter(matches).collect();
        native.sort_by_key(|e| std::cmp::Reverse(e.seq));
        if !native.is_empty() {
            let mut stores = self.merge_entries(&native, ranks, staleness)?;
            let models = staleness.apply(&mut stores);
            return Ok(Some((stores, models, WarmStartSource::Native { entries: native.len() })));
        }

        let foreign: Vec<&StoreEntry> = index.entries.iter().filter(matches).collect();
        if foreign.is_empty() {
            return Ok(None);
        }
        // Nearest donor machine; ties break on the smaller fingerprint so
        // the choice is deterministic across readers.
        let donor_fp = foreign
            .iter()
            .map(|e| (e.machine.distance(machine), e.machine_fp))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, fp)| fp)
            .expect("foreign is non-empty");
        let mut donors: Vec<&StoreEntry> =
            foreign.into_iter().filter(|e| e.machine_fp == donor_fp).collect();
        donors.sort_by_key(|e| std::cmp::Reverse(e.seq));
        let donor_machine = donors[0].machine.clone();
        let distance = donor_machine.distance(machine);

        let mut stores = self.merge_entries(&donors, ranks, staleness)?;
        staleness.apply(&mut stores);
        let calibration = StalenessPolicy {
            decay: PRIOR_DECAY,
            variance_inflation: PRIOR_INFLATION * (1.0 + distance),
        };
        let mut models = 0u64;
        for store in stores.iter_mut() {
            for model in store.local.values_mut() {
                let f = scale_factor(&model.sig, &donor_machine, machine);
                scale_stats(&mut model.stats, f);
                calibration.apply_stats(&mut model.stats);
                models += 1;
            }
            // The donor's extrapolation fits are in its own time units;
            // drop them rather than extrapolate with the wrong machine.
            store.extrapolation.clear();
        }
        Ok(Some((
            stores,
            models,
            WarmStartSource::Prior { machine_fp: donor_fp, distance, entries: donors.len() },
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::signature::{ComputeOp, SizeGranularity};
    use critter_core::snapshot;
    use critter_machine::{MachineParams, NoiseParams};

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("critter-store-merge-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn machine() -> MachineSpec {
        MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster())
    }

    fn other_machine() -> MachineSpec {
        MachineSpec::from_models(&MachineParams::stampede2_knl(), &NoiseParams::cluster())
    }

    fn gemm() -> KernelSig {
        KernelSig::compute(ComputeOp::Gemm, 8, 8, 8)
    }

    fn stores_with(sig: &KernelSig, times: &[f64]) -> Vec<KernelStore> {
        let mut s = KernelStore::new();
        for &t in times {
            s.record(sig, t);
        }
        vec![s]
    }

    #[test]
    fn single_entry_matches_profile_file_semantics() {
        let dir = scratch("single");
        let store = Store::open(&dir).unwrap();
        let published = stores_with(&gemm(), &[1.0, 1.1, 1.2, 1.3]);
        store.publish(&machine(), "algo", &published).unwrap();

        let policy = StalenessPolicy::fresh().with_decay(0.5).with_variance_inflation(2.0);
        let (seeded, models, source) =
            store.warm_start(&machine(), "algo", 1, &policy).unwrap().unwrap();
        assert_eq!(source, WarmStartSource::Native { entries: 1 });
        assert_eq!(models, 1);

        // The equivalent profile-file path, byte for byte.
        let file = dir.join("profile.json");
        critter_session::profile::save(&file, 0, &published).unwrap();
        let (from_file, _) = critter_session::profile::warm_start(&file, 1, &policy).unwrap();
        assert_eq!(
            serde_json::to_string(&snapshot::stores_to_json(&seeded)).unwrap(),
            serde_json::to_string(&snapshot::stores_to_json(&from_file)).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_entry_merge_is_most_recent_first() {
        let dir = scratch("multi");
        let store = Store::open(&dir).unwrap();
        store.publish(&machine(), "algo", &stores_with(&gemm(), &[1.0, 1.0])).unwrap();
        store.publish(&machine(), "algo", &stores_with(&gemm(), &[2.0, 2.0, 2.0])).unwrap();

        // Fresh policy: both entries at full weight.
        let (seeded, _, source) =
            store.warm_start(&machine(), "algo", 1, &StalenessPolicy::fresh()).unwrap().unwrap();
        assert_eq!(source, WarmStartSource::Native { entries: 2 });
        let m = seeded[0].model(gemm().key()).unwrap();
        assert_eq!(m.stats.count(), 5);

        // Decay 0.5: the newest entry (3 samples) keeps floor(3·0.5)=1
        // after the final pass; the older one decays twice: 2 → 1 → 1.
        let policy = StalenessPolicy::fresh().with_decay(0.5);
        let (seeded, _, _) = store.warm_start(&machine(), "algo", 1, &policy).unwrap().unwrap();
        let m = seeded[0].model(gemm().key()).unwrap();
        assert_eq!(m.stats.count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_algo_or_ranks_is_a_cold_start() {
        let dir = scratch("cold");
        let store = Store::open(&dir).unwrap();
        store.publish(&machine(), "algo", &stores_with(&gemm(), &[1.0])).unwrap();
        let fresh = StalenessPolicy::fresh();
        assert!(store.warm_start(&machine(), "other", 1, &fresh).unwrap().is_none());
        assert!(store.warm_start(&machine(), "algo", 2, &fresh).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prior_transfer_scales_compute_by_flops_ratio() {
        let dir = scratch("prior");
        let store = Store::open(&dir).unwrap();
        let donor = other_machine();
        store.publish(&donor, "algo", &stores_with(&gemm(), &[1.0, 1.0, 1.0, 1.0])).unwrap();

        let target = machine();
        let (seeded, models, source) =
            store.warm_start(&target, "algo", 1, &StalenessPolicy::fresh()).unwrap().unwrap();
        assert_eq!(models, 1);
        let WarmStartSource::Prior { machine_fp, distance, entries } = source else {
            panic!("expected a prior transfer");
        };
        assert_eq!(machine_fp, donor.fingerprint());
        assert_eq!(entries, 1);
        assert!(distance > 0.0);
        let m = seeded[0].model(gemm().key()).unwrap();
        let expect = 1.0 * donor.peak_flops / target.peak_flops;
        assert!((m.stats.mean() - expect).abs() < 1e-12, "mean rescaled through γ");
        assert_eq!(m.stats.count(), 1, "prior decay discounted 4 samples to 1");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prior_transfer_scales_comm_by_alpha_beta_and_inflates_variance() {
        let dir = scratch("prior-comm");
        let store = Store::open(&dir).unwrap();
        let donor = other_machine();
        let sig = KernelSig::p2p(1024, 1, SizeGranularity::Exact);
        store
            .publish(
                &donor,
                "algo",
                &stores_with(
                    &sig,
                    &[1.0e-4, 1.1e-4, 1.2e-4, 1.3e-4, 1.4e-4, 1.5e-4, 1.6e-4, 1.7e-4],
                ),
            )
            .unwrap();

        let target = machine();
        let (seeded, _, _) =
            store.warm_start(&target, "algo", 1, &StalenessPolicy::fresh()).unwrap().unwrap();
        let m = seeded[0].model(sig.key()).unwrap();
        let words = 1024.0;
        let cost = |mch: &MachineSpec| mch.alpha + mch.beta * words + mch.per_call_overhead;
        let f = cost(&target) / cost(&donor);
        assert!((m.stats.mean() - 1.35e-4 * f).abs() / m.stats.mean() < 1e-9);
        assert_eq!(m.stats.count(), 2, "8 donor samples decay to 2");
        // Variance per remaining sample is inflated beyond the pure
        // rescaling: the transferred CI is wider than a native one.
        let donor_var = OnlineStats::from_slice(&[
            1.0e-4, 1.1e-4, 1.2e-4, 1.3e-4, 1.4e-4, 1.5e-4, 1.6e-4, 1.7e-4,
        ])
        .variance();
        let scaled_var = donor_var * f * f;
        assert!(m.stats.variance() > scaled_var * 3.9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nearest_donor_wins() {
        let dir = scratch("nearest");
        let store = Store::open(&dir).unwrap();
        let near = machine(); // identical params except noise? use a tweaked copy
        let mut near = MachineSpec { compute_sigma: near.compute_sigma + 0.01, ..near };
        near.alpha *= 1.01;
        let far = other_machine();
        store.publish(&far, "algo", &stores_with(&gemm(), &[9.0])).unwrap();
        store.publish(&near, "algo", &stores_with(&gemm(), &[1.0])).unwrap();

        let (_, _, source) =
            store.warm_start(&machine(), "algo", 1, &StalenessPolicy::fresh()).unwrap().unwrap();
        let WarmStartSource::Prior { machine_fp, .. } = source else {
            panic!("expected a prior transfer");
        };
        assert_eq!(machine_fp, near.fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The kill -9 mid-commit drill: shoot the real `critter-store stress`
//! binary down while it is publishing from several threads at once, then
//! prove the surviving store recovered to its last complete generation by
//! pure re-listing — readable, fsck-clean, and immediately writable.
//!
//! This is the store-level restatement of the crash-only discipline the
//! serve job registry established: a commit either published a complete
//! generation or left nothing but staging garbage.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use critter_machine::{MachineParams, NoiseParams};
use critter_store::{MachineSpec, Store};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("critter-store-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkill_mid_commit_recovers_to_last_complete_generation() {
    let dir = temp_dir("drill");
    let store = Store::open(&dir).expect("open store");

    // A big enough workload that the kill lands mid-stream: 8 writers x
    // 10_000 commits would take far longer than the drill allows.
    let mut child = Command::new(env!("CARGO_BIN_EXE_critter-store"))
        .args(["stress", "--writers", "8", "--commits", "10000"])
        .arg("--dir")
        .arg(&dir)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning critter-store stress");

    // Wait until commits are demonstrably in flight, then SIGKILL.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let generation = store.latest().expect("re-listing").map(|i| i.generation).unwrap_or(0);
        if generation >= 16 {
            break;
        }
        assert!(Instant::now() < deadline, "stress never reached generation 16");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("kill -9 the stress process");
    child.wait().expect("reaping the stress process");

    // Recovery is pure re-listing: the highest complete generation wins.
    let index = store.latest().expect("post-kill read").expect("at least one generation");
    assert!(index.generation >= 16);
    assert_eq!(
        index.entries.len() as u64,
        index.max_seq(),
        "every committed generation carries its full entry history"
    );

    // Fsck-clean: the kill may strand tmp files and staged blobs, never a
    // torn generation or dangling reference.
    let report = store.verify().expect("fsck");
    assert!(report.ok(), "corruption after kill -9: {:?}", report.problems);

    // The survivor keeps working: publish on top of the recovered state.
    let machine = MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster());
    let mut s = critter_core::KernelStore::new();
    s.record(
        &critter_core::signature::KernelSig::compute(
            critter_core::signature::ComputeOp::Gemm,
            4,
            4,
            4,
        ),
        1.0e-3,
    );
    let next = store.publish(&machine, "post-crash", &[s]).expect("post-crash publish");
    assert_eq!(next, index.generation + 1);

    // gc reclaims the strands and the store stays clean.
    store.gc(2).expect("gc");
    let report = store.verify().expect("fsck after gc");
    assert!(report.ok(), "corruption after gc: {:?}", report.problems);
    assert_eq!(report.tmp_strays, 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

//! Triangular-pentagonal QR (`tpqrt`) and its application (`tpmqrt`).
//!
//! These are the tile-algorithm kernels: `tpqrt` annihilates a tile `B`
//! against an already-triangular tile `R` by factoring the stack `[R; B]`,
//! and `tpmqrt` applies the resulting implicit `Q` to a pair of tiles of the
//! trailing matrix. SLATE's task-based QR and the TSQR reduction tree in
//! CANDMC-style panel factorization are built from exactly these two
//! operations. We implement the `l = 0` ("square-below", fully pentagonal)
//! variant, which also covers the triangular-below case used by TSQR — the
//! structured zeros are simply carried.

use crate::matrix::Matrix;

/// Factor the stack `[R; B]` where `r` is `n × n` upper triangular and `b` is
/// `m × n`. On return `r` holds the updated triangular factor, `b` holds the
/// Householder vector block `V` (the below-identity part of each reflector),
/// and the returned vector holds the scalar factors `tau`.
pub fn tpqrt(r: &mut Matrix, b: &mut Matrix) -> Vec<f64> {
    let n = r.rows();
    assert_eq!(r.cols(), n, "R tile must be square");
    assert_eq!(b.cols(), n, "B tile must have the same column count");
    let m = b.rows();
    let mut tau = vec![0.0; n];
    for j in 0..n {
        // Reflector annihilating B[:, j] against R[j, j]. The reflector is
        // v = [e_j; v_b]: the top part is the j-th unit vector, so only the
        // B-part is stored.
        let x0 = r[(j, j)];
        let mut norm2 = x0 * x0;
        for i in 0..m {
            norm2 += b[(i, j)] * b[(i, j)];
        }
        let norm = norm2.sqrt();
        if norm == 0.0 {
            tau[j] = 0.0;
            continue;
        }
        let beta = if x0 >= 0.0 { -norm } else { norm };
        tau[j] = (beta - x0) / beta;
        let scale = 1.0 / (x0 - beta);
        for i in 0..m {
            b[(i, j)] *= scale;
        }
        r[(j, j)] = beta;
        // Apply H = I - tau·v·vᵀ to the remaining columns of the stack.
        let t = tau[j];
        for c in (j + 1)..n {
            let mut w = r[(j, c)];
            for i in 0..m {
                w += b[(i, j)] * b[(i, c)];
            }
            w *= t;
            r[(j, c)] -= w;
            for i in 0..m {
                let vij = b[(i, j)];
                b[(i, c)] -= w * vij;
            }
        }
    }
    tau
}

/// Whether `tpmqrt` applies `Q` or `Qᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpTrans {
    /// Apply `Q`.
    No,
    /// Apply `Qᵀ`.
    Yes,
}

/// Apply the orthogonal factor from [`tpqrt`] (stored in `v`, `tau`) to the
/// stacked pair `[A; B]` from the left: `[A; B] ← op(Q)·[A; B]`. `a` has `n`
/// rows (matching the triangular tile) and `b` matches `v`'s row count.
pub fn tpmqrt(trans: TpTrans, v: &Matrix, tau: &[f64], a: &mut Matrix, b: &mut Matrix) {
    let n = tau.len();
    assert_eq!(v.cols(), n, "V column count must match tau");
    assert!(a.rows() >= n, "top tile must have at least n rows");
    assert_eq!(b.rows(), v.rows(), "bottom tile must match V rows");
    assert_eq!(a.cols(), b.cols(), "tile pair must have equal column counts");
    let m = v.rows();
    let cols = a.cols();
    let order: Box<dyn Iterator<Item = usize>> = match trans {
        TpTrans::Yes => Box::new(0..n),
        TpTrans::No => Box::new((0..n).rev()),
    };
    for j in order {
        let t = tau[j];
        if t == 0.0 {
            continue;
        }
        for c in 0..cols {
            // w = (vᵀ·[a; b])_c with v = [e_j; v_b].
            let mut w = a[(j, c)];
            for i in 0..m {
                w += v[(i, j)] * b[(i, c)];
            }
            w *= t;
            a[(j, c)] -= w;
            for i in 0..m {
                let vij = v[(i, j)];
                b[(i, c)] -= w * vij;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::geqrf;

    /// Stack two matrices vertically.
    fn vstack(top: &Matrix, bot: &Matrix) -> Matrix {
        assert_eq!(top.cols(), bot.cols());
        let mut s = Matrix::zeros(top.rows() + bot.rows(), top.cols());
        s.set_sub(0, 0, top);
        s.set_sub(top.rows(), 0, bot);
        s
    }

    #[test]
    fn tpqrt_matches_geqrf_r_up_to_sign() {
        // R from tpqrt([R1; B]) must equal R from a dense QR of the stack,
        // up to per-row sign.
        let n = 4;
        let mut r1 = Matrix::random(n, n, 1);
        r1.triu_in_place();
        let b = Matrix::random(6, n, 2);
        let stack = vstack(&r1, &b);

        let mut r = r1.clone();
        let mut v = b.clone();
        tpqrt(&mut r, &mut v);

        let mut dense = stack.clone();
        geqrf(&mut dense);
        for j in 0..n {
            for i in 0..=j {
                let x = r[(i, j)];
                let y = dense[(i, j)];
                // Row signs may differ; compare magnitudes consistently by
                // normalizing with the diagonal sign.
                let sx = r[(i, i)].signum();
                let sy = dense[(i, i)].signum();
                assert!((x * sx - y * sy).abs() < 1e-9, "R mismatch at ({i},{j}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn tpqrt_then_apply_qt_annihilates() {
        // Applying Qᵀ to the original stack yields [R; 0].
        let n = 3;
        let mut r1 = Matrix::random(n, n, 3);
        r1.triu_in_place();
        let b0 = Matrix::random(5, n, 4);

        let mut r = r1.clone();
        let mut v = b0.clone();
        let tau = tpqrt(&mut r, &mut v);

        let mut a_top = r1.clone();
        let mut a_bot = b0.clone();
        tpmqrt(TpTrans::Yes, &v, &tau, &mut a_top, &mut a_bot);
        assert!(a_top.max_abs_diff(&r) < 1e-10, "top must become the new R");
        assert!(a_bot.norm_fro() < 1e-10, "bottom must be annihilated");
    }

    #[test]
    fn tpmqrt_roundtrip_identity() {
        let n = 3;
        let mut r1 = Matrix::random(n, n, 5);
        r1.triu_in_place();
        let mut v = Matrix::random(4, n, 6);
        let mut r = r1.clone();
        let tau = tpqrt(&mut r, &mut v);

        let a0 = Matrix::random(n, 5, 7);
        let b0 = Matrix::random(4, 5, 8);
        let mut a = a0.clone();
        let mut b = b0.clone();
        tpmqrt(TpTrans::Yes, &v, &tau, &mut a, &mut b);
        tpmqrt(TpTrans::No, &v, &tau, &mut a, &mut b);
        assert!(a.max_abs_diff(&a0) < 1e-10);
        assert!(b.max_abs_diff(&b0) < 1e-10);
    }

    #[test]
    fn tpmqrt_preserves_norm() {
        // Q is orthogonal, so the stacked column norms are preserved.
        let n = 4;
        let mut r1 = Matrix::random(n, n, 9);
        r1.triu_in_place();
        let mut v = Matrix::random(6, n, 10);
        let mut r = r1.clone();
        let tau = tpqrt(&mut r, &mut v);

        let a0 = Matrix::random(n, 2, 11);
        let b0 = Matrix::random(6, 2, 12);
        let before = vstack(&a0, &b0).norm_fro();
        let mut a = a0.clone();
        let mut b = b0.clone();
        tpmqrt(TpTrans::Yes, &v, &tau, &mut a, &mut b);
        let after = vstack(&a, &b).norm_fro();
        assert!((before - after).abs() < 1e-10);
    }

    #[test]
    fn tsqr_pair_combine() {
        // The TSQR tree step: combine two triangular factors [R1; R2].
        // RᵀR of the combined factor must equal R1ᵀR1 + R2ᵀR2.
        let n = 4;
        let mut r1 = Matrix::random(n, n, 13);
        r1.triu_in_place();
        let mut r2 = Matrix::random(n, n, 14);
        r2.triu_in_place();
        let gram = {
            let mut g = r1.transposed().matmul_ref(&r1);
            let g2 = r2.transposed().matmul_ref(&r2);
            for j in 0..n {
                for i in 0..n {
                    g[(i, j)] += g2[(i, j)];
                }
            }
            g
        };
        let mut r = r1.clone();
        let mut v = r2.clone();
        tpqrt(&mut r, &mut v);
        let mut rt = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..=j {
                rt[(i, j)] = r[(i, j)];
            }
        }
        let g = rt.transposed().matmul_ref(&rt);
        assert!(g.max_abs_diff(&gram) < 1e-9, "combined R Gram mismatch");
    }
}

//! Householder QR: `geqrf`, `ormqr`, `larft`.

use crate::blas3::Trans;
use crate::matrix::Matrix;

/// Householder QR factorization in place (LAPACK `geqrf` convention):
/// on return the upper triangle of `a` holds `R`; the columns below the
/// diagonal hold the Householder vectors (unit diagonal implicit); returns
/// the scalar factors `tau`.
pub fn geqrf(a: &mut Matrix) -> Vec<f64> {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut tau = vec![0.0; k];
    for j in 0..k {
        // Build the reflector for column j.
        let mut norm2 = 0.0;
        for i in j..m {
            norm2 += a[(i, j)] * a[(i, j)];
        }
        let x0 = a[(j, j)];
        let norm = norm2.sqrt();
        if norm == 0.0 {
            tau[j] = 0.0;
            continue;
        }
        let beta = if x0 >= 0.0 { -norm } else { norm };
        tau[j] = (beta - x0) / beta;
        let scale = 1.0 / (x0 - beta);
        for i in (j + 1)..m {
            a[(i, j)] *= scale;
        }
        a[(j, j)] = beta;
        // Apply H = I - tau·v·vᵀ to the trailing columns.
        let t = tau[j];
        for c in (j + 1)..n {
            let mut w = a[(j, c)];
            for i in (j + 1)..m {
                w += a[(i, j)] * a[(i, c)];
            }
            w *= t;
            a[(j, c)] -= w;
            for i in (j + 1)..m {
                let vij = a[(i, j)];
                a[(i, c)] -= w * vij;
            }
        }
    }
    tau
}

/// Apply `Q` or `Qᵀ` (from a `geqrf` factorization stored in `v`, `tau`) to
/// `c` from the left: `C ← op(Q)·C`.
pub fn ormqr(trans: Trans, v: &Matrix, tau: &[f64], c: &mut Matrix) {
    let m = v.rows();
    let k = tau.len();
    assert!(k <= v.cols(), "more tau factors than reflector columns");
    assert_eq!(c.rows(), m, "ormqr dimension mismatch");
    let order: Box<dyn Iterator<Item = usize>> = match trans {
        Trans::Yes => Box::new(0..k), // Qᵀ = H_{k-1}···H_0 applied left to right
        Trans::No => Box::new((0..k).rev()), // Q  = H_0···H_{k-1}
    };
    for j in order {
        let t = tau[j];
        if t == 0.0 {
            continue;
        }
        for col in 0..c.cols() {
            let mut w = c[(j, col)];
            for i in (j + 1)..m {
                w += v[(i, j)] * c[(i, col)];
            }
            w *= t;
            c[(j, col)] -= w;
            for i in (j + 1)..m {
                let vij = v[(i, j)];
                c[(i, col)] -= w * vij;
            }
        }
    }
}

/// Form the upper-triangular block reflector `T` with `Q = I - V·T·Vᵀ`
/// (LAPACK `larft`, forward columnwise storage as produced by [`geqrf`]).
pub fn larft(v: &Matrix, tau: &[f64]) -> Matrix {
    let m = v.rows();
    let k = tau.len();
    let mut t = Matrix::zeros(k, k);
    for j in 0..k {
        t[(j, j)] = tau[j];
        if j == 0 || tau[j] == 0.0 {
            continue;
        }
        // w = Vᵀ[:, 0..j] · v_j  (v_j has implicit 1 at row j).
        let mut w = vec![0.0; j];
        for p in 0..j {
            let mut s = v[(j, p)]; // row j of column p times v_j[j] = 1
            for i in (j + 1)..m {
                s += v[(i, p)] * v[(i, j)];
            }
            w[p] = s;
        }
        // T[0..j, j] = -tau_j · T[0..j, 0..j] · w.
        for r in 0..j {
            let mut s = 0.0;
            for p in r..j {
                s += t[(r, p)] * w[p];
            }
            t[(r, j)] = -tau[j] * s;
        }
    }
    t
}

/// Build the explicit `m × k` orthogonal factor `Q` from a `geqrf`
/// factorization (LAPACK `orgqr`): apply `Q` to the first `k` columns of `I`.
pub fn orgqr(v: &Matrix, tau: &[f64]) -> Matrix {
    let m = v.rows();
    let k = tau.len();
    let mut q = Matrix::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = 1.0;
    }
    ormqr(Trans::No, v, tau, &mut q);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_qr(m: usize, n: usize, seed: u64, tol: f64) {
        let a = Matrix::random(m, n, seed);
        let mut f = a.clone();
        let tau = geqrf(&mut f);
        let q = orgqr(&f, &tau);
        // R = upper triangle of the first min(m,n) rows.
        let k = m.min(n);
        let mut r = Matrix::zeros(k, n);
        for j in 0..n {
            for i in 0..k.min(j + 1) {
                r[(i, j)] = f[(i, j)];
            }
        }
        // Q·R reconstructs A.
        let recon = q.matmul_ref(&r);
        assert!(recon.max_abs_diff(&a) < tol, "reconstruction error too large");
        // QᵀQ = I.
        let qtq = q.transposed().matmul_ref(&q);
        assert!(qtq.max_abs_diff(&Matrix::identity(k)) < tol, "Q not orthogonal");
    }

    #[test]
    fn qr_square() {
        check_qr(6, 6, 1, 1e-10);
    }

    #[test]
    fn qr_tall() {
        check_qr(12, 4, 2, 1e-10);
    }

    #[test]
    fn qr_wide() {
        check_qr(4, 7, 3, 1e-10);
    }

    #[test]
    fn ormqr_transpose_gives_r() {
        // Qᵀ·A = [R; 0].
        let a = Matrix::random(8, 3, 4);
        let mut f = a.clone();
        let tau = geqrf(&mut f);
        let mut c = a.clone();
        ormqr(Trans::Yes, &f, &tau, &mut c);
        for j in 0..3 {
            for i in 0..8 {
                if i <= j {
                    assert!((c[(i, j)] - f[(i, j)]).abs() < 1e-10);
                } else {
                    assert!(c[(i, j)].abs() < 1e-10, "below-R entry not annihilated");
                }
            }
        }
    }

    #[test]
    fn ormqr_roundtrip_is_identity() {
        let a = Matrix::random(7, 4, 5);
        let mut f = Matrix::random(7, 4, 6);
        let tau = geqrf(&mut f);
        let mut c = a.clone();
        ormqr(Trans::Yes, &f, &tau, &mut c);
        ormqr(Trans::No, &f, &tau, &mut c);
        assert!(c.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn larft_block_reflector_matches_product() {
        // I - V·T·Vᵀ must equal H_0·H_1···H_{k-1} = Q.
        let a = Matrix::random(8, 4, 7);
        let mut f = a.clone();
        let tau = geqrf(&mut f);
        let t = larft(&f, &tau);
        // Build V explicitly (unit lower trapezoid).
        let mut v = Matrix::zeros(8, 4);
        for j in 0..4 {
            v[(j, j)] = 1.0;
            for i in (j + 1)..8 {
                v[(i, j)] = f[(i, j)];
            }
        }
        // Q_wy = I - V·T·Vᵀ.
        let vt = v.matmul_ref(&t);
        let q_wy_delta = vt.matmul_ref(&v.transposed());
        let mut q_wy = Matrix::identity(8);
        for j in 0..8 {
            for i in 0..8 {
                q_wy[(i, j)] -= q_wy_delta[(i, j)];
            }
        }
        // Q from applying reflectors to the identity.
        let mut q_ref = Matrix::identity(8);
        ormqr(Trans::No, &f, &tau, &mut q_ref);
        assert!(q_wy.max_abs_diff(&q_ref) < 1e-10);
        // T is upper triangular.
        assert_eq!(t[(2, 0)], 0.0);
    }

    #[test]
    fn geqrf_zero_column_is_safe() {
        let mut a = Matrix::zeros(4, 2);
        a[(0, 1)] = 1.0;
        let tau = geqrf(&mut a);
        assert_eq!(tau[0], 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_qr_reconstructs(m in 1usize..14, dn in 0usize..6, seed in 0u64..500) {
            let n = (1 + dn).min(m); // tall or square
            let a = Matrix::random(m, n, seed);
            let mut f = a.clone();
            let tau = geqrf(&mut f);
            let q = orgqr(&f, &tau);
            let mut r = Matrix::zeros(n, n);
            for j in 0..n {
                for i in 0..=j {
                    r[(i, j)] = f[(i, j)];
                }
            }
            prop_assert!(q.matmul_ref(&r).max_abs_diff(&a) < 1e-8);
            prop_assert!(q.transposed().matmul_ref(&q).max_abs_diff(&Matrix::identity(n)) < 1e-8);
        }
    }
}

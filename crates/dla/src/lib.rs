//! # critter-dla
//!
//! Sequential dense linear algebra: the BLAS/LAPACK substitute underneath the
//! distributed factorizations (`critter-algs`). Every kernel the paper's four
//! workloads invoke is implemented here on real `f64` data — `gemm`, `syrk`,
//! `trsm`, `trmm`, `potrf`, `trtri`, `geqrf`, `ormqr`, `larft`, `tpqrt`,
//! `tpmqrt` — so the distributed algorithms are *correct programs* whose
//! results are verified by tests, not mocked schedules.
//!
//! Execution **time** is not measured here: the simulator charges each kernel
//! a modeled, noise-perturbed cost (see `critter-machine`), because laptop
//! wall-clock would not reflect the paper's KNL nodes. The [`flops`] module
//! provides the per-kernel flop counts the cost model consumes.
//!
//! Matrices are column-major, matching the BLAS convention.

#![deny(missing_docs)]

pub mod blas3;
pub mod chol;
pub mod flops;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod tp;

pub use blas3::{gemm, syrk, trmm, trsm, Side, Trans, Uplo};
pub use chol::{potrf, trtri};
pub use lu::{getrf, getrs};
pub use matrix::Matrix;
pub use qr::{geqrf, larft, ormqr};
pub use tp::{tpmqrt, tpqrt};

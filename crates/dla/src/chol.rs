//! Cholesky factorization (`potrf`) and triangular inversion (`trtri`).

use crate::matrix::Matrix;

/// Error raised when `potrf` encounters a non-positive pivot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the failing pivot.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower Cholesky factorization in place: on success the lower triangle of
/// `a` holds `L` with `A = L·Lᵀ`; the strict upper triangle is zeroed.
pub fn potrf(a: &mut Matrix) -> Result<(), NotPositiveDefinite> {
    assert_eq!(a.rows(), a.cols(), "potrf requires a square matrix");
    let n = a.rows();
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= a[(j, k)] * a[(j, k)];
        }
        if d <= 0.0 {
            return Err(NotPositiveDefinite { pivot: j });
        }
        let d = d.sqrt();
        a[(j, j)] = d;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = s / d;
        }
    }
    a.tril_in_place();
    Ok(())
}

/// Invert a lower-triangular matrix in place (non-unit diagonal).
pub fn trtri(l: &mut Matrix) {
    assert_eq!(l.rows(), l.cols(), "trtri requires a square matrix");
    let n = l.rows();
    // Column-oriented forward substitution on L·X = I, exploiting triangularity.
    for j in 0..n {
        assert!(l[(j, j)] != 0.0, "singular triangular matrix (zero at {j})");
    }
    let mut x = Matrix::zeros(n, n);
    for j in 0..n {
        x[(j, j)] = 1.0 / l[(j, j)];
        for i in (j + 1)..n {
            let mut s = 0.0;
            for k in j..i {
                s += l[(i, k)] * x[(k, j)];
            }
            x[(i, j)] = -s / l[(i, i)];
        }
    }
    *l = x;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn potrf_reconstructs_spd() {
        let a = Matrix::random_spd(8, 1);
        let mut l = a.clone();
        potrf(&mut l).unwrap();
        let recon = l.matmul_ref(&l.transposed());
        assert!(recon.max_abs_diff(&a) < 1e-9 * a.norm_fro());
        // Upper triangle must be zeroed.
        assert_eq!(l[(0, 7)], 0.0);
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut a = Matrix::identity(3);
        a[(1, 1)] = -1.0;
        assert_eq!(potrf(&mut a), Err(NotPositiveDefinite { pivot: 1 }));
    }

    #[test]
    fn potrf_1x1() {
        let mut a = Matrix::from_column_major(1, 1, vec![9.0]);
        potrf(&mut a).unwrap();
        assert_eq!(a[(0, 0)], 3.0);
    }

    #[test]
    fn trtri_inverts() {
        let a = Matrix::random_spd(6, 2);
        let mut l = a.clone();
        potrf(&mut l).unwrap();
        let mut linv = l.clone();
        trtri(&mut linv);
        let prod = l.matmul_ref(&linv);
        assert!(prod.max_abs_diff(&Matrix::identity(6)) < 1e-10);
        // Inverse of lower triangular stays lower triangular.
        assert_eq!(linv[(0, 5)], 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_potrf_roundtrip(n in 1usize..12, seed in 0u64..1000) {
            let a = Matrix::random_spd(n, seed);
            let mut l = a.clone();
            prop_assert!(potrf(&mut l).is_ok());
            let recon = l.matmul_ref(&l.transposed());
            prop_assert!(recon.max_abs_diff(&a) < 1e-8 * (1.0 + a.norm_fro()));
        }

        #[test]
        fn prop_trtri_identity(n in 1usize..10, seed in 0u64..1000) {
            let a = Matrix::random_spd(n, seed);
            let mut l = a.clone();
            potrf(&mut l).unwrap();
            let mut linv = l.clone();
            trtri(&mut linv);
            let prod = linv.matmul_ref(&l);
            prop_assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-8);
        }
    }
}

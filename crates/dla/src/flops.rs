//! Flop counts per kernel (standard LAPACK working-note counts).
//!
//! The machine model converts these into simulated time. Counts are for the
//! *mathematical* operation, independent of how the reference implementation
//! here happens to compute it.

/// `gemm`: `C(m×n) += A(m×k)·B(k×n)` → `2mnk`.
pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// `syrk`: `C(n×n) += A(n×k)·Aᵀ` on one triangle → `n(n+1)k`.
pub fn syrk(n: usize, k: usize) -> f64 {
    n as f64 * (n + 1) as f64 * k as f64
}

/// `trsm`: triangular solve with an `n×n` triangle against `m` vectors of
/// length `n` (left side) → `n²·m`.
pub fn trsm(n: usize, m: usize) -> f64 {
    n as f64 * n as f64 * m as f64
}

/// `trmm`: same flop count as `trsm`.
pub fn trmm(n: usize, m: usize) -> f64 {
    trsm(n, m)
}

/// `potrf`: Cholesky of `n×n` → `n³/3`.
pub fn potrf(n: usize) -> f64 {
    (n as f64).powi(3) / 3.0
}

/// `trtri`: triangular inversion of `n×n` → `n³/3`.
pub fn trtri(n: usize) -> f64 {
    (n as f64).powi(3) / 3.0
}

/// `geqrf` on `m×n` (`m ≥ n`) → `2n²(m − n/3)`.
pub fn geqrf(m: usize, n: usize) -> f64 {
    2.0 * (n as f64).powi(2) * (m as f64 - n as f64 / 3.0)
}

/// `ormqr`: apply `k` reflectors of length `m` to `m×n` → `4mnk − 2nk²`
/// (approximation of the LAPACK count).
pub fn ormqr(m: usize, n: usize, k: usize) -> f64 {
    (4.0 * m as f64 * n as f64 * k as f64 - 2.0 * n as f64 * (k as f64).powi(2)).max(0.0)
}

/// `larft`: form `k×k` block reflector from length-`m` vectors → `k²m`.
pub fn larft(m: usize, k: usize) -> f64 {
    (k as f64).powi(2) * m as f64
}

/// `tpqrt` factoring `[R(n×n); B(m×n)]` → `2n²m + (2/3)n³`.
pub fn tpqrt(m: usize, n: usize) -> f64 {
    2.0 * (n as f64).powi(2) * m as f64 + 2.0 / 3.0 * (n as f64).powi(3)
}

/// `tpmqrt` applying an `[n; m]`-stacked `Q` of width `k` to `c` columns
/// → `4mkc` (plus lower-order top-tile work).
pub fn tpmqrt(m: usize, k: usize, c: usize) -> f64 {
    4.0 * m as f64 * k as f64 * c as f64 + 2.0 * k as f64 * k as f64 * c as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_cube() {
        assert_eq!(gemm(10, 10, 10), 2000.0);
    }

    #[test]
    fn syrk_half_of_gemm() {
        // syrk on one triangle is about half a square gemm.
        let full = gemm(100, 100, 50);
        let half = syrk(100, 50);
        assert!(half < 0.6 * full && half > 0.4 * full);
    }

    #[test]
    fn potrf_third_cube() {
        assert!((potrf(30) - 9000.0).abs() < 1e-9);
    }

    #[test]
    fn geqrf_tall_dominates_square() {
        assert!(geqrf(1000, 10) > geqrf(10, 10));
    }

    #[test]
    fn counts_positive() {
        for f in [
            gemm(3, 4, 5),
            syrk(3, 4),
            trsm(3, 4),
            trmm(3, 4),
            potrf(5),
            trtri(5),
            geqrf(8, 3),
            ormqr(8, 4, 3),
            larft(8, 3),
            tpqrt(5, 3),
            tpmqrt(5, 3, 4),
        ] {
            assert!(f > 0.0);
        }
    }
}

//! Level-3 BLAS: `gemm`, `syrk`, `trsm`, `trmm`.
//!
//! Straightforward cache-aware loop orders (jki with column access) — these
//! kernels exist for *correctness* of the distributed algorithms; their
//! simulated cost comes from the machine model, not from how fast this code
//! runs on the host.

use crate::matrix::Matrix;

/// Transposition selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Operate on the matrix as stored.
    No,
    /// Operate on the transpose.
    Yes,
}

/// Triangle selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Uplo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

/// Side selector for triangular ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Triangular matrix applied from the left.
    Left,
    /// Triangular matrix applied from the right.
    Right,
}

#[inline]
fn op(a: &Matrix, ta: Trans, i: usize, k: usize) -> f64 {
    match ta {
        Trans::No => a[(i, k)],
        Trans::Yes => a[(k, i)],
    }
}

fn op_dims(a: &Matrix, ta: Trans) -> (usize, usize) {
    match ta {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    }
}

/// General matrix multiply: `C ← α·op(A)·op(B) + β·C`.
pub fn gemm(ta: Trans, tb: Trans, alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, ka) = op_dims(a, ta);
    let (kb, n) = op_dims(b, tb);
    assert_eq!(ka, kb, "gemm inner dimensions disagree: {ka} vs {kb}");
    assert_eq!(c.rows(), m, "gemm C rows");
    assert_eq!(c.cols(), n, "gemm C cols");
    if beta != 1.0 {
        for x in c.data_mut() {
            *x *= beta;
        }
    }
    if alpha == 0.0 {
        return;
    }
    // jki order: stream down columns of C and op(A).
    for j in 0..n {
        for k in 0..ka {
            let bkj = alpha * op(b, tb, k, j);
            if bkj == 0.0 {
                continue;
            }
            match ta {
                Trans::No => {
                    // Column k of A is contiguous.
                    let acol = a.col(k);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += acol[i] * bkj;
                    }
                }
                Trans::Yes => {
                    let ccol = c.col_mut(j);
                    for (i, cij) in ccol.iter_mut().enumerate() {
                        *cij += a[(k, i)] * bkj;
                    }
                }
            }
        }
    }
}

/// Symmetric rank-k update: `C ← α·op(A)·op(A)ᵀ + β·C`, touching only the
/// `uplo` triangle of `C` and mirroring it (C kept full-symmetric, which the
/// distributed algorithms rely on).
pub fn syrk(uplo: Uplo, ta: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    let (n, k) = op_dims(a, ta);
    assert_eq!(c.rows(), n, "syrk C must be n×n");
    assert_eq!(c.cols(), n, "syrk C must be n×n");
    for j in 0..n {
        let range: Box<dyn Iterator<Item = usize>> = match uplo {
            Uplo::Lower => Box::new(j..n),
            Uplo::Upper => Box::new(0..=j),
        };
        for i in range {
            let mut s = 0.0;
            for l in 0..k {
                s += op(a, ta, i, l) * op(a, ta, j, l);
            }
            let v = alpha * s + beta * c[(i, j)];
            c[(i, j)] = v;
            c[(j, i)] = v;
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `op(A)·X = α·B` (Left) or `X·op(A) = α·B` (Right); `B` is overwritten by `X`.
/// `unit` marks an implicit unit diagonal.
pub fn trsm(side: Side, uplo: Uplo, ta: Trans, unit: bool, alpha: f64, a: &Matrix, b: &mut Matrix) {
    assert_eq!(a.rows(), a.cols(), "triangular matrix must be square");
    let n = a.rows();
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trsm left dimension"),
        Side::Right => assert_eq!(b.cols(), n, "trsm right dimension"),
    }
    if alpha != 1.0 {
        for x in b.data_mut() {
            *x *= alpha;
        }
    }
    // Effective triangle after transposition.
    let lower = matches!((uplo, ta), (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes));
    let diag = |a: &Matrix, i: usize| if unit { 1.0 } else { a[(i, i)] };
    match side {
        Side::Left => {
            // Solve op(A)·X = B column by column.
            for j in 0..b.cols() {
                if lower {
                    for i in 0..n {
                        let mut s = b[(i, j)];
                        for k in 0..i {
                            s -= op(a, ta, i, k) * b[(k, j)];
                        }
                        b[(i, j)] = s / diag(a, i);
                    }
                } else {
                    for i in (0..n).rev() {
                        let mut s = b[(i, j)];
                        for k in (i + 1)..n {
                            s -= op(a, ta, i, k) * b[(k, j)];
                        }
                        b[(i, j)] = s / diag(a, i);
                    }
                }
            }
        }
        Side::Right => {
            // Solve X·op(A) = B row by row (i.e. column ordering over X cols).
            for i in 0..b.rows() {
                if lower {
                    // X[:, j] computed from high j to low j: X·L = B →
                    // X[i,j] = (B[i,j] - Σ_{k>j} X[i,k]·L[k,j]) / L[j,j]
                    for j in (0..n).rev() {
                        let mut s = b[(i, j)];
                        for k in (j + 1)..n {
                            s -= b[(i, k)] * op(a, ta, k, j);
                        }
                        b[(i, j)] = s / diag(a, j);
                    }
                } else {
                    for j in 0..n {
                        let mut s = b[(i, j)];
                        for k in 0..j {
                            s -= b[(i, k)] * op(a, ta, k, j);
                        }
                        b[(i, j)] = s / diag(a, j);
                    }
                }
            }
        }
    }
}

/// Triangular matrix multiply: `B ← α·op(A)·B` (Left) or `B ← α·B·op(A)`
/// (Right), with triangular `A`.
pub fn trmm(side: Side, uplo: Uplo, ta: Trans, unit: bool, alpha: f64, a: &Matrix, b: &mut Matrix) {
    assert_eq!(a.rows(), a.cols(), "triangular matrix must be square");
    let n = a.rows();
    let lower = matches!((uplo, ta), (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes));
    let diag = |a: &Matrix, i: usize| if unit { 1.0 } else { a[(i, i)] };
    match side {
        Side::Left => {
            assert_eq!(b.rows(), n, "trmm left dimension");
            for j in 0..b.cols() {
                if lower {
                    // Work bottom-up so untouched entries are still inputs.
                    for i in (0..n).rev() {
                        let mut s = diag(a, i) * b[(i, j)];
                        for k in 0..i {
                            s += op(a, ta, i, k) * b[(k, j)];
                        }
                        b[(i, j)] = alpha * s;
                    }
                } else {
                    for i in 0..n {
                        let mut s = diag(a, i) * b[(i, j)];
                        for k in (i + 1)..n {
                            s += op(a, ta, i, k) * b[(k, j)];
                        }
                        b[(i, j)] = alpha * s;
                    }
                }
            }
        }
        Side::Right => {
            assert_eq!(b.cols(), n, "trmm right dimension");
            for i in 0..b.rows() {
                if lower {
                    for j in 0..n {
                        let mut s = b[(i, j)] * diag(a, j);
                        for k in (j + 1)..n {
                            s += b[(i, k)] * op(a, ta, k, j);
                        }
                        b[(i, j)] = alpha * s;
                    }
                } else {
                    for j in (0..n).rev() {
                        let mut s = b[(i, j)] * diag(a, j);
                        for k in 0..j {
                            s += b[(i, k)] * op(a, ta, k, j);
                        }
                        b[(i, j)] = alpha * s;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_random(n: usize, seed: u64) -> Matrix {
        let mut l = Matrix::random(n, n, seed);
        l.tril_in_place();
        for i in 0..n {
            l[(i, i)] = 2.0 + l[(i, i)].abs(); // well conditioned
        }
        l
    }

    #[test]
    fn gemm_matches_reference() {
        let a = Matrix::random(4, 6, 1);
        let b = Matrix::random(6, 3, 2);
        let mut c = Matrix::zeros(4, 3);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&a.matmul_ref(&b)) < 1e-12);
    }

    #[test]
    fn gemm_transposes() {
        let a = Matrix::random(6, 4, 3);
        let b = Matrix::random(6, 3, 4);
        let mut c = Matrix::zeros(4, 3);
        gemm(Trans::Yes, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&a.transposed().matmul_ref(&b)) < 1e-12);

        let a2 = Matrix::random(4, 6, 5);
        let b2 = Matrix::random(3, 6, 6);
        let mut c2 = Matrix::zeros(4, 3);
        gemm(Trans::No, Trans::Yes, 1.0, &a2, &b2, 0.0, &mut c2);
        assert!(c2.max_abs_diff(&a2.matmul_ref(&b2.transposed())) < 1e-12);
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::random(3, 3, 7);
        let b = Matrix::random(3, 3, 8);
        let c0 = Matrix::random(3, 3, 9);
        let mut c = c0.clone();
        gemm(Trans::No, Trans::No, 2.0, &a, &b, -1.0, &mut c);
        let mut expect = a.matmul_ref(&b);
        for j in 0..3 {
            for i in 0..3 {
                expect[(i, j)] = 2.0 * expect[(i, j)] - c0[(i, j)];
            }
        }
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn syrk_matches_gemm() {
        let a = Matrix::random(5, 3, 10);
        let mut c = Matrix::zeros(5, 5);
        syrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
        let expect = a.matmul_ref(&a.transposed());
        assert!(c.max_abs_diff(&expect) < 1e-12);
        // Transposed variant: C = AᵀA.
        let mut ct = Matrix::zeros(3, 3);
        syrk(Uplo::Upper, Trans::Yes, 1.0, &a, 0.0, &mut ct);
        assert!(ct.max_abs_diff(&a.transposed().matmul_ref(&a)) < 1e-12);
    }

    #[test]
    fn trsm_left_lower_solves() {
        let l = lower_random(5, 11);
        let x_true = Matrix::random(5, 3, 12);
        let b = l.matmul_ref(&x_true);
        let mut x = b.clone();
        trsm(Side::Left, Uplo::Lower, Trans::No, false, 1.0, &l, &mut x);
        assert!(x.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn trsm_left_lower_transposed() {
        let l = lower_random(5, 13);
        let x_true = Matrix::random(5, 2, 14);
        let b = l.transposed().matmul_ref(&x_true);
        let mut x = b.clone();
        trsm(Side::Left, Uplo::Lower, Trans::Yes, false, 1.0, &l, &mut x);
        assert!(x.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn trsm_right_lower_transposed() {
        // The Cholesky panel update: L21 = A21 · L11^{-T}, i.e. solve X·L11ᵀ = A21.
        let l = lower_random(4, 15);
        let x_true = Matrix::random(3, 4, 16);
        let b = x_true.matmul_ref(&l.transposed());
        let mut x = b.clone();
        trsm(Side::Right, Uplo::Lower, Trans::Yes, false, 1.0, &l, &mut x);
        assert!(x.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn trsm_unit_diagonal() {
        let mut l = lower_random(4, 17);
        for i in 0..4 {
            l[(i, i)] = 123.0; // must be ignored under unit
        }
        let mut unit_l = l.clone();
        for i in 0..4 {
            unit_l[(i, i)] = 1.0;
        }
        let x_true = Matrix::random(4, 2, 18);
        let b = unit_l.matmul_ref(&x_true);
        let mut x = b.clone();
        trsm(Side::Left, Uplo::Lower, Trans::No, true, 1.0, &l, &mut x);
        assert!(x.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn trmm_left_and_right_match_gemm() {
        let l = lower_random(4, 19);
        let b0 = Matrix::random(4, 3, 20);
        let mut b = b0.clone();
        trmm(Side::Left, Uplo::Lower, Trans::No, false, 1.0, &l, &mut b);
        assert!(b.max_abs_diff(&l.matmul_ref(&b0)) < 1e-12);

        let c0 = Matrix::random(3, 4, 21);
        let mut c = c0.clone();
        trmm(Side::Right, Uplo::Lower, Trans::Yes, false, 1.0, &l, &mut c);
        assert!(c.max_abs_diff(&c0.matmul_ref(&l.transposed())) < 1e-12);
    }

    #[test]
    fn trmm_upper() {
        let mut u = Matrix::random(4, 4, 22);
        u.triu_in_place();
        let b0 = Matrix::random(4, 2, 23);
        let mut b = b0.clone();
        trmm(Side::Left, Uplo::Upper, Trans::No, false, 1.0, &u, &mut b);
        assert!(b.max_abs_diff(&u.matmul_ref(&b0)) < 1e-12);
    }

    #[test]
    fn trsm_right_upper() {
        let mut u = Matrix::random(4, 4, 24);
        u.triu_in_place();
        for i in 0..4 {
            u[(i, i)] = 3.0 + u[(i, i)].abs();
        }
        let x_true = Matrix::random(2, 4, 25);
        let b = x_true.matmul_ref(&u);
        let mut x = b.clone();
        trsm(Side::Right, Uplo::Upper, Trans::No, false, 1.0, &u, &mut x);
        assert!(x.max_abs_diff(&x_true) < 1e-10);
    }
}

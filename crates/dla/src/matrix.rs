//! Column-major dense matrix.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense column-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix from a column-major data vector.
    pub fn from_column_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Matrix with entries drawn uniformly from `[-1, 1]`, seeded.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Matrix { rows, cols, data }
    }

    /// Random symmetric positive definite matrix: `B·Bᵀ + n·I` for random `B`.
    pub fn random_spd(n: usize, seed: u64) -> Self {
        let b = Matrix::random(n, n, seed);
        let mut a = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = s;
            }
        }
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the column-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the column-major storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the column-major storage.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// One column as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// One column as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy of the `r × c` submatrix starting at `(i0, j0)`.
    pub fn sub(&self, i0: usize, j0: usize, r: usize, c: usize) -> Matrix {
        assert!(i0 + r <= self.rows && j0 + c <= self.cols, "submatrix out of bounds");
        let mut m = Matrix::zeros(r, c);
        for j in 0..c {
            for i in 0..r {
                m[(i, j)] = self[(i0 + i, j0 + j)];
            }
        }
        m
    }

    /// Write `block` into this matrix at `(i0, j0)`.
    pub fn set_sub(&mut self, i0: usize, j0: usize, block: &Matrix) {
        assert!(
            i0 + block.rows <= self.rows && j0 + block.cols <= self.cols,
            "submatrix out of bounds"
        );
        for j in 0..block.cols {
            for i in 0..block.rows {
                self[(i0 + i, j0 + j)] = block[(i, j)];
            }
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Zero the strictly upper triangle (keep lower + diagonal).
    pub fn tril_in_place(&mut self) {
        for j in 0..self.cols {
            for i in 0..j.min(self.rows) {
                self[(i, j)] = 0.0;
            }
        }
    }

    /// Zero the strictly lower triangle (keep upper + diagonal).
    pub fn triu_in_place(&mut self) {
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                self[(i, j)] = 0.0;
            }
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry difference against `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Naive reference product (tests only — O(n³) with no blocking).
    pub fn matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut c = Matrix::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            for k in 0..self.cols {
                let b = other[(k, j)];
                if b == 0.0 {
                    continue;
                }
                for i in 0..self.rows {
                    c[(i, j)] += self[(i, k)] * b;
                }
            }
        }
        c
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[j * self.rows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[j * self.rows + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_column_major() {
        let m = Matrix::from_column_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn identity_matmul() {
        let a = Matrix::random(4, 4, 1);
        let i = Matrix::identity(4);
        assert!(a.matmul_ref(&i).max_abs_diff(&a) < 1e-15);
        assert!(i.matmul_ref(&a).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn sub_and_set_sub_roundtrip() {
        let a = Matrix::random(6, 5, 2);
        let block = a.sub(1, 2, 3, 2);
        let mut b = Matrix::zeros(6, 5);
        b.set_sub(1, 2, &block);
        assert_eq!(b[(1, 2)], a[(1, 2)]);
        assert_eq!(b[(3, 3)], a[(3, 3)]);
        assert_eq!(b[(0, 0)], 0.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::random(3, 7, 3);
        assert!(a.transposed().transposed().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn spd_is_symmetric_with_heavy_diagonal() {
        let a = Matrix::random_spd(8, 4);
        for i in 0..8 {
            for j in 0..8 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
            assert!(a[(i, i)] > 0.0);
        }
    }

    #[test]
    fn tril_triu() {
        let mut a = Matrix::random(3, 3, 5);
        let mut b = a.clone();
        a.tril_in_place();
        b.triu_in_place();
        assert_eq!(a[(0, 2)], 0.0);
        assert_eq!(b[(2, 0)], 0.0);
        assert_eq!(a[(1, 1)], b[(1, 1)]);
    }

    #[test]
    fn random_is_seeded() {
        assert_eq!(Matrix::random(3, 3, 7), Matrix::random(3, 3, 7));
        assert_ne!(Matrix::random(3, 3, 7), Matrix::random(3, 3, 8));
    }
}

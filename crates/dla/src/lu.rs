//! LU factorization with partial pivoting (`getrf`) and solves (`getrs`).
//!
//! CANDMC's Householder-reconstruction step \[1\] computes an LU factorization
//! of a matrix derived from the panel's orthogonal factor; `getrf` completes
//! the LAPACK kernel family the paper's workloads draw from.

use crate::blas3::{trsm, Side, Trans, Uplo};
use crate::matrix::Matrix;

/// Error raised when a pivot column is exactly singular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Index of the zero pivot.
    pub pivot: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular (zero pivot at column {})", self.pivot)
    }
}

impl std::error::Error for SingularMatrix {}

/// LU factorization with partial pivoting, in place: on return `a` holds
/// `L` (unit lower, below the diagonal) and `U` (upper, including the
/// diagonal) with `P·A = L·U`; the returned vector is the pivot row chosen at
/// each step (LAPACK `ipiv`, 0-based).
pub fn getrf(a: &mut Matrix) -> Result<Vec<usize>, SingularMatrix> {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut ipiv = Vec::with_capacity(k);
    for j in 0..k {
        // Partial pivot: the largest magnitude in column j at or below row j.
        let mut p = j;
        let mut best = a[(j, j)].abs();
        for i in (j + 1)..m {
            let v = a[(i, j)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best == 0.0 {
            return Err(SingularMatrix { pivot: j });
        }
        ipiv.push(p);
        if p != j {
            for c in 0..n {
                let t = a[(j, c)];
                a[(j, c)] = a[(p, c)];
                a[(p, c)] = t;
            }
        }
        // Eliminate below the pivot.
        let piv = a[(j, j)];
        for i in (j + 1)..m {
            let l = a[(i, j)] / piv;
            a[(i, j)] = l;
            for c in (j + 1)..n {
                let ajc = a[(j, c)];
                a[(i, c)] -= l * ajc;
            }
        }
    }
    Ok(ipiv)
}

/// Solve `A·X = B` using a factorization from [`getrf`]: applies the row
/// interchanges to `b`, then forward- and back-substitutes. `b` is
/// overwritten with `X`.
pub fn getrs(lu: &Matrix, ipiv: &[usize], b: &mut Matrix) {
    let n = lu.rows();
    assert_eq!(lu.cols(), n, "getrs requires a square factorization");
    assert_eq!(b.rows(), n, "right-hand side row mismatch");
    // Apply P to B (same interchanges, same order, as in the factorization).
    for (j, &p) in ipiv.iter().enumerate() {
        if p != j {
            for c in 0..b.cols() {
                let t = b[(j, c)];
                b[(j, c)] = b[(p, c)];
                b[(p, c)] = t;
            }
        }
    }
    // L (unit diagonal) then U.
    trsm(Side::Left, Uplo::Lower, Trans::No, true, 1.0, lu, b);
    trsm(Side::Left, Uplo::Upper, Trans::No, false, 1.0, lu, b);
}

/// Flop count of `getrf` on `m×n` (`m ≥ n`): `mn² − n³/3`.
pub fn getrf_flops(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    m * n * n - n * n * n / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reconstruct(lu: &Matrix, ipiv: &[usize], m: usize, n: usize) -> Matrix {
        // Build P⁻¹·L·U = A.
        let k = m.min(n);
        let mut l = Matrix::zeros(m, k);
        for j in 0..k {
            l[(j, j)] = 1.0;
            for i in (j + 1)..m {
                l[(i, j)] = lu[(i, j)];
            }
        }
        let mut u = Matrix::zeros(k, n);
        for j in 0..n {
            for i in 0..=j.min(k - 1) {
                u[(i, j)] = lu[(i, j)];
            }
        }
        let mut pa = l.matmul_ref(&u);
        // Undo the interchanges (reverse order).
        for (j, &p) in ipiv.iter().enumerate().rev() {
            if p != j {
                for c in 0..n {
                    let t = pa[(j, c)];
                    pa[(j, c)] = pa[(p, c)];
                    pa[(p, c)] = t;
                }
            }
        }
        pa
    }

    #[test]
    fn factors_square_matrix() {
        let a = Matrix::random(6, 6, 1);
        let mut lu = a.clone();
        let ipiv = getrf(&mut lu).unwrap();
        let recon = reconstruct(&lu, &ipiv, 6, 6);
        assert!(recon.max_abs_diff(&a) < 1e-12, "PᵀLU must reconstruct A");
    }

    #[test]
    fn factors_tall_matrix() {
        let a = Matrix::random(9, 4, 2);
        let mut lu = a.clone();
        let ipiv = getrf(&mut lu).unwrap();
        let recon = reconstruct(&lu, &ipiv, 9, 4);
        assert!(recon.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn solves_linear_system() {
        let a = Matrix::random_spd(7, 3); // well conditioned
        let x_true = Matrix::random(7, 2, 4);
        let b = a.matmul_ref(&x_true);
        let mut lu = a.clone();
        let ipiv = getrf(&mut lu).unwrap();
        let mut x = b.clone();
        getrs(&lu, &ipiv, &mut x);
        assert!(x.max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn detects_singularity() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 1.0; // column 2 fully zero
        assert_eq!(getrf(&mut a), Err(SingularMatrix { pivot: 2 }));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let orig = a.clone();
        let ipiv = getrf(&mut a).unwrap();
        let recon = reconstruct(&a, &ipiv, 2, 2);
        assert!(recon.max_abs_diff(&orig) < 1e-14);
    }

    #[test]
    fn flops_formula() {
        assert!((getrf_flops(10, 10) - (1000.0 - 1000.0 / 3.0)).abs() < 1e-9);
        assert!(getrf_flops(100, 10) > getrf_flops(10, 10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn prop_lu_reconstructs(n in 1usize..10, seed in 0u64..500) {
            let a = Matrix::random_spd(n, seed); // nonsingular by construction
            let mut lu = a.clone();
            let ipiv = getrf(&mut lu).unwrap();
            let recon = reconstruct(&lu, &ipiv, n, n);
            prop_assert!(recon.max_abs_diff(&a) < 1e-9 * (1.0 + a.norm_fro()));
        }

        #[test]
        fn prop_solve_roundtrip(n in 1usize..10, cols in 1usize..4, seed in 0u64..500) {
            let a = Matrix::random_spd(n, seed);
            let x_true = Matrix::random(n, cols, seed + 1);
            let b = a.matmul_ref(&x_true);
            let mut lu = a.clone();
            let ipiv = getrf(&mut lu).unwrap();
            let mut x = b;
            getrs(&lu, &ipiv, &mut x);
            prop_assert!(x.max_abs_diff(&x_true) < 1e-7 * (1.0 + x_true.norm_fro()));
        }
    }
}

//! Property-based tests of the dense linear algebra kernels: algebraic
//! identities that must hold for random inputs.

use critter_dla::{
    gemm, geqrf, ormqr, potrf, syrk, tpqrt, trmm, trsm, trtri, Matrix, Side, Trans, Uplo,
};
use proptest::prelude::*;

fn well_conditioned_lower(n: usize, seed: u64) -> Matrix {
    let mut l = Matrix::random(n, n, seed);
    l.tril_in_place();
    for i in 0..n {
        l[(i, i)] = 2.0 + l[(i, i)].abs();
    }
    l
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gemm_is_linear_in_alpha(n in 1usize..10, seed in 0u64..500, alpha in -3.0f64..3.0) {
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let mut c1 = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::No, alpha, &a, &b, 0.0, &mut c1);
        let mut c2 = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c2);
        for x in c2.data_mut() {
            *x *= alpha;
        }
        prop_assert!(c1.max_abs_diff(&c2) < 1e-10);
    }

    #[test]
    fn gemm_transpose_identity(m in 1usize..8, n in 1usize..8, k in 1usize..8, seed in 0u64..500) {
        // (A·B)ᵀ = Bᵀ·Aᵀ.
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 7);
        let mut ab = Matrix::zeros(m, n);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut ab);
        let mut btat = Matrix::zeros(n, m);
        gemm(Trans::Yes, Trans::Yes, 1.0, &b, &a, 0.0, &mut btat);
        prop_assert!(ab.transposed().max_abs_diff(&btat) < 1e-10);
    }

    #[test]
    fn trsm_inverts_trmm(n in 1usize..10, cols in 1usize..6, seed in 0u64..500) {
        // trmm then trsm with the same triangle is the identity.
        let l = well_conditioned_lower(n, seed);
        let x0 = Matrix::random(n, cols, seed + 13);
        let mut x = x0.clone();
        trmm(Side::Left, Uplo::Lower, Trans::No, false, 1.0, &l, &mut x);
        trsm(Side::Left, Uplo::Lower, Trans::No, false, 1.0, &l, &mut x);
        prop_assert!(x.max_abs_diff(&x0) < 1e-8);
    }

    #[test]
    fn trsm_right_inverts_trmm_right(n in 1usize..10, rows in 1usize..6, seed in 0u64..500) {
        let l = well_conditioned_lower(n, seed);
        let x0 = Matrix::random(rows, n, seed + 17);
        let mut x = x0.clone();
        trmm(Side::Right, Uplo::Lower, Trans::Yes, false, 1.0, &l, &mut x);
        trsm(Side::Right, Uplo::Lower, Trans::Yes, false, 1.0, &l, &mut x);
        prop_assert!(x.max_abs_diff(&x0) < 1e-8);
    }

    #[test]
    fn syrk_produces_positive_semidefinite_diagonal(n in 1usize..10, k in 1usize..10, seed in 0u64..500) {
        let a = Matrix::random(n, k, seed);
        let mut c = Matrix::zeros(n, n);
        syrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
        for i in 0..n {
            prop_assert!(c[(i, i)] >= -1e-12, "A·Aᵀ diagonal must be nonnegative");
            for j in 0..n {
                prop_assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-10, "must stay symmetric");
            }
        }
    }

    #[test]
    fn potrf_then_trtri_gives_inverse_factor(n in 1usize..10, seed in 0u64..500) {
        // L⁻¹·A·L⁻ᵀ = I for A = L·Lᵀ.
        let a = Matrix::random_spd(n, seed);
        let mut l = a.clone();
        potrf(&mut l).unwrap();
        let mut linv = l.clone();
        trtri(&mut linv);
        let t = linv.matmul_ref(&a).matmul_ref(&linv.transposed());
        prop_assert!(t.max_abs_diff(&Matrix::identity(n)) < 1e-7);
    }

    #[test]
    fn qr_preserves_column_norms(m in 2usize..14, seed in 0u64..500) {
        // Qᵀ is orthogonal: applying it preserves the Frobenius norm.
        let n = (m / 2).max(1);
        let a = Matrix::random(m, n, seed);
        let mut f = Matrix::random(m, n, seed + 23);
        let tau = geqrf(&mut f);
        let mut c = a.clone();
        ormqr(Trans::Yes, &f, &tau, &mut c);
        prop_assert!((c.norm_fro() - a.norm_fro()).abs() < 1e-9 * (1.0 + a.norm_fro()));
    }

    #[test]
    fn tpqrt_gram_invariant(n in 1usize..8, m in 1usize..10, seed in 0u64..500) {
        // The Gram matrix RᵀR of the combined factor equals R₁ᵀR₁ + BᵀB.
        let mut r1 = Matrix::random(n, n, seed);
        r1.triu_in_place();
        let b = Matrix::random(m, n, seed + 31);
        let mut expected = r1.transposed().matmul_ref(&r1);
        let btb = b.transposed().matmul_ref(&b);
        for j in 0..n {
            for i in 0..n {
                expected[(i, j)] += btb[(i, j)];
            }
        }
        let mut r = r1.clone();
        let mut v = b.clone();
        tpqrt(&mut r, &mut v);
        let mut rt = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..=j {
                rt[(i, j)] = r[(i, j)];
            }
        }
        let g = rt.transposed().matmul_ref(&rt);
        prop_assert!(g.max_abs_diff(&expected) < 1e-7 * (1.0 + expected.norm_fro()));
    }
}

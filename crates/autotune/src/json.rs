//! Canonical JSON rendering of tuning reports.
//!
//! Built on the deterministic writer in `serde_json` (sorted object keys,
//! shortest-round-trip float formatting): two bit-identical reports always
//! serialize to byte-identical text. That property is what the testkit's
//! golden-report snapshots diff against — any behavioral drift in the
//! simulator, the noise model, or the sweep schedule shows up as a textual
//! diff of a committed fixture.

use crate::driver::{ConfigResult, RunRecord, TuningReport};
use serde_json::Value;

impl RunRecord {
    /// JSON object with one key per field.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "elapsed": self.elapsed,
            "internal_words": self.internal_words,
            "kernels_executed": self.kernels_executed,
            "kernels_skipped": self.kernels_skipped,
            "max_kernel_predicted": self.max_kernel_predicted,
            "max_kernel_time": self.max_kernel_time,
            "path": self.path.to_json(),
            "predicted": self.predicted,
        })
    }
}

impl ConfigResult {
    /// JSON object: name, `(full, tuned)` pairs, offline passes.
    pub fn to_json(&self) -> Value {
        let pairs: Vec<Value> = self
            .pairs
            .iter()
            .map(|(full, tuned)| serde_json::json!({ "full": full.to_json(), "tuned": tuned.to_json() }))
            .collect();
        let offline: Vec<Value> = self.offline.iter().map(RunRecord::to_json).collect();
        serde_json::json!({
            "name": self.name.as_str(),
            "offline": offline,
            "pairs": pairs,
        })
    }
}

impl TuningReport {
    /// Canonical JSON rendering of the whole sweep.
    ///
    /// When the sweep was observed ([`crate::TuningOptions::observe`]) the
    /// aggregated metrics registry rides along under `obs_metrics`;
    /// unobserved sweeps serialize exactly as before, which keeps the
    /// golden-report fixtures stable.
    pub fn to_json(&self) -> Value {
        let configs: Vec<Value> = self.configs.iter().map(ConfigResult::to_json).collect();
        let mut v = serde_json::json!({
            "configs": configs,
            "epsilon": self.epsilon,
            "policy": self.policy.name(),
        });
        if let Some(obs) = &self.obs {
            if let Value::Object(m) = &mut v {
                m.insert("obs_metrics".into(), obs.metrics.to_json());
            }
        }
        v
    }

    /// The canonical pretty-printed snapshot text (trailing newline included).
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_json()).expect("json writer is total");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::ExecutionPolicy;

    #[test]
    fn equal_reports_serialize_identically() {
        let rec = RunRecord { elapsed: 1.5, kernels_executed: 7, ..Default::default() };
        let report = TuningReport {
            policy: ExecutionPolicy::LocalPropagation,
            epsilon: 0.1,
            configs: vec![ConfigResult {
                name: "pr2pc2".into(),
                pairs: vec![(rec.clone(), rec.clone())],
                offline: vec![],
            }],
            obs: None,
        };
        assert_eq!(report.to_json_string(), report.clone().to_json_string());
        let text = report.to_json_string();
        assert!(text.contains("\"policy\": \"local propagation\""));
        assert!(text.contains("\"epsilon\": 0.1"));
        assert!(text.ends_with('\n'));
    }
}

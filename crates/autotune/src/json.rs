//! Canonical JSON rendering of tuning reports.
//!
//! Built on the deterministic writer in `serde_json` (sorted object keys,
//! shortest-round-trip float formatting): two bit-identical reports always
//! serialize to byte-identical text. That property is what the testkit's
//! golden-report snapshots diff against — any behavioral drift in the
//! simulator, the noise model, or the sweep schedule shows up as a textual
//! diff of a committed fixture.

use crate::driver::{ConfigResult, RunRecord, TuningReport};
use critter_core::{CritterError, PathMetrics, Result};
use serde_json::Value;

impl RunRecord {
    /// JSON object with one key per field.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "elapsed": self.elapsed,
            "internal_words": self.internal_words,
            "kernels_executed": self.kernels_executed,
            "kernels_skipped": self.kernels_skipped,
            "max_kernel_predicted": self.max_kernel_predicted,
            "max_kernel_time": self.max_kernel_time,
            "path": self.path.to_json(),
            "predicted": self.predicted,
        })
    }

    /// Restore a record bit-exactly from [`RunRecord::to_json`] output.
    ///
    /// Errors name the offending field by its full JSON path (e.g.
    /// ``bad key `elapsed`: expected a number, got string`` — and, reached
    /// through [`TuningReport::from_json`], prefixed like
    /// ``configs[2].pairs[0].full.elapsed``).
    pub fn from_json(v: &Value) -> Result<RunRecord> {
        Self::from_json_at(v, "")
    }

    /// [`RunRecord::from_json`] with every error path prefixed by `at`.
    pub(crate) fn from_json_at(v: &Value, at: &str) -> Result<RunRecord> {
        let bad = |key: &str| bad_key("run record", at, key, v.get(key));
        let f64_field = |key: &str| v.get(key).and_then(Value::as_f64).ok_or_else(|| bad(key));
        let u64_field = |key: &str| v.get(key).and_then(Value::as_u64).ok_or_else(|| bad(key));
        Ok(RunRecord {
            elapsed: f64_field("elapsed")?,
            predicted: f64_field("predicted")?,
            path: PathMetrics::from_json(v.get("path").ok_or_else(|| bad("path"))?)
                .map_err(|e| at_path("run record", at, "path", e))?,
            max_kernel_time: f64_field("max_kernel_time")?,
            max_kernel_predicted: f64_field("max_kernel_predicted")?,
            kernels_executed: u64_field("kernels_executed")?,
            kernels_skipped: u64_field("kernels_skipped")?,
            internal_words: u64_field("internal_words")?,
        })
    }
}

/// Join a path prefix and a key: `("configs[2]", "name")` →
/// `"configs[2].name"`, and `("", "name")` → `"name"`.
fn join_path(at: &str, key: &str) -> String {
    if at.is_empty() {
        key.to_string()
    } else {
        format!("{at}.{key}")
    }
}

/// A schema error naming the full JSON path of a missing or wrong-typed
/// key, including what was found there (`missing` or the JSON type).
fn bad_key(context: &str, at: &str, key: &str, found: Option<&Value>) -> CritterError {
    let what = match found {
        None => "missing",
        Some(Value::Null) => "got null",
        Some(Value::Bool(_)) => "got a bool",
        Some(Value::Number(_)) => "got the wrong kind of number",
        Some(Value::String(_)) => "got a string",
        Some(Value::Array(_)) => "got an array",
        Some(Value::Object(_)) => "got an object",
    };
    CritterError::schema(context, format!("bad key `{}`: {what}", join_path(at, key)))
}

/// Re-contextualize a nested decoder's error with the path it was reached
/// through, preserving its own detail text.
fn at_path(context: &str, at: &str, key: &str, e: CritterError) -> CritterError {
    let detail = match &e {
        CritterError::Schema { detail, .. } => detail.clone(),
        other => other.to_string(),
    };
    CritterError::schema(context, format!("at `{}`: {detail}", join_path(at, key)))
}

impl ConfigResult {
    /// JSON object: name, `(full, tuned)` pairs, offline passes. The
    /// `quarantined` key is emitted only when set, so fault-free reports
    /// (and the committed golden fixtures) keep their historical shape.
    pub fn to_json(&self) -> Value {
        let pairs: Vec<Value> = self
            .pairs
            .iter()
            .map(|(full, tuned)| serde_json::json!({ "full": full.to_json(), "tuned": tuned.to_json() }))
            .collect();
        let offline: Vec<Value> = self.offline.iter().map(RunRecord::to_json).collect();
        let mut v = serde_json::json!({
            "name": self.name.as_str(),
            "offline": offline,
            "pairs": pairs,
        });
        if self.quarantined {
            if let Value::Object(m) = &mut v {
                m.insert("quarantined".into(), Value::Bool(true));
            }
        }
        v
    }

    /// Restore a configuration result bit-exactly from
    /// [`ConfigResult::to_json`] output (an absent `quarantined` key reads
    /// back as `false`). Errors name the offending field by its full JSON
    /// path, down to the individual run-record field.
    pub fn from_json(v: &Value) -> Result<ConfigResult> {
        Self::from_json_at(v, "")
    }

    /// [`ConfigResult::from_json`] with every error path prefixed by `at`.
    pub(crate) fn from_json_at(v: &Value, at: &str) -> Result<ConfigResult> {
        let bad = |key: &str| bad_key("config result", at, key, v.get(key));
        let arr = |key: &str| v.get(key).and_then(Value::as_array).ok_or_else(|| bad(key));
        let name = v.get("name").and_then(Value::as_str).ok_or_else(|| bad("name"))?.to_string();
        let pairs = arr("pairs")?
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let slot = |side: &str| join_path(at, &format!("pairs[{i}].{side}"));
                let full = RunRecord::from_json_at(
                    p.get("full").ok_or_else(|| {
                        bad_key("config result", at, &format!("pairs[{i}].full"), None)
                    })?,
                    &slot("full"),
                )?;
                let tuned = RunRecord::from_json_at(
                    p.get("tuned").ok_or_else(|| {
                        bad_key("config result", at, &format!("pairs[{i}].tuned"), None)
                    })?,
                    &slot("tuned"),
                )?;
                Ok((full, tuned))
            })
            .collect::<Result<Vec<_>>>()?;
        let offline = arr("offline")?
            .iter()
            .enumerate()
            .map(|(i, r)| RunRecord::from_json_at(r, &join_path(at, &format!("offline[{i}]"))))
            .collect::<Result<Vec<_>>>()?;
        let quarantined = match v.get("quarantined") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(bad("quarantined")),
        };
        Ok(ConfigResult { name, pairs, offline, quarantined })
    }
}

impl TuningReport {
    /// Canonical JSON rendering of the whole sweep.
    ///
    /// When the sweep was observed ([`crate::TuningOptions::observe`]) the
    /// aggregated metrics registry rides along under `obs_metrics`;
    /// unobserved sweeps serialize exactly as before, which keeps the
    /// golden-report fixtures stable.
    pub fn to_json(&self) -> Value {
        let configs: Vec<Value> = self.configs.iter().map(ConfigResult::to_json).collect();
        let mut v = serde_json::json!({
            "configs": configs,
            "epsilon": self.epsilon,
            "policy": self.policy.name(),
        });
        if let Some(obs) = &self.obs {
            if let Value::Object(m) = &mut v {
                m.insert("obs_metrics".into(), obs.metrics.to_json());
            }
        }
        v
    }

    /// The canonical pretty-printed snapshot text (trailing newline included).
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_json()).expect("json writer is total");
        s.push('\n');
        s
    }

    /// Restore the scalar surface of a report from [`TuningReport::to_json`]
    /// output: policy, ε, and every configuration result round-trip
    /// bit-exactly. The obs timeline is *not* reconstructed (`to_json`
    /// serializes only its aggregated metrics), so `obs` reads back as
    /// `None`.
    ///
    /// Errors name the failing field by its full JSON path — a truncated or
    /// hand-edited document fails with e.g.
    /// ``bad key `configs[2].pairs[0].full.elapsed`: got a string`` rather
    /// than a bare field name.
    pub fn from_json(v: &Value) -> Result<TuningReport> {
        let bad = |key: &str| bad_key("tuning report", "", key, v.get(key));
        let policy_name = v.get("policy").and_then(Value::as_str).ok_or_else(|| bad("policy"))?;
        let policy = critter_core::ExecutionPolicy::from_name(policy_name).ok_or_else(|| {
            CritterError::schema("tuning report", format!("unknown policy `{policy_name}`"))
        })?;
        let epsilon = v.get("epsilon").and_then(Value::as_f64).ok_or_else(|| bad("epsilon"))?;
        let configs = v
            .get("configs")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("configs"))?
            .iter()
            .enumerate()
            .map(|(i, c)| ConfigResult::from_json_at(c, &format!("configs[{i}]")))
            .collect::<Result<Vec<_>>>()?;
        Ok(TuningReport { policy, epsilon, configs, obs: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::ExecutionPolicy;

    #[test]
    fn equal_reports_serialize_identically() {
        let rec = RunRecord { elapsed: 1.5, kernels_executed: 7, ..Default::default() };
        let report = TuningReport {
            policy: ExecutionPolicy::LocalPropagation,
            epsilon: 0.1,
            configs: vec![ConfigResult {
                name: "pr2pc2".into(),
                pairs: vec![(rec.clone(), rec.clone())],
                offline: vec![],
                quarantined: false,
            }],
            obs: None,
        };
        assert_eq!(report.to_json_string(), report.clone().to_json_string());
        let text = report.to_json_string();
        assert!(text.contains("\"policy\": \"local propagation\""));
        assert!(text.contains("\"epsilon\": 0.1"));
        assert!(!text.contains("\"quarantined\""));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn report_round_trips_bit_exactly() {
        let rec = RunRecord {
            elapsed: 0.1 + 0.2, // no short decimal form
            predicted: 1.0 / 3.0,
            kernels_executed: 11,
            kernels_skipped: 5,
            internal_words: 96,
            ..Default::default()
        };
        let report = TuningReport {
            policy: ExecutionPolicy::APrioriPropagation,
            epsilon: 0.05,
            configs: vec![
                ConfigResult {
                    name: "pr2pc2".into(),
                    pairs: vec![(rec.clone(), rec.clone())],
                    offline: vec![rec.clone()],
                    quarantined: false,
                },
                ConfigResult { name: "pr4pc1".into(), quarantined: true, ..Default::default() },
            ],
            obs: None,
        };
        let back = TuningReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json_string(), report.to_json_string());
        assert!(report.to_json_string().contains("\"quarantined\": true"));
        assert!(TuningReport::from_json(&serde_json::json!({"policy": "nope"})).is_err());
    }

    fn sample_report() -> TuningReport {
        let rec = RunRecord { elapsed: 1.5, kernels_executed: 7, ..Default::default() };
        TuningReport {
            policy: ExecutionPolicy::LocalPropagation,
            epsilon: 0.1,
            configs: vec![
                ConfigResult {
                    name: "pr2pc2".into(),
                    pairs: vec![(rec.clone(), rec.clone())],
                    offline: vec![rec.clone()],
                    quarantined: false,
                },
                ConfigResult {
                    name: "pr4pc1".into(),
                    pairs: vec![(rec.clone(), rec.clone()), (rec.clone(), rec)],
                    offline: vec![],
                    quarantined: false,
                },
            ],
            obs: None,
        }
    }

    /// Walk `path` (the same `key[i].key` syntax the errors print) to a
    /// mutable node, so the tests corrupt exactly the spot they expect the
    /// error to name.
    fn nav<'a>(v: &'a mut Value, path: &str) -> &'a mut Value {
        let mut cur = v;
        for part in path.split('.') {
            let (key, idx) = match part.split_once('[') {
                Some((k, rest)) => (k, Some(rest.trim_end_matches(']').parse::<usize>().unwrap())),
                None => (part, None),
            };
            cur = cur.get_mut(key).expect("nav key");
            if let Some(i) = idx {
                cur = &mut cur.as_array_mut().expect("nav array")[i];
            }
        }
        cur
    }

    #[test]
    fn truncated_document_errors_name_the_json_path() {
        // Drop a deep field: the error must spell out the full path to it.
        let mut v = sample_report().to_json();
        nav(&mut v, "configs[1].pairs[1].tuned").as_object_mut().unwrap().remove("elapsed");
        let err = TuningReport::from_json(&v).unwrap_err().to_string();
        assert!(
            err.contains("`configs[1].pairs[1].tuned.elapsed`") && err.contains("missing"),
            "unhelpful error: {err}"
        );

        // Truncate a whole pair slot.
        let mut v = sample_report().to_json();
        nav(&mut v, "configs[0].pairs[0]").as_object_mut().unwrap().remove("full");
        let err = TuningReport::from_json(&v).unwrap_err().to_string();
        assert!(err.contains("`configs[0].pairs[0].full`"), "unhelpful error: {err}");

        // Top-level truncation still reads plainly.
        let err = TuningReport::from_json(&serde_json::json!({"policy": "local propagation"}))
            .unwrap_err()
            .to_string();
        assert!(err.contains("`epsilon`") && err.contains("missing"), "unhelpful error: {err}");
    }

    #[test]
    fn wrong_typed_document_errors_say_what_was_found() {
        // A string where a number belongs, deep in an offline record.
        let mut v = sample_report().to_json();
        *nav(&mut v, "configs[0].offline[0].kernels_executed") = serde_json::json!("seven");
        let err = TuningReport::from_json(&v).unwrap_err().to_string();
        assert!(
            err.contains("`configs[0].offline[0].kernels_executed`")
                && err.contains("got a string"),
            "unhelpful error: {err}"
        );

        // A negative count is the wrong *kind* of number for a u64 field.
        let mut v = sample_report().to_json();
        *nav(&mut v, "configs[1].pairs[0].full.kernels_skipped") = serde_json::json!(-3);
        let err = TuningReport::from_json(&v).unwrap_err().to_string();
        assert!(
            err.contains("`configs[1].pairs[0].full.kernels_skipped`")
                && err.contains("wrong kind of number"),
            "unhelpful error: {err}"
        );

        // An object where the configs array belongs.
        let mut v = sample_report().to_json();
        *nav(&mut v, "configs") = serde_json::json!({});
        let err = TuningReport::from_json(&v).unwrap_err().to_string();
        assert!(
            err.contains("`configs`") && err.contains("got an object"),
            "unhelpful error: {err}"
        );
    }
}

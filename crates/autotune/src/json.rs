//! Canonical JSON rendering of tuning reports.
//!
//! Built on the deterministic writer in `serde_json` (sorted object keys,
//! shortest-round-trip float formatting): two bit-identical reports always
//! serialize to byte-identical text. That property is what the testkit's
//! golden-report snapshots diff against — any behavioral drift in the
//! simulator, the noise model, or the sweep schedule shows up as a textual
//! diff of a committed fixture.

use crate::driver::{ConfigResult, RunRecord, TuningReport};
use critter_core::{CritterError, PathMetrics, Result};
use serde_json::Value;

impl RunRecord {
    /// JSON object with one key per field.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "elapsed": self.elapsed,
            "internal_words": self.internal_words,
            "kernels_executed": self.kernels_executed,
            "kernels_skipped": self.kernels_skipped,
            "max_kernel_predicted": self.max_kernel_predicted,
            "max_kernel_time": self.max_kernel_time,
            "path": self.path.to_json(),
            "predicted": self.predicted,
        })
    }

    /// Restore a record bit-exactly from [`RunRecord::to_json`] output.
    pub fn from_json(v: &Value) -> Result<RunRecord> {
        let bad = |key: &str| CritterError::schema("run record", format!("bad key `{key}`"));
        let f64_field = |key: &str| v.get(key).and_then(Value::as_f64).ok_or_else(|| bad(key));
        let u64_field = |key: &str| v.get(key).and_then(Value::as_u64).ok_or_else(|| bad(key));
        Ok(RunRecord {
            elapsed: f64_field("elapsed")?,
            predicted: f64_field("predicted")?,
            path: PathMetrics::from_json(v.get("path").ok_or_else(|| bad("path"))?)?,
            max_kernel_time: f64_field("max_kernel_time")?,
            max_kernel_predicted: f64_field("max_kernel_predicted")?,
            kernels_executed: u64_field("kernels_executed")?,
            kernels_skipped: u64_field("kernels_skipped")?,
            internal_words: u64_field("internal_words")?,
        })
    }
}

impl ConfigResult {
    /// JSON object: name, `(full, tuned)` pairs, offline passes. The
    /// `quarantined` key is emitted only when set, so fault-free reports
    /// (and the committed golden fixtures) keep their historical shape.
    pub fn to_json(&self) -> Value {
        let pairs: Vec<Value> = self
            .pairs
            .iter()
            .map(|(full, tuned)| serde_json::json!({ "full": full.to_json(), "tuned": tuned.to_json() }))
            .collect();
        let offline: Vec<Value> = self.offline.iter().map(RunRecord::to_json).collect();
        let mut v = serde_json::json!({
            "name": self.name.as_str(),
            "offline": offline,
            "pairs": pairs,
        });
        if self.quarantined {
            if let Value::Object(m) = &mut v {
                m.insert("quarantined".into(), Value::Bool(true));
            }
        }
        v
    }

    /// Restore a configuration result bit-exactly from
    /// [`ConfigResult::to_json`] output (an absent `quarantined` key reads
    /// back as `false`).
    pub fn from_json(v: &Value) -> Result<ConfigResult> {
        let bad = |key: &str| CritterError::schema("config result", format!("bad key `{key}`"));
        let arr = |key: &str| v.get(key).and_then(Value::as_array).ok_or_else(|| bad(key));
        let name = v.get("name").and_then(Value::as_str).ok_or_else(|| bad("name"))?.to_string();
        let pairs = arr("pairs")?
            .iter()
            .map(|p| {
                let full = RunRecord::from_json(p.get("full").ok_or_else(|| bad("pairs.full"))?)?;
                let tuned =
                    RunRecord::from_json(p.get("tuned").ok_or_else(|| bad("pairs.tuned"))?)?;
                Ok((full, tuned))
            })
            .collect::<Result<Vec<_>>>()?;
        let offline =
            arr("offline")?.iter().map(RunRecord::from_json).collect::<Result<Vec<_>>>()?;
        let quarantined = match v.get("quarantined") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(bad("quarantined")),
        };
        Ok(ConfigResult { name, pairs, offline, quarantined })
    }
}

impl TuningReport {
    /// Canonical JSON rendering of the whole sweep.
    ///
    /// When the sweep was observed ([`crate::TuningOptions::observe`]) the
    /// aggregated metrics registry rides along under `obs_metrics`;
    /// unobserved sweeps serialize exactly as before, which keeps the
    /// golden-report fixtures stable.
    pub fn to_json(&self) -> Value {
        let configs: Vec<Value> = self.configs.iter().map(ConfigResult::to_json).collect();
        let mut v = serde_json::json!({
            "configs": configs,
            "epsilon": self.epsilon,
            "policy": self.policy.name(),
        });
        if let Some(obs) = &self.obs {
            if let Value::Object(m) = &mut v {
                m.insert("obs_metrics".into(), obs.metrics.to_json());
            }
        }
        v
    }

    /// The canonical pretty-printed snapshot text (trailing newline included).
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_json()).expect("json writer is total");
        s.push('\n');
        s
    }

    /// Restore the scalar surface of a report from [`TuningReport::to_json`]
    /// output: policy, ε, and every configuration result round-trip
    /// bit-exactly. The obs timeline is *not* reconstructed (`to_json`
    /// serializes only its aggregated metrics), so `obs` reads back as
    /// `None`.
    pub fn from_json(v: &Value) -> Result<TuningReport> {
        let bad = |key: &str| CritterError::schema("tuning report", format!("bad key `{key}`"));
        let policy_name = v.get("policy").and_then(Value::as_str).ok_or_else(|| bad("policy"))?;
        let policy = critter_core::ExecutionPolicy::from_name(policy_name).ok_or_else(|| {
            CritterError::schema("tuning report", format!("unknown policy `{policy_name}`"))
        })?;
        let epsilon = v.get("epsilon").and_then(Value::as_f64).ok_or_else(|| bad("epsilon"))?;
        let configs = v
            .get("configs")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("configs"))?
            .iter()
            .map(ConfigResult::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(TuningReport { policy, epsilon, configs, obs: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_core::ExecutionPolicy;

    #[test]
    fn equal_reports_serialize_identically() {
        let rec = RunRecord { elapsed: 1.5, kernels_executed: 7, ..Default::default() };
        let report = TuningReport {
            policy: ExecutionPolicy::LocalPropagation,
            epsilon: 0.1,
            configs: vec![ConfigResult {
                name: "pr2pc2".into(),
                pairs: vec![(rec.clone(), rec.clone())],
                offline: vec![],
                quarantined: false,
            }],
            obs: None,
        };
        assert_eq!(report.to_json_string(), report.clone().to_json_string());
        let text = report.to_json_string();
        assert!(text.contains("\"policy\": \"local propagation\""));
        assert!(text.contains("\"epsilon\": 0.1"));
        assert!(!text.contains("\"quarantined\""));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn report_round_trips_bit_exactly() {
        let rec = RunRecord {
            elapsed: 0.1 + 0.2, // no short decimal form
            predicted: 1.0 / 3.0,
            kernels_executed: 11,
            kernels_skipped: 5,
            internal_words: 96,
            ..Default::default()
        };
        let report = TuningReport {
            policy: ExecutionPolicy::APrioriPropagation,
            epsilon: 0.05,
            configs: vec![
                ConfigResult {
                    name: "pr2pc2".into(),
                    pairs: vec![(rec.clone(), rec.clone())],
                    offline: vec![rec.clone()],
                    quarantined: false,
                },
                ConfigResult { name: "pr4pc1".into(), quarantined: true, ..Default::default() },
            ],
            obs: None,
        };
        let back = TuningReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json_string(), report.to_json_string());
        assert!(report.to_json_string().contains("\"quarantined\": true"));
        assert!(TuningReport::from_json(&serde_json::json!({"policy": "nope"})).is_err());
    }
}

//! Evaluation metrics over a [`TuningReport`] (§VI-A).

use critter_stats::summary::{mean, relative_error};

use crate::driver::TuningReport;

impl TuningReport {
    /// Total simulated time the selective tuning sweep paid (selective runs
    /// plus any offline passes) — the x-axis quantity of Figs. 4a/4b/5a/5b.
    pub fn tuning_time(&self) -> f64 {
        self.configs
            .iter()
            .map(|c| {
                let tuned: f64 = c.pairs.iter().map(|(_, t)| t.elapsed).sum();
                let offline: f64 = c.offline.iter().map(|r| r.elapsed).sum();
                tuned + offline
            })
            .sum()
    }

    /// Total simulated time of the full-execution sweep (the red line).
    pub fn full_time(&self) -> f64 {
        self.configs.iter().map(|c| c.pairs.iter().map(|(f, _)| f.elapsed).sum::<f64>()).sum()
    }

    /// Autotuning speedup: full sweep time / selective sweep time.
    pub fn speedup(&self) -> f64 {
        self.full_time() / self.tuning_time().max(f64::MIN_POSITIVE)
    }

    /// Per-configuration relative execution-time prediction error, averaged
    /// over repetitions: `|predicted − full| / full` against the reference
    /// full execution run directly prior (Figs. 4g/4h/5g/5h).
    pub fn per_config_error(&self) -> Vec<f64> {
        self.configs
            .iter()
            .map(|c| {
                mean(
                    &c.pairs
                        .iter()
                        .map(|(f, t)| relative_error(t.predicted, f.elapsed))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// Mean relative prediction error across configurations
    /// (Figs. 4e/4f/5e/5f).
    pub fn mean_error(&self) -> f64 {
        mean(&self.per_config_error())
    }

    /// Per-configuration relative error of the *critical-path computation
    /// kernel time* prediction (Figs. 4d/5d).
    pub fn per_config_comp_error(&self) -> Vec<f64> {
        self.configs
            .iter()
            .map(|c| {
                mean(
                    &c.pairs
                        .iter()
                        .map(|(f, t)| relative_error(t.path.comp_time, f.path.comp_time))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// Mean critical-path computation-time prediction error.
    pub fn mean_comp_error(&self) -> f64 {
        mean(&self.per_config_comp_error())
    }

    /// Total max-over-ranks *executed* kernel time of the selective sweep —
    /// Fig. 4c/5c's quantity (profiling overheads excluded by construction).
    pub fn kernel_time(&self) -> f64 {
        self.configs
            .iter()
            .map(|c| c.pairs.iter().map(|(_, t)| t.max_kernel_time).sum::<f64>())
            .sum()
    }

    /// The same quantity for the full-execution sweep.
    pub fn full_kernel_time(&self) -> f64 {
        self.configs
            .iter()
            .map(|c| c.pairs.iter().map(|(f, _)| f.max_kernel_time).sum::<f64>())
            .sum()
    }

    /// Kernel-time speedup (Fig. 4c/5c).
    pub fn kernel_time_speedup(&self) -> f64 {
        self.full_kernel_time() / self.kernel_time().max(f64::MIN_POSITIVE)
    }

    /// Mean reference full-execution time of each configuration (its "true"
    /// performance).
    pub fn true_times(&self) -> Vec<f64> {
        self.configs
            .iter()
            .map(|c| mean(&c.pairs.iter().map(|(f, _)| f.elapsed).collect::<Vec<_>>()))
            .collect()
    }

    /// Mean predicted time of each configuration.
    pub fn predicted_times(&self) -> Vec<f64> {
        self.configs
            .iter()
            .map(|c| mean(&c.pairs.iter().map(|(_, t)| t.predicted).collect::<Vec<_>>()))
            .collect()
    }

    /// Index of the configuration the tuner selects (minimum prediction).
    ///
    /// Quarantined configurations are excluded: they have no completed
    /// repetitions, so their "mean" would read as 0.0 and spuriously win
    /// the argmin.
    pub fn selected(&self) -> usize {
        argmin_live(&self.predicted_times(), &self.configs)
    }

    /// Index of the truly optimal configuration (minimum reference time,
    /// quarantined configurations excluded).
    pub fn optimal(&self) -> usize {
        argmin_live(&self.true_times(), &self.configs)
    }

    /// Selection quality: optimal true time / selected configuration's true
    /// time (1.0 = the tuner picked the optimum; the paper reports ≥ 0.99).
    pub fn selection_quality(&self) -> f64 {
        let t = self.true_times();
        t[self.optimal()] / t[self.selected()].max(f64::MIN_POSITIVE)
    }

    /// Fraction of kernel invocations skipped across the sweep.
    pub fn skip_fraction(&self) -> f64 {
        let (mut ex, mut sk) = (0u64, 0u64);
        for c in &self.configs {
            for (_, t) in &c.pairs {
                ex += t.kernels_executed;
                sk += t.kernels_skipped;
            }
        }
        if ex + sk == 0 {
            0.0
        } else {
            sk as f64 / (ex + sk) as f64
        }
    }
}

/// Argmin over configurations that actually completed (not quarantined).
fn argmin_live(xs: &[f64], configs: &[crate::driver::ConfigResult]) -> usize {
    xs.iter()
        .enumerate()
        .filter(|&(i, _)| !configs[i].quarantined)
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in times"))
        .map(|(i, _)| i)
        .expect("every configuration was quarantined")
}

#[cfg(test)]
mod tests {
    use crate::driver::{ConfigResult, RunRecord, TuningReport};
    use critter_core::ExecutionPolicy;

    fn record(elapsed: f64, predicted: f64) -> RunRecord {
        RunRecord { elapsed, predicted, max_kernel_time: elapsed * 0.8, ..Default::default() }
    }

    fn report() -> TuningReport {
        TuningReport {
            policy: ExecutionPolicy::OnlinePropagation,
            epsilon: 0.25,
            configs: vec![
                ConfigResult {
                    name: "a".into(),
                    pairs: vec![(record(10.0, 0.0), record(4.0, 11.0))],
                    offline: vec![],
                    quarantined: false,
                },
                ConfigResult {
                    name: "b".into(),
                    pairs: vec![(record(8.0, 0.0), record(2.0, 7.6))],
                    offline: vec![record(8.0, 0.0)],
                    quarantined: false,
                },
            ],
            obs: None,
        }
    }

    #[test]
    fn timing_metrics() {
        let r = report();
        assert_eq!(r.full_time(), 18.0);
        assert_eq!(r.tuning_time(), 4.0 + 2.0 + 8.0);
        assert!((r.speedup() - 18.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn error_metrics() {
        let r = report();
        let e = r.per_config_error();
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert!((e[1] - 0.05).abs() < 1e-12);
        assert!((r.mean_error() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn selection_metrics() {
        let r = report();
        assert_eq!(r.optimal(), 1); // true times 10 vs 8
        assert_eq!(r.selected(), 1); // predictions 11 vs 7.6
        assert_eq!(r.selection_quality(), 1.0);
    }

    #[test]
    fn quarantined_configs_never_win_selection() {
        let mut r = report();
        // An abandoned configuration has no pairs; its mean predicted/true
        // time reads as 0.0, which must not win the argmin.
        r.configs.push(ConfigResult {
            name: "dead".into(),
            quarantined: true,
            ..Default::default()
        });
        assert_eq!(r.optimal(), 1);
        assert_eq!(r.selected(), 1);
        assert_eq!(r.selection_quality(), 1.0);
    }

    #[test]
    fn kernel_time_speedup() {
        let r = report();
        assert!((r.full_kernel_time() - 14.4).abs() < 1e-12);
        assert!((r.kernel_time() - 4.8).abs() < 1e-12);
        assert!((r.kernel_time_speedup() - 3.0).abs() < 1e-12);
    }
}

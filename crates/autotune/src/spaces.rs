//! The paper's §V-C configuration spaces, with the exact index formulas
//! (`v % 5`, `⌈(v+1)/5⌉`, `⌊v/21⌋`, …) preserved and the base sizes scaled to
//! the simulator (see DESIGN.md's substitution table).

use std::sync::Arc;

use critter_algs::candmc_qr::CandmcQr;
use critter_algs::capital::CapitalCholesky;
use critter_algs::slate_chol::SlateCholesky;
use critter_algs::slate_qr::SlateQr;
use critter_algs::summa25d::Summa25D;
use critter_algs::Workload;

/// The four tuning case studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuningSpace {
    /// Capital recursive 3D Cholesky: 15 configurations
    /// (block size × base-case strategy).
    CapitalCholesky,
    /// SLATE tile Cholesky: 20 configurations (tile size × lookahead).
    SlateCholesky,
    /// CANDMC pipelined 2D QR: 15 configurations (block size × grid shape).
    CandmcQr,
    /// SLATE tile QR: 63 configurations (inner width × panel width × grid).
    SlateQr,
    /// 2.5D SUMMA (§VIII extensibility demo): 12 configurations
    /// (replication depth × inner blocking).
    Summa25D,
}

impl TuningSpace {
    /// The paper's four spaces, in its order, plus the 2.5D extension.
    pub const ALL: [TuningSpace; 5] = [
        TuningSpace::CapitalCholesky,
        TuningSpace::SlateCholesky,
        TuningSpace::CandmcQr,
        TuningSpace::SlateQr,
        TuningSpace::Summa25D,
    ];

    /// The paper's four case studies only (the figure harness sweeps these).
    pub const PAPER: [TuningSpace; 4] = [
        TuningSpace::CapitalCholesky,
        TuningSpace::SlateCholesky,
        TuningSpace::CandmcQr,
        TuningSpace::SlateQr,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TuningSpace::CapitalCholesky => "capital-cholesky",
            TuningSpace::SlateCholesky => "slate-cholesky",
            TuningSpace::CandmcQr => "candmc-qr",
            TuningSpace::SlateQr => "slate-qr",
            TuningSpace::Summa25D => "summa25d",
        }
    }

    /// Whether the paper resets kernel statistics between configurations of
    /// this space (§VI-A: yes for SLATE and CANDMC, no for Capital).
    pub fn resets_between_configs(self) -> bool {
        !matches!(self, TuningSpace::CapitalCholesky)
    }

    /// The scaled benchmark space (used by the figure-regeneration harness).
    pub fn bench(self) -> Vec<Arc<dyn Workload>> {
        match self {
            // Paper: n = 16384, 512 cores, b = 128·2^{v%5}, strategy ⌈(v+1)/5⌉.
            // Scaled: n = 512, p = 64 (4×4×4), b = 16·2^{v%5}.
            TuningSpace::CapitalCholesky => (0..15)
                .map(|v| {
                    Arc::new(CapitalCholesky {
                        n: 512,
                        block: 16 << (v % 5),
                        strategy: (v / 5 + 1) as u8,
                        ranks: 64,
                    }) as Arc<dyn Workload>
                })
                .collect(),
            // Paper: n = 65536, 1024 cores, depth v%2, tile 256+64·⌊v/2⌋.
            // Scaled: n = 384, p = 16 (4×4), tile 16+8·⌊v/2⌋.
            TuningSpace::SlateCholesky => (0..20)
                .map(|v| {
                    Arc::new(SlateCholesky {
                        n: 384,
                        tile: 16 + 8 * (v / 2),
                        lookahead: v % 2,
                        pr: 4,
                        pc: 4,
                    }) as Arc<dyn Workload>
                })
                .collect(),
            // Paper: 131072×8192, 4096 cores, b = 8·2^{v%5},
            // grid 64·2^{⌊v/5⌋} × 64/2^{⌊v/5⌋}.
            // Scaled: 512×128, p = 16, b = 2·2^{v%5} (clamped to divisibility),
            // grid 4·2^{⌊v/5⌋} × 4/2^{⌊v/5⌋}.
            TuningSpace::CandmcQr => (0..15)
                .map(|v| {
                    let pr = 4 << (v / 5);
                    let pc = 16 / pr;
                    let (m, n) = (512, 128);
                    let mut b = 2 << (v % 5);
                    while b > 1 && (m % (b * pr) != 0 || n % (b * pc) != 0) {
                        b /= 2;
                    }
                    Arc::new(CandmcQr { m, n, block: b, pr, pc }) as Arc<dyn Workload>
                })
                .collect(),
            // Paper: 65536×4096, 256 cores, w = 8·2^{v%3},
            // panel 256+64·(⌊v/3⌋%7), grid 64/2^{⌊v/21⌋} × 4·2^{⌊v/21⌋}.
            // Scaled: 512×64, p = 16, w = 2·2^{v%3}, panel 8+4·(⌊v/3⌋%7),
            // grid 4/2^{⌊v/21⌋} × 4·2^{⌊v/21⌋}.
            TuningSpace::SlateQr => (0..63)
                .map(|v| {
                    let nb = 8 + 4 * ((v / 3) % 7);
                    let w = (2 << (v % 3)).min(nb);
                    let pr = (4 / (1 << (v / 21))).max(1);
                    let pc = 16 / pr;
                    Arc::new(SlateQr { m: 512, n: 64, nb, inner: w, pr, pc }) as Arc<dyn Workload>
                })
                .collect(),
            // §VIII extension: p = 64 = r²·c for c ∈ {1, 4, 16},
            // inner blocking 8·2^{v%4}.
            TuningSpace::Summa25D => (0..12)
                .map(|v| {
                    Arc::new(Summa25D {
                        n: 256,
                        c: 1 << (2 * (v / 4)),
                        ranks: 64,
                        inner: 8 << (v % 4),
                    }) as Arc<dyn Workload>
                })
                .collect(),
        }
    }

    /// A tiny smoke-test space (a few configurations, ≤ 8 ranks) for unit and
    /// integration tests.
    pub fn smoke(self) -> Vec<Arc<dyn Workload>> {
        match self {
            TuningSpace::CapitalCholesky => (0..4)
                .map(|v| {
                    Arc::new(CapitalCholesky {
                        n: 32,
                        block: 4 << (v % 2),
                        strategy: (v / 2 + 1) as u8,
                        ranks: 8,
                    }) as Arc<dyn Workload>
                })
                .collect(),
            TuningSpace::SlateCholesky => (0..4)
                .map(|v| {
                    Arc::new(SlateCholesky {
                        n: 64,
                        tile: 16 + 8 * (v / 2),
                        lookahead: v % 2,
                        pr: 2,
                        pc: 2,
                    }) as Arc<dyn Workload>
                })
                .collect(),
            TuningSpace::CandmcQr => (0..4)
                .map(|v| {
                    Arc::new(CandmcQr {
                        m: 64,
                        n: 16,
                        block: 4 << (v % 2),
                        pr: if v / 2 == 0 { 2 } else { 4 },
                        pc: if v / 2 == 0 { 2 } else { 1 },
                    }) as Arc<dyn Workload>
                })
                .collect(),
            TuningSpace::SlateQr => (0..4)
                .map(|v| {
                    Arc::new(SlateQr { m: 64, n: 16, nb: 8, inner: 2 << (v % 2), pr: 2, pc: 2 })
                        as Arc<dyn Workload>
                })
                .collect(),
            TuningSpace::Summa25D => (0..4)
                .map(|v| {
                    Arc::new(Summa25D {
                        n: 32,
                        c: if v / 2 == 0 { 1 } else { 4 },
                        ranks: 16,
                        inner: 4 << (v % 2),
                    }) as Arc<dyn Workload>
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_space_sizes_match_paper() {
        assert_eq!(TuningSpace::CapitalCholesky.bench().len(), 15);
        assert_eq!(TuningSpace::SlateCholesky.bench().len(), 20);
        assert_eq!(TuningSpace::CandmcQr.bench().len(), 15);
        assert_eq!(TuningSpace::SlateQr.bench().len(), 63);
        assert_eq!(TuningSpace::Summa25D.bench().len(), 12);
        assert_eq!(TuningSpace::PAPER.len(), 4);
    }

    #[test]
    fn bench_spaces_have_uniform_rank_counts() {
        for space in TuningSpace::ALL {
            let ws = space.bench();
            let r = ws[0].ranks();
            assert!(ws.iter().all(|w| w.ranks() == r), "{} mixes rank counts", space.name());
        }
    }

    #[test]
    fn names_are_distinct_within_each_space() {
        for space in TuningSpace::ALL {
            let ws = space.bench();
            let mut names: Vec<String> = ws.iter().map(|w| w.name()).collect();
            let n = names.len();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), n, "{} has duplicate configs", space.name());
        }
    }

    #[test]
    fn capital_strategies_cover_1_to_3() {
        let ws = TuningSpace::CapitalCholesky.bench();
        for (v, w) in ws.iter().enumerate() {
            let expect = v / 5 + 1;
            assert!(w.name().contains(&format!("strat={expect}")));
        }
    }

    #[test]
    fn reset_protocol_matches_paper() {
        assert!(!TuningSpace::CapitalCholesky.resets_between_configs());
        assert!(TuningSpace::SlateCholesky.resets_between_configs());
        assert!(TuningSpace::CandmcQr.resets_between_configs());
        assert!(TuningSpace::SlateQr.resets_between_configs());
        assert!(TuningSpace::Summa25D.resets_between_configs());
    }

    #[test]
    fn smoke_spaces_are_small() {
        for space in TuningSpace::ALL {
            let ws = space.smoke();
            assert!(ws.len() <= 4);
            assert!(ws.iter().all(|w| w.ranks() <= 16));
        }
    }
}

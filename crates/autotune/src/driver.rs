//! The tuning driver: runs configuration sweeps on the simulator.

use std::sync::Arc;

use critter_algs::Workload;
use critter_core::{CritterConfig, CritterEnv, ExecutionPolicy, KernelStore, PathMetrics};
use critter_machine::{MachineModel, MachineParams, NoiseParams};
use critter_sim::{run_simulation, SimConfig};
use parking_lot::Mutex;

/// Options of one tuning sweep.
#[derive(Debug, Clone)]
pub struct TuningOptions {
    /// Selective-execution policy under test.
    pub policy: ExecutionPolicy,
    /// Confidence tolerance ε.
    pub epsilon: f64,
    /// Reset kernel statistics before each configuration (§VI-A: true for
    /// SLATE and CANDMC workloads, false for Capital).
    pub reset_between_configs: bool,
    /// Repetitions of each configuration's (full, tuned) pair.
    pub reps: usize,
    /// Charge Critter's internal piggyback messages (overhead ablation).
    pub charge_internal: bool,
    /// Message-size granularity of communication signatures (the signature
    /// ablation: exact sizes vs log2 buckets).
    pub granularity: critter_core::signature::SizeGranularity,
    /// Enable the §VIII input-size extrapolation extension for the selective
    /// runs (per-routine-family line fits allow skipping under-sampled
    /// signatures).
    pub extrapolate: bool,
    /// Machine parameters.
    pub params: MachineParams,
    /// Noise model parameters.
    pub noise: NoiseParams,
    /// Base seed for the machine noise streams.
    pub seed: u64,
    /// Node-allocation id (§VI-A runs every experiment on two allocations).
    pub allocation: u64,
}

impl TuningOptions {
    /// Defaults: cluster noise on the KNL machine, one repetition.
    pub fn new(policy: ExecutionPolicy, epsilon: f64) -> Self {
        TuningOptions {
            policy,
            epsilon,
            reset_between_configs: true,
            reps: 1,
            charge_internal: true,
            granularity: critter_core::signature::SizeGranularity::Exact,
            extrapolate: false,
            params: MachineParams::stampede2_knl(),
            noise: NoiseParams::cluster(),
            seed: 0xC0FFEE,
            allocation: 0,
        }
    }

    /// Persist kernel models across configurations (Capital protocol).
    pub fn persist_models(mut self) -> Self {
        self.reset_between_configs = false;
        self
    }

    /// Use the small test machine parameters (unit tests).
    pub fn test_machine(mut self) -> Self {
        self.params = MachineParams::test_machine();
        self
    }
}

/// Aggregated outcome of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    /// Simulated makespan (the autotuner pays this).
    pub elapsed: f64,
    /// Critter's critical-path execution-time estimate.
    pub predicted: f64,
    /// Critical-path cost metrics.
    pub path: PathMetrics,
    /// Longest per-rank *executed* kernel time (computation + communication,
    /// excluding profiling overheads) — Fig. 4c / 5c's metric.
    pub max_kernel_time: f64,
    /// Longest per-rank *predicted* kernel time (executed + skipped means).
    pub max_kernel_predicted: f64,
    /// Kernels executed across all ranks.
    pub kernels_executed: u64,
    /// Kernels skipped across all ranks.
    pub kernels_skipped: u64,
    /// Total internal (profiling) words sent.
    pub internal_words: u64,
}

/// Per-configuration results: one `(full, tuned)` record pair per repetition,
/// plus the offline pass records for a-priori propagation.
#[derive(Debug, Clone, Default)]
pub struct ConfigResult {
    /// Configuration label.
    pub name: String,
    /// `(reference full run, selective run)` per repetition.
    pub pairs: Vec<(RunRecord, RunRecord)>,
    /// Offline full passes (a-priori propagation only), charged to tuning time.
    pub offline: Vec<RunRecord>,
}

/// A full tuning sweep's results (one policy, one ε, one allocation).
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// Policy under test.
    pub policy: ExecutionPolicy,
    /// Confidence tolerance.
    pub epsilon: f64,
    /// Per-configuration results, in sweep order.
    pub configs: Vec<ConfigResult>,
}

/// The exhaustive-search autotuner.
pub struct Autotuner {
    opts: TuningOptions,
}

impl Autotuner {
    /// Create a tuner with the given options.
    pub fn new(opts: TuningOptions) -> Self {
        Autotuner { opts }
    }

    /// The options in force.
    pub fn options(&self) -> &TuningOptions {
        &self.opts
    }

    /// Execute one simulated run of `w` under `cfg`, threading the per-rank
    /// kernel stores through the rank threads.
    fn run_once(
        &self,
        w: &dyn Workload,
        cfg: &CritterConfig,
        stores: &mut Vec<KernelStore>,
        run_index: u64,
        capture_apriori: bool,
    ) -> RunRecord {
        let ranks = w.ranks();
        assert_eq!(stores.len(), ranks, "store count mismatch");
        let machine = MachineModel::new(
            self.opts.params.clone(),
            self.opts.noise.clone(),
            ranks,
            self.opts.seed,
            self.opts.allocation,
        )
        .with_noise_seed(run_index.wrapping_add(1))
        .shared();
        let slots: Arc<Vec<Mutex<Option<KernelStore>>>> = Arc::new(
            stores.drain(..).map(|s| Mutex::new(Some(s))).collect(),
        );
        let slots_in = Arc::clone(&slots);
        let report = run_simulation(SimConfig::new(ranks), machine, move |ctx| {
            let store = slots_in[ctx.rank()].lock().take().expect("store present");
            let mut env = CritterEnv::new(ctx, cfg.clone(), store);
            w.run(&mut env, false);
            let (rep, mut store) = env.finish();
            if capture_apriori {
                store.capture_apriori();
            }
            *slots_in[ctx.rank()].lock() = Some(store);
            rep
        });
        *stores = slots.iter().map(|m| m.lock().take().expect("store returned")).collect();

        let mut rec = RunRecord { elapsed: report.elapsed(), ..Default::default() };
        for r in &report.outputs {
            rec.predicted = rec.predicted.max(r.predicted_time);
            rec.path = rec.path.max(r.path);
            rec.max_kernel_time =
                rec.max_kernel_time.max(r.local_comp_executed + r.local_comm_executed);
            rec.max_kernel_predicted = rec
                .max_kernel_predicted
                .max(r.local_comp_predicted + r.local_comm_predicted);
            rec.kernels_executed += r.kernels_executed;
            rec.kernels_skipped += r.kernels_skipped;
            rec.internal_words += r.internal_words;
        }
        rec
    }

    /// Tune over `workloads` (one sweep): for each configuration, a reference
    /// full execution directly prior to the selective one, repeated
    /// `reps` times; a-priori propagation additionally pays an offline pass.
    pub fn tune(&self, workloads: &[Arc<dyn Workload>]) -> TuningReport {
        assert!(!workloads.is_empty(), "empty configuration space");
        let ranks = workloads[0].ranks();
        assert!(
            workloads.iter().all(|w| w.ranks() == ranks),
            "all configurations of a sweep must use the same rank count"
        );
        let policy = self.opts.policy;
        let tuned_cfg = {
            let mut c = CritterConfig::new(policy, self.opts.epsilon);
            c.charge_internal = self.opts.charge_internal;
            c.granularity = self.opts.granularity;
            if self.opts.extrapolate {
                c = c.with_extrapolation();
            }
            c
        };
        let full_cfg = {
            let mut c = CritterConfig::full();
            c.charge_internal = self.opts.charge_internal;
            c.granularity = self.opts.granularity;
            c
        };

        let mut stores: Vec<KernelStore> = (0..ranks).map(|_| KernelStore::new()).collect();
        let mut run_index: u64 = self.opts.allocation.wrapping_mul(0x1000_0000);
        let mut configs = Vec::with_capacity(workloads.len());
        for w in workloads {
            let mut result = ConfigResult { name: w.name(), ..Default::default() };
            // Per-configuration statistics protocol.
            let keep = !self.opts.reset_between_configs;
            for s in stores.iter_mut() {
                s.start_config(keep);
            }
            let entry_state = stores.clone();
            for rep in 0..self.opts.reps.max(1) {
                if rep > 0 {
                    stores = entry_state.clone();
                }
                // Reference full execution (fresh measurement stores so the
                // reference is unperturbed; ours must not pollute the model).
                let mut ref_stores: Vec<KernelStore> =
                    (0..ranks).map(|_| KernelStore::new()).collect();
                let full = self.run_once(w.as_ref(), &full_cfg, &mut ref_stores, run_index, false);
                run_index += 1;
                // A-priori propagation: offline iteration on the tuning stores
                // to capture critical-path counts.
                if policy.needs_offline_pass() {
                    let offline =
                        self.run_once(w.as_ref(), &full_cfg, &mut stores, run_index, true);
                    run_index += 1;
                    result.offline.push(offline);
                }
                // The selectively-executed tuning run.
                let tuned = self.run_once(w.as_ref(), &tuned_cfg, &mut stores, run_index, false);
                run_index += 1;
                result.pairs.push((full, tuned));
            }
            configs.push(result);
        }
        TuningReport { policy, epsilon: self.opts.epsilon, configs }
    }
}

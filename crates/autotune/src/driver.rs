//! The tuning driver: runs configuration sweeps on the simulator.
//!
//! ## Sweep schedule
//!
//! One sweep interleaves two kinds of simulated runs with very different
//! dependency structure:
//!
//! * **Reference full executions** measure ground truth. Each uses fresh
//!   [`KernelStore`]s and touches no shared state, so the set of
//!   `(configuration, repetition)` reference runs is embarrassingly
//!   parallel.
//! * **Selective runs** (and the offline passes of a-priori propagation)
//!   thread the tuning stores from one run to the next — kernel models
//!   accumulated on configuration `i` decide what configuration `i+1` may
//!   skip. This chain is inherently sequential.
//!
//! [`Autotuner::tune`] exploits exactly that split: with
//! [`TuningOptions::workers`] > 1 the reference runs are dispatched to a
//! bounded worker set and pipelined against the sequential chain, which the
//! calling thread walks concurrently.
//!
//! ## Determinism
//!
//! Every simulated run draws its noise from a stream keyed by `run_index`.
//! Indexes are a pure function of the run's identity —
//! `allocation · 2²⁸ + (config · reps + rep) · 3 + kind` with kind
//! 0 = reference, 1 = offline, 2 = selective — never of dispatch order, so
//! a parallel sweep produces a [`TuningReport`] bit-identical to the serial
//! one (asserted by `tests/parallel_determinism.rs`).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use critter_algs::Workload;
use critter_core::{CritterConfig, CritterEnv, ExecutionPolicy, KernelStore, PathMetrics};
use critter_machine::{MachineModel, MachineParams, NoiseParams};
use critter_obs::{Event, EventKind, ObsReport, RankTrace};
use critter_session::SessionConfig;
use critter_sim::{run_simulation, BackendKind, FaultPlan, PerturbParams, SimConfig};
use parking_lot::Mutex;

/// Options of one tuning sweep.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TuningOptions {
    /// Selective-execution policy under test.
    pub policy: ExecutionPolicy,
    /// Confidence tolerance ε.
    pub epsilon: f64,
    /// Reset kernel statistics before each configuration (§VI-A: true for
    /// SLATE and CANDMC workloads, false for Capital).
    pub reset_between_configs: bool,
    /// Repetitions of each configuration's (full, tuned) pair.
    pub reps: usize,
    /// Charge Critter's internal piggyback messages (overhead ablation).
    pub charge_internal: bool,
    /// Message-size granularity of communication signatures (the signature
    /// ablation: exact sizes vs log2 buckets).
    pub granularity: critter_core::signature::SizeGranularity,
    /// Enable the §VIII input-size extrapolation extension for the selective
    /// runs (per-routine-family line fits allow skipping under-sampled
    /// signatures).
    pub extrapolate: bool,
    /// Machine parameters.
    pub params: MachineParams,
    /// Noise model parameters.
    pub noise: NoiseParams,
    /// Base seed for the machine noise streams.
    pub seed: u64,
    /// Node-allocation id (§VI-A runs every experiment on two allocations).
    pub allocation: u64,
    /// Worker threads for the reference full executions. `1` (the default)
    /// runs the sweep fully serially on the calling thread; larger values
    /// pipeline the independent reference runs against the sequential
    /// selective-run chain. The report is bit-identical either way.
    pub workers: usize,
    /// Test-only schedule perturbation: inject wall-clock yields/sleeps into
    /// every simulated run to shake the real thread interleaving. Virtual
    /// results must not move — the testkit fuzzer asserts the report stays
    /// bit-identical to an unperturbed sweep.
    pub perturb: Option<PerturbParams>,
    /// Record a structured observability trace of the sweep
    /// ([`TuningReport::obs`]): every simulated run's per-rank events and
    /// metrics, assembled into one globally ordered timeline. Deterministic
    /// regardless of `workers` (see `docs/OBSERVABILITY.md`).
    pub observe: bool,
    /// Deterministic fault injection: every simulated run draws from this
    /// plan (reseeded per run and per retry attempt). Armed plans route the
    /// sweep through the fault-tolerant session engine, which retries
    /// killed runs and quarantines configurations that exhaust
    /// [`TuningOptions::max_retries`].
    pub faults: Option<FaultPlan>,
    /// Retry budget per simulated run when faults are armed (a run is
    /// attempted `max_retries + 1` times before its configuration is
    /// quarantined).
    pub max_retries: usize,
    /// Communicator backend hosting every simulated run (`threads` default;
    /// `tasks` for rank counts beyond the thread-per-rank wall). Pure
    /// scheduling: reports are bit-identical across backends, so this is
    /// excluded from [`Autotuner::fingerprint`] and a checkpoint written on
    /// one backend resumes on another.
    pub backend: BackendKind,
    /// Matching-core shard count for every simulated run (`0` = auto).
    /// Scheduling only, excluded from the fingerprint like `backend`.
    pub shards: usize,
}

impl TuningOptions {
    /// Defaults: cluster noise on the KNL machine, one repetition.
    pub fn new(policy: ExecutionPolicy, epsilon: f64) -> Self {
        TuningOptions {
            policy,
            epsilon,
            reset_between_configs: true,
            reps: 1,
            charge_internal: true,
            granularity: critter_core::signature::SizeGranularity::Exact,
            extrapolate: false,
            params: MachineParams::stampede2_knl(),
            noise: NoiseParams::cluster(),
            seed: 0xC0FFEE,
            allocation: 0,
            workers: 1,
            perturb: None,
            observe: false,
            faults: None,
            max_retries: 2,
            backend: BackendKind::default(),
            shards: 0,
        }
    }

    /// Select the communicator backend for every simulated run.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Override the matching-core shard count (`0` = auto).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Persist kernel models across configurations when `persist` is true
    /// (the Capital protocol; the default resets between configurations).
    pub fn with_persist_models(mut self, persist: bool) -> Self {
        self.reset_between_configs = !persist;
        self
    }

    /// Use the small test machine parameters (unit tests).
    pub fn with_test_machine(mut self) -> Self {
        self.params = MachineParams::test_machine();
        self
    }

    /// Set the repetition count of each configuration's run group.
    pub fn with_reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Set the base seed of the machine noise streams.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the node-allocation id.
    pub fn with_allocation(mut self, allocation: u64) -> Self {
        self.allocation = allocation;
        self
    }

    /// Set whether Critter's internal piggyback messages are charged.
    pub fn with_internal_charging(mut self, charge: bool) -> Self {
        self.charge_internal = charge;
        self
    }

    /// Set the message-size granularity of communication signatures.
    pub fn with_granularity(
        mut self,
        granularity: critter_core::signature::SizeGranularity,
    ) -> Self {
        self.granularity = granularity;
        self
    }

    /// Arm deterministic fault injection for every simulated run.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Set the per-run retry budget used when faults are armed.
    pub fn with_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Set the reference-run worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Inject schedule perturbation into every simulated run (testing only).
    pub fn with_perturb(mut self, perturb: PerturbParams) -> Self {
        self.perturb = Some(perturb);
        self
    }

    /// Record the sweep's observability timeline ([`TuningReport::obs`]).
    pub fn with_observe(mut self) -> Self {
        self.observe = true;
        self
    }
}

/// Aggregated outcome of one simulated run.
///
/// `PartialEq` compares every field exactly (no tolerance): two schedules of
/// the same sweep must agree *bit for bit*.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// Simulated makespan (the autotuner pays this).
    pub elapsed: f64,
    /// Critter's critical-path execution-time estimate.
    pub predicted: f64,
    /// Critical-path cost metrics.
    pub path: PathMetrics,
    /// Longest per-rank *executed* kernel time (computation + communication,
    /// excluding profiling overheads) — Fig. 4c / 5c's metric.
    pub max_kernel_time: f64,
    /// Longest per-rank *predicted* kernel time (executed + skipped means).
    pub max_kernel_predicted: f64,
    /// Kernels executed across all ranks.
    pub kernels_executed: u64,
    /// Kernels skipped across all ranks.
    pub kernels_skipped: u64,
    /// Total internal (profiling) words sent.
    pub internal_words: u64,
}

/// Per-configuration results: one `(full, tuned)` record pair per repetition,
/// plus the offline pass records for a-priori propagation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigResult {
    /// Configuration label.
    pub name: String,
    /// `(reference full run, selective run)` per repetition.
    pub pairs: Vec<(RunRecord, RunRecord)>,
    /// Offline full passes (a-priori propagation only), charged to tuning time.
    pub offline: Vec<RunRecord>,
    /// The configuration exhausted its fault-retry budget and was abandoned:
    /// any remaining repetitions were skipped and the selection metrics
    /// exclude it. Only ever true in fault-injected sweeps.
    pub quarantined: bool,
}

/// A full tuning sweep's results (one policy, one ε, one allocation).
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Policy under test.
    pub policy: ExecutionPolicy,
    /// Confidence tolerance.
    pub epsilon: f64,
    /// Per-configuration results, in sweep order.
    pub configs: Vec<ConfigResult>,
    /// Observability timeline and metrics (only with
    /// [`TuningOptions::observe`]): one [`critter_obs::TimelineRun`] per
    /// simulated run, ordered by run index — a pure function of run identity,
    /// never of dispatch order.
    pub obs: Option<ObsReport>,
}

/// Live progress of a session sweep, reported to the tuner's progress hook
/// after every committed `(config, rep)` unit (see
/// [`Autotuner::with_progress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// Completed `(config, rep)` units, including units restored from a
    /// checkpoint on resume (a resumed sweep's first report starts from the
    /// restored count, not zero).
    pub units_done: usize,
    /// Total units the sweep will run: `configurations × reps`.
    pub units_total: usize,
}

/// The progress hook's verdict on whether the sweep may proceed past the
/// current committed-unit boundary (see [`Autotuner::with_progress`]).
///
/// Both stop verdicts are checkpoint-consistent: the boundary they fire at
/// is persisted (even off the configured checkpoint cadence) before
/// `tune_session` returns, so a later session resumes exactly there and
/// produces a byte-identical report. The difference is intent —
/// [`Cancel`](ProgressVerdict::Cancel) finalizes the job,
/// [`Preempt`](ProgressVerdict::Preempt) pauses it to yield resources and
/// expects the caller to re-run the same session later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressVerdict {
    /// Keep sweeping.
    Continue,
    /// Pause at this boundary: `tune_session` checkpoints and returns
    /// [`critter_core::CritterError::Preempted`].
    Preempt,
    /// Stop for good at this boundary: `tune_session` checkpoints and
    /// returns [`critter_core::CritterError::Cancelled`].
    Cancel,
}

/// Observer invoked by [`Autotuner::tune_session`] after every committed
/// unit. The returned [`ProgressVerdict`] decides whether the sweep
/// continues, pauses ([`CritterError::Preempted`]), or stops
/// ([`CritterError::Cancelled`]) at that unit boundary; either stop is
/// checkpointed first, so a later session resumes exactly where the hook
/// halted it. The hook is observational only — it runs after the unit's
/// results are finalized, so it can never perturb report bytes.
///
/// [`CritterError::Preempted`]: critter_core::CritterError::Preempted
/// [`CritterError::Cancelled`]: critter_core::CritterError::Cancelled
pub type ProgressHook = Arc<dyn Fn(SweepProgress) -> ProgressVerdict + Send + Sync>;

/// The exhaustive-search autotuner.
pub struct Autotuner {
    opts: TuningOptions,
    /// High-water mark of per-rank observability event counts seen so far,
    /// fed back as a buffer pre-size hint to later runs. A pure allocation
    /// hint: capacity never affects recorded contents, so reports stay
    /// bit-identical across schedules.
    obs_capacity: AtomicUsize,
    /// Per-unit progress observer for session sweeps (`None` = silent).
    progress: Option<ProgressHook>,
}

impl Autotuner {
    /// Create a tuner with the given options.
    pub fn new(opts: TuningOptions) -> Self {
        Autotuner { opts, obs_capacity: AtomicUsize::new(0), progress: None }
    }

    /// Install a progress hook: called with a [`SweepProgress`] snapshot
    /// after every `(config, rep)` unit [`Autotuner::tune_session`] commits
    /// (and once up front with the restored count when a checkpoint is
    /// resumed). The returned [`ProgressVerdict`] controls the sweep:
    /// [`Preempt`](ProgressVerdict::Preempt) pauses it at that boundary
    /// (`tune_session` checkpoints, then returns
    /// [`critter_core::CritterError::Preempted`]) and
    /// [`Cancel`](ProgressVerdict::Cancel) stops it for good (checkpoint,
    /// then [`critter_core::CritterError::Cancelled`]); a later session
    /// resumes from that exact boundary either way. Only session sweeps
    /// report progress; the parallel [`Autotuner::tune`] schedule does not.
    pub fn with_progress(
        mut self,
        hook: impl Fn(SweepProgress) -> ProgressVerdict + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Arc::new(hook));
        self
    }

    /// The options in force.
    pub fn options(&self) -> &TuningOptions {
        &self.opts
    }

    /// Execute one simulated run of `w` under `cfg`, threading the per-rank
    /// kernel stores through the rank threads. Returns the aggregated record
    /// plus, when `cfg.obs` is set, the per-rank observability traces.
    fn run_once(
        &self,
        w: &dyn Workload,
        cfg: &CritterConfig,
        stores: &mut Vec<KernelStore>,
        run_index: u64,
        capture_apriori: bool,
        faults: Option<FaultPlan>,
    ) -> (RunRecord, Option<Vec<RankTrace>>) {
        let ranks = w.ranks();
        assert_eq!(stores.len(), ranks, "store count mismatch");
        let cfg = &{
            let mut c = cfg.clone();
            c.obs_capacity = self.obs_capacity.load(Ordering::Relaxed);
            c
        };
        let machine = MachineModel::new(
            self.opts.params.clone(),
            self.opts.noise.clone(),
            ranks,
            self.opts.seed,
            self.opts.allocation,
        )
        .with_noise_seed(run_index.wrapping_add(1))
        .shared();
        let slots: Arc<Vec<Mutex<Option<KernelStore>>>> =
            Arc::new(stores.drain(..).map(|s| Mutex::new(Some(s))).collect());
        let slots_in = Arc::clone(&slots);
        let mut sim_config =
            SimConfig::new(ranks).with_backend(self.opts.backend).with_shards(self.opts.shards);
        if let Some(p) = self.opts.perturb {
            // Vary the perturbation stream per run so no two runs of a sweep
            // see the same yield/sleep pattern.
            sim_config = sim_config.with_perturb(PerturbParams { seed: p.seed ^ run_index, ..p });
        }
        if let Some(f) = faults {
            sim_config = sim_config.with_faults(f);
        }
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_simulation(sim_config, machine, move |ctx| {
                let store = slots_in[ctx.rank()].lock().take().expect("store present");
                let mut env = CritterEnv::new(ctx, cfg.clone(), store);
                w.run(&mut env, false);
                let (rep, mut store) = env.finish();
                if capture_apriori {
                    store.capture_apriori();
                }
                *slots_in[ctx.rank()].lock() = Some(store);
                rep
            })
        }));
        let report = match result {
            Ok(report) => report,
            Err(payload) => {
                // A panicked rank never returned its store, so its slot is
                // empty. Unwinding with `stores` drained would leave the
                // sweep state corrupt for callers that catch the panic —
                // and expecting on the empty slot would mask the real
                // failure behind "store returned". Recover the surviving
                // stores, backfill the dead rank's with a fresh one, and
                // propagate the original payload.
                *stores = slots
                    .iter()
                    .map(|m| m.lock().take().unwrap_or_else(KernelStore::new))
                    .collect();
                std::panic::resume_unwind(payload);
            }
        };
        *stores = slots.iter().map(|m| m.lock().take().expect("store returned")).collect();

        let mut rec = RunRecord { elapsed: report.elapsed(), ..Default::default() };
        for r in &report.outputs {
            rec.predicted = rec.predicted.max(r.predicted_time);
            rec.path = rec.path.max(r.path);
            rec.max_kernel_time =
                rec.max_kernel_time.max(r.local_comp_executed + r.local_comm_executed);
            rec.max_kernel_predicted =
                rec.max_kernel_predicted.max(r.local_comp_predicted + r.local_comm_predicted);
            rec.kernels_executed += r.kernels_executed;
            rec.kernels_skipped += r.kernels_skipped;
            rec.internal_words += r.internal_words;
        }
        let obs: Option<Vec<RankTrace>> = cfg
            .obs
            .then(|| report.outputs.into_iter().map(|r| r.obs.unwrap_or_default()).collect());
        if let Some(traces) = &obs {
            let peak = traces.iter().map(|t| t.events.len()).max().unwrap_or(0);
            self.obs_capacity.fetch_max(peak, Ordering::Relaxed);
        }
        (rec, obs)
    }

    /// Tune over `workloads` (one sweep): for each configuration, a reference
    /// full execution directly prior to the selective one, repeated
    /// `reps` times; a-priori propagation additionally pays an offline pass.
    ///
    /// Serial sweeps (`workers == 1`) and fault-injected sweeps route
    /// through the session engine ([`Autotuner::tune_session`]) with an
    /// ephemeral [`SessionConfig`]; the reports are bit-identical either way.
    pub fn tune(&self, workloads: &[Arc<dyn Workload>]) -> TuningReport {
        if self.opts.workers <= 1 || self.opts.faults.is_some() {
            return self
                .tune_session(workloads, &SessionConfig::new())
                .expect("ephemeral sessions cannot fail");
        }
        assert!(!workloads.is_empty(), "empty configuration space");
        let ranks = workloads[0].ranks();
        assert!(
            workloads.iter().all(|w| w.ranks() == ranks),
            "all configurations of a sweep must use the same rank count"
        );
        let policy = self.opts.policy;
        let tuned_cfg = {
            let mut c = CritterConfig::new(policy, self.opts.epsilon);
            c.charge_internal = self.opts.charge_internal;
            c.granularity = self.opts.granularity;
            c.obs = self.opts.observe;
            if self.opts.extrapolate {
                c = c.with_extrapolation();
            }
            c
        };
        let full_cfg = {
            let mut c = CritterConfig::full();
            c.charge_internal = self.opts.charge_internal;
            c.granularity = self.opts.granularity;
            c.obs = self.opts.observe;
            c
        };

        let reps = self.opts.reps.max(1);
        // Noise-stream index of a run, a pure function of the run's identity:
        // `(allocation, config index, rep, kind)` with kind 0 = reference
        // full, 1 = offline pass, 2 = selective. Dispatch order never enters,
        // so parallel and serial schedules draw identical noise.
        let base = self.opts.allocation.wrapping_mul(0x1000_0000);
        let run_index = |cfg_idx: usize, rep: usize, kind: usize| -> u64 {
            base.wrapping_add(((cfg_idx * reps + rep) * 3 + kind) as u64)
        };
        let reference = |cfg_idx: usize, rep: usize| -> (RunRecord, Option<Vec<RankTrace>>) {
            // Fresh measurement stores: the reference must be unperturbed,
            // and it must not pollute the tuning model.
            let mut ref_stores: Vec<KernelStore> = (0..ranks).map(|_| KernelStore::new()).collect();
            self.run_once(
                workloads[cfg_idx].as_ref(),
                &full_cfg,
                &mut ref_stores,
                run_index(cfg_idx, rep, 0),
                false,
                None,
            )
        };

        // The independent reference runs go to a bounded worker set pulling
        // from an atomic queue; the calling thread concurrently walks the
        // sequential selective-run chain (stores thread from config to
        // config). With workers == 1 the references run inline instead.
        let total_refs = workloads.len() * reps;
        let n_workers = self.opts.workers.max(1).min(total_refs).min(1 + total_refs / 2);
        let parallel = self.opts.workers > 1;
        type RefOutcome = (RunRecord, Option<Vec<RankTrace>>);
        let reference_slots: Vec<Mutex<Option<RefOutcome>>> =
            (0..total_refs).map(|_| Mutex::new(None)).collect();
        let next_ref = AtomicUsize::new(0);
        // Every observed run's traces, keyed by run index; sorted before
        // assembly so the timeline never reflects dispatch order.
        let mut obs_runs: Vec<(u64, String, Vec<RankTrace>)> = Vec::new();

        let mut configs = std::thread::scope(|scope| {
            if parallel {
                for _ in 0..n_workers {
                    scope.spawn(|| loop {
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= total_refs {
                            break;
                        }
                        let rec = reference(i / reps, i % reps);
                        *reference_slots[i].lock() = Some(rec);
                    });
                }
            }

            let mut stores: Vec<KernelStore> = (0..ranks).map(|_| KernelStore::new()).collect();
            let mut configs = Vec::with_capacity(workloads.len());
            for (cfg_idx, w) in workloads.iter().enumerate() {
                let mut result = ConfigResult { name: w.name(), ..Default::default() };
                // Per-configuration statistics protocol.
                let keep = !self.opts.reset_between_configs;
                for s in stores.iter_mut() {
                    s.start_config(keep);
                }
                let entry_state = stores.clone();
                for rep in 0..reps {
                    if rep > 0 {
                        stores = entry_state.clone();
                    }
                    let full = if parallel {
                        RunRecord::default() // backfilled after the join below
                    } else {
                        let (full, full_obs) = reference(cfg_idx, rep);
                        if let Some(tr) = full_obs {
                            obs_runs.push((
                                run_index(cfg_idx, rep, 0),
                                format!("{}/rep{}/full", result.name, rep),
                                tr,
                            ));
                        }
                        full
                    };
                    // A-priori propagation: offline iteration on the tuning
                    // stores to capture critical-path counts.
                    if policy.needs_offline_pass() {
                        let (offline, offline_obs) = self.run_once(
                            w.as_ref(),
                            &full_cfg,
                            &mut stores,
                            run_index(cfg_idx, rep, 1),
                            true,
                            None,
                        );
                        if let Some(tr) = offline_obs {
                            obs_runs.push((
                                run_index(cfg_idx, rep, 1),
                                format!("{}/rep{}/offline", result.name, rep),
                                tr,
                            ));
                        }
                        result.offline.push(offline);
                    }
                    // The selectively-executed tuning run.
                    let (tuned, tuned_obs) = self.run_once(
                        w.as_ref(),
                        &tuned_cfg,
                        &mut stores,
                        run_index(cfg_idx, rep, 2),
                        false,
                        None,
                    );
                    if let Some(tr) = tuned_obs {
                        obs_runs.push((
                            run_index(cfg_idx, rep, 2),
                            format!("{}/rep{}/tuned", result.name, rep),
                            tr,
                        ));
                    }
                    result.pairs.push((full, tuned));
                }
                configs.push(result);
            }
            configs
        });

        if parallel {
            for (cfg_idx, result) in configs.iter_mut().enumerate() {
                for rep in 0..reps {
                    let (full, full_obs) = reference_slots[cfg_idx * reps + rep]
                        .lock()
                        .take()
                        .expect("reference run completed");
                    if let Some(tr) = full_obs {
                        obs_runs.push((
                            run_index(cfg_idx, rep, 0),
                            format!("{}/rep{}/full", result.name, rep),
                            tr,
                        ));
                    }
                    result.pairs[rep].0 = full;
                }
            }
        }
        let obs = self.opts.observe.then(|| {
            // Sorting by run index makes the timeline a pure function of the
            // sweep's identity: serial and parallel schedules (which discover
            // the reference runs in different orders) assemble byte-identical
            // reports.
            obs_runs.sort_by_key(|&(id, _, _)| id);
            let mut report = ObsReport::new();
            for (id, label, ranks) in obs_runs {
                report.add_run(id, label, ranks);
            }
            report
        });
        TuningReport { policy, epsilon: self.opts.epsilon, configs, obs }
    }

    /// Fingerprint binding a checkpoint or profile to the sweep that wrote
    /// it: a 52-bit FNV digest over the canonical JSON of every option that
    /// changes simulated results, plus the workload names in sweep order.
    pub fn fingerprint(&self, workloads: &[Arc<dyn Workload>]) -> u64 {
        let names: Vec<String> = workloads.iter().map(|w| w.name()).collect();
        let doc = serde_json::json!({
            "allocation": self.opts.allocation,
            "charge_internal": self.opts.charge_internal,
            "epsilon": self.opts.epsilon,
            "extrapolate": self.opts.extrapolate,
            "granularity": format!("{:?}", self.opts.granularity),
            "policy": self.opts.policy.name(),
            "reps": self.opts.reps.max(1) as u64,
            "reset_between_configs": self.opts.reset_between_configs,
            "seed": self.opts.seed,
            "workloads": names.join(";"),
        });
        critter_core::fnv::fnv_hash(&serde_json::to_string(&doc).expect("json writer is total"))
            & ((1 << 52) - 1)
    }

    /// The algorithm identity a sweep files its store entries under: the
    /// workload names in sweep order, joined with `;` — the same string
    /// [`Self::fingerprint`] folds into the options digest.
    pub fn algo_key(&self, workloads: &[Arc<dyn Workload>]) -> String {
        let names: Vec<String> = workloads.iter().map(|w| w.name()).collect();
        names.join(";")
    }

    /// Execute one simulated run with the fault-retry protocol: without an
    /// armed [`TuningOptions::faults`] plan this is exactly [`Self::run_once`];
    /// with one, each attempt draws a per-`(run, attempt)` reseeded plan, a
    /// killed attempt rolls the stores back to the pre-attempt snapshot, and
    /// `None` is returned once the retry budget is spent (the caller
    /// quarantines the configuration).
    #[allow(clippy::too_many_arguments)]
    fn run_with_retry(
        &self,
        w: &dyn Workload,
        cfg: &CritterConfig,
        stores: &mut Vec<KernelStore>,
        run_index: u64,
        capture_apriori: bool,
        label: &str,
        session_events: &mut Vec<Event>,
    ) -> Option<(RunRecord, Option<Vec<RankTrace>>)> {
        let Some(base_plan) = self.opts.faults else {
            return Some(self.run_once(w, cfg, stores, run_index, capture_apriori, None));
        };
        let attempts = self.opts.max_retries as u64 + 1;
        for attempt in 0..attempts {
            let plan = base_plan.reseeded(run_index.wrapping_mul(0x1_0000).wrapping_add(attempt));
            let snapshot = stores.clone();
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                self.run_once(w, cfg, stores, run_index, capture_apriori, Some(plan))
            }));
            match outcome {
                Ok(done) => return Some(done),
                Err(_) => {
                    // The failed attempt may have polluted (or only
                    // partially returned) the stores; the retry must see
                    // exactly the pre-attempt state.
                    *stores = snapshot;
                    session_events.push(Event {
                        kind: EventKind::Fault,
                        label: label.into(),
                        start: 0.0,
                        dur: 0.0,
                        arg: run_index as f64,
                    });
                    if attempt + 1 < attempts {
                        session_events.push(Event {
                            kind: EventKind::Retry,
                            label: label.into(),
                            start: 0.0,
                            dur: 0.0,
                            arg: (attempt + 1) as f64,
                        });
                    }
                }
            }
        }
        None
    }

    /// Persist the sweep state after a completed `(config, rep)` unit.
    #[allow(clippy::too_many_arguments)]
    fn write_checkpoint(
        &self,
        path: &std::path::Path,
        fingerprint: u64,
        units_done: usize,
        configs: &[ConfigResult],
        stores: &[KernelStore],
        entry_state: &[KernelStore],
        obs_runs: &[(u64, String, Vec<RankTrace>)],
        session_events: &[Event],
    ) -> critter_core::Result<()> {
        let configs_json: Vec<serde_json::Value> =
            configs.iter().map(ConfigResult::to_json).collect();
        let events: Vec<serde_json::Value> = session_events.iter().map(Event::to_json).collect();
        let runs: Vec<serde_json::Value> = obs_runs
            .iter()
            .map(|(id, label, ranks)| {
                critter_obs::TimelineRun { id: *id, label: label.clone(), ranks: ranks.clone() }
                    .to_json()
            })
            .collect();
        let stores_json = critter_core::snapshot::stores_to_json(stores);
        let entry_json = critter_core::snapshot::stores_to_json(entry_state);
        let payload = serde_json::json!({
            "configs": configs_json,
            "entry_stores": entry_json,
            "obs_runs": runs,
            "session_events": events,
            "stores": stores_json,
            "units_done": units_done as u64,
        });
        let doc = critter_session::envelope::seal("checkpoint", fingerprint, payload);
        critter_session::store::write_value(path, &doc)
    }

    /// Tune with session semantics: checkpoint/resume, warm-start, profile
    /// persistence, and fault-tolerant retry — the fault-tolerant twin of
    /// [`Autotuner::tune`].
    ///
    /// The sweep runs serially (sessions checkpoint the sequential chain
    /// state, so [`TuningOptions::workers`] is ignored here) and produces a
    /// report bit-identical to `tune`'s whenever no fault actually fires.
    /// With checkpointing enabled, a killed sweep resumed from its
    /// checkpoint directory finishes to the *byte-identical* report and obs
    /// timeline the uninterrupted sweep produces — the contract
    /// `critter-testkit`'s kill/resume oracle asserts.
    ///
    /// Checkpoint, restore, and warm-start lifecycle decisions are logged to
    /// `session.log` in the checkpoint directory (they are session facts,
    /// not sweep facts, and must not perturb the report); fault, retry, and
    /// quarantine decisions enter the report's obs timeline as a final
    /// synthetic `session` run, because they *are* part of what the sweep
    /// computed.
    pub fn tune_session(
        &self,
        workloads: &[Arc<dyn Workload>],
        session: &SessionConfig,
    ) -> critter_core::Result<TuningReport> {
        assert!(!workloads.is_empty(), "empty configuration space");
        let ranks = workloads[0].ranks();
        assert!(
            workloads.iter().all(|w| w.ranks() == ranks),
            "all configurations of a sweep must use the same rank count"
        );
        if session.store.is_some() && self.opts.reset_between_configs {
            // Both the store seed and the end-of-sweep publication assume
            // kernel models survive configuration boundaries; refuse up
            // front rather than silently seeding models the first
            // start_config(keep = false) would wipe, or publishing the
            // last configuration's stub statistics as a fleet profile.
            return Err(critter_core::CritterError::mismatch(
                "a profile store requires the persist-models protocol \
                 (with_persist_models(true)); the per-config reset would \
                 discard the seeded models",
            ));
        }
        let policy = self.opts.policy;
        let tuned_cfg = {
            let mut c = CritterConfig::new(policy, self.opts.epsilon);
            c.charge_internal = self.opts.charge_internal;
            c.granularity = self.opts.granularity;
            c.obs = self.opts.observe;
            if self.opts.extrapolate {
                c = c.with_extrapolation();
            }
            c
        };
        let full_cfg = {
            let mut c = CritterConfig::full();
            c.charge_internal = self.opts.charge_internal;
            c.granularity = self.opts.granularity;
            c.obs = self.opts.observe;
            c
        };
        let reps = self.opts.reps.max(1);
        let base = self.opts.allocation.wrapping_mul(0x1000_0000);
        let run_index = |cfg_idx: usize, rep: usize, kind: usize| -> u64 {
            base.wrapping_add(((cfg_idx * reps + rep) * 3 + kind) as u64)
        };
        let units_total = workloads.len() * reps;
        // Ask the progress hook whether the sweep may proceed past a
        // committed unit boundary.
        let verdict = |units_done: usize| -> ProgressVerdict {
            match &self.progress {
                Some(hook) => hook(SweepProgress { units_done, units_total }),
                None => ProgressVerdict::Continue,
            }
        };
        // Convert a stop verdict into the typed error `tune_session`
        // surfaces; callers must have checkpointed the boundary first.
        let stop = |v: ProgressVerdict, units_done: usize| -> critter_core::Result<()> {
            match v {
                ProgressVerdict::Continue => Ok(()),
                ProgressVerdict::Preempt => Err(critter_core::CritterError::preempted(format!(
                    "progress hook paused the sweep at unit {units_done}/{units_total}"
                ))),
                ProgressVerdict::Cancel => Err(critter_core::CritterError::cancelled(format!(
                    "progress hook stopped the sweep at unit {units_done}/{units_total}"
                ))),
            }
        };

        let fingerprint = self.fingerprint(workloads);
        if let Some(dir) = &session.checkpoint_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| critter_core::CritterError::io(dir.as_path(), e))?;
        }
        let ckpt_path = session.checkpoint_path();
        let log = session.log_path().map(critter_session::SessionLog::at);
        let cadence = session.cadence() as usize;

        // Sweep state, possibly replaced wholesale by a checkpoint below.
        let mut stores: Vec<KernelStore> = (0..ranks).map(|_| KernelStore::new()).collect();
        let mut entry_state: Vec<KernelStore> = stores.clone();
        let mut configs: Vec<ConfigResult> = Vec::new();
        let mut obs_runs: Vec<(u64, String, Vec<RankTrace>)> = Vec::new();
        let mut session_events: Vec<Event> = Vec::new();
        let mut units_done: usize = 0;

        let schema = |what: String| critter_core::CritterError::schema("checkpoint", what);
        let resumed = match &ckpt_path {
            Some(path) if path.exists() => {
                let doc = critter_session::store::read_value(path)?;
                let payload =
                    critter_session::envelope::open(&doc, "checkpoint", Some(fingerprint))?;
                let field =
                    |key: &str| payload.get(key).ok_or_else(|| schema(format!("bad key `{key}`")));
                units_done = field("units_done")?
                    .as_u64()
                    .ok_or_else(|| schema("bad key `units_done`".into()))?
                    as usize;
                stores = critter_core::snapshot::stores_from_json(field("stores")?)?;
                entry_state = critter_core::snapshot::stores_from_json(field("entry_stores")?)?;
                configs = field("configs")?
                    .as_array()
                    .ok_or_else(|| schema("bad key `configs`".into()))?
                    .iter()
                    .map(ConfigResult::from_json)
                    .collect::<critter_core::Result<_>>()?;
                session_events = field("session_events")?
                    .as_array()
                    .ok_or_else(|| schema("bad key `session_events`".into()))?
                    .iter()
                    .map(|v| Event::from_json(v).map_err(schema))
                    .collect::<critter_core::Result<_>>()?;
                obs_runs = field("obs_runs")?
                    .as_array()
                    .ok_or_else(|| schema("bad key `obs_runs`".into()))?
                    .iter()
                    .map(|v| {
                        let run = critter_obs::TimelineRun::from_json(v).map_err(&schema)?;
                        Ok((run.id, run.label, run.ranks))
                    })
                    .collect::<critter_core::Result<_>>()?;
                if stores.len() != ranks || entry_state.len() != ranks {
                    return Err(critter_core::CritterError::mismatch(format!(
                        "checkpoint holds {} rank stores but the sweep uses {ranks} ranks",
                        stores.len()
                    )));
                }
                true
            }
            _ => false,
        };
        if resumed {
            if let Some(log) = &log {
                log.record(EventKind::Restore, "checkpoint", units_done as f64)?;
            }
        } else if let Some(path) = &session.warm_start {
            // Warm-start only on a fresh session: a checkpoint already has
            // the (possibly warm-started) chain state baked in.
            if self.opts.reset_between_configs {
                // start_config(keep = false) would wipe the seeded models at
                // the first configuration boundary; refuse rather than
                // silently ignore the profile.
                return Err(critter_core::CritterError::mismatch(
                    "warm-start requires the persist-models protocol \
                     (with_persist_models(true)); the per-config reset would \
                     discard the seeded models",
                ));
            }
            let (seeded, models) =
                critter_session::profile::warm_start(path, ranks, &session.staleness)?;
            stores = seeded;
            entry_state = stores.clone();
            if let Some(log) = &log {
                log.record(EventKind::WarmStart, &path.display().to_string(), models as f64)?;
            }
        } else if let Some(dir) = &session.store {
            // Store-backed warm start: routed through the same staleness
            // path as a file warm start, so a store holding exactly one
            // matching profile seeds byte-identical models.
            let store = critter_store::Store::open(dir)?;
            let machine =
                critter_store::MachineSpec::from_models(&self.opts.params, &self.opts.noise);
            if let Some((seeded, models, source)) =
                store.warm_start(&machine, &self.algo_key(workloads), ranks, &session.staleness)?
            {
                stores = seeded;
                entry_state = stores.clone();
                if let Some(log) = &log {
                    log.record(EventKind::WarmStart, &source.describe(), models as f64)?;
                }
            }
        }
        // The pre-sweep boundary is already durable (either the restored
        // checkpoint or no work at all), so no extra checkpoint is needed.
        stop(verdict(units_done), units_done)?;

        let keep = !self.opts.reset_between_configs;
        for (cfg_idx, w) in workloads.iter().enumerate() {
            if units_done >= (cfg_idx + 1) * reps {
                continue; // completed (or quarantined) before the checkpoint
            }
            let first_rep = units_done.saturating_sub(cfg_idx * reps);
            if first_rep == 0 {
                for s in stores.iter_mut() {
                    s.start_config(keep);
                }
                entry_state = stores.clone();
                configs.push(ConfigResult { name: w.name(), ..Default::default() });
            }
            let name = configs.last().expect("config entry exists").name.clone();
            let mut quarantined = false;
            for rep in first_rep..reps {
                if rep > 0 {
                    stores = entry_state.clone();
                }
                // Reference full execution on fresh measurement stores.
                let full_label = format!("{name}/rep{rep}/full");
                let mut ref_stores: Vec<KernelStore> =
                    (0..ranks).map(|_| KernelStore::new()).collect();
                let Some((full, full_obs)) = self.run_with_retry(
                    w.as_ref(),
                    &full_cfg,
                    &mut ref_stores,
                    run_index(cfg_idx, rep, 0),
                    false,
                    &full_label,
                    &mut session_events,
                ) else {
                    quarantined = true;
                    break;
                };
                // A-priori propagation's offline pass.
                let mut offline_unit = None;
                if policy.needs_offline_pass() {
                    let offline_label = format!("{name}/rep{rep}/offline");
                    let Some((offline, offline_obs)) = self.run_with_retry(
                        w.as_ref(),
                        &full_cfg,
                        &mut stores,
                        run_index(cfg_idx, rep, 1),
                        true,
                        &offline_label,
                        &mut session_events,
                    ) else {
                        quarantined = true;
                        break;
                    };
                    offline_unit = Some((offline, offline_obs, offline_label));
                }
                // The selectively-executed tuning run.
                let tuned_label = format!("{name}/rep{rep}/tuned");
                let Some((tuned, tuned_obs)) = self.run_with_retry(
                    w.as_ref(),
                    &tuned_cfg,
                    &mut stores,
                    run_index(cfg_idx, rep, 2),
                    false,
                    &tuned_label,
                    &mut session_events,
                ) else {
                    quarantined = true;
                    break;
                };

                // Commit the completed unit.
                let result = configs.last_mut().expect("config entry exists");
                if let Some(tr) = full_obs {
                    obs_runs.push((run_index(cfg_idx, rep, 0), full_label, tr));
                }
                if let Some((offline, offline_obs, offline_label)) = offline_unit {
                    if let Some(tr) = offline_obs {
                        obs_runs.push((run_index(cfg_idx, rep, 1), offline_label, tr));
                    }
                    result.offline.push(offline);
                }
                if let Some(tr) = tuned_obs {
                    obs_runs.push((run_index(cfg_idx, rep, 2), tuned_label, tr));
                }
                result.pairs.push((full, tuned));
                units_done = cfg_idx * reps + rep + 1;

                let mut checkpointed = false;
                if let Some(path) = &ckpt_path {
                    let boundary = rep + 1 == reps;
                    if boundary || units_done.is_multiple_of(cadence) {
                        self.write_checkpoint(
                            path,
                            fingerprint,
                            units_done,
                            &configs,
                            &stores,
                            &entry_state,
                            &obs_runs,
                            &session_events,
                        )?;
                        checkpointed = true;
                        if let Some(log) = &log {
                            log.record(EventKind::Checkpoint, &name, units_done as f64)?;
                        }
                    }
                }
                let v = verdict(units_done);
                if v != ProgressVerdict::Continue {
                    // Checkpoint-on-stop: the hook halts the sweep at this
                    // boundary, so persist it even off-cadence — the resumed
                    // session must re-enter exactly here.
                    if !checkpointed {
                        if let Some(path) = &ckpt_path {
                            self.write_checkpoint(
                                path,
                                fingerprint,
                                units_done,
                                &configs,
                                &stores,
                                &entry_state,
                                &obs_runs,
                                &session_events,
                            )?;
                            if let Some(log) = &log {
                                log.record(EventKind::Checkpoint, &name, units_done as f64)?;
                            }
                        }
                    }
                    if v == ProgressVerdict::Preempt {
                        if let Some(log) = &log {
                            log.record(EventKind::Preempt, &name, units_done as f64)?;
                        }
                    }
                    stop(v, units_done)?;
                }
            }
            if quarantined {
                // Abandon the configuration: drop the partial repetition,
                // restore the chain state the next configuration expects,
                // and record the decision.
                let result = configs.last_mut().expect("config entry exists");
                result.quarantined = true;
                session_events.push(Event {
                    kind: EventKind::Quarantine,
                    label: name.as_str().into(),
                    start: 0.0,
                    dur: 0.0,
                    arg: (self.opts.max_retries + 1) as f64,
                });
                stores = entry_state.clone();
                units_done = (cfg_idx + 1) * reps;
                if let Some(path) = &ckpt_path {
                    self.write_checkpoint(
                        path,
                        fingerprint,
                        units_done,
                        &configs,
                        &stores,
                        &entry_state,
                        &obs_runs,
                        &session_events,
                    )?;
                    if let Some(log) = &log {
                        log.record(EventKind::Checkpoint, &name, units_done as f64)?;
                    }
                }
                // The quarantine boundary is already checkpointed above.
                let v = verdict(units_done);
                if v == ProgressVerdict::Preempt {
                    if let Some(log) = &log {
                        log.record(EventKind::Preempt, &name, units_done as f64)?;
                    }
                }
                stop(v, units_done)?;
            }
        }

        if let Some(path) = &session.profile_out {
            critter_session::profile::save(path, fingerprint, &stores)?;
        }
        if let Some(dir) = &session.store {
            // Publish the final models to the shared store as one atomic
            // batch commit; concurrent sweeps sharing the directory
            // serialize through the store's generation CAS, not here.
            let store = critter_store::Store::open(dir)?;
            let machine =
                critter_store::MachineSpec::from_models(&self.opts.params, &self.opts.noise);
            store.publish(&machine, &self.algo_key(workloads), &stores)?;
        }
        let obs = self.opts.observe.then(|| {
            obs_runs.sort_by_key(|&(id, _, _)| id);
            let mut report = ObsReport::new();
            for (id, label, run_ranks) in obs_runs {
                report.add_run(id, label, run_ranks);
            }
            if !session_events.is_empty() {
                // Fault/retry/quarantine decisions are part of what the
                // sweep computed; they ride along as a final synthetic run
                // (u64::MAX sorts after every real run index).
                report.add_run(
                    u64::MAX,
                    "session",
                    vec![RankTrace {
                        rank: 0,
                        events: session_events.clone(),
                        metrics: Default::default(),
                    }],
                );
            }
            report
        });
        Ok(TuningReport { policy, epsilon: self.opts.epsilon, configs, obs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_algs::WorkloadOutput;

    /// A workload whose rank 0 dies mid-run: the regression fixture for
    /// store recovery in `run_once`.
    struct PanicOnRankZero;

    impl Workload for PanicOnRankZero {
        fn name(&self) -> String {
            "panic-on-rank-0".into()
        }

        fn ranks(&self) -> usize {
            2
        }

        fn run(&self, env: &mut CritterEnv, _verify: bool) -> WorkloadOutput {
            if env.rank() == 0 {
                panic!("injected tuning failure");
            }
            WorkloadOutput::default()
        }
    }

    #[test]
    fn run_once_recovers_stores_and_original_panic_when_a_rank_dies() {
        let opts = TuningOptions::new(ExecutionPolicy::Full, 0.0).with_test_machine();
        let tuner = Autotuner::new(opts);
        let cfg = CritterConfig::full();
        let mut stores: Vec<KernelStore> = (0..2).map(|_| KernelStore::new()).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            tuner.run_once(&PanicOnRankZero, &cfg, &mut stores, 7, false, None)
        }));
        let payload = result.expect_err("rank panic must propagate out of run_once");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        // Regression: the dead rank's store slot is empty; recovery must not
        // replace the workload's panic with "store returned".
        assert!(
            msg.contains("injected tuning failure"),
            "original payload must surface, got {msg:?}"
        );
        assert_eq!(stores.len(), 2, "sweep state must stay consistent after a failed run");
    }

    #[test]
    fn progress_hook_sees_every_unit_and_can_cancel() {
        let w = crate::TuningSpace::SlateCholesky.smoke();
        let opts = TuningOptions::new(ExecutionPolicy::LocalPropagation, 0.25)
            .with_test_machine()
            .with_reps(2);
        let total = w.len() * 2;
        let seen: Arc<Mutex<Vec<SweepProgress>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let report = Autotuner::new(opts.clone())
            .with_progress(move |p| {
                sink.lock().push(p);
                ProgressVerdict::Continue
            })
            .tune_session(&w, &SessionConfig::new())
            .unwrap();
        let seen = seen.lock();
        // One up-front call plus one per committed unit, ending complete.
        assert_eq!(seen.len(), total + 1);
        assert_eq!(seen.first(), Some(&SweepProgress { units_done: 0, units_total: total }));
        assert_eq!(seen.last(), Some(&SweepProgress { units_done: total, units_total: total }));
        // The hook is observational: the report matches a silent sweep's.
        assert_eq!(report, Autotuner::new(opts.clone()).tune(&w));

        // A Cancel verdict stops the sweep with the typed Cancelled error.
        let err = Autotuner::new(opts)
            .with_progress(|p| {
                if p.units_done < 3 {
                    ProgressVerdict::Continue
                } else {
                    ProgressVerdict::Cancel
                }
            })
            .tune_session(&w, &SessionConfig::new())
            .unwrap_err();
        assert!(err.is_cancelled(), "expected Cancelled, got {err}");
    }

    #[test]
    fn preempt_checkpoints_off_cadence_and_resumes_byte_identically() {
        let w = crate::TuningSpace::SlateCholesky.smoke();
        let opts = TuningOptions::new(ExecutionPolicy::LocalPropagation, 0.25)
            .with_test_machine()
            .with_reps(2);
        let total = w.len() * 2;
        let dir = std::env::temp_dir().join(format!("critter-preempt-ckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Cadence far beyond the sweep: the only mid-sweep checkpoint can
        // come from the checkpoint-on-preempt path.
        let session = SessionConfig::new().with_checkpoint_dir(&dir).with_checkpoint_every(1000);
        let err = Autotuner::new(opts.clone())
            .with_progress(|p| {
                if p.units_done < 3 {
                    ProgressVerdict::Continue
                } else {
                    ProgressVerdict::Preempt
                }
            })
            .tune_session(&w, &session)
            .unwrap_err();
        assert!(err.is_preempted(), "expected Preempted, got {err}");

        // The resumed session must restart from exactly unit 3 …
        let resumed: Arc<Mutex<Vec<SweepProgress>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&resumed);
        let report = Autotuner::new(opts.clone())
            .with_progress(move |p| {
                sink.lock().push(p);
                ProgressVerdict::Continue
            })
            .tune_session(&w, &session)
            .unwrap();
        assert_eq!(
            resumed.lock().first(),
            Some(&SweepProgress { units_done: 3, units_total: total }),
            "resume must pick up at the preempted boundary"
        );
        // … and the stitched report must match an uncontended sweep's bytes.
        let clean = Autotuner::new(opts).tune(&w);
        assert_eq!(report.to_json_string(), clean.to_json_string());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_result_changing_options_only() {
        let w = crate::TuningSpace::SlateCholesky.smoke();
        let opts = TuningOptions::new(ExecutionPolicy::LocalPropagation, 0.25).with_test_machine();
        let base = Autotuner::new(opts.clone()).fingerprint(&w);
        assert_eq!(Autotuner::new(opts.clone()).fingerprint(&w), base);
        // Worker count is a scheduling knob, not a result: same fingerprint.
        assert_eq!(Autotuner::new(opts.clone().with_workers(4)).fingerprint(&w), base);
        // So are the sim backend and shard count — a checkpoint written on
        // `threads` must resume on `tasks` and vice versa.
        assert_eq!(
            Autotuner::new(opts.clone().with_backend(BackendKind::Tasks)).fingerprint(&w),
            base
        );
        assert_eq!(Autotuner::new(opts.clone().with_shards(7)).fingerprint(&w), base);
        // Seed changes the noise streams: different fingerprint.
        assert_ne!(Autotuner::new(opts.clone().with_seed(99)).fingerprint(&w), base);
        assert_ne!(Autotuner::new(opts.with_allocation(1)).fingerprint(&w), base);
        assert_eq!(base & !((1 << 52) - 1), 0, "fingerprint must fit canonical JSON integers");
    }
}

//! The tuning driver: runs configuration sweeps on the simulator.
//!
//! ## Sweep schedule
//!
//! One sweep interleaves two kinds of simulated runs with very different
//! dependency structure:
//!
//! * **Reference full executions** measure ground truth. Each uses fresh
//!   [`KernelStore`]s and touches no shared state, so the set of
//!   `(configuration, repetition)` reference runs is embarrassingly
//!   parallel.
//! * **Selective runs** (and the offline passes of a-priori propagation)
//!   thread the tuning stores from one run to the next — kernel models
//!   accumulated on configuration `i` decide what configuration `i+1` may
//!   skip. This chain is inherently sequential.
//!
//! [`Autotuner::tune`] exploits exactly that split: with
//! [`TuningOptions::workers`] > 1 the reference runs are dispatched to a
//! bounded worker set and pipelined against the sequential chain, which the
//! calling thread walks concurrently.
//!
//! ## Determinism
//!
//! Every simulated run draws its noise from a stream keyed by `run_index`.
//! Indexes are a pure function of the run's identity —
//! `allocation · 2²⁸ + (config · reps + rep) · 3 + kind` with kind
//! 0 = reference, 1 = offline, 2 = selective — never of dispatch order, so
//! a parallel sweep produces a [`TuningReport`] bit-identical to the serial
//! one (asserted by `tests/parallel_determinism.rs`).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use critter_algs::Workload;
use critter_core::{CritterConfig, CritterEnv, ExecutionPolicy, KernelStore, PathMetrics};
use critter_machine::{MachineModel, MachineParams, NoiseParams};
use critter_obs::{ObsReport, RankTrace};
use critter_sim::{run_simulation, PerturbParams, SimConfig};
use parking_lot::Mutex;

/// Options of one tuning sweep.
#[derive(Debug, Clone)]
pub struct TuningOptions {
    /// Selective-execution policy under test.
    pub policy: ExecutionPolicy,
    /// Confidence tolerance ε.
    pub epsilon: f64,
    /// Reset kernel statistics before each configuration (§VI-A: true for
    /// SLATE and CANDMC workloads, false for Capital).
    pub reset_between_configs: bool,
    /// Repetitions of each configuration's (full, tuned) pair.
    pub reps: usize,
    /// Charge Critter's internal piggyback messages (overhead ablation).
    pub charge_internal: bool,
    /// Message-size granularity of communication signatures (the signature
    /// ablation: exact sizes vs log2 buckets).
    pub granularity: critter_core::signature::SizeGranularity,
    /// Enable the §VIII input-size extrapolation extension for the selective
    /// runs (per-routine-family line fits allow skipping under-sampled
    /// signatures).
    pub extrapolate: bool,
    /// Machine parameters.
    pub params: MachineParams,
    /// Noise model parameters.
    pub noise: NoiseParams,
    /// Base seed for the machine noise streams.
    pub seed: u64,
    /// Node-allocation id (§VI-A runs every experiment on two allocations).
    pub allocation: u64,
    /// Worker threads for the reference full executions. `1` (the default)
    /// runs the sweep fully serially on the calling thread; larger values
    /// pipeline the independent reference runs against the sequential
    /// selective-run chain. The report is bit-identical either way.
    pub workers: usize,
    /// Test-only schedule perturbation: inject wall-clock yields/sleeps into
    /// every simulated run to shake the real thread interleaving. Virtual
    /// results must not move — the testkit fuzzer asserts the report stays
    /// bit-identical to an unperturbed sweep.
    pub perturb: Option<PerturbParams>,
    /// Record a structured observability trace of the sweep
    /// ([`TuningReport::obs`]): every simulated run's per-rank events and
    /// metrics, assembled into one globally ordered timeline. Deterministic
    /// regardless of `workers` (see `docs/OBSERVABILITY.md`).
    pub observe: bool,
}

impl TuningOptions {
    /// Defaults: cluster noise on the KNL machine, one repetition.
    pub fn new(policy: ExecutionPolicy, epsilon: f64) -> Self {
        TuningOptions {
            policy,
            epsilon,
            reset_between_configs: true,
            reps: 1,
            charge_internal: true,
            granularity: critter_core::signature::SizeGranularity::Exact,
            extrapolate: false,
            params: MachineParams::stampede2_knl(),
            noise: NoiseParams::cluster(),
            seed: 0xC0FFEE,
            allocation: 0,
            workers: 1,
            perturb: None,
            observe: false,
        }
    }

    /// Persist kernel models across configurations (Capital protocol).
    pub fn persist_models(mut self) -> Self {
        self.reset_between_configs = false;
        self
    }

    /// Use the small test machine parameters (unit tests).
    pub fn test_machine(mut self) -> Self {
        self.params = MachineParams::test_machine();
        self
    }

    /// Set the reference-run worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Inject schedule perturbation into every simulated run (testing only).
    pub fn with_perturb(mut self, perturb: PerturbParams) -> Self {
        self.perturb = Some(perturb);
        self
    }

    /// Record the sweep's observability timeline ([`TuningReport::obs`]).
    pub fn with_observe(mut self) -> Self {
        self.observe = true;
        self
    }
}

/// Aggregated outcome of one simulated run.
///
/// `PartialEq` compares every field exactly (no tolerance): two schedules of
/// the same sweep must agree *bit for bit*.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// Simulated makespan (the autotuner pays this).
    pub elapsed: f64,
    /// Critter's critical-path execution-time estimate.
    pub predicted: f64,
    /// Critical-path cost metrics.
    pub path: PathMetrics,
    /// Longest per-rank *executed* kernel time (computation + communication,
    /// excluding profiling overheads) — Fig. 4c / 5c's metric.
    pub max_kernel_time: f64,
    /// Longest per-rank *predicted* kernel time (executed + skipped means).
    pub max_kernel_predicted: f64,
    /// Kernels executed across all ranks.
    pub kernels_executed: u64,
    /// Kernels skipped across all ranks.
    pub kernels_skipped: u64,
    /// Total internal (profiling) words sent.
    pub internal_words: u64,
}

/// Per-configuration results: one `(full, tuned)` record pair per repetition,
/// plus the offline pass records for a-priori propagation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigResult {
    /// Configuration label.
    pub name: String,
    /// `(reference full run, selective run)` per repetition.
    pub pairs: Vec<(RunRecord, RunRecord)>,
    /// Offline full passes (a-priori propagation only), charged to tuning time.
    pub offline: Vec<RunRecord>,
}

/// A full tuning sweep's results (one policy, one ε, one allocation).
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Policy under test.
    pub policy: ExecutionPolicy,
    /// Confidence tolerance.
    pub epsilon: f64,
    /// Per-configuration results, in sweep order.
    pub configs: Vec<ConfigResult>,
    /// Observability timeline and metrics (only with
    /// [`TuningOptions::observe`]): one [`critter_obs::TimelineRun`] per
    /// simulated run, ordered by run index — a pure function of run identity,
    /// never of dispatch order.
    pub obs: Option<ObsReport>,
}

/// The exhaustive-search autotuner.
pub struct Autotuner {
    opts: TuningOptions,
}

impl Autotuner {
    /// Create a tuner with the given options.
    pub fn new(opts: TuningOptions) -> Self {
        Autotuner { opts }
    }

    /// The options in force.
    pub fn options(&self) -> &TuningOptions {
        &self.opts
    }

    /// Execute one simulated run of `w` under `cfg`, threading the per-rank
    /// kernel stores through the rank threads. Returns the aggregated record
    /// plus, when `cfg.obs` is set, the per-rank observability traces.
    fn run_once(
        &self,
        w: &dyn Workload,
        cfg: &CritterConfig,
        stores: &mut Vec<KernelStore>,
        run_index: u64,
        capture_apriori: bool,
    ) -> (RunRecord, Option<Vec<RankTrace>>) {
        let ranks = w.ranks();
        assert_eq!(stores.len(), ranks, "store count mismatch");
        let machine = MachineModel::new(
            self.opts.params.clone(),
            self.opts.noise.clone(),
            ranks,
            self.opts.seed,
            self.opts.allocation,
        )
        .with_noise_seed(run_index.wrapping_add(1))
        .shared();
        let slots: Arc<Vec<Mutex<Option<KernelStore>>>> =
            Arc::new(stores.drain(..).map(|s| Mutex::new(Some(s))).collect());
        let slots_in = Arc::clone(&slots);
        let mut sim_config = SimConfig::new(ranks);
        if let Some(p) = self.opts.perturb {
            // Vary the perturbation stream per run so no two runs of a sweep
            // see the same yield/sleep pattern.
            sim_config = sim_config.with_perturb(PerturbParams { seed: p.seed ^ run_index, ..p });
        }
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_simulation(sim_config, machine, move |ctx| {
                let store = slots_in[ctx.rank()].lock().take().expect("store present");
                let mut env = CritterEnv::new(ctx, cfg.clone(), store);
                w.run(&mut env, false);
                let (rep, mut store) = env.finish();
                if capture_apriori {
                    store.capture_apriori();
                }
                *slots_in[ctx.rank()].lock() = Some(store);
                rep
            })
        }));
        let report = match result {
            Ok(report) => report,
            Err(payload) => {
                // A panicked rank never returned its store, so its slot is
                // empty. Unwinding with `stores` drained would leave the
                // sweep state corrupt for callers that catch the panic —
                // and expecting on the empty slot would mask the real
                // failure behind "store returned". Recover the surviving
                // stores, backfill the dead rank's with a fresh one, and
                // propagate the original payload.
                *stores = slots
                    .iter()
                    .map(|m| m.lock().take().unwrap_or_else(KernelStore::new))
                    .collect();
                std::panic::resume_unwind(payload);
            }
        };
        *stores = slots.iter().map(|m| m.lock().take().expect("store returned")).collect();

        let mut rec = RunRecord { elapsed: report.elapsed(), ..Default::default() };
        for r in &report.outputs {
            rec.predicted = rec.predicted.max(r.predicted_time);
            rec.path = rec.path.max(r.path);
            rec.max_kernel_time =
                rec.max_kernel_time.max(r.local_comp_executed + r.local_comm_executed);
            rec.max_kernel_predicted =
                rec.max_kernel_predicted.max(r.local_comp_predicted + r.local_comm_predicted);
            rec.kernels_executed += r.kernels_executed;
            rec.kernels_skipped += r.kernels_skipped;
            rec.internal_words += r.internal_words;
        }
        let obs = cfg
            .obs
            .then(|| report.outputs.into_iter().map(|r| r.obs.unwrap_or_default()).collect());
        (rec, obs)
    }

    /// Tune over `workloads` (one sweep): for each configuration, a reference
    /// full execution directly prior to the selective one, repeated
    /// `reps` times; a-priori propagation additionally pays an offline pass.
    pub fn tune(&self, workloads: &[Arc<dyn Workload>]) -> TuningReport {
        assert!(!workloads.is_empty(), "empty configuration space");
        let ranks = workloads[0].ranks();
        assert!(
            workloads.iter().all(|w| w.ranks() == ranks),
            "all configurations of a sweep must use the same rank count"
        );
        let policy = self.opts.policy;
        let tuned_cfg = {
            let mut c = CritterConfig::new(policy, self.opts.epsilon);
            c.charge_internal = self.opts.charge_internal;
            c.granularity = self.opts.granularity;
            c.obs = self.opts.observe;
            if self.opts.extrapolate {
                c = c.with_extrapolation();
            }
            c
        };
        let full_cfg = {
            let mut c = CritterConfig::full();
            c.charge_internal = self.opts.charge_internal;
            c.granularity = self.opts.granularity;
            c.obs = self.opts.observe;
            c
        };

        let reps = self.opts.reps.max(1);
        // Noise-stream index of a run, a pure function of the run's identity:
        // `(allocation, config index, rep, kind)` with kind 0 = reference
        // full, 1 = offline pass, 2 = selective. Dispatch order never enters,
        // so parallel and serial schedules draw identical noise.
        let base = self.opts.allocation.wrapping_mul(0x1000_0000);
        let run_index = |cfg_idx: usize, rep: usize, kind: usize| -> u64 {
            base.wrapping_add(((cfg_idx * reps + rep) * 3 + kind) as u64)
        };
        let reference = |cfg_idx: usize, rep: usize| -> (RunRecord, Option<Vec<RankTrace>>) {
            // Fresh measurement stores: the reference must be unperturbed,
            // and it must not pollute the tuning model.
            let mut ref_stores: Vec<KernelStore> = (0..ranks).map(|_| KernelStore::new()).collect();
            self.run_once(
                workloads[cfg_idx].as_ref(),
                &full_cfg,
                &mut ref_stores,
                run_index(cfg_idx, rep, 0),
                false,
            )
        };

        // The independent reference runs go to a bounded worker set pulling
        // from an atomic queue; the calling thread concurrently walks the
        // sequential selective-run chain (stores thread from config to
        // config). With workers == 1 the references run inline instead.
        let total_refs = workloads.len() * reps;
        let n_workers = self.opts.workers.max(1).min(total_refs).min(1 + total_refs / 2);
        let parallel = self.opts.workers > 1;
        type RefOutcome = (RunRecord, Option<Vec<RankTrace>>);
        let reference_slots: Vec<Mutex<Option<RefOutcome>>> =
            (0..total_refs).map(|_| Mutex::new(None)).collect();
        let next_ref = AtomicUsize::new(0);
        // Every observed run's traces, keyed by run index; sorted before
        // assembly so the timeline never reflects dispatch order.
        let mut obs_runs: Vec<(u64, String, Vec<RankTrace>)> = Vec::new();

        let mut configs = std::thread::scope(|scope| {
            if parallel {
                for _ in 0..n_workers {
                    scope.spawn(|| loop {
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= total_refs {
                            break;
                        }
                        let rec = reference(i / reps, i % reps);
                        *reference_slots[i].lock() = Some(rec);
                    });
                }
            }

            let mut stores: Vec<KernelStore> = (0..ranks).map(|_| KernelStore::new()).collect();
            let mut configs = Vec::with_capacity(workloads.len());
            for (cfg_idx, w) in workloads.iter().enumerate() {
                let mut result = ConfigResult { name: w.name(), ..Default::default() };
                // Per-configuration statistics protocol.
                let keep = !self.opts.reset_between_configs;
                for s in stores.iter_mut() {
                    s.start_config(keep);
                }
                let entry_state = stores.clone();
                for rep in 0..reps {
                    if rep > 0 {
                        stores = entry_state.clone();
                    }
                    let full = if parallel {
                        RunRecord::default() // backfilled after the join below
                    } else {
                        let (full, full_obs) = reference(cfg_idx, rep);
                        if let Some(tr) = full_obs {
                            obs_runs.push((
                                run_index(cfg_idx, rep, 0),
                                format!("{}/rep{}/full", result.name, rep),
                                tr,
                            ));
                        }
                        full
                    };
                    // A-priori propagation: offline iteration on the tuning
                    // stores to capture critical-path counts.
                    if policy.needs_offline_pass() {
                        let (offline, offline_obs) = self.run_once(
                            w.as_ref(),
                            &full_cfg,
                            &mut stores,
                            run_index(cfg_idx, rep, 1),
                            true,
                        );
                        if let Some(tr) = offline_obs {
                            obs_runs.push((
                                run_index(cfg_idx, rep, 1),
                                format!("{}/rep{}/offline", result.name, rep),
                                tr,
                            ));
                        }
                        result.offline.push(offline);
                    }
                    // The selectively-executed tuning run.
                    let (tuned, tuned_obs) = self.run_once(
                        w.as_ref(),
                        &tuned_cfg,
                        &mut stores,
                        run_index(cfg_idx, rep, 2),
                        false,
                    );
                    if let Some(tr) = tuned_obs {
                        obs_runs.push((
                            run_index(cfg_idx, rep, 2),
                            format!("{}/rep{}/tuned", result.name, rep),
                            tr,
                        ));
                    }
                    result.pairs.push((full, tuned));
                }
                configs.push(result);
            }
            configs
        });

        if parallel {
            for (cfg_idx, result) in configs.iter_mut().enumerate() {
                for rep in 0..reps {
                    let (full, full_obs) = reference_slots[cfg_idx * reps + rep]
                        .lock()
                        .take()
                        .expect("reference run completed");
                    if let Some(tr) = full_obs {
                        obs_runs.push((
                            run_index(cfg_idx, rep, 0),
                            format!("{}/rep{}/full", result.name, rep),
                            tr,
                        ));
                    }
                    result.pairs[rep].0 = full;
                }
            }
        }
        let obs = self.opts.observe.then(|| {
            // Sorting by run index makes the timeline a pure function of the
            // sweep's identity: serial and parallel schedules (which discover
            // the reference runs in different orders) assemble byte-identical
            // reports.
            obs_runs.sort_by_key(|&(id, _, _)| id);
            let mut report = ObsReport::new();
            for (id, label, ranks) in obs_runs {
                report.add_run(id, label, ranks);
            }
            report
        });
        TuningReport { policy, epsilon: self.opts.epsilon, configs, obs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critter_algs::WorkloadOutput;

    /// A workload whose rank 0 dies mid-run: the regression fixture for
    /// store recovery in `run_once`.
    struct PanicOnRankZero;

    impl Workload for PanicOnRankZero {
        fn name(&self) -> String {
            "panic-on-rank-0".into()
        }

        fn ranks(&self) -> usize {
            2
        }

        fn run(&self, env: &mut CritterEnv, _verify: bool) -> WorkloadOutput {
            if env.rank() == 0 {
                panic!("injected tuning failure");
            }
            WorkloadOutput::default()
        }
    }

    #[test]
    fn run_once_recovers_stores_and_original_panic_when_a_rank_dies() {
        let opts = TuningOptions::new(ExecutionPolicy::Full, 0.0).test_machine();
        let tuner = Autotuner::new(opts);
        let cfg = CritterConfig::full();
        let mut stores: Vec<KernelStore> = (0..2).map(|_| KernelStore::new()).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            tuner.run_once(&PanicOnRankZero, &cfg, &mut stores, 7, false)
        }));
        let payload = result.expect_err("rank panic must propagate out of run_once");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        // Regression: the dead rank's store slot is empty; recovery must not
        // replace the workload's panic with "store returned".
        assert!(
            msg.contains("injected tuning failure"),
            "original payload must surface, got {msg:?}"
        );
        assert_eq!(stores.len(), 2, "sweep state must stay consistent after a failed run");
    }
}

//! # critter-autotune
//!
//! The approximate-autotuning driver (§VI): exhaustive search over a
//! configuration space, with each configuration's execution accelerated by
//! Critter's selective kernel execution, and the paper's evaluation metrics —
//! per-configuration relative prediction error, mean error, autotuning
//! speedup, and optimal-configuration selection quality.
//!
//! The measurement protocol follows §VI-A: each configuration's *reference*
//! full execution runs directly prior to the approximated one (same
//! allocation, fresh noise draw), prediction error compares the selective
//! run's critical-path estimate against that reference, kernel statistics are
//! reset between configurations for the SLATE/CANDMC workloads and persisted
//! for Capital, and *a-priori propagation* pays for an extra offline full
//! execution per configuration.

#![deny(missing_docs)]

pub mod driver;
pub mod json;
pub mod metrics;
pub mod search;
pub mod spaces;

pub use critter_session::{SessionConfig, StalenessPolicy};
pub use driver::{
    Autotuner, ConfigResult, ProgressHook, ProgressVerdict, RunRecord, SweepProgress,
    TuningOptions, TuningReport,
};
pub use search::{search, SearchOutcome, SearchStrategy};
pub use spaces::TuningSpace;

//! Configuration-space search strategies.
//!
//! §VI-A uses exhaustive search "as our framework can be applied to
//! accelerate any configuration-space search strategy". This module provides
//! that generality: alongside exhaustive sweeps, a seeded random subsample
//! and a successive-halving search that spends loose-tolerance (cheap,
//! heavily-skipped) evaluations on the full space and progressively tightens
//! ε on the survivors — composing the paper's accuracy/cost dial with the
//! search itself.

use std::sync::Arc;

use critter_algs::Workload;
use critter_machine::rng::CounterRng;

use crate::driver::{Autotuner, ConfigResult, TuningOptions};

/// A search strategy over a configuration space.
#[derive(Debug, Clone)]
pub enum SearchStrategy {
    /// Evaluate every configuration (the paper's protocol).
    Exhaustive,
    /// Evaluate a seeded random subset of the space.
    Random {
        /// Number of configurations to sample (without replacement).
        samples: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// Successive halving: evaluate all configurations at a loose tolerance,
    /// keep the best `1/eta` fraction, tighten ε by `eta`, repeat until one
    /// survivor remains.
    SuccessiveHalving {
        /// Reduction factor per round (≥ 2).
        eta: usize,
    },
}

/// Outcome of a search: which configurations were evaluated (with their
/// results), the winner, and the total simulated cost paid.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// `(index into the original space, result)` in evaluation order.
    /// A configuration re-evaluated in a later halving round appears again.
    pub evaluated: Vec<(usize, ConfigResult)>,
    /// Index (into the original space) of the selected configuration.
    pub best: usize,
    /// Total simulated tuning time paid across all evaluations.
    pub tuning_time: f64,
    /// Total simulated time the equivalent full executions cost (reference).
    pub full_time: f64,
}

impl SearchOutcome {
    /// Search-level speedup against paying full executions for the same
    /// evaluations.
    pub fn speedup(&self) -> f64 {
        self.full_time / self.tuning_time.max(f64::MIN_POSITIVE)
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.evaluated.len()
    }
}

fn mean_pred(c: &ConfigResult) -> f64 {
    let n = c.pairs.len().max(1) as f64;
    c.pairs.iter().map(|(_, t)| t.predicted).sum::<f64>() / n
}

fn accumulate(outcome: &mut SearchOutcome, idx: usize, c: ConfigResult) {
    outcome.tuning_time += c.pairs.iter().map(|(_, t)| t.elapsed).sum::<f64>()
        + c.offline.iter().map(|r| r.elapsed).sum::<f64>();
    outcome.full_time += c.pairs.iter().map(|(f, _)| f.elapsed).sum::<f64>();
    outcome.evaluated.push((idx, c));
}

/// Run `strategy` over `workloads` with the tuner's options (the options'
/// ε is the *final* tolerance; halving rounds start looser).
pub fn search(
    opts: &TuningOptions,
    workloads: &[Arc<dyn Workload>],
    strategy: &SearchStrategy,
) -> SearchOutcome {
    assert!(!workloads.is_empty(), "empty configuration space");
    let mut outcome =
        SearchOutcome { evaluated: Vec::new(), best: 0, tuning_time: 0.0, full_time: 0.0 };
    match strategy {
        SearchStrategy::Exhaustive => {
            let report = Autotuner::new(opts.clone()).tune(workloads);
            let best = report.selected();
            for (i, c) in report.configs.into_iter().enumerate() {
                accumulate(&mut outcome, i, c);
            }
            outcome.best = best;
        }
        SearchStrategy::Random { samples, seed } => {
            assert!(*samples > 0, "random search needs at least one sample");
            // Seeded Fisher–Yates prefix over the index set.
            let mut idx: Vec<usize> = (0..workloads.len()).collect();
            let mut rng = CounterRng::new(*seed, 0x5EA6C4);
            let take = (*samples).min(idx.len());
            for i in 0..take {
                let j = i + rng.below((idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            let chosen: Vec<usize> = idx[..take].to_vec();
            let subset: Vec<Arc<dyn Workload>> =
                chosen.iter().map(|&i| Arc::clone(&workloads[i])).collect();
            let report = Autotuner::new(opts.clone()).tune(&subset);
            let sel = report.selected();
            for (pos, c) in report.configs.into_iter().enumerate() {
                accumulate(&mut outcome, chosen[pos], c);
            }
            outcome.best = chosen[sel];
        }
        SearchStrategy::SuccessiveHalving { eta } => {
            assert!(*eta >= 2, "halving needs eta >= 2");
            // Number of rounds to reduce the space to one survivor.
            let mut rounds = 1usize;
            let mut span = workloads.len();
            while span > 1 {
                span = span.div_ceil(*eta);
                rounds += 1;
            }
            // Tolerances: geometric from loose to the caller's final ε.
            let final_eps = opts.epsilon;
            let mut survivors: Vec<usize> = (0..workloads.len()).collect();
            for round in 0..rounds {
                let eps = final_eps * (*eta as f64).powi((rounds - 1 - round) as i32);
                let mut round_opts = opts.clone();
                round_opts.epsilon = eps;
                // Distinct noise environments per round.
                round_opts.seed = opts.seed.wrapping_add(round as u64 + 1);
                let subset: Vec<Arc<dyn Workload>> =
                    survivors.iter().map(|&i| Arc::clone(&workloads[i])).collect();
                let report = Autotuner::new(round_opts).tune(&subset);
                // Rank by predicted time, keep the best 1/eta.
                let mut ranked: Vec<(usize, f64)> =
                    report.configs.iter().enumerate().map(|(pos, c)| (pos, mean_pred(c))).collect();
                ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN prediction"));
                let keep = survivors.len().div_ceil(*eta).max(1);
                let kept: Vec<usize> =
                    ranked[..keep].iter().map(|&(pos, _)| survivors[pos]).collect();
                for (pos, c) in report.configs.into_iter().enumerate() {
                    accumulate(&mut outcome, survivors[pos], c);
                }
                survivors = kept;
                if survivors.len() == 1 {
                    break;
                }
            }
            outcome.best = survivors[0];
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::TuningSpace;
    use critter_core::ExecutionPolicy;

    fn opts() -> TuningOptions {
        let mut o =
            TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.25).with_test_machine();
        o.reset_between_configs = true;
        o
    }

    #[test]
    fn exhaustive_evaluates_everything() {
        let ws = TuningSpace::SlateQr.smoke();
        let out = search(&opts(), &ws, &SearchStrategy::Exhaustive);
        assert_eq!(out.evaluations(), ws.len());
        assert!(out.best < ws.len());
        assert!(out.tuning_time > 0.0 && out.full_time > 0.0);
    }

    #[test]
    fn random_subsamples_without_replacement() {
        let ws = TuningSpace::SlateCholesky.smoke();
        let out = search(&opts(), &ws, &SearchStrategy::Random { samples: 2, seed: 7 });
        assert_eq!(out.evaluations(), 2);
        let mut seen: Vec<usize> = out.evaluated.iter().map(|(i, _)| *i).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 2, "no duplicates");
        assert!(seen.contains(&out.best));
    }

    #[test]
    fn random_is_seeded() {
        let ws = TuningSpace::SlateCholesky.smoke();
        let pick = |seed| {
            search(&opts(), &ws, &SearchStrategy::Random { samples: 2, seed })
                .evaluated
                .iter()
                .map(|(i, _)| *i)
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(1), pick(1));
    }

    #[test]
    fn halving_converges_to_single_survivor() {
        let ws = TuningSpace::CandmcQr.smoke();
        let out = search(&opts(), &ws, &SearchStrategy::SuccessiveHalving { eta: 2 });
        assert!(out.best < ws.len());
        // First round touches everything.
        let first_round: Vec<usize> =
            out.evaluated.iter().take(ws.len()).map(|(i, _)| *i).collect();
        assert_eq!(first_round.len(), ws.len());
        // Total evaluations exceed one pass (re-evaluation of survivors).
        assert!(out.evaluations() > ws.len());
    }

    #[test]
    fn halving_picks_a_good_configuration() {
        let ws = TuningSpace::SlateCholesky.smoke();
        let exhaustive = search(&opts(), &ws, &SearchStrategy::Exhaustive);
        let halved = search(&opts(), &ws, &SearchStrategy::SuccessiveHalving { eta: 2 });
        // The halving winner's true performance is within 25% of exhaustive's.
        let truth = |o: &SearchOutcome, idx: usize| {
            o.evaluated
                .iter()
                .rev()
                .find(|(i, _)| *i == idx)
                .map(|(_, c)| {
                    c.pairs.iter().map(|(f, _)| f.elapsed).sum::<f64>() / c.pairs.len() as f64
                })
                .expect("winner was evaluated")
        };
        let t_ex = truth(&exhaustive, exhaustive.best);
        let t_half = truth(&halved, halved.best);
        assert!(t_half <= t_ex * 1.25, "halving winner {t_half} vs exhaustive {t_ex}");
    }
}

//! End-to-end tuning-sweep behavior on the smoke configuration spaces.

use critter_autotune::{Autotuner, TuningOptions, TuningSpace};
use critter_core::ExecutionPolicy;

fn tune(
    space: TuningSpace,
    policy: ExecutionPolicy,
    epsilon: f64,
) -> critter_autotune::TuningReport {
    let mut opts = TuningOptions::new(policy, epsilon).with_test_machine();
    opts.reset_between_configs = space.resets_between_configs();
    Autotuner::new(opts).tune(&space.smoke())
}

#[test]
fn conditional_tuning_speeds_up_slate_cholesky() {
    let report = tune(TuningSpace::SlateCholesky, ExecutionPolicy::ConditionalExecution, 0.5);
    assert!(report.speedup() > 1.0, "speedup {}", report.speedup());
    assert!(report.skip_fraction() > 0.0);
    assert!(report.mean_error().is_finite());
}

#[test]
fn errors_decrease_with_tolerance_on_average() {
    // ε → 0 approaches full execution: fewer skips, better prediction.
    let loose = tune(TuningSpace::SlateCholesky, ExecutionPolicy::OnlinePropagation, 2.0);
    let tight = tune(TuningSpace::SlateCholesky, ExecutionPolicy::OnlinePropagation, 1e-6);
    assert!(tight.skip_fraction() < loose.skip_fraction());
    assert!(tight.tuning_time() >= loose.tuning_time() * 0.8);
}

#[test]
fn full_policy_error_is_small() {
    // Full execution predicts from measured kernels only; against an
    // independent noisy reference run the error should be modest (noise
    // level), far below 100%.
    let report = tune(TuningSpace::CapitalCholesky, ExecutionPolicy::Full, 0.0);
    assert_eq!(report.skip_fraction(), 0.0);
    assert!(report.mean_error() < 0.5, "mean error {}", report.mean_error());
}

#[test]
fn apriori_pays_offline_pass() {
    let report = tune(TuningSpace::CandmcQr, ExecutionPolicy::APrioriPropagation, 0.25);
    for c in &report.configs {
        assert!(!c.offline.is_empty(), "a-priori must run an offline pass per config");
    }
    // Offline passes are charged, so the tuning time exceeds the pure
    // selective time.
    let selective_only: f64 =
        report.configs.iter().map(|c| c.pairs.iter().map(|(_, t)| t.elapsed).sum::<f64>()).sum();
    assert!(report.tuning_time() > selective_only);
}

#[test]
fn eager_persists_models_across_configs() {
    let mut opts = TuningOptions::new(ExecutionPolicy::EagerPropagation, 0.5).with_test_machine();
    opts.reset_between_configs = false;
    let report = Autotuner::new(opts).tune(&TuningSpace::CapitalCholesky.smoke());
    // Later configurations reuse converged models: the final config must skip
    // a larger fraction than the first.
    let frac = |c: &critter_autotune::ConfigResult| {
        let (f, t) = (&c.pairs[0].1.kernels_executed, &c.pairs[0].1.kernels_skipped);
        *t as f64 / (*f + *t).max(1) as f64
    };
    let first = frac(&report.configs[0]);
    let last = frac(report.configs.last().unwrap());
    assert!(last >= first, "eager skip fraction should not regress: {first} vs {last}");
}

#[test]
fn selection_quality_is_high_under_loose_tolerance() {
    let report = tune(TuningSpace::SlateQr, ExecutionPolicy::ConditionalExecution, 0.5);
    assert!(report.selection_quality() > 0.8, "quality {}", report.selection_quality());
    assert!(report.selected() < report.configs.len());
}

#[test]
fn repetitions_are_recorded() {
    let mut opts = TuningOptions::new(ExecutionPolicy::LocalPropagation, 0.5).with_test_machine();
    opts.reps = 2;
    let report = Autotuner::new(opts).tune(&TuningSpace::SlateQr.smoke());
    for c in &report.configs {
        assert_eq!(c.pairs.len(), 2);
    }
}

#[test]
fn kernel_time_excludes_profiling() {
    let report = tune(TuningSpace::SlateCholesky, ExecutionPolicy::ConditionalExecution, 0.5);
    assert!(report.kernel_time() > 0.0);
    assert!(report.kernel_time() <= report.tuning_time() * 1.01);
    assert!(report.kernel_time() < report.full_kernel_time());
}

//! Property tests of the sweep scheduler's determinism guarantee: a tuning
//! sweep produces a bit-identical [`TuningReport`] no matter how many worker
//! threads pipeline the reference runs. Every `f64` in the report — elapsed
//! makespans, predicted times, path metrics — must match exactly, because
//! noise streams are keyed by run identity, never by dispatch order.

use std::sync::Arc;

use critter_algs::Workload;
use critter_autotune::{Autotuner, TuningOptions, TuningSpace};
use critter_core::ExecutionPolicy;
use proptest::prelude::*;

fn policy_from(index: usize) -> ExecutionPolicy {
    [
        ExecutionPolicy::Full,
        ExecutionPolicy::ConditionalExecution,
        ExecutionPolicy::LocalPropagation,
        ExecutionPolicy::OnlinePropagation,
        ExecutionPolicy::APrioriPropagation,
        ExecutionPolicy::EagerPropagation,
    ][index % 6]
}

fn space_from(index: usize) -> TuningSpace {
    [TuningSpace::SlateCholesky, TuningSpace::SlateQr, TuningSpace::CapitalCholesky][index % 3]
}

fn tune_with_workers(
    workloads: &[Arc<dyn Workload>],
    policy: ExecutionPolicy,
    epsilon: f64,
    reps: usize,
    reset: bool,
    allocation: u64,
    workers: usize,
) -> critter_autotune::TuningReport {
    let mut opts = TuningOptions::new(policy, epsilon).with_test_machine().with_workers(workers);
    opts.reps = reps;
    opts.reset_between_configs = reset;
    opts.allocation = allocation;
    Autotuner::new(opts).tune(workloads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The central guarantee: serial (`workers = 1`) and parallel schedules
    /// of the same sweep agree bit for bit, across policies, tolerances,
    /// repetition counts, reset protocols, and allocations.
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial(
        policy_idx in 0usize..6,
        space_idx in 0usize..3,
        eps_scale in 1u32..5,
        reps in 1usize..3,
        reset in any::<bool>(),
        allocation in 0u64..3,
        workers in 2usize..5,
    ) {
        let policy = policy_from(policy_idx);
        let epsilon = 0.25 * eps_scale as f64;
        let workloads = space_from(space_idx).smoke();
        let serial =
            tune_with_workers(&workloads, policy, epsilon, reps, reset, allocation, 1);
        let parallel =
            tune_with_workers(&workloads, policy, epsilon, reps, reset, allocation, workers);
        prop_assert_eq!(serial, parallel);
    }
}

/// Deterministic spot check kept outside the property harness so a failure
/// pinpoints the scheduler rather than a sampled input: the a-priori policy
/// exercises all three run kinds (reference, offline, selective) at once.
#[test]
fn apriori_parallel_matches_serial_exactly() {
    let workloads = TuningSpace::CandmcQr.smoke();
    let serial =
        tune_with_workers(&workloads, ExecutionPolicy::APrioriPropagation, 0.25, 2, true, 1, 1);
    let parallel =
        tune_with_workers(&workloads, ExecutionPolicy::APrioriPropagation, 0.25, 2, true, 1, 8);
    assert_eq!(serial, parallel);
    // Sanity: the sweep actually did work on every configuration.
    assert!(!serial.configs.is_empty());
    for c in &serial.configs {
        assert_eq!(c.pairs.len(), 2);
        assert!(!c.offline.is_empty());
        for (full, tuned) in &c.pairs {
            assert!(full.elapsed > 0.0);
            assert!(tuned.elapsed > 0.0);
        }
    }
}

/// Reports must also be reproducible across repeated identical calls (the
/// pooled rank threads carry no state between simulations).
#[test]
fn repeated_parallel_sweeps_are_reproducible() {
    let workloads = TuningSpace::SlateCholesky.smoke();
    let a = tune_with_workers(&workloads, ExecutionPolicy::OnlinePropagation, 0.5, 1, true, 0, 4);
    let b = tune_with_workers(&workloads, ExecutionPolicy::OnlinePropagation, 0.5, 1, true, 0, 4);
    assert_eq!(a, b);
}

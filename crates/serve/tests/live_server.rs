//! In-process daemon tests: backpressure, per-tenant quotas, and
//! checkpoint-consistent cancellation against a live ephemeral-port
//! server.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use critter_serve::http::client;
use critter_serve::{Server, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("critter-serve-live-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const LONG_JOB: &str = r#"{
    "space": "slate-cholesky", "policy": "local",
    "smoke": true, "machine": "test", "reps": 500
}"#;

#[test]
fn full_queue_rejects_with_429_and_delete_cancels_at_a_unit_boundary() {
    let data_dir = temp_dir("backpressure");
    let mut config = ServerConfig::new(&data_dir);
    config.addr = "127.0.0.1:0".into();
    config.job_workers = 1;
    config.queue_capacity = 1;
    let server = Server::start(config).expect("server starts");
    let addr = server.addr();

    // Worker busy on the first job, queue slot held by the second: every
    // further submission must bounce with a typed 429 and leave no job
    // directory behind.
    let (s1, doc1) = client::request_json(addr, "POST", "/v1/jobs", Some(LONG_JOB)).unwrap();
    let (s2, _doc2) = client::request_json(addr, "POST", "/v1/jobs", Some(LONG_JOB)).unwrap();
    assert_eq!((s1, s2), (202, 202));
    let id1 = doc1.get("id").unwrap().as_str().unwrap().to_string();
    // Wait until the worker has dequeued job 1; job 2 then holds the
    // single queue slot for the rest of job 1's (long) sweep, so further
    // submissions must bounce with a typed 429 and leave no trace.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, doc) = client::request_json(addr, "GET", &format!("/v1/jobs/{id1}"), None).unwrap();
        if doc.get("state").unwrap().as_str() == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job 1 never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (s3, doc3) = client::request_json(addr, "POST", "/v1/jobs", Some(LONG_JOB)).unwrap();
    assert_eq!(s3, 429, "beyond capacity the daemon applies backpressure");
    assert_eq!(doc3.get("error").unwrap().get("code").unwrap().as_str(), Some("backpressure"));

    // The rejected submission is fully rolled back: its directory is gone
    // and the daemon still lists exactly two jobs.
    let (_, list) = client::request_json(addr, "GET", "/v1/jobs", None).unwrap();
    assert_eq!(list.get("jobs").unwrap().as_array().unwrap().len(), 2);

    // Cancel everything: the running job stops at its next committed unit
    // boundary, queued jobs never start.
    for job in list.get("jobs").unwrap().as_array().unwrap() {
        let id = job.get("id").unwrap().as_str().unwrap();
        let (s, _) = client::request_json(addr, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(s, 202);
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, list) = client::request_json(addr, "GET", "/v1/jobs", None).unwrap();
        let cancelled = list
            .get("jobs")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .all(|j| j.get("state").unwrap().as_str() == Some("cancelled"));
        if cancelled {
            break;
        }
        assert!(Instant::now() < deadline, "cancellation never completed: {list:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Cancelling a cancelled job is a 409, and its report is a 409 too.
    let (s, doc) = client::request_json(addr, "DELETE", &format!("/v1/jobs/{id1}"), None).unwrap();
    assert_eq!(s, 409);
    assert_eq!(doc.get("error").unwrap().get("code").unwrap().as_str(), Some("conflict"));
    let (s, _) =
        client::request_json(addr, "GET", &format!("/v1/jobs/{id1}/report"), None).unwrap();
    assert_eq!(s, 409);

    // Health reflects the final census and states the API version.
    let (s, health) = client::request_json(addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(s, 200);
    assert_eq!(health.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(health.get("jobs").unwrap().get("cancelled").unwrap().as_u64(), Some(2));
    assert_eq!(
        health.get("api").unwrap().get("version").unwrap().as_u64(),
        Some(critter_serve::API_VERSION)
    );

    server.shutdown();
    std::fs::remove_dir_all(&data_dir).unwrap();
}

/// Regression: cancelling a still-queued job must fully roll back its
/// tenant's queued-quota slot. A tenant at quota that cancels a queued job
/// can submit again immediately — the rejected→cancel→resubmit cycle that
/// used to wedge when cancellation left the quota slot occupied.
#[test]
fn cancelling_a_queued_job_frees_its_tenant_quota_slot() {
    let data_dir = temp_dir("quota");
    let mut config = ServerConfig::new(&data_dir);
    config.addr = "127.0.0.1:0".into();
    config.job_workers = 1;
    config.tenant_max_queued = 1;
    let server = Server::start(config).expect("server starts");
    let addr = server.addr();

    // Job A on the single worker; wait until it is running so it no
    // longer occupies the tenant's one queued slot.
    let (s, doc_a) = client::request_json(addr, "POST", "/v1/jobs", Some(LONG_JOB)).unwrap();
    assert_eq!(s, 202);
    let id_a = doc_a.get("id").unwrap().as_str().unwrap().to_string();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, doc) =
            client::request_json(addr, "GET", &format!("/v1/jobs/{id_a}"), None).unwrap();
        if doc.get("state").unwrap().as_str() == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job A never started running");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Job B takes the tenant's only queued slot; job C must bounce with a
    // typed `quota_exceeded` — and leave no trace behind.
    let (s, doc_b) = client::request_json(addr, "POST", "/v1/jobs", Some(LONG_JOB)).unwrap();
    assert_eq!(s, 202);
    let id_b = doc_b.get("id").unwrap().as_str().unwrap().to_string();
    let (s, doc_c) = client::request_json(addr, "POST", "/v1/jobs", Some(LONG_JOB)).unwrap();
    assert_eq!(s, 429, "tenant at max_queued must be rejected: {doc_c:?}");
    assert_eq!(doc_c.get("error").unwrap().get("code").unwrap().as_str(), Some("quota_exceeded"));
    let (_, list) = client::request_json(addr, "GET", "/v1/jobs", None).unwrap();
    assert_eq!(list.get("jobs").unwrap().as_array().unwrap().len(), 2);

    // The tenants document shows the quota in force and the live usage.
    let (s, tenants) = client::request_json(addr, "GET", "/v1/tenants", None).unwrap();
    assert_eq!(s, 200);
    assert_eq!(tenants.get("quotas").unwrap().get("max_queued").unwrap().as_u64(), Some(1));
    let usage = tenants.get("tenants").unwrap().get("default").unwrap();
    assert_eq!(usage.get("queued").unwrap().as_u64(), Some(1));
    assert_eq!(usage.get("running").unwrap().as_u64(), Some(1));

    // Cancel queued job B: it finalizes immediately (no unit boundary to
    // wait for) and releases the quota slot.
    let (s, doc) = client::request_json(addr, "DELETE", &format!("/v1/jobs/{id_b}"), None).unwrap();
    assert_eq!(s, 202);
    assert_eq!(doc.get("state").unwrap().as_str(), Some("cancelled"), "queued cancel is immediate");

    // The regression assertion: the tenant can submit again right away.
    let (s, doc_d) = client::request_json(addr, "POST", "/v1/jobs", Some(LONG_JOB)).unwrap();
    assert_eq!(s, 202, "quota slot must be free after cancelling a queued job: {doc_d:?}");
    let id_d = doc_d.get("id").unwrap().as_str().unwrap().to_string();

    for id in [&id_a, &id_d] {
        let (s, _) = client::request_json(addr, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(s, 202);
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, list) = client::request_json(addr, "GET", "/v1/jobs", None).unwrap();
        let settled = list
            .get("jobs")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .all(|j| j.get("state").unwrap().as_str() == Some("cancelled"));
        if settled {
            break;
        }
        assert!(Instant::now() < deadline, "cancellation never completed: {list:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    std::fs::remove_dir_all(&data_dir).unwrap();
}

//! Property-test oracle for the multi-tenant scheduling core.
//!
//! Drives [`SchedCore`] through arbitrary interleavings of submissions,
//! dispatches, completions, preemptions, and queued-job cancellations,
//! mirrored against an independently written model, and checks after
//! every step that:
//!
//! * admission decisions agree with the model exactly — same accept or
//!   reject, same error code, and every rejection is a typed 429;
//! * dispatch picks the model's job: highest priority among tenants under
//!   quota, ties broken by submission order, with preempted jobs keeping
//!   their original order;
//! * no dispatch ever puts a tenant over its running-job or rank-thread
//!   quota;
//! * the per-tenant usage snapshot equals the usage recomputed from the
//!   model's queue and running set (so cancellations and completions roll
//!   accounting back exactly).

use std::collections::BTreeMap;

use critter_serve::{JobTicket, QuotaConfig, SchedCore, TenantUsage};
use proptest::prelude::*;

/// One scripted action against the scheduler; drawn from `(kind, a, b, c)`
/// tuples so the shimmed proptest can generate it from range strategies.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Submit a job for tenant `a` with priority `b` and ranks `c`.
    Submit { tenant: usize, priority: u8, ranks: usize },
    /// Give an idle worker a chance to pick a job.
    Dispatch,
    /// Complete the `a`-th running job (wrapping), if any are running.
    Complete(usize),
    /// Flag a victim for an incoming priority `b`, then requeue every
    /// flagged job (the worker-side half of preemption, compressed).
    Preempt(u8),
    /// Cancel the `a`-th queued job (wrapping), if any are queued.
    CancelQueued(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0usize..5, 0usize..3, 0u64..10, 1usize..7).prop_map(|(kind, a, b, c)| match kind {
        0 | 1 => Op::Submit { tenant: a, priority: b as u8, ranks: c },
        2 => Op::Dispatch,
        3 => Op::Complete(a),
        _ => {
            if c % 2 == 0 {
                Op::Preempt(b as u8)
            } else {
                Op::CancelQueued(a)
            }
        }
    })
}

/// The independent model: plain vectors plus the quota rules restated.
struct Model {
    quota: QuotaConfig,
    capacity: usize,
    next_seq: u64,
    /// `(ticket, seq, flagged-for-preemption)` — running jobs carry the
    /// flag so the model can mirror requeues.
    queue: Vec<(JobTicket, u64)>,
    running: Vec<(JobTicket, u64, bool)>,
}

impl Model {
    fn usage(&self) -> BTreeMap<String, TenantUsage> {
        let mut usage: BTreeMap<String, TenantUsage> = BTreeMap::new();
        for (t, _) in &self.queue {
            usage.entry(t.tenant.clone()).or_default().queued += 1;
        }
        for (t, _, _) in &self.running {
            let u = usage.entry(t.tenant.clone()).or_default();
            u.running += 1;
            u.running_ranks += t.ranks;
        }
        usage.retain(|_, u| *u != TenantUsage::default());
        usage
    }

    fn tenant_usage(&self, tenant: &str) -> TenantUsage {
        self.usage().get(tenant).copied().unwrap_or_default()
    }

    /// The admission decision, restated: `Some(code)` is a rejection.
    fn submit(&mut self, ticket: &JobTicket) -> Option<&'static str> {
        if self.queue.len() >= self.capacity.max(1) {
            return Some("backpressure");
        }
        if self.quota.max_ranks > 0 && ticket.ranks > self.quota.max_ranks {
            return Some("quota_exceeded");
        }
        if self.quota.max_queued > 0
            && self.tenant_usage(&ticket.tenant).queued >= self.quota.max_queued
        {
            return Some("quota_exceeded");
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push((ticket.clone(), seq));
        None
    }

    fn eligible(&self, ticket: &JobTicket) -> bool {
        let u = self.tenant_usage(&ticket.tenant);
        (self.quota.max_running == 0 || u.running < self.quota.max_running)
            && (self.quota.max_ranks == 0 || u.running_ranks + ticket.ranks <= self.quota.max_ranks)
    }

    /// The expected dispatch pick: among eligible queued jobs, highest
    /// priority wins, then lowest submission seq.
    fn dispatch(&mut self) -> Option<String> {
        let pick = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, (t, _))| self.eligible(t))
            .min_by_key(|(_, (t, seq))| (std::cmp::Reverse(t.priority), *seq))
            .map(|(i, _)| i)?;
        let (ticket, seq) = self.queue.remove(pick);
        let id = ticket.id.clone();
        self.running.push((ticket, seq, false));
        Some(id)
    }

    /// The expected victim: lowest priority strictly below `priority`,
    /// latest submission among equals, not already flagged.
    fn preempt_victim(&mut self, priority: u8) -> bool {
        let victim = self
            .running
            .iter_mut()
            .filter(|(t, _, flagged)| t.priority < priority && !*flagged)
            .max_by_key(|(t, seq, _)| (std::cmp::Reverse(t.priority), *seq));
        match victim {
            Some((_, _, flagged)) => {
                *flagged = true;
                true
            }
            None => false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn core_matches_the_model_under_arbitrary_interleavings(
        max_queued in 0usize..4,
        max_running in 0usize..3,
        max_ranks in 0usize..12,
        capacity in 1usize..8,
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let quota = QuotaConfig { max_queued, max_running, max_ranks };
        let mut core = SchedCore::new(capacity, quota);
        let mut model = Model {
            quota,
            capacity,
            next_seq: 0,
            queue: Vec::new(),
            running: Vec::new(),
        };
        let mut flags = BTreeMap::new();
        let mut next_id = 0usize;

        for op in ops {
            match op {
                Op::Submit { tenant, priority, ranks } => {
                    next_id += 1;
                    let ticket = JobTicket {
                        id: format!("job-{next_id:06}"),
                        tenant: format!("tenant-{tenant}"),
                        priority,
                        ranks,
                    };
                    let expected = model.submit(&ticket);
                    match core.submit(ticket) {
                        Ok(()) => prop_assert_eq!(expected, None),
                        Err(e) => {
                            prop_assert_eq!(Some(e.code().as_str()), expected);
                            // Rejections are always typed 429s.
                            prop_assert_eq!(e.status(), 429);
                        }
                    }
                }
                Op::Dispatch => {
                    let expected = model.dispatch();
                    let got = core.dispatch();
                    prop_assert_eq!(got.as_ref().map(|(t, _)| t.id.clone()), expected);
                    if let Some((ticket, flag)) = got {
                        // The dispatch must respect the running quotas.
                        let u = model.tenant_usage(&ticket.tenant);
                        prop_assert!(quota.max_running == 0 || u.running <= quota.max_running);
                        prop_assert!(quota.max_ranks == 0 || u.running_ranks <= quota.max_ranks);
                        flags.insert(ticket.id, flag);
                    }
                }
                Op::Complete(i) => {
                    if !model.running.is_empty() {
                        let (ticket, _, _) = model.running.remove(i % model.running.len());
                        core.complete(&ticket.id);
                        flags.remove(&ticket.id);
                    }
                }
                Op::Preempt(priority) => {
                    prop_assert_eq!(core.preempt_victim(priority), model.preempt_victim(priority));
                    // The worker half: every flagged job yields at its next
                    // unit boundary and goes back in the queue, keeping seq.
                    let mut requeued = Vec::new();
                    model.running.retain(|(t, seq, flagged)| {
                        if *flagged {
                            requeued.push((t.clone(), *seq));
                            false
                        } else {
                            true
                        }
                    });
                    for (ticket, seq) in requeued {
                        // The real flag the core handed out must be set.
                        let flag = flags.remove(&ticket.id).expect("dispatched jobs have flags");
                        prop_assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
                        core.requeue_preempted(&ticket.id);
                        model.queue.push((ticket, seq));
                    }
                }
                Op::CancelQueued(i) => {
                    if !model.queue.is_empty() {
                        let (ticket, _) = model.queue.remove(i % model.queue.len());
                        prop_assert!(core.take_queued(&ticket.id));
                        prop_assert!(!core.take_queued(&ticket.id), "second take is a no-op");
                    }
                }
            }
            // After every step the accounting must match the model exactly.
            prop_assert_eq!(core.queued_len(), model.queue.len());
            prop_assert_eq!(core.running_len(), model.running.len());
            prop_assert_eq!(core.usage(), model.usage());
        }
    }
}

//! The preemption drill: a higher-priority submission pauses a running
//! lower-priority sweep at a committed unit boundary, takes its worker,
//! and both jobs still finish with reports byte-identical to uncontended
//! in-process runs — the service-level restatement of the checkpoint
//! resume guarantee, with scheduling contention instead of a kill.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use critter_serve::http::client;
use critter_serve::{JobSpec, Server, ServerConfig};

// Long enough that the high-priority submission lands mid-sweep.
const LOW_SPEC: &str = r#"{
    "space": "slate-cholesky", "policy": "local", "epsilon": 0.25,
    "smoke": true, "machine": "test", "reps": 120, "seed": 3, "priority": 1
}"#;
const HIGH_SPEC: &str = r#"{
    "space": "slate-qr", "policy": "online", "epsilon": 0.25,
    "smoke": true, "machine": "test", "seed": 11, "priority": 5,
    "tenant": "urgent"
}"#;

fn wait_done(addr: SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (_, doc) = client::request_json(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        match doc.get("state").and_then(|s| s.as_str()) {
            Some("done") => return,
            Some("failed") => panic!("job {id} failed: {doc:?}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn high_priority_submission_preempts_and_both_reports_stay_byte_identical() {
    let data_dir: PathBuf =
        std::env::temp_dir().join(format!("critter-serve-preempt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut config = ServerConfig::new(&data_dir);
    config.addr = "127.0.0.1:0".into();
    config.job_workers = 1; // one worker forces the contention
    let server = Server::start(config).expect("server starts");
    let addr = server.addr();

    // The uncontended truths, computed in-process from the same specs.
    let low_spec = JobSpec::from_json(LOW_SPEC).unwrap();
    let expected_low = critter_autotune::Autotuner::new(low_spec.options())
        .tune(&low_spec.workloads())
        .to_json_string();
    let high_spec = JobSpec::from_json(HIGH_SPEC).unwrap();
    let expected_high = critter_autotune::Autotuner::new(high_spec.options())
        .tune(&high_spec.workloads())
        .to_json_string();

    let (status, doc) = client::request_json(addr, "POST", "/v1/jobs", Some(LOW_SPEC)).unwrap();
    assert_eq!(status, 202, "low-priority submit: {doc:?}");
    let low_id = doc.get("id").unwrap().as_str().unwrap().to_string();

    // Wait until the low-priority sweep has committed at least one unit,
    // so the preemption genuinely lands mid-sweep.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, doc) =
            client::request_json(addr, "GET", &format!("/v1/jobs/{low_id}"), None).unwrap();
        let done = doc.get("progress").unwrap().get("units_done").unwrap().as_u64().unwrap();
        if doc.get("state").unwrap().as_str() == Some("running") && done >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "low-priority job made no progress: {doc:?}");
        std::thread::sleep(Duration::from_millis(2));
    }

    let (status, doc) = client::request_json(addr, "POST", "/v1/jobs", Some(HIGH_SPEC)).unwrap();
    assert_eq!(status, 202, "high-priority submit: {doc:?}");
    let high_id = doc.get("id").unwrap().as_str().unwrap().to_string();

    wait_done(addr, &high_id);
    wait_done(addr, &low_id);

    // The low-priority job's event log proves it actually yielded: it
    // carries a `preempted` state event, followed by a later `running`
    // (the resume) and the final `done`.
    let (status, events) =
        client::request_json(addr, "GET", &format!("/v1/jobs/{low_id}/events"), None).unwrap();
    assert_eq!(status, 200);
    let states: Vec<String> = events
        .get("events")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter(|e| e.get("kind").unwrap().as_str() == Some("state"))
        .map(|e| e.get("state").unwrap().as_str().unwrap().to_string())
        .collect();
    let preempted_at = states
        .iter()
        .position(|s| s == "preempted")
        .unwrap_or_else(|| panic!("low-priority job was never preempted (states: {states:?})"));
    assert!(
        states[preempted_at..].iter().any(|s| s == "running"),
        "preempted job must resume (states: {states:?})"
    );
    assert_eq!(states.last().map(String::as_str), Some("done"));

    // Both reports are byte-identical to their uncontended runs: the
    // preemption checkpoint changed scheduling, not results.
    let (status, low_report) =
        client::request(addr, "GET", &format!("/v1/jobs/{low_id}/report"), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(low_report, expected_low, "preempted report drifted from the uncontended run");
    let (status, high_report) =
        client::request(addr, "GET", &format!("/v1/jobs/{high_id}/report"), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(high_report, expected_high);

    // While both jobs ran, the `urgent` tenant's priority also shows up in
    // the tenants document's job totals.
    let (status, tenants) = client::request_json(addr, "GET", "/v1/tenants", None).unwrap();
    assert_eq!(status, 200);
    let tenants_obj = tenants.get("tenants").unwrap();
    assert_eq!(tenants_obj.get("default").unwrap().get("jobs").unwrap().as_u64(), Some(1));
    assert_eq!(tenants_obj.get("urgent").unwrap().get("jobs").unwrap().as_u64(), Some(1));

    server.shutdown();
    std::fs::remove_dir_all(&data_dir).unwrap();
}

//! The kill/restart oracle: `kill -9` the daemon mid-sweep, restart it,
//! and the recovered job's report must be byte-identical to an
//! uninterrupted run of the same spec.
//!
//! This is the service-level restatement of the session engine's
//! checkpoint/resume guarantee, driven end to end through the real
//! binary, real sockets, and a real SIGKILL — the same choreography the
//! CI service smoke job performs with curl.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use critter_serve::http::client;
use critter_serve::JobSpec;

const SPEC: &str = r#"{
    "space": "slate-cholesky", "policy": "local", "epsilon": 0.25,
    "smoke": true, "machine": "test", "reps": 24, "seed": 7
}"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("critter-serve-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_daemon(data_dir: &Path) -> Child {
    // Each start binds an ephemeral port and rewrites `<data>/addr`; the
    // caller removes the stale file first so polling can't read the old
    // address.
    let _ = std::fs::remove_file(data_dir.join("addr"));
    Command::new(env!("CARGO_BIN_EXE_critter-serve"))
        .args(["--addr", "127.0.0.1:0", "--job-workers", "1"])
        .arg("--data-dir")
        .arg(data_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning critter-serve")
}

fn wait_for_addr(data_dir: &Path) -> SocketAddr {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(data_dir.join("addr")) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its addr file");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn progress_of(addr: SocketAddr, id: &str) -> (String, u64) {
    let (status, doc) =
        client::request_json(addr, "GET", &format!("/v1/jobs/{id}"), None).expect("status poll");
    assert_eq!(status, 200);
    let state = doc.get("state").unwrap().as_str().unwrap().to_string();
    let done = doc.get("progress").unwrap().get("units_done").unwrap().as_u64().unwrap();
    (state, done)
}

#[test]
fn sigkill_mid_sweep_then_restart_resumes_to_identical_report() {
    let data_dir = temp_dir("oracle");
    std::fs::create_dir_all(&data_dir).unwrap();

    // The uninterrupted truth, computed in-process from the same spec.
    let spec = JobSpec::from_json(SPEC).expect("test spec parses");
    let expected =
        critter_autotune::Autotuner::new(spec.options()).tune(&spec.workloads()).to_json_string();

    let mut daemon = start_daemon(&data_dir);
    let addr = wait_for_addr(&data_dir);
    let (status, doc) = client::request_json(addr, "POST", "/v1/jobs", Some(SPEC)).expect("submit");
    assert_eq!(status, 202, "submit failed: {doc:?}");
    let id = doc.get("id").unwrap().as_str().unwrap().to_string();

    // Poll tightly and SIGKILL the daemon once at least one unit has been
    // committed but the sweep is still running.
    let deadline = Instant::now() + Duration::from_secs(60);
    let killed_mid_sweep = loop {
        let (state, done) = progress_of(addr, &id);
        if state == "done" {
            break false; // sweep outran the poll; recovery is still exercised
        }
        assert_ne!(state, "failed", "job failed before the kill");
        if done >= 1 {
            break true;
        }
        assert!(Instant::now() < deadline, "job made no progress");
        std::thread::sleep(Duration::from_millis(1));
    };
    daemon.kill().expect("SIGKILL");
    daemon.wait().expect("reaping the killed daemon");

    // Restart over the same data dir: the job is recovered, resumed from
    // its checkpoint, and finishes as if never interrupted.
    let mut daemon = start_daemon(&data_dir);
    let addr = wait_for_addr(&data_dir);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (state, _) = progress_of(addr, &id);
        if state == "done" {
            break;
        }
        assert_ne!(state, "failed", "resumed job failed");
        assert!(Instant::now() < deadline, "resumed job never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, report) =
        client::request(addr, "GET", &format!("/v1/jobs/{id}/report"), None).expect("report");
    assert_eq!(status, 200);
    assert_eq!(
        report, expected,
        "resumed report differs from an uninterrupted run (killed mid-sweep: {killed_mid_sweep})"
    );

    daemon.kill().expect("stopping the second daemon");
    daemon.wait().expect("reaping the second daemon");
    std::fs::remove_dir_all(&data_dir).unwrap();
}

const LOW_PRI_SPEC: &str = r#"{
    "space": "slate-cholesky", "policy": "local", "epsilon": 0.25,
    "smoke": true, "machine": "test", "reps": 120, "seed": 5, "priority": 0
}"#;
const HIGH_PRI_SPEC: &str = r#"{
    "space": "slate-qr", "policy": "online", "epsilon": 0.25,
    "smoke": true, "machine": "test", "seed": 9, "priority": 9,
    "tenant": "urgent"
}"#;

/// The compounding drill: preempt a running job, `kill -9` the daemon
/// while the preempted job sits in the queue, restart, and *both* jobs
/// must still finish with reports byte-identical to uncontended runs. A
/// preempted job's checkpoint is its whole identity — the restart must
/// treat it exactly like any other recovered job.
#[test]
fn sigkill_while_preempted_then_restart_resumes_both_jobs_identically() {
    let data_dir = temp_dir("preempted");
    std::fs::create_dir_all(&data_dir).unwrap();

    let low_spec = JobSpec::from_json(LOW_PRI_SPEC).expect("low spec parses");
    let expected_low = critter_autotune::Autotuner::new(low_spec.options())
        .tune(&low_spec.workloads())
        .to_json_string();
    let high_spec = JobSpec::from_json(HIGH_PRI_SPEC).expect("high spec parses");
    let expected_high = critter_autotune::Autotuner::new(high_spec.options())
        .tune(&high_spec.workloads())
        .to_json_string();

    let mut daemon = start_daemon(&data_dir);
    let addr = wait_for_addr(&data_dir);
    let (status, doc) =
        client::request_json(addr, "POST", "/v1/jobs", Some(LOW_PRI_SPEC)).expect("submit low");
    assert_eq!(status, 202, "low submit failed: {doc:?}");
    let low_id = doc.get("id").unwrap().as_str().unwrap().to_string();

    // Let the low-priority sweep commit at least one unit, then submit the
    // high-priority job and wait until the low one is actually preempted.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (state, done) = progress_of(addr, &low_id);
        assert_ne!(state, "failed");
        if state == "running" && done >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "low job made no progress");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, doc) =
        client::request_json(addr, "POST", "/v1/jobs", Some(HIGH_PRI_SPEC)).expect("submit high");
    assert_eq!(status, 202, "high submit failed: {doc:?}");
    let high_id = doc.get("id").unwrap().as_str().unwrap().to_string();
    let deadline = Instant::now() + Duration::from_secs(60);
    let killed_while_preempted = loop {
        let (state, _) = progress_of(addr, &low_id);
        assert_ne!(state, "failed");
        if state == "preempted" {
            break true;
        }
        if state == "done" {
            break false; // sweep outran the preemption; recovery is still exercised
        }
        assert!(Instant::now() < deadline, "low job was never preempted");
        std::thread::sleep(Duration::from_millis(1));
    };

    // SIGKILL with the preempted job parked in the queue and the
    // high-priority job mid-sweep.
    daemon.kill().expect("SIGKILL");
    daemon.wait().expect("reaping the killed daemon");

    let mut daemon = start_daemon(&data_dir);
    let addr = wait_for_addr(&data_dir);
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (low_state, _) = progress_of(addr, &low_id);
        let (high_state, _) = progress_of(addr, &high_id);
        assert_ne!(low_state, "failed", "resumed low job failed");
        assert_ne!(high_state, "failed", "resumed high job failed");
        if low_state == "done" && high_state == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "resumed jobs never finished");
        std::thread::sleep(Duration::from_millis(20));
    }

    let (status, low_report) =
        client::request(addr, "GET", &format!("/v1/jobs/{low_id}/report"), None)
            .expect("low report");
    assert_eq!(status, 200);
    assert_eq!(
        low_report, expected_low,
        "preempted+killed report differs from an uninterrupted run \
         (killed while preempted: {killed_while_preempted})"
    );
    let (status, high_report) =
        client::request(addr, "GET", &format!("/v1/jobs/{high_id}/report"), None)
            .expect("high report");
    assert_eq!(status, 200);
    assert_eq!(high_report, expected_high);

    // The event log survived the kill: the pre-kill `preempted` event is
    // still there, followed by the post-restart re-queue and resume.
    if killed_while_preempted {
        let (status, events) =
            client::request_json(addr, "GET", &format!("/v1/jobs/{low_id}/events"), None)
                .expect("events");
        assert_eq!(status, 200);
        let states: Vec<&str> = events
            .get("events")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("kind").unwrap().as_str() == Some("state"))
            .map(|e| e.get("state").unwrap().as_str().unwrap())
            .collect();
        assert!(states.contains(&"preempted"), "persisted log lost the preemption: {states:?}");
        assert_eq!(states.last(), Some(&"done"));
    }

    daemon.kill().expect("stopping the second daemon");
    daemon.wait().expect("reaping the second daemon");
    std::fs::remove_dir_all(&data_dir).unwrap();
}

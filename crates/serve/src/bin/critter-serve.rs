//! Tuning-as-a-service daemon. See `docs/SERVICE.md` for the API.
//!
//! ```text
//! critter-serve --addr 127.0.0.1:8787 --data-dir critter-serve-data
//! curl -s -X POST localhost:8787/v1/jobs \
//!      -d '{"space": "slate-cholesky", "policy": "local", "smoke": true}'
//! ```

use std::path::PathBuf;

use critter_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: critter-serve [--addr HOST:PORT=127.0.0.1:8787]\n\
         \x20                    [--data-dir DIR=critter-serve-data]\n\
         \x20                    [--job-workers N=2] [--http-workers N=4]\n\
         \x20                    [--queue-capacity N=64] [--store DIR]\n\
         \x20                    [--tenant-max-queued N=16]\n\
         \x20                    [--tenant-max-running N=2]\n\
         \x20                    [--tenant-max-ranks N=0]\n\
         \n\
         Tuning-as-a-service daemon over the critter session engine.\n\
         Binds HOST:PORT (port 0 picks an ephemeral port), writes the bound\n\
         address to DIR/addr, and keeps one directory per job under DIR.\n\
         On restart it recovers every job found there and resumes\n\
         unfinished sweeps from their checkpoints. With --store, jobs\n\
         whose spec sets \"store\": true share the content-addressed\n\
         profile store at DIR (see docs/STORE.md).\n\
         \n\
         Jobs are scheduled by priority (spec field \"priority\", 0..=9,\n\
         higher first); a higher-priority submission preempts a running\n\
         lower-priority sweep at its next checkpointed unit boundary. The\n\
         tenant-max flags cap each tenant's queued jobs, running jobs,\n\
         and concurrently leased rank threads (0 = unlimited); submissions\n\
         over a cap get a typed 429 `quota_exceeded`. API reference:\n\
         docs/SERVICE.md."
    );
    std::process::exit(2)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig::new(PathBuf::from("critter-serve-data"));
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--addr" => config.addr = take(&mut i),
            "--data-dir" => config.data_dir = PathBuf::from(take(&mut i)),
            "--job-workers" => {
                config.job_workers = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--http-workers" => {
                config.http_workers = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--queue-capacity" => {
                config.queue_capacity = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--tenant-max-queued" => {
                config.tenant_max_queued = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--tenant-max-running" => {
                config.tenant_max_running = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--tenant-max-ranks" => {
                config.tenant_max_ranks = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--store" => config.store = Some(PathBuf::from(take(&mut i))),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let data_dir = config.data_dir.clone();
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("critter-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "critter-serve listening on http://{} (data dir: {})",
        server.addr(),
        data_dir.display()
    );

    // Crash-only daemon: no signal choreography, just park forever. The
    // durable state is the data directory; recovery on the next start is
    // the shutdown path.
    loop {
        std::thread::park();
    }
}

//! Typed service errors and their HTTP mapping.
//!
//! Every handler returns `Result<Response, ServeError>`; the router turns a
//! [`ServeError`] into a JSON error body with a stable machine-readable
//! `code` plus a human-readable `detail`. Client mistakes (bad JSON, unknown
//! fields, unknown jobs, wrong state) are always 4xx — a malformed request
//! can never produce a 5xx or a panic (asserted by the testkit's
//! malformed-request table test).

use std::fmt;

/// A service-level error, one variant per HTTP failure class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// 400 — the request body is not valid JSON, has the wrong shape, or
    /// names an unknown space/policy/field.
    BadRequest(String),
    /// 404 — no such job, endpoint, or artifact.
    NotFound(String),
    /// 405 — the path exists but not under this method.
    MethodNotAllowed(String),
    /// 409 — the job exists but is in the wrong state for the request
    /// (e.g. fetching the report of a still-running job).
    Conflict(String),
    /// 413 — the request body exceeds the service's size cap.
    PayloadTooLarge(String),
    /// 429 — the job queue is full (bounded backpressure); retry later.
    Backpressure(String),
    /// 500 — the daemon itself failed (disk errors, handler panics).
    Internal(String),
}

impl ServeError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::MethodNotAllowed(_) => 405,
            ServeError::Conflict(_) => 409,
            ServeError::PayloadTooLarge(_) => 413,
            ServeError::Backpressure(_) => 429,
            ServeError::Internal(_) => 500,
        }
    }

    /// Stable machine-readable error code (the `error.code` body field).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::NotFound(_) => "not_found",
            ServeError::MethodNotAllowed(_) => "method_not_allowed",
            ServeError::Conflict(_) => "conflict",
            ServeError::PayloadTooLarge(_) => "payload_too_large",
            ServeError::Backpressure(_) => "backpressure",
            ServeError::Internal(_) => "internal",
        }
    }

    /// The human-readable detail text.
    pub fn detail(&self) -> &str {
        match self {
            ServeError::BadRequest(d)
            | ServeError::NotFound(d)
            | ServeError::MethodNotAllowed(d)
            | ServeError::Conflict(d)
            | ServeError::PayloadTooLarge(d)
            | ServeError::Backpressure(d)
            | ServeError::Internal(d) => d,
        }
    }

    /// The canonical JSON error body (sorted keys, trailing newline):
    /// `{"error": {"code": ..., "detail": ...}}`.
    pub fn to_body(&self) -> String {
        let inner = serde_json::json!({ "code": self.code(), "detail": self.detail() });
        let v = serde_json::json!({ "error": inner });
        let mut s = serde_json::to_string_pretty(&v).expect("json writer is total");
        s.push('\n');
        s
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.status(), self.code(), self.detail())
    }
}

impl std::error::Error for ServeError {}

impl From<critter_core::CritterError> for ServeError {
    fn from(e: critter_core::CritterError) -> Self {
        ServeError::Internal(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_maps_to_its_class() {
        let cases = [
            (ServeError::BadRequest("x".into()), 400, "bad_request"),
            (ServeError::NotFound("x".into()), 404, "not_found"),
            (ServeError::MethodNotAllowed("x".into()), 405, "method_not_allowed"),
            (ServeError::Conflict("x".into()), 409, "conflict"),
            (ServeError::PayloadTooLarge("x".into()), 413, "payload_too_large"),
            (ServeError::Backpressure("x".into()), 429, "backpressure"),
            (ServeError::Internal("x".into()), 500, "internal"),
        ];
        for (e, status, code) in cases {
            assert_eq!(e.status(), status);
            assert_eq!(e.code(), code);
            assert!(e.to_body().contains(code));
            assert!(e.to_body().ends_with('\n'));
            assert!(e.to_string().contains(code));
        }
    }

    #[test]
    fn critter_errors_become_internal() {
        let e: ServeError = critter_core::CritterError::mismatch("fingerprint").into();
        assert_eq!(e.status(), 500);
        assert!(e.detail().contains("fingerprint"));
    }
}

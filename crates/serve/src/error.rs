//! Typed service errors and their HTTP mapping.
//!
//! Every handler returns `Result<Response, ServeError>`; the router turns a
//! [`ServeError`] into a JSON error body with a stable machine-readable
//! `code` plus a human-readable `detail`. The codes come from one
//! exhaustive enum, [`ErrorCode`]: every variant the service can emit is in
//! [`ErrorCode::ALL`], the table in `docs/SERVICE.md` is drift-checked
//! against that array by the `doc_check` bin, and clients can match on the
//! code without parsing prose. Client mistakes (bad JSON, unknown fields,
//! unknown jobs, wrong state, exceeded quotas) are always 4xx — a malformed
//! request can never produce a 5xx or a panic (asserted by the testkit's
//! malformed-request table test).

use std::fmt;

/// Every machine-readable error code the service can put in an error body.
///
/// The wire contract: `error.code` in a response body is always the
/// [`ErrorCode::as_str`] of exactly one of these variants, and the HTTP
/// status is always the matching [`ErrorCode::status`]. `docs/SERVICE.md`
/// renders this table; `doc_check` fails CI if they diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request body is not valid JSON, has the wrong shape, or names
    /// an unknown space/policy/field.
    BadRequest,
    /// No such job, endpoint, or artifact.
    NotFound,
    /// The path exists but not under this method.
    MethodNotAllowed,
    /// The job exists but is in the wrong state for the request.
    Conflict,
    /// The request body exceeds the service's size cap.
    PayloadTooLarge,
    /// The shared job queue is full (bounded backpressure); retry later.
    Backpressure,
    /// The submitting tenant is at one of its per-tenant quotas (queued
    /// jobs, running jobs, or leased rank threads); retry after one of the
    /// tenant's jobs finishes.
    QuotaExceeded,
    /// The daemon itself failed (disk errors, handler panics).
    Internal,
}

impl ErrorCode {
    /// Every code, in HTTP-status order (the order the docs table renders).
    pub const ALL: [ErrorCode; 8] = [
        ErrorCode::BadRequest,
        ErrorCode::NotFound,
        ErrorCode::MethodNotAllowed,
        ErrorCode::Conflict,
        ErrorCode::PayloadTooLarge,
        ErrorCode::Backpressure,
        ErrorCode::QuotaExceeded,
        ErrorCode::Internal,
    ];

    /// The HTTP status this code is always served with.
    pub fn status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::NotFound => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::Conflict => 409,
            ErrorCode::PayloadTooLarge => 413,
            ErrorCode::Backpressure => 429,
            ErrorCode::QuotaExceeded => 429,
            ErrorCode::Internal => 500,
        }
    }

    /// The stable wire string (the `error.code` body field).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::MethodNotAllowed => "method_not_allowed",
            ErrorCode::Conflict => "conflict",
            ErrorCode::PayloadTooLarge => "payload_too_large",
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::Internal => "internal",
        }
    }

    /// One-line meaning, as rendered in the docs table.
    pub fn summary(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "malformed body, unknown field, or invalid value",
            ErrorCode::NotFound => "no such job, endpoint, or artifact",
            ErrorCode::MethodNotAllowed => "path exists, method does not",
            ErrorCode::Conflict => "job is in the wrong state for the request",
            ErrorCode::PayloadTooLarge => "request body exceeds the size cap",
            ErrorCode::Backpressure => "shared job queue is full; retry later",
            ErrorCode::QuotaExceeded => "per-tenant quota hit; retry after a job finishes",
            ErrorCode::Internal => "daemon-side failure",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A service-level error: an [`ErrorCode`] plus a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// 400 — see [`ErrorCode::BadRequest`].
    BadRequest(String),
    /// 404 — see [`ErrorCode::NotFound`].
    NotFound(String),
    /// 405 — see [`ErrorCode::MethodNotAllowed`].
    MethodNotAllowed(String),
    /// 409 — see [`ErrorCode::Conflict`].
    Conflict(String),
    /// 413 — see [`ErrorCode::PayloadTooLarge`].
    PayloadTooLarge(String),
    /// 429 — see [`ErrorCode::Backpressure`].
    Backpressure(String),
    /// 429 — see [`ErrorCode::QuotaExceeded`].
    QuotaExceeded(String),
    /// 500 — see [`ErrorCode::Internal`].
    Internal(String),
}

impl ServeError {
    /// The machine-readable code this error is served with.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::BadRequest(_) => ErrorCode::BadRequest,
            ServeError::NotFound(_) => ErrorCode::NotFound,
            ServeError::MethodNotAllowed(_) => ErrorCode::MethodNotAllowed,
            ServeError::Conflict(_) => ErrorCode::Conflict,
            ServeError::PayloadTooLarge(_) => ErrorCode::PayloadTooLarge,
            ServeError::Backpressure(_) => ErrorCode::Backpressure,
            ServeError::QuotaExceeded(_) => ErrorCode::QuotaExceeded,
            ServeError::Internal(_) => ErrorCode::Internal,
        }
    }

    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        self.code().status()
    }

    /// The human-readable detail text.
    pub fn detail(&self) -> &str {
        match self {
            ServeError::BadRequest(d)
            | ServeError::NotFound(d)
            | ServeError::MethodNotAllowed(d)
            | ServeError::Conflict(d)
            | ServeError::PayloadTooLarge(d)
            | ServeError::Backpressure(d)
            | ServeError::QuotaExceeded(d)
            | ServeError::Internal(d) => d,
        }
    }

    /// The canonical JSON error body (sorted keys, trailing newline):
    /// `{"error": {"code": ..., "detail": ...}}`.
    pub fn to_body(&self) -> String {
        let inner = serde_json::json!({ "code": self.code().as_str(), "detail": self.detail() });
        let v = serde_json::json!({ "error": inner });
        let mut s = serde_json::to_string_pretty(&v).expect("json writer is total");
        s.push('\n');
        s
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.status(), self.code(), self.detail())
    }
}

impl std::error::Error for ServeError {}

impl From<critter_core::CritterError> for ServeError {
    fn from(e: critter_core::CritterError) -> Self {
        ServeError::Internal(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_maps_to_its_class() {
        let cases = [
            (ServeError::BadRequest("x".into()), 400, "bad_request"),
            (ServeError::NotFound("x".into()), 404, "not_found"),
            (ServeError::MethodNotAllowed("x".into()), 405, "method_not_allowed"),
            (ServeError::Conflict("x".into()), 409, "conflict"),
            (ServeError::PayloadTooLarge("x".into()), 413, "payload_too_large"),
            (ServeError::Backpressure("x".into()), 429, "backpressure"),
            (ServeError::QuotaExceeded("x".into()), 429, "quota_exceeded"),
            (ServeError::Internal("x".into()), 500, "internal"),
        ];
        assert_eq!(cases.len(), ErrorCode::ALL.len(), "one case per code");
        for (e, status, code) in cases {
            assert_eq!(e.status(), status);
            assert_eq!(e.code().as_str(), code);
            assert!(e.to_body().contains(code));
            assert!(e.to_body().ends_with('\n'));
            assert!(e.to_string().contains(code));
        }
    }

    #[test]
    fn code_table_is_exhaustive_and_distinct() {
        let mut names: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.as_str()).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n, "codes must be distinct");
        for code in ErrorCode::ALL {
            assert!((400..=599).contains(&code.status()));
            assert!(!code.summary().is_empty());
        }
        // Quota rejections are client-class, never server errors.
        assert_eq!(ErrorCode::QuotaExceeded.status(), 429);
    }

    #[test]
    fn critter_errors_become_internal() {
        let e: ServeError = critter_core::CritterError::mismatch("fingerprint").into();
        assert_eq!(e.status(), 500);
        assert!(e.detail().contains("fingerprint"));
    }
}

//! The HTTP front end: accept loop, router, and daemon lifecycle.
//!
//! Endpoints (all under `/v1`, documented in `docs/SERVICE.md`):
//!
//! | Method   | Path                    | Purpose                                |
//! |----------|-------------------------|----------------------------------------|
//! | `GET`    | `/v1/healthz`           | liveness + API version + job-state counts |
//! | `GET`    | `/v1/tenants`           | per-tenant usage + the quotas in force |
//! | `GET`    | `/v1/jobs`              | list jobs in submission order          |
//! | `POST`   | `/v1/jobs`              | submit a job spec (202, or typed 429)  |
//! | `GET`    | `/v1/jobs/{id}`         | status: state machine + progress       |
//! | `DELETE` | `/v1/jobs/{id}`         | cancel (queued: immediate; running: next unit boundary) |
//! | `GET`    | `/v1/jobs/{id}/events`  | ordered event log, long-polls with `?since=N&wait_ms=T` |
//! | `GET`    | `/v1/jobs/{id}/report`  | canonical `TuningReport` bytes         |
//! | `GET`    | `/v1/jobs/{id}/metrics` | observability metrics text             |
//! | `GET`    | `/v1/jobs/{id}/profile` | kernel-model warm-start profile        |
//! | `GET`    | `/v1/store`             | profile-store census + latest entries  |
//! | `GET`    | `/v1/store/blob/{hash}` | one profile blob by content hash       |
//!
//! The store endpoints exist only when the daemon was started with
//! `--store`; without it they are 404s, and jobs whose spec sets
//! `"store": true` are rejected at submit time with a 409.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use critter_store::Store;

use crate::api::JobSpec;
use crate::error::ServeError;
use crate::http::{read_request, write_response, Request, Response};
use crate::job::{JobState, Registry};
use crate::scheduler::{JobTicket, QuotaConfig, Scheduler};
use crate::API_VERSION;

/// Cap on one long-poll wait (`wait_ms` is clamped to this), comfortably
/// below the connection read timeout so a waiting client never times out.
pub const MAX_EVENT_WAIT: Duration = Duration::from_secs(8);

/// Daemon configuration (the `critter-serve` CLI flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (the chosen address
    /// is written to `<data_dir>/addr`).
    pub addr: String,
    /// Data directory holding one subdirectory per job.
    pub data_dir: PathBuf,
    /// Concurrent tuning sweeps.
    pub job_workers: usize,
    /// Concurrent HTTP connections.
    pub http_workers: usize,
    /// Bounded job-queue depth (beyond it, submissions get 429).
    pub queue_capacity: usize,
    /// Per-tenant cap on queued jobs (`0` = unlimited).
    pub tenant_max_queued: usize,
    /// Per-tenant cap on running jobs (`0` = unlimited).
    pub tenant_max_running: usize,
    /// Per-tenant cap on concurrently leased rank threads (`0` = unlimited).
    pub tenant_max_ranks: usize,
    /// Shared content-addressed profile store (`--store`). Jobs whose
    /// spec sets `"store": true` warm-start from it and publish back into
    /// it; the `/v1/store` endpoints expose its census and blobs.
    pub store: Option<PathBuf>,
}

impl ServerConfig {
    /// Defaults matching `critter-serve --help`.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".into(),
            data_dir: data_dir.into(),
            job_workers: 2,
            http_workers: 4,
            queue_capacity: 64,
            tenant_max_queued: 16,
            tenant_max_running: 2,
            tenant_max_ranks: 0,
            store: None,
        }
    }

    /// The per-tenant quotas this configuration implies.
    pub fn quota(&self) -> QuotaConfig {
        QuotaConfig {
            max_queued: self.tenant_max_queued,
            max_running: self.tenant_max_running,
            max_ranks: self.tenant_max_ranks,
        }
    }

    /// Attach a shared profile-store directory.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = Some(dir.into());
        self
    }
}

/// A running daemon. Dropping it leaks the threads; call
/// [`Server::shutdown`] for an orderly stop (tests do; the binary runs
/// until killed — that's what the kill/restart oracle is for).
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    accept_handle: JoinHandle<()>,
    http_handles: Vec<JoinHandle<()>>,
    scheduler: Arc<Scheduler>,
}

impl Server {
    /// Open the registry (recovering any jobs found in the data dir),
    /// start the worker pools, bind the listener, and write
    /// `<data_dir>/addr` with the bound address.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let (registry, pending) = Registry::open(&config.data_dir)?;
        let registry = Arc::new(registry);
        // Open the store up front: a bad --store directory fails the start
        // instead of every job, and the layout exists before the first
        // publish races the first census.
        let store = match &config.store {
            Some(dir) => Some(critter_store::Store::open(dir).map_err(std::io::Error::other)?),
            None => None,
        };
        let scheduler = Arc::new(Scheduler::start(
            registry.clone(),
            config.job_workers,
            config.queue_capacity,
            config.quota(),
            config.store.clone(),
        ));

        // Recovered jobs re-enter the queue in submission order. They were
        // admitted before the restart, so they bypass the queue bound and
        // the tenant quotas; the priority queue still orders them.
        for id in pending {
            let Ok(entry) = registry.get(&id) else { continue };
            scheduler.enqueue_recovered(ticket_for(&id, &entry.spec));
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        std::fs::write(config.data_dir.join("addr"), format!("{addr}\n"))?;

        let stop = Arc::new(AtomicBool::new(false));
        let (conn_tx, conn_rx) = sync_channel::<TcpStream>(config.http_workers.max(1) * 2);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let http_handles = (0..config.http_workers.max(1))
            .map(|i| {
                let registry = registry.clone();
                let scheduler = scheduler.clone();
                let conn_rx = conn_rx.clone();
                let store = store.clone();
                std::thread::Builder::new()
                    .name(format!("critter-serve-http-{i}"))
                    .spawn(move || http_loop(&registry, &scheduler, &store, &conn_rx))
                    .expect("spawning an HTTP worker")
            })
            .collect();
        let accept_handle = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("critter-serve-accept".into())
                .spawn(move || accept_loop(&listener, &conn_tx, &stop))
                .expect("spawning the accept loop")
        };

        Ok(Server { addr, registry, stop, accept_handle, http_handles, scheduler })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job registry (the oracle suites inspect it directly).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Orderly stop: close the listener, drain the HTTP workers, and wait
    /// for job workers to finish their current sweeps.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_handle.join();
        for handle in self.http_handles {
            let _ = handle.join();
        }
        if let Ok(scheduler) = Arc::try_unwrap(self.scheduler) {
            scheduler.shutdown();
        }
    }
}

fn accept_loop(listener: &TcpListener, conn_tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return; // drops conn_tx, which drains the HTTP workers
        }
        if conn_tx.send(stream).is_err() {
            return;
        }
    }
}

fn http_loop(
    registry: &Arc<Registry>,
    scheduler: &Arc<Scheduler>,
    store: &Option<Store>,
    conn_rx: &Arc<Mutex<Receiver<TcpStream>>>,
) {
    loop {
        let mut stream = match conn_rx.lock().recv() {
            Ok(s) => s,
            Err(_) => return,
        };
        let response = match read_request(&mut stream) {
            Ok(request) => {
                // Handler panics become 500s, never a dead worker.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route(registry, scheduler, store, &request)
                }))
                .unwrap_or_else(|_| Err(ServeError::Internal("handler panicked".into())))
                .unwrap_or_else(|e| Response::from_error(&e))
            }
            Err(e) => Response::from_error(&e),
        };
        write_response(&mut stream, &response);
    }
}

/// Dispatch one request. Client mistakes surface as typed 4xx responses;
/// only daemon-side faults map to 500.
fn route(
    registry: &Arc<Registry>,
    scheduler: &Arc<Scheduler>,
    store: &Option<Store>,
    request: &Request,
) -> Result<Response, ServeError> {
    let method = request.method.as_str();
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => Ok(healthz(registry, store)),
        (_, ["v1", "healthz"]) => method_not_allowed(method, "GET"),

        ("GET", ["v1", "tenants"]) => Ok(tenants(registry, scheduler)),
        (_, ["v1", "tenants"]) => method_not_allowed(method, "GET"),

        ("GET", ["v1", "jobs"]) => Ok(Response::json(200, registry.list_json())),
        ("POST", ["v1", "jobs"]) => submit(registry, scheduler, store, request),
        (_, ["v1", "jobs"]) => method_not_allowed(method, "GET, POST"),

        ("GET", ["v1", "jobs", id]) => Ok(Response::json(200, registry.status_json(id)?)),
        ("DELETE", ["v1", "jobs", id]) => {
            registry.cancel(id)?;
            // A still-queued job is finalized right here: out of the queue,
            // quota slot released, `cancelled.json` written. A running job
            // keeps the old contract — its flag stops the sweep at the next
            // committed unit boundary.
            scheduler.cancel_queued(registry, id);
            Ok(Response::json(202, registry.status_json(id)?))
        }
        (_, ["v1", "jobs", _]) => method_not_allowed(method, "GET, DELETE"),

        ("GET", ["v1", "jobs", id, "events"]) => events(registry, id, request),
        (_, ["v1", "jobs", _, "events"]) => method_not_allowed(method, "GET"),

        ("GET", ["v1", "jobs", id, "report"]) => artifact(registry, id, "report.json", true),
        ("GET", ["v1", "jobs", id, "metrics"]) => artifact(registry, id, "metrics.txt", false),
        ("GET", ["v1", "jobs", id, "profile"]) => artifact(registry, id, "profile.json", true),
        (_, ["v1", "jobs", _, "report" | "metrics" | "profile"]) => {
            method_not_allowed(method, "GET")
        }

        ("GET", ["v1", "store"]) => store_census(store),
        (_, ["v1", "store"]) => method_not_allowed(method, "GET"),
        ("GET", ["v1", "store", "blob", hash]) => store_blob(store, hash),
        (_, ["v1", "store", "blob", _]) => method_not_allowed(method, "GET"),

        _ => Err(ServeError::NotFound(format!("no such endpoint `{}`", request.path))),
    }
}

fn method_not_allowed(method: &str, allowed: &str) -> Result<Response, ServeError> {
    Err(ServeError::MethodNotAllowed(format!(
        "method {method} is not supported here (allowed: {allowed})"
    )))
}

fn healthz(registry: &Registry, store: &Option<Store>) -> Response {
    let counts = registry.state_counts();
    let mut jobs = serde_json::Map::new();
    for (state, n) in counts {
        jobs.insert(state.to_string(), serde_json::json!(n));
    }
    let mut doc = serde_json::json!({
        "ok": true,
        "version": env!("CARGO_PKG_VERSION"),
        "api": serde_json::json!({ "version": API_VERSION }),
        "jobs": serde_json::Value::Object(jobs),
    });
    // The store census appears only on daemons started with --store, so
    // store-less deployments keep their exact healthz document.
    if let Some(store) = store {
        let map = doc.as_object_mut().expect("doc is an object");
        match store.census() {
            Ok(census) => map.insert(
                "store".into(),
                serde_json::json!({
                    "blobs": census.blobs,
                    "entries": census.entries,
                    "generation": census.generation,
                }),
            ),
            Err(e) => map.insert("store".into(), serde_json::json!({"error": e.to_string()})),
        };
    }
    let mut body = serde_json::to_string_pretty(&doc).expect("json writer is total");
    body.push('\n');
    Response::json(200, body)
}

/// `GET /v1/tenants`: the quotas in force plus, per tenant, the total job
/// count and the live queued/running/rank-lease usage.
fn tenants(registry: &Registry, scheduler: &Scheduler) -> Response {
    let (usage, quota) = scheduler.tenant_usage();
    let mut tenants = serde_json::Map::new();
    for (tenant, jobs) in registry.tenant_counts() {
        let live = usage.get(&tenant).copied().unwrap_or_default();
        tenants.insert(
            tenant,
            serde_json::json!({
                "jobs": jobs,
                "queued": live.queued,
                "running": live.running,
                "running_ranks": live.running_ranks,
            }),
        );
    }
    let doc = serde_json::json!({
        "quotas": serde_json::json!({
            "max_queued": quota.max_queued,
            "max_running": quota.max_running,
            "max_ranks": quota.max_ranks,
        }),
        "tenants": serde_json::Value::Object(tenants),
    });
    let mut body = serde_json::to_string_pretty(&doc).expect("json writer is total");
    body.push('\n');
    Response::json(200, body)
}

/// `GET /v1/jobs/{id}/events?since=N&wait_ms=T`: the ordered event log
/// suffix after seq `N`, long-polling up to `T` milliseconds when it is
/// empty and the job is still live. The response's `next` is the client's
/// next `since`.
fn events(registry: &Arc<Registry>, id: &str, request: &Request) -> Result<Response, ServeError> {
    let since = request.query_u64("since", 0)?;
    let wait = Duration::from_millis(request.query_u64("wait_ms", 0)?).min(MAX_EVENT_WAIT);
    let entry = registry.get(id)?;
    let (events, next) = entry.events.since(since);
    let (events, next) = if events.is_empty() && !wait.is_zero() && !entry.state.is_terminal() {
        entry.events.wait_since(since, wait)
    } else {
        (events, next)
    };
    let doc = serde_json::json!({
        "events": serde_json::Value::Array(events),
        "next": next,
    });
    let mut body = serde_json::to_string_pretty(&doc).expect("json writer is total");
    body.push('\n');
    Ok(Response::json(200, body))
}

fn store_census(store: &Option<Store>) -> Result<Response, ServeError> {
    let store = require_store(store)?;
    let census = store.census().map_err(|e| ServeError::Internal(e.to_string()))?;
    let index = store.latest().map_err(|e| ServeError::Internal(e.to_string()))?;
    let entries: Vec<serde_json::Value> =
        index.iter().flat_map(|i| i.entries.iter().map(|e| e.to_json())).collect();
    let doc = serde_json::json!({
        "blobs": census.blobs,
        "entries": entries,
        "generation": census.generation,
    });
    let mut body = serde_json::to_string_pretty(&doc).expect("json writer is total");
    body.push('\n');
    Ok(Response::json(200, body))
}

fn store_blob(store: &Option<Store>, hash: &str) -> Result<Response, ServeError> {
    let store = require_store(store)?;
    let hash = u64::from_str_radix(hash, 16)
        .map_err(|_| ServeError::BadRequest(format!("`{hash}` is not a hex content hash")))?;
    let stores = store
        .load_blob(hash)
        .map_err(|e| ServeError::NotFound(format!("blob {hash:013x}: {e}")))?;
    let mut body = serde_json::to_string_pretty(&critter_core::snapshot::stores_to_json(&stores))
        .expect("json writer is total");
    body.push('\n');
    Ok(Response::json(200, body))
}

fn require_store(store: &Option<Store>) -> Result<&Store, ServeError> {
    store.as_ref().ok_or_else(|| {
        ServeError::NotFound("this daemon has no profile store (start with --store DIR)".into())
    })
}

fn submit(
    registry: &Arc<Registry>,
    scheduler: &Arc<Scheduler>,
    store: &Option<Store>,
    request: &Request,
) -> Result<Response, ServeError> {
    let spec = JobSpec::from_json(request.body_utf8()?)?;
    if spec.store && store.is_none() {
        return Err(ServeError::Conflict(
            "job spec sets \"store\": true but this daemon has no profile store \
             (start with --store DIR)"
                .into(),
        ));
    }
    let ticket_spec = spec.clone();
    let id = registry.create(spec)?;
    // Snapshot the status document before handing the job to the workers,
    // so the response deterministically shows the submit-time state
    // (`queued`, zero progress) even if a worker dequeues it immediately.
    let body = registry.status_json(&id)?;
    if let Err(e) = scheduler.enqueue(ticket_for(&id, &ticket_spec)) {
        // Backpressure or an exceeded tenant quota: roll the whole
        // submission back so a rejected job leaves no trace in the
        // registry or on disk.
        registry.discard(&id);
        return Err(e);
    }
    Ok(Response::json(202, body))
}

/// The scheduler's view of a job: id, tenant, priority, and the rank
/// threads its sweep leases.
fn ticket_for(id: &str, spec: &JobSpec) -> JobTicket {
    JobTicket {
        id: id.to_string(),
        tenant: spec.tenant.clone(),
        priority: spec.priority,
        ranks: spec.ranks(),
    }
}

/// Serve a terminal artifact's bytes verbatim. `json` selects the
/// content type; the report and profile are canonical JSON documents, the
/// metrics artifact is plain text.
fn artifact(
    registry: &Arc<Registry>,
    id: &str,
    name: &str,
    json: bool,
) -> Result<Response, ServeError> {
    let entry = registry.get(id)?;
    match entry.state {
        JobState::Done => {}
        JobState::Failed => {
            return Err(ServeError::Conflict(format!(
                "job `{id}` failed: {}",
                entry.error.as_deref().unwrap_or("unknown failure")
            )))
        }
        state => {
            return Err(ServeError::Conflict(format!(
                "job `{id}` is {}; artifacts exist once it is done",
                state.name()
            )))
        }
    }
    let path = registry.job_dir(id).join(name);
    if !path.is_file() {
        return Err(ServeError::NotFound(format!(
            "job `{id}` produced no `{name}` (enable the matching spec option)"
        )));
    }
    let bytes = std::fs::read_to_string(&path)
        .map_err(|e| ServeError::Internal(format!("reading {name} of {id}: {e}")))?;
    Ok(if json { Response::json(200, bytes) } else { Response::text(200, bytes) })
}

//! A minimal HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The build environment vendors its few dependencies, so the daemon
//! hand-rolls exactly the slice of HTTP it needs: one request per
//! connection (`Connection: close`), JSON bodies, no chunked encoding, no
//! TLS. The parser is defensive — header and body size caps, read
//! timeouts, and typed 4xx errors for anything malformed — because it
//! fronts a long-running multi-tenant daemon.
//!
//! The [`client`] module is the counterpart used by the oracle suites and
//! the CI smoke scripts; `curl` speaks to the server just as well (see
//! `docs/SERVICE.md` for a walkthrough).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::error::ServeError;

/// Cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a request body (job specs and inline warm-start profiles).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Per-connection read timeout.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Decoded path with any query string stripped (`/v1/jobs/job-000001`).
    pub path: String,
    /// Raw query string without the leading `?` (empty when absent).
    pub query: String,
    /// Raw body bytes (empty when the request has no body).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, or a typed 400.
    pub fn body_utf8(&self) -> Result<&str, ServeError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServeError::BadRequest("request body is not valid UTF-8".into()))
    }

    /// The value of query parameter `name`, if present. No percent
    /// decoding: the parameters this API defines are plain integers.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// Parse query parameter `name` as an unsigned integer, defaulting to
    /// `default` when absent. A non-numeric value is a typed 400.
    pub fn query_u64(&self, name: &str, default: u64) -> Result<u64, ServeError> {
        match self.query_param(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                ServeError::BadRequest(format!(
                    "query parameter `{name}` must be an unsigned integer, got `{raw}`"
                ))
            }),
        }
    }
}

/// An HTTP response: status plus a body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body text.
    pub body: String,
    /// `Content-Type` header value (JSON everywhere except the plain-text
    /// metrics artifact).
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response { status, body: body.into(), content_type: "application/json" }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response { status, body: body.into(), content_type: "text/plain" }
    }

    /// Render a [`ServeError`] as its canonical JSON body.
    pub fn from_error(e: &ServeError) -> Self {
        Response::json(e.status(), e.to_body())
    }
}

/// The reason phrase for the status codes this daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Read and parse one request from `stream`. Malformed input maps to typed
/// 4xx errors; the caller renders them and closes the connection.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServeError> {
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    // Read until the blank line ending the head, keeping any body bytes
    // that arrived in the same read.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ServeError::PayloadTooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 4096];
        let n = stream
            .read(&mut chunk)
            .map_err(|e| ServeError::BadRequest(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(ServeError::BadRequest("connection closed mid-request".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ServeError::BadRequest("request head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) =
        (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1") {
        return Err(ServeError::BadRequest(format!("malformed request line `{request_line}`")));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| ServeError::BadRequest("bad Content-Length header".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ServeError::PayloadTooLarge(format!(
            "request body exceeds {MAX_BODY_BYTES} bytes"
        )));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(64 * 1024)];
        let n = stream
            .read(&mut chunk)
            .map_err(|e| ServeError::BadRequest(format!("body read failed: {e}")))?;
        if n == 0 {
            return Err(ServeError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Request { method: method.to_string(), path, query, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write `response` to `stream` and flush. Errors are ignored — the peer
/// may have hung up, and the daemon has nothing useful to do about it.
pub fn write_response(stream: &mut TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

/// A tiny blocking HTTP client: one request per connection, mirroring the
/// server's `Connection: close` contract. Used by the oracle suites; its
/// behavior matches a plain `curl` invocation.
pub mod client {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};

    /// Send `method path` with an optional JSON `body` to `addr`; returns
    /// `(status, body)`.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let mut stream = TcpStream::connect(addr)?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let status = raw
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("malformed response: {raw:.60}")))?;
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        Ok((status, body))
    }

    /// [`request`] returning the parsed JSON body alongside the status.
    pub fn request_json(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, serde_json::Value)> {
        let (status, text) = request(addr, method, path, body)?;
        let v = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::other(format!("non-JSON response body: {e}")))?;
        Ok((status, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_cover_the_emitted_statuses() {
        for s in [200, 202, 400, 404, 405, 409, 413, 429, 500] {
            assert_ne!(reason(s), "Unknown", "status {s} needs a reason phrase");
        }
    }

    #[test]
    fn query_params_parse_and_reject_garbage() {
        let req = Request {
            method: "GET".into(),
            path: "/v1/jobs/job-000001/events".into(),
            query: "since=3&wait_ms=250&flag".into(),
            body: Vec::new(),
        };
        assert_eq!(req.query_param("since"), Some("3"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.query_u64("since", 0).unwrap(), 3);
        assert_eq!(req.query_u64("missing", 7).unwrap(), 7);
        let err = Request { query: "since=lots".into(), ..req }.query_u64("since", 0).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn head_end_is_found_across_chunks() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}

//! The job registry: state machine, on-disk layout, and status rendering.
//!
//! Every job owns one directory under the daemon's data dir:
//!
//! ```text
//! <data-dir>/job-000001/
//!   spec.json        canonical JobSpec (written at submit, reloaded on restart)
//!   warm-start.json  inline warm-start profile, when the spec carries one
//!   checkpoint.json  session-engine checkpoint (while running)
//!   session.log      session-engine unit log
//!   events.jsonl     append-only state/progress event log (streamed via
//!                    GET /v1/jobs/{id}/events; reloaded on restart)
//!   report.json      canonical TuningReport bytes (terminal: done)
//!   metrics.txt      observability metrics, when the spec observes
//!   profile.json     kernel-model profile, when the spec requests one
//!   error.json       failure record (terminal: failed)
//!   cancelled.json   cancellation marker (terminal: cancelled)
//! ```
//!
//! The state machine is `queued → running → done | failed | cancelled`,
//! with a `preempted` detour (`running → preempted → running`) when a
//! higher-priority submission pauses a sweep at a committed unit boundary.
//! Terminal states are exactly the presence of a terminal artifact — which
//! is why a killed daemon can rebuild its registry by re-listing the job
//! directories: jobs with no terminal artifact (including jobs killed
//! while preempted) re-enter the queue and the session engine resumes them
//! from their checkpoint.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use serde_json::Value;

use crate::api::JobSpec;
use crate::error::ServeError;

/// Lifecycle states of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a job worker.
    Queued,
    /// A worker is sweeping (or resuming) it.
    Running,
    /// Paused at a checkpointed unit boundary to yield its worker to a
    /// higher-priority job; back in the queue and will resume.
    Preempted,
    /// Finished; `report.json` is served verbatim.
    Done,
    /// The sweep returned an error; see `error.json`.
    Failed,
    /// Cancelled via `DELETE /v1/jobs/{id}` at a checkpointed unit
    /// boundary — resubmitting the same spec would resume, but the daemon
    /// keeps the directory as a record instead.
    Cancelled,
}

impl JobState {
    /// Wire name (the `state` field of status responses).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Preempted => "preempted",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// Append-only per-job event log: the in-memory mirror of the job
/// directory's `events.jsonl`.
///
/// Line `i` (0-based) always carries `"seq": i + 1`, so a client that has
/// seen `seq <= N` asks for `?since=N` and gets exactly the suffix. Writers
/// append under the lock and notify the condvar, which is what makes the
/// long-poll `GET /v1/jobs/{id}/events` endpoint cheap: waiters block on
/// the condvar instead of spinning on the file.
pub struct JobEvents {
    lines: Mutex<Vec<String>>,
    cv: Condvar,
}

impl JobEvents {
    /// An empty log.
    pub fn new() -> JobEvents {
        JobEvents { lines: Mutex::new(Vec::new()), cv: Condvar::new() }
    }

    /// Reload a log from `events.jsonl`, tolerating a torn tail: parsing
    /// stops at the first line that is not valid JSON with the expected
    /// `seq` (a daemon killed mid-append leaves at most one such line).
    pub fn load(path: &Path) -> JobEvents {
        let mut lines = Vec::new();
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                let Ok(doc) = serde_json::from_str(line) else { break };
                let expected = lines.len() as u64 + 1;
                if doc.get("seq").and_then(Value::as_u64) != Some(expected) {
                    break;
                }
                lines.push(line.to_string());
            }
        }
        JobEvents { lines: Mutex::new(lines), cv: Condvar::new() }
    }

    /// Append an event (the `seq` field is assigned here), mirroring it to
    /// `file` when given. File errors are swallowed: the in-memory log and
    /// the waiters' wakeup must not depend on the disk.
    fn append(&self, file: Option<&Path>, doc: &mut Value) {
        let mut lines = self.lines.lock();
        let seq = lines.len() as u64 + 1;
        doc.as_object_mut()
            .expect("events are objects")
            .insert("seq".into(), serde_json::json!(seq));
        let line = serde_json::to_string(doc).expect("json writer is total");
        if let Some(path) = file {
            use std::io::Write as _;
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| writeln!(f, "{line}"));
            if let Err(e) = appended {
                eprintln!("critter-serve: appending to {}: {e}", path.display());
            }
        }
        lines.push(line);
        self.cv.notify_all();
    }

    /// Events with `seq > since`, plus the highest `seq` in the log (the
    /// client's next `since`).
    pub fn since(&self, since: u64) -> (Vec<Value>, u64) {
        let lines = self.lines.lock();
        let next = lines.len() as u64;
        let skip = (since.min(next)) as usize;
        let events = lines[skip..]
            .iter()
            .map(|l| serde_json::from_str(l).expect("log lines are valid JSON"))
            .collect();
        (events, next)
    }

    /// Like [`JobEvents::since`], but blocks up to `timeout` for an event
    /// with `seq > since` to arrive.
    pub fn wait_since(&self, since: u64, timeout: Duration) -> (Vec<Value>, u64) {
        let deadline = Instant::now() + timeout;
        let mut lines = self.lines.lock();
        while lines.len() as u64 <= since {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let timed_out = self.cv.wait_for(&mut lines, deadline - now);
            if timed_out.timed_out() {
                break;
            }
        }
        let next = lines.len() as u64;
        let skip = (since.min(next)) as usize;
        let events = lines[skip..]
            .iter()
            .map(|l| serde_json::from_str(l).expect("log lines are valid JSON"))
            .collect();
        (events, next)
    }

    /// Number of events in the log.
    pub fn len(&self) -> u64 {
        self.lines.lock().len() as u64
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().is_empty()
    }
}

impl Default for JobEvents {
    fn default() -> Self {
        JobEvents::new()
    }
}

impl std::fmt::Debug for JobEvents {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobEvents").field("len", &self.len()).finish()
    }
}

/// In-memory record of one job (the durable truth lives in its directory).
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// The validated spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Committed `(configuration, repetition)` units.
    pub units_done: usize,
    /// Total units in the sweep.
    pub units_total: usize,
    /// Failure detail, for `Failed` jobs.
    pub error: Option<String>,
    /// Set by `DELETE`; the progress hook observes it at unit boundaries.
    pub cancel: Arc<AtomicBool>,
    /// The job's ordered state/progress event log (see [`JobEvents`]).
    pub events: Arc<JobEvents>,
}

/// The daemon's job table, backed by the data directory.
pub struct Registry {
    data_dir: PathBuf,
    jobs: Mutex<BTreeMap<String, JobEntry>>,
    next_id: AtomicU64,
}

impl Registry {
    /// Open (or create) `data_dir`, rebuilding the registry from the job
    /// directories found there. Returns the registry plus the ids of jobs
    /// with no terminal artifact, in submission order — the caller
    /// re-enqueues them and the session engine resumes each from its
    /// checkpoint.
    pub fn open(data_dir: &Path) -> std::io::Result<(Registry, Vec<String>)> {
        std::fs::create_dir_all(data_dir)?;
        let mut jobs = BTreeMap::new();
        let mut pending = Vec::new();
        let mut max_seq = 0u64;
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(data_dir)?.filter_map(|e| Some(e.ok()?.path())).collect();
        entries.sort();
        for dir in entries {
            let Some(id) = dir.file_name().and_then(|n| n.to_str()).map(str::to_string) else {
                continue;
            };
            let Some(seq) = id.strip_prefix("job-").and_then(|s| s.parse::<u64>().ok()) else {
                continue;
            };
            let spec_text = match std::fs::read_to_string(dir.join("spec.json")) {
                Ok(t) => t,
                Err(_) => continue, // a partially created directory; ignore it
            };
            let spec = match JobSpec::from_json(&spec_text) {
                Ok(s) => s,
                Err(_) => continue,
            };
            max_seq = max_seq.max(seq);
            let units_total = spec.units_total();
            let (state, units_done, error) = if dir.join("report.json").is_file() {
                (JobState::Done, units_total, None)
            } else if dir.join("cancelled.json").is_file() {
                (JobState::Cancelled, 0, None)
            } else if dir.join("error.json").is_file() {
                let detail = std::fs::read_to_string(dir.join("error.json"))
                    .ok()
                    .and_then(|t| serde_json::from_str(&t).ok())
                    .and_then(|v| v.get("error")?.get("detail")?.as_str().map(str::to_string))
                    .unwrap_or_else(|| "unreadable error record".into());
                (JobState::Failed, 0, Some(detail))
            } else {
                pending.push(id.clone());
                (JobState::Queued, 0, None)
            };
            let events = Arc::new(JobEvents::load(&dir.join("events.jsonl")));
            jobs.insert(
                id,
                JobEntry {
                    spec,
                    state,
                    units_done,
                    units_total,
                    error,
                    cancel: Arc::new(AtomicBool::new(false)),
                    events,
                },
            );
        }
        let registry = Registry {
            data_dir: data_dir.to_path_buf(),
            jobs: Mutex::new(jobs),
            next_id: AtomicU64::new(max_seq + 1),
        };
        // Recovered unfinished jobs re-enter the queue; say so in their
        // event logs, so a streaming client sees the restart seam.
        for id in &pending {
            registry.emit_state(id, JobState::Queued);
        }
        Ok((registry, pending))
    }

    /// The directory owned by `id`.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.data_dir.join(id)
    }

    /// Create a job: allocate an id, write the directory with `spec.json`
    /// (and `warm-start.json` when the spec carries an inline profile),
    /// and register it as queued.
    pub fn create(&self, spec: JobSpec) -> Result<String, ServeError> {
        let id = format!("job-{:06}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let dir = self.job_dir(&id);
        let write = |name: &str, bytes: &str| -> Result<(), ServeError> {
            std::fs::write(dir.join(name), bytes)
                .map_err(|e| ServeError::Internal(format!("writing {name} for {id}: {e}")))
        };
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServeError::Internal(format!("creating job dir for {id}: {e}")))?;
        if let Some(w) = &spec.warm_start {
            let mut text = serde_json::to_string_pretty(w).expect("json writer is total");
            text.push('\n');
            write("warm-start.json", &text)?;
        }
        write("spec.json", &spec.to_json())?;
        let units_total = spec.units_total();
        self.jobs.lock().insert(
            id.clone(),
            JobEntry {
                spec,
                state: JobState::Queued,
                units_done: 0,
                units_total,
                error: None,
                cancel: Arc::new(AtomicBool::new(false)),
                events: Arc::new(JobEvents::new()),
            },
        );
        self.emit_state(&id, JobState::Queued);
        Ok(id)
    }

    /// Roll back a [`Registry::create`] whose enqueue hit backpressure:
    /// forget the job and remove its directory.
    pub fn discard(&self, id: &str) {
        self.jobs.lock().remove(id);
        let _ = std::fs::remove_dir_all(self.job_dir(id));
    }

    /// Snapshot one job's entry.
    pub fn get(&self, id: &str) -> Result<JobEntry, ServeError> {
        self.jobs
            .lock()
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::NotFound(format!("no such job `{id}`")))
    }

    /// All job ids in submission order.
    pub fn ids(&self) -> Vec<String> {
        self.jobs.lock().keys().cloned().collect()
    }

    /// Per-tenant job totals across all states, for `GET /v1/tenants`.
    pub fn tenant_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for entry in self.jobs.lock().values() {
            *counts.entry(entry.spec.tenant.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// Count of jobs per state, for `/v1/healthz`.
    pub fn state_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Preempted,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            counts.insert(state.name(), 0);
        }
        for entry in self.jobs.lock().values() {
            *counts.get_mut(entry.state.name()).expect("all states seeded") += 1;
        }
        counts
    }

    /// Transition `id` to `state` (with an error detail for failures) and
    /// append the matching `state` event to the job's log. The event lands
    /// before the state becomes visible, so a client that has observed the
    /// transition via a status poll always finds the matching event.
    pub fn set_state(&self, id: &str, state: JobState, error: Option<String>) {
        self.emit_state(id, state);
        if let Some(entry) = self.jobs.lock().get_mut(id) {
            entry.state = state;
            if state == JobState::Done {
                entry.units_done = entry.units_total;
            }
            entry.error = error;
        }
    }

    /// Record committed progress for `id` and append a `progress` event.
    pub fn set_progress(&self, id: &str, units_done: usize) {
        let (events, units_total) = {
            let mut jobs = self.jobs.lock();
            let Some(entry) = jobs.get_mut(id) else { return };
            entry.units_done = units_done;
            (entry.events.clone(), entry.units_total)
        };
        let mut doc = serde_json::json!({
            "kind": "progress",
            "units_done": units_done,
            "units_total": units_total,
        });
        events.append(Some(&self.job_dir(id).join("events.jsonl")), &mut doc);
    }

    /// Append a `state` event to `id`'s log (no state mutation).
    fn emit_state(&self, id: &str, state: JobState) {
        let Some(events) = self.jobs.lock().get(id).map(|e| e.events.clone()) else { return };
        let mut doc = serde_json::json!({ "kind": "state", "state": state.name() });
        events.append(Some(&self.job_dir(id).join("events.jsonl")), &mut doc);
    }

    /// Request cancellation of a queued or running job. The flag is
    /// observed at the next committed unit boundary, so cancellation is
    /// always checkpoint-consistent.
    pub fn cancel(&self, id: &str) -> Result<(), ServeError> {
        let jobs = self.jobs.lock();
        let entry =
            jobs.get(id).ok_or_else(|| ServeError::NotFound(format!("no such job `{id}`")))?;
        if entry.state.is_terminal() {
            return Err(ServeError::Conflict(format!(
                "job `{id}` is already {}",
                entry.state.name()
            )));
        }
        entry.cancel.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// The canonical status document for `id` (the `GET /v1/jobs/{id}`
    /// body): id, state, progress, the canonical spec, and a failure
    /// detail when failed.
    pub fn status_json(&self, id: &str) -> Result<String, ServeError> {
        let entry = self.get(id)?;
        Ok(render_status(id, &entry))
    }

    /// The list document for `GET /v1/jobs`: every job's id and state in
    /// submission order.
    pub fn list_json(&self) -> String {
        let jobs = self.jobs.lock();
        let items: Vec<Value> = jobs
            .iter()
            .map(|(id, entry)| {
                let progress = serde_json::json!({
                    "units_done": entry.units_done,
                    "units_total": entry.units_total,
                });
                serde_json::json!({
                    "id": id.as_str(),
                    "state": entry.state.name(),
                    "progress": progress,
                })
            })
            .collect();
        let items = Value::Array(items);
        let mut s = serde_json::to_string_pretty(&serde_json::json!({ "jobs": items }))
            .expect("json writer is total");
        s.push('\n');
        s
    }
}

fn render_status(id: &str, entry: &JobEntry) -> String {
    let spec_doc: Value =
        serde_json::from_str(&entry.spec.to_json()).expect("canonical spec parses");
    let progress = serde_json::json!({
        "units_done": entry.units_done,
        "units_total": entry.units_total,
    });
    let mut doc = serde_json::json!({
        "id": id,
        "state": entry.state.name(),
        "progress": progress,
        "spec": spec_doc,
    });
    let map = doc.as_object_mut().expect("doc is an object");
    if let Some(detail) = &entry.error {
        map.insert(
            "error".into(),
            serde_json::json!({ "code": "sweep_failed", "detail": detail.as_str() }),
        );
    }
    let mut s = serde_json::to_string_pretty(&doc).expect("json writer is total");
    s.push('\n');
    s
}

/// Atomically write a terminal artifact: write to a temp name in the same
/// directory, then rename over the target. A daemon killed mid-write can
/// never leave a truncated `report.json` that would misclassify the job
/// as done on restart.
pub fn write_artifact(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, dir.join(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("critter-serve-job-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> JobSpec {
        JobSpec::from_json(
            r#"{"space": "slate-cholesky", "policy": "local", "smoke": true, "machine": "test"}"#,
        )
        .unwrap()
    }

    #[test]
    fn create_then_reopen_requeues_unfinished_jobs() {
        let dir = temp_dir("reopen");
        let (registry, pending) = Registry::open(&dir).unwrap();
        assert!(pending.is_empty());
        let a = registry.create(spec()).unwrap();
        let b = registry.create(spec()).unwrap();
        assert_eq!((a.as_str(), b.as_str()), ("job-000001", "job-000002"));

        // Finish `a` with a report artifact, leave `b` unfinished.
        write_artifact(&registry.job_dir(&a), "report.json", b"{}\n").unwrap();
        drop(registry);

        let (reopened, pending) = Registry::open(&dir).unwrap();
        assert_eq!(pending, vec![b.clone()]);
        assert_eq!(reopened.get(&a).unwrap().state, JobState::Done);
        assert_eq!(reopened.get(&b).unwrap().state, JobState::Queued);
        // New ids continue after the highest recovered sequence number.
        assert_eq!(reopened.create(spec()).unwrap(), "job-000003");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cancel_rules_and_status_document() {
        let dir = temp_dir("cancel");
        let (registry, _) = Registry::open(&dir).unwrap();
        let id = registry.create(spec()).unwrap();
        assert!(registry.cancel(&id).is_ok());
        assert!(registry.get(&id).unwrap().cancel.load(Ordering::SeqCst));

        registry.set_state(&id, JobState::Done, None);
        let err = registry.cancel(&id).unwrap_err();
        assert_eq!(err.status(), 409);
        assert_eq!(registry.cancel("job-999999").unwrap_err().status(), 404);

        let status = registry.status_json(&id).unwrap();
        let doc: Value = serde_json::from_str(&status).unwrap();
        assert_eq!(doc.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(doc.get("spec").unwrap().get("space").unwrap().as_str(), Some("slate-cholesky"));
        let progress = doc.get("progress").unwrap();
        assert_eq!(
            progress.get("units_done").unwrap().as_u64(),
            progress.get("units_total").unwrap().as_u64()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn event_log_appends_persists_and_tolerates_torn_tail() {
        let dir = temp_dir("events");
        let (registry, _) = Registry::open(&dir).unwrap();
        let id = registry.create(spec()).unwrap();
        registry.set_state(&id, JobState::Running, None);
        registry.set_progress(&id, 1);
        registry.set_state(&id, JobState::Preempted, None);

        let entry = registry.get(&id).unwrap();
        let (events, next) = entry.events.since(0);
        assert_eq!(next, 4);
        let kinds: Vec<&str> =
            events.iter().map(|e| e.get("kind").unwrap().as_str().unwrap()).collect();
        assert_eq!(kinds, ["state", "state", "progress", "state"]);
        assert_eq!(events[3].get("state").unwrap().as_str(), Some("preempted"));
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.get("seq").unwrap().as_u64(), Some(i as u64 + 1));
        }
        // `since` returns only the suffix.
        let (tail, _) = entry.events.since(3);
        assert_eq!(tail.len(), 1);

        // Simulate a daemon killed mid-append: a torn final line must be
        // dropped on reload, everything before it preserved.
        let path = registry.job_dir(&id).join("events.jsonl");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"kind\": \"state\", \"se");
        std::fs::write(&path, &bytes).unwrap();
        drop(registry);
        let (reopened, _) = Registry::open(&dir).unwrap();
        let entry = reopened.get(&id).unwrap();
        // 4 surviving events + the recovery re-queue event appended by open.
        let (events, next) = entry.events.since(0);
        assert_eq!(next, 5);
        assert_eq!(events[4].get("state").unwrap().as_str(), Some("queued"));
        assert_eq!(events[4].get("seq").unwrap().as_u64(), Some(5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wait_since_returns_immediately_when_events_exist() {
        let ev = JobEvents::new();
        let mut doc = serde_json::json!({ "kind": "state", "state": "queued" });
        ev.append(None, &mut doc);
        let (events, next) = ev.wait_since(0, Duration::from_secs(5));
        assert_eq!((events.len(), next), (1, 1));
        // And times out quickly when there is nothing new.
        let started = Instant::now();
        let (events, next) = ev.wait_since(1, Duration::from_millis(50));
        assert!(events.is_empty() && next == 1);
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn failed_jobs_recover_their_error_detail() {
        let dir = temp_dir("failed");
        let (registry, _) = Registry::open(&dir).unwrap();
        let id = registry.create(spec()).unwrap();
        let body = ServeError::Internal("disk full".into()).to_body();
        write_artifact(&registry.job_dir(&id), "error.json", body.as_bytes()).unwrap();
        drop(registry);
        let (reopened, pending) = Registry::open(&dir).unwrap();
        assert!(pending.is_empty());
        let entry = reopened.get(&id).unwrap();
        assert_eq!(entry.state, JobState::Failed);
        assert_eq!(entry.error.as_deref(), Some("disk full"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The multi-tenant job scheduler: a priority queue with per-tenant
//! quotas and checkpoint-consistent preemption, feeding sweeps into the
//! session engine.
//!
//! The scheduling rules live in [`SchedCore`], a pure (lock-free,
//! thread-free) state machine the property tests drive directly; the
//! [`Scheduler`] wraps it in a mutex/condvar and a worker pool. The rules:
//!
//! * **Admission** — a submission is rejected with a typed 429 when the
//!   shared queue is full (`backpressure`) or the tenant is at its queued
//!   quota or asks for more rank threads than its rank quota allows
//!   (`quota_exceeded`). Rejections never panic and never 5xx.
//! * **Dispatch** — a free worker takes the highest-priority queued job
//!   whose tenant is under its running-job and rank-thread quotas; ties
//!   break by submission order. Rank threads are the [`critter_sim`]
//!   pool-lease currency: one running job leases `spec.ranks()` threads.
//! * **Preemption** — when every worker is busy, a submission with higher
//!   priority than some running job flags the lowest-priority victim. The
//!   victim's progress hook returns [`ProgressVerdict::Preempt`] at the
//!   next committed unit boundary, the session engine checkpoints and
//!   returns `Preempted`, and the job re-enters the queue *keeping its
//!   original submission order* — when it runs again it resumes from the
//!   checkpoint and produces a byte-identical report (the PR 4/8
//!   kill-resume proof obligation, exercised without a kill).
//! * **Cancellation** — cancelling a queued job removes it from the queue
//!   immediately and rolls back its tenant's queued-quota slot, so a
//!   tenant at quota can cancel-and-resubmit; cancelling a running job
//!   sets its cancel flag, observed at the next unit boundary.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use critter_autotune::{Autotuner, ProgressVerdict, SessionConfig};
use parking_lot::{Condvar, Mutex};

use crate::error::ServeError;
use crate::job::{write_artifact, JobState, Registry};

/// Per-tenant admission limits; `0` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Max jobs a tenant may have waiting in the queue.
    pub max_queued: usize,
    /// Max jobs a tenant may have running at once.
    pub max_running: usize,
    /// Max simulated rank threads a tenant's running jobs may lease from
    /// the shared `SimPool` registry at once.
    pub max_ranks: usize,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig { max_queued: 16, max_running: 2, max_ranks: 0 }
    }
}

/// What the scheduler needs to know about one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTicket {
    /// Job id (`job-000001`).
    pub id: String,
    /// Quota-accounting tenant.
    pub tenant: String,
    /// Scheduling priority (`0..=9`, higher first).
    pub priority: u8,
    /// Rank threads one run leases (`JobSpec::ranks()`).
    pub ranks: usize,
}

/// Live per-tenant usage, as reported by `GET /v1/tenants`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Jobs waiting in the queue (including preempted jobs).
    pub queued: usize,
    /// Jobs currently on a worker.
    pub running: usize,
    /// Rank threads those running jobs lease.
    pub running_ranks: usize,
}

#[derive(Debug)]
struct QueuedJob {
    ticket: JobTicket,
    /// Submission order; preserved across preemption so a preempted job
    /// does not lose its place to later same-priority submissions.
    seq: u64,
}

#[derive(Debug)]
struct RunningJob {
    ticket: JobTicket,
    seq: u64,
    preempt: Arc<AtomicBool>,
}

/// The pure scheduling state machine (no locks, no threads): queue,
/// running set, and per-tenant accounting. Public so the property-test
/// oracle can drive arbitrary interleavings against the same code the
/// daemon runs.
#[derive(Debug)]
pub struct SchedCore {
    queue_capacity: usize,
    quota: QuotaConfig,
    next_seq: u64,
    queue: Vec<QueuedJob>,
    running: BTreeMap<String, RunningJob>,
    tenants: BTreeMap<String, TenantUsage>,
}

impl SchedCore {
    /// An empty core with the given shared-queue bound and tenant quotas.
    pub fn new(queue_capacity: usize, quota: QuotaConfig) -> SchedCore {
        SchedCore {
            queue_capacity: queue_capacity.max(1),
            quota,
            next_seq: 0,
            queue: Vec::new(),
            running: BTreeMap::new(),
            tenants: BTreeMap::new(),
        }
    }

    /// The quotas in force.
    pub fn quota(&self) -> QuotaConfig {
        self.quota
    }

    /// Jobs waiting in the queue.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently dispatched to workers.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Snapshot of every tenant's live usage (zero-usage tenants pruned).
    pub fn usage(&self) -> BTreeMap<String, TenantUsage> {
        self.tenants.clone()
    }

    fn usage_mut(&mut self, tenant: &str) -> &mut TenantUsage {
        self.tenants.entry(tenant.to_string()).or_default()
    }

    fn prune(&mut self, tenant: &str) {
        if self.tenants.get(tenant).is_some_and(|u| *u == TenantUsage::default()) {
            self.tenants.remove(tenant);
        }
    }

    /// Admit a submission, or reject it with the typed 429 the HTTP layer
    /// serves verbatim: `backpressure` for the shared queue bound,
    /// `quota_exceeded` for per-tenant limits.
    pub fn submit(&mut self, ticket: JobTicket) -> Result<(), ServeError> {
        if self.queue.len() >= self.queue_capacity {
            return Err(ServeError::Backpressure(format!(
                "job queue is full; job `{}` rejected, retry later",
                ticket.id
            )));
        }
        let quota = self.quota;
        if quota.max_ranks > 0 && ticket.ranks > quota.max_ranks {
            return Err(ServeError::QuotaExceeded(format!(
                "job `{}` needs {} rank threads but tenant `{}` may lease at most {}",
                ticket.id, ticket.ranks, ticket.tenant, quota.max_ranks
            )));
        }
        let usage = self.usage_mut(&ticket.tenant);
        if quota.max_queued > 0 && usage.queued >= quota.max_queued {
            let detail = format!(
                "tenant `{}` already has {} queued jobs (max {}); job `{}` rejected",
                ticket.tenant, usage.queued, quota.max_queued, ticket.id
            );
            self.prune(&ticket.tenant);
            return Err(ServeError::QuotaExceeded(detail));
        }
        usage.queued += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(QueuedJob { ticket, seq });
        Ok(())
    }

    /// Admit a job recovered at restart: it was accepted before the
    /// crash, so it bypasses the queue bound and quota checks.
    pub fn admit_recovered(&mut self, ticket: JobTicket) {
        self.usage_mut(&ticket.tenant).queued += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(QueuedJob { ticket, seq });
    }

    /// Whether a queued job's tenant is under its running quotas.
    fn eligible(&self, ticket: &JobTicket) -> bool {
        let usage = self.tenants.get(&ticket.tenant).copied().unwrap_or_default();
        let under_running = self.quota.max_running == 0 || usage.running < self.quota.max_running;
        let under_ranks =
            self.quota.max_ranks == 0 || usage.running_ranks + ticket.ranks <= self.quota.max_ranks;
        under_running && under_ranks
    }

    /// The queue index a free worker should take next: the eligible job
    /// with the highest priority, ties broken by submission order. `None`
    /// when the queue is empty or every queued tenant is at quota.
    pub fn pick(&self) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .filter(|(_, qj)| self.eligible(&qj.ticket))
            .max_by(|(_, a), (_, b)| {
                (a.ticket.priority, std::cmp::Reverse(a.seq))
                    .cmp(&(b.ticket.priority, std::cmp::Reverse(b.seq)))
            })
            .map(|(idx, _)| idx)
    }

    /// Move the picked job to the running set and hand back its ticket
    /// plus the preempt flag its progress hook must observe.
    pub fn dispatch(&mut self) -> Option<(JobTicket, Arc<AtomicBool>)> {
        let idx = self.pick()?;
        let QueuedJob { ticket, seq } = self.queue.remove(idx);
        let usage = self.usage_mut(&ticket.tenant);
        usage.queued -= 1;
        usage.running += 1;
        usage.running_ranks += ticket.ranks;
        let preempt = Arc::new(AtomicBool::new(false));
        self.running.insert(
            ticket.id.clone(),
            RunningJob { ticket: ticket.clone(), seq, preempt: preempt.clone() },
        );
        Some((ticket, preempt))
    }

    /// A running job reached a terminal state: release its worker slot
    /// and its tenant's running/rank accounting.
    pub fn complete(&mut self, id: &str) {
        let Some(run) = self.running.remove(id) else { return };
        let usage = self.usage_mut(&run.ticket.tenant);
        usage.running -= 1;
        usage.running_ranks -= run.ticket.ranks;
        self.prune(&run.ticket.tenant);
    }

    /// A running job yielded to preemption: put it back in the queue with
    /// its original submission order (quota checks do not re-apply — the
    /// job was already admitted).
    pub fn requeue_preempted(&mut self, id: &str) {
        let Some(run) = self.running.remove(id) else { return };
        let usage = self.usage_mut(&run.ticket.tenant);
        usage.running -= 1;
        usage.running_ranks -= run.ticket.ranks;
        usage.queued += 1;
        self.queue.push(QueuedJob { ticket: run.ticket, seq: run.seq });
    }

    /// Remove a still-queued job (cancellation): rolls back the tenant's
    /// queued-quota slot so the tenant can submit again immediately.
    /// Returns false if the job is not in the queue (already dispatched).
    pub fn take_queued(&mut self, id: &str) -> bool {
        let Some(idx) = self.queue.iter().position(|qj| qj.ticket.id == id) else {
            return false;
        };
        let QueuedJob { ticket, .. } = self.queue.remove(idx);
        self.usage_mut(&ticket.tenant).queued -= 1;
        self.prune(&ticket.tenant);
        true
    }

    /// Flag the preemption victim for an incoming job of `priority`, if
    /// one exists: the running job with the lowest priority strictly below
    /// `priority` (latest submission loses ties) that is not already being
    /// preempted. Returns whether a victim was flagged.
    pub fn preempt_victim(&mut self, priority: u8) -> bool {
        let victim = self
            .running
            .values()
            .filter(|r| r.ticket.priority < priority && !r.preempt.load(Ordering::SeqCst))
            .max_by(|a, b| {
                (std::cmp::Reverse(a.ticket.priority), a.seq)
                    .cmp(&(std::cmp::Reverse(b.ticket.priority), b.seq))
            });
        match victim {
            Some(run) => {
                run.preempt.store(true, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }
}

/// The bounded multi-tenant job queue plus its worker threads.
pub struct Scheduler {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
}

struct SchedState {
    core: SchedCore,
    idle_workers: usize,
    closed: bool,
}

impl Scheduler {
    /// Spawn `job_workers` workers over a queue of `queue_capacity` slots
    /// with the given per-tenant quotas. `store` is the daemon's shared
    /// profile-store directory; jobs whose spec opts in run their sweeps
    /// against it.
    pub fn start(
        registry: Arc<Registry>,
        job_workers: usize,
        queue_capacity: usize,
        quota: QuotaConfig,
        store: Option<PathBuf>,
    ) -> Scheduler {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                core: SchedCore::new(queue_capacity, quota),
                idle_workers: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        });
        let store = Arc::new(store);
        let handles = (0..job_workers.max(1))
            .map(|i| {
                let registry = registry.clone();
                let shared = shared.clone();
                let store = store.clone();
                std::thread::Builder::new()
                    .name(format!("critter-serve-job-{i}"))
                    .spawn(move || worker_loop(&shared, &registry, &store))
                    .expect("spawning a job worker")
            })
            .collect();
        Scheduler { shared, handles }
    }

    /// Enqueue a submitted job; a full queue or an exceeded tenant quota
    /// is a typed 429. When every worker is busy and the submission
    /// outranks a running job, the lowest-priority victim is flagged for
    /// checkpoint-consistent preemption.
    pub fn enqueue(&self, ticket: JobTicket) -> Result<(), ServeError> {
        let priority = ticket.priority;
        {
            let mut st = self.shared.state.lock();
            if st.closed {
                return Err(ServeError::Internal("job workers have shut down".into()));
            }
            st.core.submit(ticket)?;
            if st.idle_workers == 0 {
                st.core.preempt_victim(priority);
            }
        }
        self.shared.cv.notify_all();
        Ok(())
    }

    /// Enqueue a recovered job at startup; recovered jobs were admitted
    /// before the restart, so no admission checks re-apply.
    pub fn enqueue_recovered(&self, ticket: JobTicket) {
        self.shared.state.lock().core.admit_recovered(ticket);
        self.shared.cv.notify_all();
    }

    /// Cancel a still-queued job: remove it from the queue, roll back its
    /// tenant's queued-quota slot, and finalize the cancellation artifact
    /// immediately. Returns false when the job is not queued (the caller
    /// then relies on the cancel flag at the next unit boundary).
    pub fn cancel_queued(&self, registry: &Arc<Registry>, id: &str) -> bool {
        let taken = self.shared.state.lock().core.take_queued(id);
        if taken {
            finish(registry, id, JobState::Cancelled, None);
        }
        taken
    }

    /// Snapshot of per-tenant usage plus the quotas in force.
    pub fn tenant_usage(&self) -> (BTreeMap<String, TenantUsage>, QuotaConfig) {
        let st = self.shared.state.lock();
        (st.core.usage(), st.core.quota())
    }

    /// Close the queue and wait for the workers to finish their current
    /// jobs.
    pub fn shutdown(self) {
        self.shared.state.lock().closed = true;
        self.shared.cv.notify_all();
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// What one dispatched job run asks the worker to do next.
enum RunOutcome {
    /// The job reached a terminal state (artifact already written).
    Terminal,
    /// The job yielded to preemption; re-queue it.
    Preempted,
}

fn worker_loop(shared: &Arc<Shared>, registry: &Arc<Registry>, store: &Option<PathBuf>) {
    loop {
        let (ticket, preempt) = {
            let mut st = shared.state.lock();
            loop {
                if st.closed {
                    return;
                }
                if let Some(dispatched) = st.core.dispatch() {
                    break dispatched;
                }
                st.idle_workers += 1;
                shared.cv.wait(&mut st);
                st.idle_workers -= 1;
            }
        };
        // A sweep must never take a worker down with it: a panicking job
        // is recorded as failed and the worker moves on.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(registry, &ticket.id, store, &preempt)
        }));
        let outcome = outcome.unwrap_or_else(|panic| {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "sweep panicked".into());
            finish(registry, &ticket.id, JobState::Failed, Some(detail));
            RunOutcome::Terminal
        });
        {
            let mut st = shared.state.lock();
            match outcome {
                RunOutcome::Terminal => st.core.complete(&ticket.id),
                RunOutcome::Preempted => st.core.requeue_preempted(&ticket.id),
            }
        }
        // Completion may have freed quota for a queued sibling; requeue
        // may have put work back for an idle peer.
        shared.cv.notify_all();
    }
}

/// Run one job end to end: resume-or-start the sweep, then either write
/// the terminal artifact that encodes its final state or report that the
/// job yielded to preemption.
fn run_job(
    registry: &Arc<Registry>,
    id: &str,
    store: &Option<PathBuf>,
    preempt: &Arc<AtomicBool>,
) -> RunOutcome {
    let Ok(entry) = registry.get(id) else {
        return RunOutcome::Terminal; // discarded between enqueue and dequeue
    };
    if entry.cancel.load(Ordering::SeqCst) {
        finish(registry, id, JobState::Cancelled, None);
        return RunOutcome::Terminal;
    }
    registry.set_state(id, JobState::Running, None);

    let spec = entry.spec;
    let dir = registry.job_dir(id);
    let mut session = SessionConfig::new().with_checkpoint_dir(&dir);
    if spec.warm_start.is_some() {
        // The session engine prefers an existing checkpoint over the warm
        // start, so resumed jobs are unaffected by this.
        session = session
            .with_warm_start(dir.join("warm-start.json"))
            .with_staleness(spec.staleness_policy());
    }
    if spec.profile {
        session = session.with_profile_out(dir.join("profile.json"));
    }
    if spec.store {
        // Submission rejects store jobs on store-less daemons, but a
        // recovered job can land on a daemon restarted without --store;
        // failing it beats silently dropping its publication.
        let Some(store_dir) = store else {
            finish(
                registry,
                id,
                JobState::Failed,
                Some("job requires a profile store but the daemon has none (--store)".into()),
            );
            return RunOutcome::Terminal;
        };
        session = session.with_store(store_dir);
    }

    let progress_registry = registry.clone();
    let progress_id = id.to_string();
    let cancel = entry.cancel.clone();
    let preempt = preempt.clone();
    let tuner = Autotuner::new(spec.options()).with_progress(move |p| {
        progress_registry.set_progress(&progress_id, p.units_done);
        if cancel.load(Ordering::SeqCst) {
            ProgressVerdict::Cancel
        } else if preempt.load(Ordering::SeqCst) {
            ProgressVerdict::Preempt
        } else {
            ProgressVerdict::Continue
        }
    });

    let workloads = spec.workloads();
    match tuner.tune_session(&workloads, &session) {
        Ok(report) => {
            let write = || -> std::io::Result<()> {
                write_artifact(&dir, "report.json", report.to_json_string().as_bytes())?;
                if spec.observe {
                    let obs = report.obs.as_ref().expect("observed sweeps carry a trace");
                    write_artifact(&dir, "metrics.txt", obs.metrics_string().as_bytes())?;
                }
                Ok(())
            };
            match write() {
                Ok(()) => finish(registry, id, JobState::Done, None),
                Err(e) => {
                    finish(registry, id, JobState::Failed, Some(format!("writing artifacts: {e}")))
                }
            }
            RunOutcome::Terminal
        }
        Err(e) if e.is_preempted() => {
            // The committed boundary is checkpointed; the worker puts the
            // job back in the queue and it resumes byte-identically later.
            registry.set_state(id, JobState::Preempted, None);
            RunOutcome::Preempted
        }
        Err(e) if e.is_cancelled() => {
            finish(registry, id, JobState::Cancelled, None);
            RunOutcome::Terminal
        }
        Err(e) => {
            finish(registry, id, JobState::Failed, Some(e.to_string()));
            RunOutcome::Terminal
        }
    }
}

/// Write the terminal artifact for `state` and update the registry. The
/// artifact is written first: if the daemon dies in between, restart
/// recovery reads the state back from the artifact.
fn finish(registry: &Arc<Registry>, id: &str, state: JobState, error: Option<String>) {
    let dir = registry.job_dir(id);
    let write_result = match state {
        JobState::Cancelled => {
            let body = "{\n  \"cancelled\": true\n}\n";
            write_artifact(&dir, "cancelled.json", body.as_bytes())
        }
        JobState::Failed => {
            let detail = error.clone().unwrap_or_else(|| "unknown failure".into());
            let body = ServeError::Internal(detail).to_body();
            write_artifact(&dir, "error.json", body.as_bytes())
        }
        _ => Ok(()),
    };
    if let Err(e) = write_result {
        eprintln!("critter-serve: recording terminal state of {id}: {e}");
    }
    registry.set_state(id, state, error);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(id: &str, tenant: &str, priority: u8, ranks: usize) -> JobTicket {
        JobTicket { id: id.into(), tenant: tenant.into(), priority, ranks }
    }

    #[test]
    fn dispatch_order_is_priority_then_submission() {
        let mut core = SchedCore::new(16, QuotaConfig::default());
        core.submit(ticket("job-1", "a", 0, 4)).unwrap();
        core.submit(ticket("job-2", "b", 5, 4)).unwrap();
        core.submit(ticket("job-3", "c", 5, 4)).unwrap();
        core.submit(ticket("job-4", "d", 9, 4)).unwrap();
        let order: Vec<String> =
            std::iter::from_fn(|| core.dispatch().map(|(t, _)| t.id)).collect();
        assert_eq!(order, ["job-4", "job-2", "job-3", "job-1"]);
        assert_eq!(core.queued_len(), 0);
        assert_eq!(core.running_len(), 4);
    }

    #[test]
    fn queue_bound_and_tenant_quotas_reject_typed() {
        let quota = QuotaConfig { max_queued: 2, max_running: 1, max_ranks: 8 };
        let mut core = SchedCore::new(3, quota);
        core.submit(ticket("job-1", "a", 0, 4)).unwrap();
        core.submit(ticket("job-2", "a", 0, 4)).unwrap();
        // Tenant `a` is at max_queued.
        let err = core.submit(ticket("job-3", "a", 0, 4)).unwrap_err();
        assert_eq!(err.code().as_str(), "quota_exceeded");
        assert_eq!(err.status(), 429);
        // A job that could never run under the rank quota is rejected.
        let err = core.submit(ticket("job-4", "b", 0, 64)).unwrap_err();
        assert_eq!(err.code().as_str(), "quota_exceeded");
        // Another tenant still fits in the last shared slot …
        core.submit(ticket("job-5", "b", 0, 4)).unwrap();
        // … and the queue bound itself is backpressure, not a quota error.
        let err = core.submit(ticket("job-6", "c", 0, 4)).unwrap_err();
        assert_eq!(err.code().as_str(), "backpressure");

        // max_running 1: only one of tenant a's jobs dispatches.
        let (first, _) = core.dispatch().unwrap();
        assert_eq!(first.tenant, "a");
        let (second, _) = core.dispatch().unwrap();
        assert_eq!(second.tenant, "b", "tenant a is at its running quota");
        assert!(core.dispatch().is_none());
        core.complete(&first.id);
        let (third, _) = core.dispatch().unwrap();
        assert_eq!(third.id, "job-2");
    }

    #[test]
    fn rank_quota_gates_concurrent_dispatch() {
        let quota = QuotaConfig { max_queued: 0, max_running: 0, max_ranks: 8 };
        let mut core = SchedCore::new(16, quota);
        core.submit(ticket("job-1", "a", 0, 6)).unwrap();
        core.submit(ticket("job-2", "a", 0, 6)).unwrap();
        core.submit(ticket("job-3", "a", 0, 2)).unwrap();
        let (first, _) = core.dispatch().unwrap();
        assert_eq!(first.id, "job-1");
        // 6 + 6 > 8, but 6 + 2 fits: the rank quota skips to job-3.
        let (second, _) = core.dispatch().unwrap();
        assert_eq!(second.id, "job-3");
        assert!(core.dispatch().is_none());
        core.complete("job-1");
        assert_eq!(core.dispatch().unwrap().0.id, "job-2");
    }

    #[test]
    fn preempted_jobs_keep_their_submission_order() {
        let mut core = SchedCore::new(16, QuotaConfig::default());
        core.submit(ticket("job-1", "a", 1, 4)).unwrap();
        let (low, flag) = core.dispatch().unwrap();
        assert_eq!(low.id, "job-1");
        core.submit(ticket("job-2", "b", 5, 4)).unwrap();
        assert!(core.preempt_victim(5), "running priority-1 job is a victim for priority 5");
        assert!(flag.load(Ordering::SeqCst));
        core.requeue_preempted("job-1");
        // Same-priority-as-victim later submission must not overtake it.
        core.submit(ticket("job-3", "c", 1, 4)).unwrap();
        let order: Vec<String> =
            std::iter::from_fn(|| core.dispatch().map(|(t, _)| t.id)).collect();
        assert_eq!(order, ["job-2", "job-1", "job-3"]);
    }

    #[test]
    fn preempt_victim_picks_lowest_priority_latest_submission() {
        let mut core = SchedCore::new(16, QuotaConfig { max_running: 0, ..Default::default() });
        core.submit(ticket("job-1", "a", 2, 4)).unwrap();
        core.submit(ticket("job-2", "b", 1, 4)).unwrap();
        core.submit(ticket("job-3", "c", 1, 4)).unwrap();
        let flags: BTreeMap<String, Arc<AtomicBool>> =
            std::iter::from_fn(|| core.dispatch()).map(|(t, f)| (t.id, f)).collect();
        assert_eq!(flags.len(), 3);
        // No victim outranks priority 1.
        assert!(!core.preempt_victim(1));
        // Priority 5 preempts the lowest-priority, latest-submitted victim.
        assert!(core.preempt_victim(5));
        assert!(flags["job-3"].load(Ordering::SeqCst));
        // A second arrival picks the next victim, not the same one twice.
        assert!(core.preempt_victim(5));
        assert!(flags["job-2"].load(Ordering::SeqCst));
        assert!(core.preempt_victim(5));
        assert!(flags["job-1"].load(Ordering::SeqCst));
        assert!(!core.preempt_victim(9), "every running job is already yielding");
    }

    #[test]
    fn take_queued_rolls_back_the_tenant_quota_slot() {
        let quota = QuotaConfig { max_queued: 1, max_running: 1, max_ranks: 0 };
        let mut core = SchedCore::new(16, quota);
        core.submit(ticket("job-1", "a", 0, 4)).unwrap();
        assert_eq!(core.submit(ticket("job-2", "a", 0, 4)).unwrap_err().status(), 429);
        assert!(core.take_queued("job-1"));
        assert!(!core.take_queued("job-1"), "already removed");
        // The quota slot is free again — the regression this guards.
        core.submit(ticket("job-3", "a", 0, 4)).unwrap();
        assert_eq!(core.usage()["a"].queued, 1);
    }
}

//! The job worker pool: a bounded queue feeding sweeps into the session
//! engine.
//!
//! Submissions go through [`Scheduler::enqueue`], which applies
//! backpressure — a full queue is a typed 429, never an unbounded buffer.
//! Restart recovery uses [`Scheduler::enqueue_blocking`] instead, so a
//! daemon with more recovered jobs than queue slots simply drains them in
//! order.
//!
//! Each worker runs one job at a time through
//! [`Autotuner::tune_session`] with the job directory as its checkpoint
//! dir. Progress flows back through the autotuner's progress hook, which
//! also observes the job's cancel flag — cancellation therefore lands
//! exactly on a committed unit boundary and the checkpoint stays
//! consistent. Concurrent sweeps share simulator thread pools through the
//! sim crate's global pool-lease registry; nothing here needs to manage
//! that.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use critter_autotune::{Autotuner, SessionConfig};
use parking_lot::Mutex;

use crate::error::ServeError;
use crate::job::{write_artifact, JobState, Registry};

/// The bounded job queue plus its worker threads.
pub struct Scheduler {
    tx: SyncSender<String>,
    handles: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawn `job_workers` workers over a queue of `queue_capacity` slots.
    /// `store` is the daemon's shared profile-store directory; jobs whose
    /// spec opts in run their sweeps against it.
    pub fn start(
        registry: Arc<Registry>,
        job_workers: usize,
        queue_capacity: usize,
        store: Option<PathBuf>,
    ) -> Scheduler {
        let (tx, rx) = sync_channel::<String>(queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let store = Arc::new(store);
        let handles = (0..job_workers.max(1))
            .map(|i| {
                let registry = registry.clone();
                let rx = rx.clone();
                let store = store.clone();
                std::thread::Builder::new()
                    .name(format!("critter-serve-job-{i}"))
                    .spawn(move || worker_loop(&registry, &rx, &store))
                    .expect("spawning a job worker")
            })
            .collect();
        Scheduler { tx, handles }
    }

    /// Enqueue a submitted job; a full queue is a 429.
    pub fn enqueue(&self, id: String) -> Result<(), ServeError> {
        match self.tx.try_send(id) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(id)) => Err(ServeError::Backpressure(format!(
                "job queue is full; job `{id}` rejected, retry later"
            ))),
            Err(TrySendError::Disconnected(_)) => {
                Err(ServeError::Internal("job workers have shut down".into()))
            }
        }
    }

    /// Enqueue a recovered job at startup, waiting for a queue slot
    /// instead of rejecting.
    pub fn enqueue_blocking(&self, id: String) -> Result<(), ServeError> {
        self.tx.send(id).map_err(|_| ServeError::Internal("job workers have shut down".into()))
    }

    /// Close the queue and wait for the workers to finish their current
    /// jobs.
    pub fn shutdown(self) {
        drop(self.tx);
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    registry: &Arc<Registry>,
    rx: &Arc<Mutex<Receiver<String>>>,
    store: &Option<PathBuf>,
) {
    loop {
        // Take the receiver lock only to dequeue, never while running.
        let id = match rx.lock().recv() {
            Ok(id) => id,
            Err(_) => return, // queue closed: shutdown
        };
        // A sweep must never take a worker down with it: a panicking job
        // is recorded as failed and the worker moves on.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(registry, &id, store)
        }));
        if let Err(panic) = outcome {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "sweep panicked".into());
            finish(registry, &id, JobState::Failed, Some(detail));
        }
    }
}

/// Run one job end to end: resume-or-start the sweep, then write the
/// terminal artifact that encodes its final state.
fn run_job(registry: &Arc<Registry>, id: &str, store: &Option<PathBuf>) {
    let Ok(entry) = registry.get(id) else {
        return; // discarded between enqueue and dequeue
    };
    if entry.cancel.load(Ordering::SeqCst) {
        finish(registry, id, JobState::Cancelled, None);
        return;
    }
    registry.set_state(id, JobState::Running, None);

    let spec = entry.spec;
    let dir = registry.job_dir(id);
    let mut session = SessionConfig::new().with_checkpoint_dir(&dir);
    if spec.warm_start.is_some() {
        // The session engine prefers an existing checkpoint over the warm
        // start, so resumed jobs are unaffected by this.
        session = session
            .with_warm_start(dir.join("warm-start.json"))
            .with_staleness(spec.staleness_policy());
    }
    if spec.profile {
        session = session.with_profile_out(dir.join("profile.json"));
    }
    if spec.store {
        // Submission rejects store jobs on store-less daemons, but a
        // recovered job can land on a daemon restarted without --store;
        // failing it beats silently dropping its publication.
        let Some(store_dir) = store else {
            finish(
                registry,
                id,
                JobState::Failed,
                Some("job requires a profile store but the daemon has none (--store)".into()),
            );
            return;
        };
        session = session.with_store(store_dir);
    }

    let progress_registry = registry.clone();
    let progress_id = id.to_string();
    let cancel = entry.cancel.clone();
    let tuner = Autotuner::new(spec.options()).with_progress(move |p| {
        progress_registry.set_progress(&progress_id, p.units_done);
        !cancel.load(Ordering::SeqCst)
    });

    let workloads = spec.workloads();
    match tuner.tune_session(&workloads, &session) {
        Ok(report) => {
            let write = || -> std::io::Result<()> {
                write_artifact(&dir, "report.json", report.to_json_string().as_bytes())?;
                if spec.observe {
                    let obs = report.obs.as_ref().expect("observed sweeps carry a trace");
                    write_artifact(&dir, "metrics.txt", obs.metrics_string().as_bytes())?;
                }
                Ok(())
            };
            match write() {
                Ok(()) => finish(registry, id, JobState::Done, None),
                Err(e) => {
                    finish(registry, id, JobState::Failed, Some(format!("writing artifacts: {e}")))
                }
            }
        }
        Err(e) if e.is_cancelled() => finish(registry, id, JobState::Cancelled, None),
        Err(e) => finish(registry, id, JobState::Failed, Some(e.to_string())),
    }
}

/// Write the terminal artifact for `state` and update the registry. The
/// artifact is written first: if the daemon dies in between, restart
/// recovery reads the state back from the artifact.
fn finish(registry: &Arc<Registry>, id: &str, state: JobState, error: Option<String>) {
    let dir = registry.job_dir(id);
    let write_result = match state {
        JobState::Cancelled => {
            let body = "{\n  \"cancelled\": true\n}\n";
            write_artifact(&dir, "cancelled.json", body.as_bytes())
        }
        JobState::Failed => {
            let detail = error.clone().unwrap_or_else(|| "unknown failure".into());
            let body = ServeError::Internal(detail).to_body();
            write_artifact(&dir, "error.json", body.as_bytes())
        }
        _ => Ok(()),
    };
    if let Err(e) = write_result {
        eprintln!("critter-serve: recording terminal state of {id}: {e}");
    }
    registry.set_state(id, state, error);
}

//! The wire-level job specification and its strict JSON codec.
//!
//! A [`JobSpec`] is the body of `POST /v1/jobs`. It maps one-to-one onto
//! the [`TuningOptions`] builder surface that `critter-tune` exposes as
//! CLI flags, so a job submitted over HTTP runs *exactly* the sweep the
//! CLI would run with the equivalent flags — the CI smoke job `cmp`s the
//! two reports byte for byte.
//!
//! Parsing is strict: unknown fields, wrong types, unknown space/policy
//! names, and out-of-range probabilities are all typed 400s, never
//! silently ignored. The parsed spec re-serializes canonically
//! ([`JobSpec::to_json`]) so the daemon can persist `spec.json` in the
//! job directory and reload it verbatim after a restart.

use critter_autotune::{TuningOptions, TuningSpace};
use critter_core::ExecutionPolicy;
use critter_session::StalenessPolicy;
use critter_sim::{BackendKind, FaultPlan};
use serde_json::Value;

use crate::error::ServeError;

/// CLI-style short policy names, in the order `critter-tune --help` lists
/// them.
pub const POLICY_NAMES: [(&str, ExecutionPolicy); 6] = [
    ("conditional", ExecutionPolicy::ConditionalExecution),
    ("local", ExecutionPolicy::LocalPropagation),
    ("online", ExecutionPolicy::OnlinePropagation),
    ("apriori", ExecutionPolicy::APrioriPropagation),
    ("eager", ExecutionPolicy::EagerPropagation),
    ("full", ExecutionPolicy::Full),
];

/// Fields accepted in a job spec; anything else is a 400.
const SPEC_FIELDS: [&str; 23] = [
    "space",
    "policy",
    "epsilon",
    "smoke",
    "reps",
    "allocation",
    "seed",
    "machine",
    "extrapolate",
    "charge_internal",
    "observe",
    "backend",
    "shards",
    "persist_models",
    "retries",
    "faults",
    "warm_start",
    "staleness",
    "profile",
    "store",
    "label",
    "tenant",
    "priority",
];

/// Highest accepted `priority` value (priorities are `0..=PRIORITY_MAX`).
pub const PRIORITY_MAX: u64 = 9;

/// Fields accepted in the `faults` sub-object.
const FAULT_FIELDS: [&str; 6] =
    ["seed", "panic_prob", "delay_prob", "max_delay", "drop_prob", "retransmit_timeout"];

/// Fields accepted in the `staleness` sub-object.
const STALENESS_FIELDS: [&str; 2] = ["decay", "variance_inflation"];

/// Staleness knobs for a warm-started job, mirroring
/// [`StalenessPolicy`]'s builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessSpec {
    /// Sample-count decay factor in `(0, 1]`.
    pub decay: f64,
    /// Variance inflation factor `>= 1`.
    pub variance_inflation: f64,
}

/// A validated tuning-job specification.
///
/// Every field has the same default as the corresponding `critter-tune`
/// flag, so `{"space": "slate-cholesky", "policy": "local"}` is a complete
/// spec and runs the same sweep as
/// `critter-tune --space slate-cholesky --policy local`.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Tuning space (`"slate-cholesky"`, …). Required.
    pub space: TuningSpace,
    /// Selective-execution policy by CLI short name. Required.
    pub policy: ExecutionPolicy,
    /// Confidence tolerance ε (default `0.25`).
    pub epsilon: f64,
    /// Use the reduced smoke space instead of the full benchmark space.
    pub smoke: bool,
    /// Repetitions per configuration (default `1`).
    pub reps: usize,
    /// Node-allocation id (default `0`).
    pub allocation: u64,
    /// Base noise seed (default `0xC0FFEE`).
    pub seed: u64,
    /// `"stampede2-knl"` (default) or `"test"` machine parameters.
    pub test_machine: bool,
    /// Enable §VIII input-size extrapolation.
    pub extrapolate: bool,
    /// Charge Critter's internal piggyback messages (default `true`).
    pub charge_internal: bool,
    /// Record an observability trace; required for the `metrics` artifact.
    pub observe: bool,
    /// Communicator backend (`"threads"` default, or `"tasks"`).
    pub backend: BackendKind,
    /// Matching-core shard count (`0` = auto).
    pub shards: usize,
    /// Override the space's model-persistence protocol (default: the
    /// paper's per-space protocol).
    pub persist_models: Option<bool>,
    /// Retry budget per run when faults are armed (default `2`).
    pub retries: usize,
    /// Deterministic fault-injection plan.
    pub faults: Option<FaultPlan>,
    /// Inline warm-start profile document (the bytes a previous job's
    /// `GET …/profile` returned), seeded before the sweep.
    pub warm_start: Option<Value>,
    /// Staleness discounting for the warm-start profile.
    pub staleness: Option<StalenessSpec>,
    /// Write a kernel-model profile artifact when the job finishes.
    pub profile: bool,
    /// Run against the daemon's shared profile store: warm-start from it
    /// (unless an inline `warm_start` profile takes precedence) and
    /// publish the final models back into it.
    pub store: bool,
    /// Free-form client label echoed in status responses.
    pub label: Option<String>,
    /// Tenant the job is accounted against for quota purposes (default
    /// `"default"`; 1–64 characters of `[A-Za-z0-9._-]`).
    pub tenant: String,
    /// Scheduling priority, `0..=9` (default `0`); higher runs first, and
    /// a higher-priority submission may preempt a lower-priority running
    /// job at a committed-unit boundary.
    pub priority: u8,
}

impl JobSpec {
    /// Parse and validate a spec from a JSON document.
    pub fn from_json(text: &str) -> Result<JobSpec, ServeError> {
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| ServeError::BadRequest(format!("body is not valid JSON: {e}")))?;
        let map = doc
            .as_object()
            .ok_or_else(|| ServeError::BadRequest("job spec must be a JSON object".into()))?;
        check_fields(map, &SPEC_FIELDS, "job spec")?;

        let space_name = require_str(map, "space")?;
        let space =
            TuningSpace::ALL.iter().copied().find(|s| s.name() == space_name).ok_or_else(|| {
                let known: Vec<&str> = TuningSpace::ALL.iter().map(|s| s.name()).collect();
                ServeError::BadRequest(format!(
                    "unknown space `{space_name}` (one of: {})",
                    known.join(", ")
                ))
            })?;
        let policy_name = require_str(map, "policy")?;
        let policy =
            POLICY_NAMES.iter().find(|(n, _)| *n == policy_name).map(|(_, p)| *p).ok_or_else(
                || {
                    let known: Vec<&str> = POLICY_NAMES.iter().map(|(n, _)| *n).collect();
                    ServeError::BadRequest(format!(
                        "unknown policy `{policy_name}` (one of: {})",
                        known.join(", ")
                    ))
                },
            )?;

        let epsilon = opt_f64(map, "epsilon")?.unwrap_or(0.25);
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(ServeError::BadRequest(format!(
                "field `epsilon` must be a positive finite number, got {epsilon}"
            )));
        }
        let reps = opt_u64(map, "reps")?.unwrap_or(1);
        if reps == 0 {
            return Err(ServeError::BadRequest("field `reps` must be at least 1".into()));
        }

        let machine = opt_str(map, "machine")?.unwrap_or("stampede2-knl");
        let test_machine = match machine {
            "stampede2-knl" => false,
            "test" => true,
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown machine `{other}` (one of: stampede2-knl, test)"
                )))
            }
        };
        let backend = match opt_str(map, "backend")?.unwrap_or("threads") {
            "threads" => BackendKind::Threads,
            "tasks" => BackendKind::Tasks,
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown backend `{other}` (one of: threads, tasks)"
                )))
            }
        };

        let faults = match map.get("faults") {
            None | Some(Value::Null) => None,
            Some(v) => Some(parse_faults(v)?),
        };
        let staleness = match map.get("staleness") {
            None | Some(Value::Null) => None,
            Some(v) => Some(parse_staleness(v)?),
        };
        let warm_start = match map.get("warm_start") {
            None | Some(Value::Null) => None,
            Some(v) => {
                if v.as_object().is_none() {
                    return Err(ServeError::BadRequest(
                        "field `warm_start` must be a profile JSON object".into(),
                    ));
                }
                Some(v.clone())
            }
        };
        if staleness.is_some() && warm_start.is_none() {
            return Err(ServeError::BadRequest(
                "field `staleness` requires a `warm_start` profile to discount".into(),
            ));
        }

        let tenant = opt_str(map, "tenant")?.unwrap_or("default");
        let tenant_ok = !tenant.is_empty()
            && tenant.len() <= 64
            && tenant
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
        if !tenant_ok {
            return Err(ServeError::BadRequest(format!(
                "field `tenant` must be 1..=64 characters of [A-Za-z0-9._-], got `{tenant}`"
            )));
        }
        let priority = opt_u64(map, "priority")?.unwrap_or(0);
        if priority > PRIORITY_MAX {
            return Err(ServeError::BadRequest(format!(
                "field `priority` must be in 0..={PRIORITY_MAX}, got {priority}"
            )));
        }

        let spec = JobSpec {
            space,
            policy,
            epsilon,
            smoke: opt_bool(map, "smoke")?.unwrap_or(false),
            reps: reps as usize,
            allocation: opt_u64(map, "allocation")?.unwrap_or(0),
            seed: opt_u64(map, "seed")?.unwrap_or(0xC0FFEE),
            test_machine,
            extrapolate: opt_bool(map, "extrapolate")?.unwrap_or(false),
            charge_internal: opt_bool(map, "charge_internal")?.unwrap_or(true),
            observe: opt_bool(map, "observe")?.unwrap_or(false),
            backend,
            shards: opt_u64(map, "shards")?.unwrap_or(0) as usize,
            persist_models: opt_bool(map, "persist_models")?,
            retries: opt_u64(map, "retries")?.unwrap_or(2) as usize,
            faults,
            warm_start,
            staleness,
            profile: opt_bool(map, "profile")?.unwrap_or(false),
            store: opt_bool(map, "store")?.unwrap_or(false),
            label: opt_str(map, "label")?.map(str::to_string),
            tenant: tenant.to_string(),
            priority: priority as u8,
        };
        if spec.warm_start.is_some() && spec.resets_between_configs() {
            return Err(ServeError::BadRequest(format!(
                "warm_start requires persistent kernel models, but space `{}` resets \
                 statistics between configurations; set \"persist_models\": true",
                spec.space.name()
            )));
        }
        if spec.profile && spec.resets_between_configs() {
            return Err(ServeError::BadRequest(format!(
                "profile capture requires persistent kernel models, but space `{}` resets \
                 statistics between configurations; set \"persist_models\": true",
                spec.space.name()
            )));
        }
        if spec.store && spec.resets_between_configs() {
            return Err(ServeError::BadRequest(format!(
                "a profile store requires persistent kernel models, but space `{}` resets \
                 statistics between configurations; set \"persist_models\": true",
                spec.space.name()
            )));
        }
        Ok(spec)
    }

    /// Whether this job resets kernel statistics between configurations
    /// (the space's paper protocol unless `persist_models` overrides it).
    pub fn resets_between_configs(&self) -> bool {
        match self.persist_models {
            Some(persist) => !persist,
            None => self.space.resets_between_configs(),
        }
    }

    /// CLI short name of the policy.
    pub fn policy_name(&self) -> &'static str {
        POLICY_NAMES
            .iter()
            .find(|(_, p)| *p == self.policy)
            .map(|(n, _)| *n)
            .expect("every policy has a short name")
    }

    /// Re-serialize canonically (sorted keys, defaults made explicit,
    /// trailing newline) for persistence as the job directory's
    /// `spec.json`. `from_json(to_json())` round-trips to an identical
    /// spec.
    pub fn to_json(&self) -> String {
        let mut doc = serde_json::json!({
            "allocation": self.allocation,
            "backend": self.backend.to_string(),
            "charge_internal": self.charge_internal,
            "epsilon": self.epsilon,
            "extrapolate": self.extrapolate,
            "machine": if self.test_machine { "test" } else { "stampede2-knl" },
            "observe": self.observe,
            "policy": self.policy_name(),
            "priority": self.priority,
            "profile": self.profile,
            "reps": self.reps,
            "retries": self.retries,
            "seed": self.seed,
            "shards": self.shards,
            "smoke": self.smoke,
            "space": self.space.name(),
            "store": self.store,
            "tenant": self.tenant.as_str(),
        });
        let map = doc.as_object_mut().expect("doc is an object");
        if let Some(persist) = self.persist_models {
            map.insert("persist_models".into(), Value::Bool(persist));
        }
        if let Some(label) = &self.label {
            map.insert("label".into(), Value::String(label.clone()));
        }
        if let Some(f) = &self.faults {
            map.insert(
                "faults".into(),
                serde_json::json!({
                    "seed": f.seed,
                    "panic_prob": f.panic_prob,
                    "delay_prob": f.delay_prob,
                    "max_delay": f.max_delay,
                    "drop_prob": f.drop_prob,
                    "retransmit_timeout": f.retransmit_timeout,
                }),
            );
        }
        if let Some(s) = &self.staleness {
            map.insert(
                "staleness".into(),
                serde_json::json!({
                    "decay": s.decay,
                    "variance_inflation": s.variance_inflation,
                }),
            );
        }
        if let Some(w) = &self.warm_start {
            map.insert("warm_start".into(), w.clone());
        }
        let mut s = serde_json::to_string_pretty(&doc).expect("json writer is total");
        s.push('\n');
        s
    }

    /// The [`TuningOptions`] this spec maps onto — the same builder chain
    /// `critter-tune` assembles from the equivalent flags.
    pub fn options(&self) -> TuningOptions {
        let mut opts = TuningOptions::new(self.policy, self.epsilon)
            .with_backend(self.backend)
            .with_shards(self.shards)
            .with_reps(self.reps)
            .with_seed(self.seed)
            .with_allocation(self.allocation)
            .with_internal_charging(self.charge_internal)
            .with_retries(self.retries);
        opts.extrapolate = self.extrapolate;
        if let Some(persist) = self.persist_models {
            opts = opts.with_persist_models(persist);
        } else {
            opts.reset_between_configs = self.space.resets_between_configs();
        }
        if self.test_machine {
            opts = opts.with_test_machine();
        }
        if self.observe {
            opts = opts.with_observe();
        }
        if let Some(f) = self.faults {
            opts = opts.with_faults(f);
        }
        opts
    }

    /// The staleness policy for the warm-start profile (fresh when the
    /// spec sets none).
    pub fn staleness_policy(&self) -> StalenessPolicy {
        match self.staleness {
            Some(s) => StalenessPolicy::fresh()
                .with_decay(s.decay)
                .with_variance_inflation(s.variance_inflation),
            None => StalenessPolicy::fresh(),
        }
    }

    /// The configuration space this job sweeps.
    pub fn workloads(&self) -> Vec<std::sync::Arc<dyn critter_algs::Workload>> {
        if self.smoke {
            self.space.smoke()
        } else {
            self.space.bench()
        }
    }

    /// Total `(configuration, repetition)` units in the sweep — the
    /// denominator of the job's progress counter.
    pub fn units_total(&self) -> usize {
        self.workloads().len() * self.reps
    }

    /// Simulated rank threads one run of this job leases from the shared
    /// pool registry (every configuration in a space targets the same rank
    /// count) — the unit per-tenant rank quotas are metered in.
    pub fn ranks(&self) -> usize {
        self.workloads().first().map(|w| w.ranks()).unwrap_or(0)
    }
}

fn parse_faults(v: &Value) -> Result<FaultPlan, ServeError> {
    let map = v
        .as_object()
        .ok_or_else(|| ServeError::BadRequest("field `faults` must be a JSON object".into()))?;
    check_fields(map, &FAULT_FIELDS, "faults")?;
    let mut plan = FaultPlan::new(opt_u64(map, "seed")?.unwrap_or(0xFA17));
    plan.panic_prob = opt_f64(map, "panic_prob")?.unwrap_or(0.0);
    plan.delay_prob = opt_f64(map, "delay_prob")?.unwrap_or(0.0);
    plan.max_delay = opt_f64(map, "max_delay")?.unwrap_or(0.0);
    plan.drop_prob = opt_f64(map, "drop_prob")?.unwrap_or(0.0);
    plan.retransmit_timeout = opt_f64(map, "retransmit_timeout")?.unwrap_or(0.0);
    for (name, p) in [
        ("panic_prob", plan.panic_prob),
        ("delay_prob", plan.delay_prob),
        ("drop_prob", plan.drop_prob),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(ServeError::BadRequest(format!(
                "faults field `{name}` must be a probability in [0, 1], got {p}"
            )));
        }
    }
    for (name, x) in
        [("max_delay", plan.max_delay), ("retransmit_timeout", plan.retransmit_timeout)]
    {
        if !x.is_finite() || x < 0.0 {
            return Err(ServeError::BadRequest(format!(
                "faults field `{name}` must be a non-negative finite number, got {x}"
            )));
        }
    }
    Ok(plan)
}

fn parse_staleness(v: &Value) -> Result<StalenessSpec, ServeError> {
    let map = v
        .as_object()
        .ok_or_else(|| ServeError::BadRequest("field `staleness` must be a JSON object".into()))?;
    check_fields(map, &STALENESS_FIELDS, "staleness")?;
    let spec = StalenessSpec {
        decay: opt_f64(map, "decay")?.unwrap_or(1.0),
        variance_inflation: opt_f64(map, "variance_inflation")?.unwrap_or(1.0),
    };
    if !(spec.decay > 0.0 && spec.decay <= 1.0) {
        return Err(ServeError::BadRequest(format!(
            "staleness field `decay` must be in (0, 1], got {}",
            spec.decay
        )));
    }
    if !(spec.variance_inflation >= 1.0 && spec.variance_inflation.is_finite()) {
        return Err(ServeError::BadRequest(format!(
            "staleness field `variance_inflation` must be >= 1, got {}",
            spec.variance_inflation
        )));
    }
    Ok(spec)
}

fn check_fields(map: &serde_json::Map, allowed: &[&str], what: &str) -> Result<(), ServeError> {
    for (key, _) in map.iter() {
        if !allowed.contains(&key.as_str()) {
            return Err(ServeError::BadRequest(format!(
                "unknown {what} field `{key}` (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn require_str<'m>(map: &'m serde_json::Map, key: &str) -> Result<&'m str, ServeError> {
    match map.get(key) {
        None | Some(Value::Null) => {
            Err(ServeError::BadRequest(format!("missing required field `{key}`")))
        }
        Some(v) => v
            .as_str()
            .ok_or_else(|| ServeError::BadRequest(format!("field `{key}` must be a string"))),
    }
}

fn opt_str<'m>(map: &'m serde_json::Map, key: &str) -> Result<Option<&'m str>, ServeError> {
    match map.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ServeError::BadRequest(format!("field `{key}` must be a string"))),
    }
}

fn opt_bool(map: &serde_json::Map, key: &str) -> Result<Option<bool>, ServeError> {
    match map.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| ServeError::BadRequest(format!("field `{key}` must be a boolean"))),
    }
}

fn opt_u64(map: &serde_json::Map, key: &str) -> Result<Option<u64>, ServeError> {
    match map.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServeError::BadRequest(format!("field `{key}` must be an unsigned integer"))
        }),
    }
}

fn opt_f64(map: &serde_json::Map, key: &str) -> Result<Option<f64>, ServeError> {
    match map.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ServeError::BadRequest(format!("field `{key}` must be a number"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_gets_cli_defaults() {
        let spec = JobSpec::from_json(r#"{"space": "slate-cholesky", "policy": "local"}"#).unwrap();
        assert_eq!(spec.space, TuningSpace::SlateCholesky);
        assert_eq!(spec.policy, ExecutionPolicy::LocalPropagation);
        assert_eq!(spec.epsilon, 0.25);
        assert_eq!(spec.reps, 1);
        assert_eq!(spec.seed, 0xC0FFEE);
        assert!(spec.charge_internal);
        assert!(!spec.smoke && !spec.observe && !spec.test_machine);
        assert_eq!(spec.tenant, "default");
        assert_eq!(spec.priority, 0);
        assert!(spec.ranks() > 0, "every space targets at least one rank");
        let opts = spec.options();
        assert_eq!(opts.seed, 0xC0FFEE);
        assert!(opts.reset_between_configs);
    }

    #[test]
    fn to_json_round_trips_every_field() {
        let text = r#"{
            "space": "capital-cholesky", "policy": "online", "epsilon": 0.5,
            "smoke": true, "reps": 3, "seed": 7, "allocation": 1,
            "machine": "test", "observe": true, "backend": "tasks",
            "shards": 2, "retries": 1, "label": "nightly",
            "faults": {"panic_prob": 0.1},
            "profile": true,
            "tenant": "team-a", "priority": 7
        }"#;
        let spec = JobSpec::from_json(text).unwrap();
        let canon = spec.to_json();
        let spec2 = JobSpec::from_json(&canon).unwrap();
        assert_eq!(canon, spec2.to_json());
        assert_eq!(spec2.label.as_deref(), Some("nightly"));
        assert_eq!(spec2.faults.unwrap().panic_prob, 0.1);
        assert_eq!(spec2.faults.unwrap().seed, 0xFA17);
        assert!(spec2.test_machine);
        assert_eq!(spec2.tenant, "team-a");
        assert_eq!(spec2.priority, 7);
    }

    #[test]
    fn unknown_and_mistyped_fields_are_400s() {
        let cases = [
            (r#"{"space": "slate-cholesky"}"#, "missing required field `policy`"),
            (r#"{"policy": "local"}"#, "missing required field `space`"),
            (r#"{"space": "nope", "policy": "local"}"#, "unknown space"),
            (r#"{"space": "slate-cholesky", "policy": "nope"}"#, "unknown policy"),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "bogus": 1}"#,
                "unknown job spec field `bogus`",
            ),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "reps": "three"}"#,
                "unsigned integer",
            ),
            (r#"{"space": "slate-cholesky", "policy": "local", "reps": 0}"#, "at least 1"),
            (r#"{"space": "slate-cholesky", "policy": "local", "epsilon": -1}"#, "positive"),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "machine": "cray"}"#,
                "unknown machine",
            ),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "faults": {"panic_prob": 2}}"#,
                "probability",
            ),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "faults": {"oops": 1}}"#,
                "unknown faults field",
            ),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "staleness": {"decay": 0.5}}"#,
                "requires a `warm_start`",
            ),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "warm_start": {}}"#,
                "persistent kernel models",
            ),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "profile": true}"#,
                "persistent kernel models",
            ),
            (r#"{"space": "slate-cholesky", "policy": "local", "tenant": ""}"#, "field `tenant`"),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "tenant": "team/a"}"#,
                "field `tenant`",
            ),
            (r#"{"space": "slate-cholesky", "policy": "local", "priority": 10}"#, "0..=9"),
            (
                r#"{"space": "slate-cholesky", "policy": "local", "priority": "high"}"#,
                "unsigned integer",
            ),
            ("[1, 2]", "must be a JSON object"),
            ("not json", "not valid JSON"),
        ];
        for (text, needle) in cases {
            let err = JobSpec::from_json(text).unwrap_err();
            assert_eq!(err.status(), 400, "case {text} should be a 400, got {err}");
            assert!(
                err.detail().contains(needle),
                "case {text}: expected `{needle}` in `{}`",
                err.detail()
            );
        }
    }

    #[test]
    fn warm_start_with_persistence_is_accepted() {
        let spec = JobSpec::from_json(
            r#"{"space": "slate-cholesky", "policy": "local",
                "persist_models": true, "warm_start": {"fingerprint": 1, "stores": []},
                "staleness": {"decay": 0.5, "variance_inflation": 2.0}}"#,
        )
        .unwrap();
        assert!(!spec.resets_between_configs());
        assert!(spec.warm_start.is_some());
        let policy = spec.staleness_policy();
        assert!(!policy.is_fresh());
        let canon = spec.to_json();
        assert_eq!(JobSpec::from_json(&canon).unwrap().to_json(), canon);
    }

    #[test]
    fn units_total_counts_configs_times_reps() {
        let spec = JobSpec::from_json(
            r#"{"space": "slate-cholesky", "policy": "local", "smoke": true, "reps": 3}"#,
        )
        .unwrap();
        assert_eq!(spec.units_total(), spec.workloads().len() * 3);
    }
}

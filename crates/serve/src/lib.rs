//! Tuning-as-a-service: a long-running HTTP/JSON daemon over the critter
//! session engine.
//!
//! `critter-serve` accepts tuning jobs over HTTP, runs each through
//! [`Autotuner::tune_session`](critter_autotune::Autotuner::tune_session)
//! with a per-job checkpoint directory, and serves the resulting canonical
//! [`TuningReport`](critter_autotune::TuningReport) bytes — byte-identical
//! to what `critter-tune --report-out` writes for the equivalent flags
//! (the CI service smoke job `cmp`s the two).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism end to end.** A job spec plus its seed fully determines
//!    the report. The daemon adds no nondeterminism: artifacts are written
//!    once, atomically, and served verbatim.
//! 2. **Crash-only lifecycle.** The durable truth is the job directory,
//!    not daemon memory. `kill -9` the daemon mid-sweep, restart it, and
//!    recovery re-lists the directories, re-enqueues unfinished jobs, and
//!    the session engine resumes each from its checkpoint — the final
//!    report is byte-identical to an uninterrupted run (the kill/restart
//!    oracle asserts exactly this).
//! 3. **No new dependencies.** The HTTP layer is hand-rolled over
//!    [`std::net::TcpListener`]: one request per connection, JSON bodies,
//!    defensive size caps and timeouts. See [`http`].
//!
//! The full API reference with request/response schemas, the job state
//! machine, the error-code table, and a curl walkthrough lives in
//! `docs/SERVICE.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod error;
pub mod http;
pub mod job;
pub mod scheduler;
pub mod server;

/// The service API's wire version, reported by `GET /v1/healthz` under
/// `api.version`. It bumps only on breaking changes to request or response
/// shapes; additive fields and endpoints do not bump it. `docs/SERVICE.md`
/// states the version it documents, and the `doc_check` bin fails CI when
/// the two drift apart.
pub const API_VERSION: u64 = 2;

pub use api::JobSpec;
pub use error::{ErrorCode, ServeError};
pub use job::{JobState, Registry};
pub use scheduler::{JobTicket, QuotaConfig, SchedCore, Scheduler, TenantUsage};
pub use server::{Server, ServerConfig};

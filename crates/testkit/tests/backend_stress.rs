//! Nightly scale stress: the `tasks` backend's reason to exist is hosting
//! rank counts that drown a thread-per-rank design — 10k+ simulated ranks in
//! one process, with the runnable set bounded by the worker budget. These
//! oracles run a one-configuration SLATE Cholesky tuning sweep at 4096 and
//! 10240 ranks on the `tasks` backend and enforce the nightly budgets:
//!
//! * wall clock under `CRITTER_STRESS_BUDGET_SECS` (default 1200 s);
//! * peak resident set (Linux `VmHWM`) under `CRITTER_STRESS_RSS_GIB`
//!   (default 6 GiB).
//!
//! `#[ignore]`d in tier-1; the nightly deep-verify job's `--include-ignored`
//! picks them up. The same 10240-rank shape is tracked over time as the
//! `sim/backend_tasks_10k` case of the hot-paths bench trajectory.

use std::sync::Arc;
use std::time::{Duration, Instant};

use critter_algs::slate_chol::SlateCholesky;
use critter_algs::Workload;
use critter_autotune::{Autotuner, TuningOptions};
use critter_core::ExecutionPolicy;
use critter_sim::BackendKind;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Peak resident set size of this process in bytes (Linux only; `None`
/// elsewhere, which skips the RSS bound rather than failing the test).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// One-configuration OnlinePropagation sweep (a full reference execution
/// plus a tuned execution) of a `pr×pc`-grid tile Cholesky on `tasks`.
fn stress_sweep(pr: usize, pc: usize) {
    let w = SlateCholesky { n: 1280, tile: 8, lookahead: 1, pr, pc };
    let ranks = w.ranks();
    assert_eq!(ranks, pr * pc);
    let workloads: Vec<Arc<dyn Workload>> = vec![Arc::new(w)];
    let opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.25)
        .with_test_machine()
        .with_backend(BackendKind::Tasks);

    let budget = Duration::from_secs(env_u64("CRITTER_STRESS_BUDGET_SECS", 1200));
    let start = Instant::now();
    let report = Autotuner::new(opts).tune(&workloads);
    let elapsed = start.elapsed();

    assert_eq!(report.configs.len(), 1);
    let (full, tuned) = &report.configs[0].pairs[0];
    assert!(full.elapsed.is_finite() && full.elapsed > 0.0, "full run must produce a makespan");
    assert!(tuned.elapsed.is_finite() && tuned.elapsed > 0.0, "tuned run must produce a makespan");
    assert!(
        elapsed < budget,
        "{ranks}-rank sweep took {elapsed:?}, over the {budget:?} nightly budget"
    );
    let rss = peak_rss_bytes();
    if let Some(rss) = rss {
        let bound = env_u64("CRITTER_STRESS_RSS_GIB", 6) << 30;
        assert!(
            rss < bound,
            "{ranks}-rank sweep peaked at {} MiB resident, over the {} MiB bound",
            rss >> 20,
            bound >> 20
        );
    }
    eprintln!(
        "stress sweep: {ranks} ranks on tasks in {elapsed:.1?}, peak RSS {} MiB",
        rss.map(|b| b >> 20).unwrap_or(0)
    );
}

#[test]
#[ignore = "nightly stress: thousands of simulated ranks in one process"]
fn slate_cholesky_4096_ranks_on_tasks() {
    stress_sweep(64, 64);
}

#[test]
#[ignore = "nightly stress: 10k+ simulated ranks in one process"]
fn slate_cholesky_10240_ranks_on_tasks() {
    stress_sweep(64, 160);
}

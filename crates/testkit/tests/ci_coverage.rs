//! CI-coverage oracle (§III-A): across many independent noise seeds, the
//! fraction of per-kernel confidence intervals that cover the noise model's
//! *true* mean must sit in a binomial tolerance band around the nominal
//! level 1−α.
//!
//! The samples are collected through the real stack — a one-rank simulation,
//! `CritterEnv` interception, Welford statistics — and the truth is the
//! analytic lognormal mean of the machine's noise model, so this test pins
//! the whole chain: sampler → accumulator → Student-t critical value →
//! interval endpoints.
//!
//! ## Sensitivity (the acceptance criterion)
//!
//! The oracle must actually be able to fail. `coverage_detects_perturbed_
//! critical_values` documents that shrinking every interval's half-width by
//! 10% — exactly what a 10% error in `ConfidenceLevel::critical` would do —
//! drops the observed coverage below the tolerance band, so a regression in
//! the t-quantile bisection, the Welford variance, or the interval assembly
//! is caught, not absorbed.

use critter_stats::{ConfidenceInterval, ConfidenceLevel, OnlineStats};
use critter_testkit::{sample_kernel_times, true_kernel_mean};

/// Samples per trial: small enough that the Student-t correction matters
/// (dof = 11), large enough that the lognormal's skew doesn't distort
/// nominal coverage.
const SAMPLES_PER_TRIAL: usize = 12;

/// Nominal two-sided level.
const LEVEL: f64 = 0.95;

/// Binomial tolerance band half-width for the default trial count: with
/// T = 1500 Bernoulli(0.95) trials the standard error of the observed
/// coverage is √(0.95·0.05/1500) ≈ 0.0056, so ±0.014 is ≈ 2.5σ — wide
/// enough that the (deterministic) nominal run sits comfortably inside,
/// tight enough that the 10%-perturbed run (expected coverage ≈ 0.93,
/// ≈ 4σ below nominal) falls outside.
const BAND: f64 = 0.014;

/// Observed coverage over `trials` seeds, with every half-width scaled by
/// `hw_scale` (1.0 = the intervals as produced; 0.9 = the intervals a 10%
/// under-estimate of the critical value would produce).
fn coverage(trials: u64, hw_scale: f64) -> f64 {
    let level = ConfidenceLevel::new(LEVEL);
    let mut covered = 0u64;
    for t in 0..trials {
        // Seeds are disjoint from the other oracles' (arbitrary fixed base).
        let seed = 0xC1C0 + t;
        let stats = OnlineStats::from_slice(&sample_kernel_times(seed, SAMPLES_PER_TRIAL));
        let ci = ConfidenceInterval::from_stats(&stats, &level);
        let scaled = ConfidenceInterval { mean: ci.mean, half_width: ci.half_width * hw_scale };
        let truth = true_kernel_mean(seed);
        if scaled.lo() <= truth && truth <= scaled.hi() {
            covered += 1;
        }
    }
    covered as f64 / trials as f64
}

#[test]
fn coverage_matches_nominal_level() {
    let obs = coverage(1500, 1.0);
    assert!(
        (obs - LEVEL).abs() <= BAND,
        "CI coverage {obs:.4} outside nominal band {} ± {BAND}",
        LEVEL
    );
}

#[test]
fn coverage_detects_perturbed_critical_values() {
    // The same trials with every half-width cut by 10%: the oracle's
    // tolerance band must reject this, i.e. the band is tight enough to
    // catch a 10% error in `ConfidenceLevel::critical`.
    let obs = coverage(1500, 0.9);
    assert!(
        obs < LEVEL - BAND,
        "perturbed coverage {obs:.4} still inside the band — oracle has no teeth"
    );
}

/// Deep mode: 6× the trials shrink the binomial noise to ≈ 0.0023 σ; the
/// band scales down with it.
#[test]
#[ignore = "deep verification: run with --include-ignored"]
fn coverage_matches_nominal_level_deep() {
    let obs = coverage(9000, 1.0);
    assert!((obs - LEVEL).abs() <= 0.008, "deep CI coverage {obs:.4} outside 0.95 ± 0.008");
    let perturbed = coverage(9000, 0.9);
    assert!(perturbed < LEVEL - 0.008, "deep perturbed coverage {perturbed:.4} not rejected");
}

//! Schedule-perturbation fuzzing: the determinism contract says every
//! stochastic cost draw is keyed by *operation identity* (channel id,
//! sequence number, invocation counter), never by thread scheduling. So
//! injecting random wall-clock yields and sleeps into the rank threads —
//! `SimConfig::with_perturb` / `TuningOptions::with_perturb` — must leave
//! every virtual result bit-identical: `CritterReport`s, `TuningReport`s,
//! makespans, all of it. Any dependence on real-time interleaving (a racy
//! communicator id, noise drawn in arrival order) shows up here as an exact
//! inequality.
//!
//! Two metamorphic symmetries ride along, checked on a noise-free machine
//! where they hold exactly:
//!
//! * **rank relabeling** — rotating which world rank plays which logical
//!   role leaves the critical-path length invariant;
//! * **grid-dimension permutation** — transposing a pr×pc process grid
//!   under a role-symmetric workload leaves the makespan invariant.

use std::sync::Arc;

use critter_algs::Workload;
use critter_autotune::{Autotuner, TuningOptions, TuningReport, TuningSpace};
use critter_core::{CritterConfig, CritterEnv, ExecutionPolicy, KernelStore};
use critter_machine::{KernelClass, MachineModel};
use critter_sim::{run_simulation, PerturbParams, ReduceOp, SimConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Bit-identical reports under perturbation
// ---------------------------------------------------------------------

/// A communication-heavy profiled program: computes, ring exchanges, and a
/// collective, all through the interception layer.
fn profiled_run(perturb: Option<PerturbParams>) -> Vec<critter_core::CritterReport> {
    let mut config = SimConfig::new(4);
    if let Some(p) = perturb {
        config = config.with_perturb(p);
    }
    let machine = MachineModel::test_noisy(4, 11).shared();
    let report = run_simulation(config, machine, |ctx| {
        let mut env = CritterEnv::new(ctx, CritterConfig::full(), KernelStore::new());
        let world = env.world();
        for i in 0..6 {
            env.kernel(critter_core::ComputeOp::Gemm, 16, 16, 16, 2.0 * 4096.0, || {});
            let right = (env.rank() + 1) % 4;
            let left = (env.rank() + 3) % 4;
            let _ = env.sendrecv(&world, right, i, &[env.rank() as f64], left, i, 1);
            let _ = env.allreduce(&world, ReduceOp::Sum, &[1.0, 2.0]);
        }
        env.finish().0
    });
    report.outputs
}

fn tuned_sweep(perturb: Option<PerturbParams>) -> TuningReport {
    let mut opts = TuningOptions::new(ExecutionPolicy::LocalPropagation, 0.25)
        .with_test_machine()
        .with_workers(3);
    if let Some(p) = perturb {
        opts = opts.with_perturb(p);
    }
    let workloads: Vec<Arc<dyn Workload>> = TuningSpace::SlateCholesky.smoke();
    Autotuner::new(opts).tune(&workloads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Critter reports from a directly profiled run are bit-identical under
    /// any yield/sleep pattern.
    #[test]
    fn profiled_reports_survive_schedule_perturbation(
        seed in 0u64..0xFFFF_FFFF,
        yield_pct in 0u32..101,
        sleep_pct in 0u32..41,
        max_sleep_us in 0u64..50,
    ) {
        let perturb = PerturbParams {
            seed,
            yield_prob: yield_pct as f64 / 100.0,
            sleep_prob: sleep_pct as f64 / 100.0,
            max_sleep_us,
        };
        let base = profiled_run(None);
        let shaken = profiled_run(Some(perturb));
        prop_assert_eq!(base, shaken);
    }

    /// A whole tuning sweep — including the parallel reference-run pipeline —
    /// is bit-identical under perturbation.
    #[test]
    fn tuning_reports_survive_schedule_perturbation(
        seed in 0u64..0xFFFF_FFFF,
        yield_pct in 0u32..101,
        max_sleep_us in 0u64..30,
    ) {
        let perturb = PerturbParams {
            seed,
            yield_prob: yield_pct as f64 / 100.0,
            sleep_prob: 0.2,
            max_sleep_us,
        };
        let base = tuned_sweep(None);
        let shaken = tuned_sweep(Some(perturb));
        prop_assert_eq!(base, shaken);
    }
}

// ---------------------------------------------------------------------
// Metamorphic symmetries (noise-free machine)
// ---------------------------------------------------------------------

/// Makespan of a ring program where world rank `r` plays logical role
/// `(r + shift) % p`: compute cost depends only on the logical role, and
/// messages flow between logical neighbors. On a noise-free machine the
/// schedule is a pure function of the *logical* structure, so the makespan
/// must not depend on the relabeling shift.
fn relabeled_ring_makespan(p: usize, shift: usize) -> f64 {
    let machine = MachineModel::test_exact(p).shared();
    let report = run_simulation(SimConfig::new(p), machine, move |ctx| {
        let role = (ctx.rank() + shift) % p;
        let world = ctx.world();
        // Role-dependent load: role i performs (i+1) cost units.
        ctx.compute(KernelClass::Gemm, 1e5 * (role + 1) as f64);
        // Logical ring: role i sends to role i+1. World destination is the
        // rank playing that role, i.e. logical index minus shift (mod p).
        let next_role = (role + 1) % p;
        let prev_role = (role + p - 1) % p;
        let dst = (next_role + p - shift) % p;
        let src = (prev_role + p - shift) % p;
        let got = ctx.sendrecv(&world, dst, role as u64, &[role as f64], src, prev_role as u64);
        assert_eq!(got[0], prev_role as f64);
        let _ = ctx.allreduce(&world, ReduceOp::Max, &[ctx.now()]);
    });
    report.elapsed()
}

/// Makespan of a role-symmetric pr×pc grid workload: every rank computes a
/// fixed-cost kernel, then allreduces W words across its row and W words
/// across its column. Transposing the grid (pr ↔ pc) swaps the roles of the
/// two phases, which are identical by construction, so the makespan is
/// invariant on a noise-free machine.
fn grid_makespan(pr: usize, pc: usize, words: usize) -> f64 {
    let p = pr * pc;
    let machine = MachineModel::test_exact(p).shared();
    let report = run_simulation(SimConfig::new(p), machine, move |ctx| {
        let world = ctx.world();
        let row = ctx.rank() / pc;
        let col = ctx.rank() % pc;
        let row_comm = ctx.split(&world, row as i64, col as i64).expect("row comm");
        let col_comm = ctx.split(&world, (pr + col) as i64, row as i64).expect("col comm");
        ctx.compute(KernelClass::Gemm, 2e5);
        let data = vec![1.0; words];
        let _ = ctx.allreduce(&row_comm, ReduceOp::Sum, &data);
        let _ = ctx.allreduce(&col_comm, ReduceOp::Sum, &data);
    });
    report.elapsed()
}

proptest! {
    /// Rank relabeling leaves the critical-path length invariant.
    #[test]
    fn rank_relabeling_is_a_symmetry(p_idx in 0usize..3, shift in 0usize..8) {
        let p = [2, 4, 6][p_idx];
        let base = relabeled_ring_makespan(p, 0);
        let shifted = relabeled_ring_makespan(p, shift % p);
        prop_assert_eq!(base, shifted);
    }

    /// Grid-dimension permutation leaves the makespan invariant.
    #[test]
    fn grid_transpose_is_a_symmetry(shape_idx in 0usize..3, w_exp in 0u32..4) {
        let (pr, pc) = [(1usize, 4usize), (2, 2), (2, 4)][shape_idx];
        let words = 16usize << w_exp;
        let a = grid_makespan(pr, pc, words);
        let b = grid_makespan(pc, pr, words);
        prop_assert_eq!(a, b);
    }
}

/// The perturbation hooks must be genuinely schedule-only: a perturbed and
/// an unperturbed run must also agree on per-rank *virtual clocks*, not
/// just on the aggregated report.
#[test]
fn perturbation_leaves_rank_clocks_untouched() {
    let run = |perturb: Option<PerturbParams>| {
        let mut config = SimConfig::new(4);
        if let Some(p) = perturb {
            config = config.with_perturb(p);
        }
        let machine = MachineModel::test_noisy(4, 23).shared();
        run_simulation(config, machine, |ctx| {
            let world = ctx.world();
            ctx.compute(KernelClass::Gemm, 3e5 * (1 + ctx.rank() % 2) as f64);
            let _ = ctx.allreduce(&world, ReduceOp::Sum, &[1.0]);
            ctx.now()
        })
    };
    let perturb = PerturbParams { seed: 5, yield_prob: 0.9, sleep_prob: 0.6, max_sleep_us: 80 };
    let base = run(None);
    let shaken = run(Some(perturb));
    assert_eq!(base.rank_times, shaken.rank_times);
    assert_eq!(base.outputs, shaken.outputs);
}

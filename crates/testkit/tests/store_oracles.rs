//! Oracle family 9: the content-addressed profile store.
//!
//! Four contracts, all against the real store and the real autotuner:
//!
//! * **File equivalence** — a sweep warm-started from a store holding
//!   exactly one published profile must produce a report byte-identical
//!   to the same sweep warm-started from the equivalent profile *file*.
//!   The store is a strict superset of file warm-starts, never a
//!   different code path with different numerics.
//! * **Concurrent writers** — any number of threads publishing into one
//!   store must serialize into a linear generation history with no lost
//!   updates, and the store must stay fsck-clean throughout.
//! * **Partial-commit recovery** — staged garbage (tmp strays,
//!   unreferenced blobs) must never affect readers; a torn *index* file
//!   must be detected by `verify` and reclaimed by `gc`.
//! * **Shared-store daemons** (`#[ignore]`, nightly) — two `critter-serve`
//!   daemons publishing into and consuming from one store directory must
//!   leave it fsck-clean, and the store endpoints must serve its census.

use std::path::PathBuf;
use std::sync::Arc;

use critter_autotune::{Autotuner, SessionConfig, StalenessPolicy, TuningOptions, TuningSpace};
use critter_core::ExecutionPolicy;
use critter_machine::{MachineParams, NoiseParams};
use critter_serve::http::client;
use critter_serve::{Server, ServerConfig};
use critter_store::{MachineSpec, Store};
use proptest::prelude::*;

/// Scratch directory for one test, cleaned before use.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("critter-testkit-store-oracles")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The pinned persist-models sweep every store oracle runs: Capital
/// Cholesky keeps kernel statistics across configurations, so profiles
/// and store entries are meaningful.
fn options() -> TuningOptions {
    let space = TuningSpace::CapitalCholesky;
    let mut opts = TuningOptions::new(ExecutionPolicy::LocalPropagation, 0.25)
        .with_test_machine()
        .with_persist_models(true);
    opts.reset_between_configs = space.resets_between_configs();
    opts
}

fn workloads() -> Vec<Arc<dyn critter_algs::Workload>> {
    TuningSpace::CapitalCholesky.smoke()
}

/// A store holding exactly one published profile must warm-start a sweep
/// byte-identically to the profile file it was published from — same
/// report, same winner, same per-kernel statistics — under a non-trivial
/// staleness policy, so the discounting path is exercised too.
#[test]
fn store_warm_start_is_byte_identical_to_file_warm_start() {
    let dir = scratch("file-equivalence");
    let profile = dir.join("profile.json");
    let store_dir = dir.join("store");
    let tuner = Autotuner::new(options());
    let workloads = workloads();

    // One cold sweep persists the same final models to both surfaces: a
    // profile file and a store publication.
    let cold = tuner
        .tune_session(
            &workloads,
            &SessionConfig::new().with_profile_out(&profile).with_store(&store_dir),
        )
        .unwrap();
    let index = Store::open(&store_dir).unwrap().latest().unwrap().expect("publication landed");
    assert_eq!(index.generation, 1);
    assert_eq!(index.entries.len(), 1);

    let staleness = StalenessPolicy::fresh().with_decay(0.5).with_variance_inflation(2.0);
    let warm_file = tuner
        .tune_session(
            &workloads,
            &SessionConfig::new().with_warm_start(&profile).with_staleness(staleness),
        )
        .unwrap();
    let warm_store = tuner
        .tune_session(
            &workloads,
            &SessionConfig::new().with_store(&store_dir).with_staleness(staleness),
        )
        .unwrap();

    assert_eq!(
        warm_store.to_json_string(),
        warm_file.to_json_string(),
        "store warm start must be byte-identical to the file warm start"
    );
    assert_eq!(warm_store.selected(), cold.selected(), "warm start must not change the winner");

    // The store-backed sweep also published its own final models: the
    // history grew by one generation and stayed fsck-clean.
    let store = Store::open(&store_dir).unwrap();
    let after = store.latest().unwrap().expect("second publication landed");
    assert_eq!(after.generation, 2);
    assert_eq!(after.entries.len(), 2);
    assert!(store.verify().unwrap().ok());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic synthetic profile, distinct per `(writer, commit)`.
fn synthetic_stores(writer: u64, commit: u64) -> Vec<critter_core::KernelStore> {
    use critter_core::signature::{ComputeOp, KernelSig};
    let mut s = critter_core::KernelStore::new();
    let sig = KernelSig::compute(ComputeOp::Gemm, 8, 8, 8);
    for i in 0..3u64 {
        s.record(&sig, 1.0e-3 + (writer * 7919 + commit * 101 + i) as f64 * 1.0e-9);
    }
    vec![s]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Concurrent writers never lose an update: after `writers` threads
    /// publish `commits` profiles each, the store holds exactly
    /// `writers * commits` generations and entries, sequence numbers are
    /// the contiguous range `1..=n`, every writer's full history is
    /// present, and the store is fsck-clean.
    #[test]
    fn concurrent_writers_serialize_without_lost_updates(
        writers in 2u64..5,
        commits in 2u64..8,
    ) {
        let dir = scratch(&format!("writers-{writers}-{commits}"));
        let store = Store::open(&dir).unwrap();
        let machine =
            MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster());
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let store = store.clone();
                let machine = machine.clone();
                std::thread::spawn(move || {
                    for c in 0..commits {
                        store
                            .publish(&machine, &format!("w{w}"), &synthetic_stores(w, c))
                            .expect("publish");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }

        let total = writers * commits;
        let index = store.latest().unwrap().expect("history exists");
        prop_assert_eq!(index.generation, total);
        prop_assert_eq!(index.entries.len() as u64, total);
        let mut seqs: Vec<u64> = index.entries.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        prop_assert_eq!(seqs, (1..=total).collect::<Vec<u64>>());
        for w in 0..writers {
            let published = index.entries.iter().filter(|e| e.algo == format!("w{w}")).count();
            prop_assert!(published as u64 == commits, "writer {} lost updates", w);
        }
        prop_assert!(store.verify().unwrap().ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A commit interrupted before its index link lands leaves only staging
/// garbage, which readers never see and `gc` reclaims; a torn index file
/// (disk corruption, not a crash — the hard-link commit cannot tear) is
/// detected by `verify` and reclaimed by `gc` without hiding the valid
/// history.
#[test]
fn partial_commits_and_torn_indexes_recover_by_relisting() {
    let dir = scratch("partial-commit");
    let store = Store::open(&dir).unwrap();
    let machine = MachineSpec::from_models(&MachineParams::test_machine(), &NoiseParams::cluster());
    for c in 0..3 {
        store.publish(&machine, "base", &synthetic_stores(0, c)).unwrap();
    }

    // A crash between staging and linking: an orphaned staged blob plus a
    // stray tmp index. Readers are unaffected and verify stays clean —
    // staging garbage is legal, torn state is not possible.
    store.stage(&synthetic_stores(9, 9)).unwrap();
    std::fs::write(dir.join("tmp").join("12345-99.json"), "{\"half\": ").unwrap();
    let index = store.latest().unwrap().unwrap();
    assert_eq!(index.generation, 3);
    let report = store.verify().unwrap();
    assert!(report.ok(), "staging garbage is not corruption: {:?}", report.problems);
    assert_eq!(report.unreferenced, 1);
    assert!(report.tmp_strays >= 1);

    // A torn index file *is* corruption: verify must say so, readers must
    // still serve the valid generations, and gc must reclaim it.
    std::fs::write(dir.join("index").join(format!("gen-{:020}.json", 4)), "{\"torn\": ").unwrap();
    assert_eq!(store.latest().unwrap().unwrap().generation, 3, "torn squatter must not win");
    assert!(!store.verify().unwrap().ok(), "a torn index file must fail verification");

    // The writer path skips the squatter (generation 4 is taken by junk,
    // so the next commit lands on 5) and gc restores a clean store.
    let next = store.publish(&machine, "base", &synthetic_stores(0, 99)).unwrap();
    assert_eq!(next, 5);
    store.gc(2).unwrap();
    let report = store.verify().unwrap();
    assert!(report.ok(), "gc must reclaim the torn file: {:?}", report.problems);
    assert_eq!(report.unreferenced, 0);
    assert_eq!(report.tmp_strays, 0);
    assert_eq!(store.latest().unwrap().unwrap().generation, 5);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Submit a job and wait for it to finish.
fn run_job(addr: std::net::SocketAddr, spec: &str) -> String {
    let (status, body) = client::request(addr, "POST", "/v1/jobs", Some(spec)).expect("submit");
    assert_eq!(status, 202, "submit must be accepted: {body}");
    let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
    let id = doc.get("id").and_then(|v| v.as_str()).expect("submit echoes the id").to_string();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
    loop {
        let (_, doc) = client::request_json(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        match doc.get("state").and_then(|s| s.as_str()) {
            Some("done") => return id,
            Some("failed") => panic!("job {id} failed: {doc:?}"),
            _ => {}
        }
        assert!(std::time::Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// Two daemons, one store: both publish into and warm-start from the same
/// directory, concurrently, and the store must come out fsck-clean with
/// every publication accounted for. Ignored in the default run (it runs
/// several full sweeps); the nightly deep-verify lane includes it.
#[test]
#[ignore = "nightly: runs several full sweeps across two live daemons"]
fn two_daemons_share_one_store_without_corruption() {
    let base = scratch("two-daemons");
    let store_dir = base.join("store");
    let spec = r#"{"space": "capital-cholesky", "policy": "local", "smoke": true,
                   "machine": "test", "persist_models": true, "store": true}"#;

    let daemon = |tag: &str| {
        let mut config = ServerConfig::new(base.join(tag)).with_store(&store_dir);
        config.addr = "127.0.0.1:0".into();
        config.job_workers = 2;
        std::fs::create_dir_all(base.join(tag)).unwrap();
        Server::start(config).expect("daemon starts")
    };
    let a = daemon("daemon-a");
    let b = daemon("daemon-b");

    // Two rounds on each daemon, interleaved: round two consumes what
    // round one published.
    let jobs_per_daemon = 2;
    std::thread::scope(|s| {
        for addr in [a.addr(), b.addr()] {
            s.spawn(move || {
                for _ in 0..jobs_per_daemon {
                    run_job(addr, spec);
                }
            });
        }
    });

    // Every job published exactly one generation.
    let store = Store::open(&store_dir).unwrap();
    let index = store.latest().unwrap().expect("publications landed");
    assert_eq!(index.generation, 2 * jobs_per_daemon as u64);
    assert_eq!(index.entries.len(), 2 * jobs_per_daemon);
    let report = store.verify().unwrap();
    assert!(report.ok(), "shared store corrupted: {:?}", report.problems);

    // The census is visible over HTTP on both daemons, and blobs resolve.
    for addr in [a.addr(), b.addr()] {
        let (status, health) = client::request_json(addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(status, 200);
        let census = health.get("store").expect("store census in healthz");
        assert_eq!(census.get("generation").and_then(|v| v.as_u64()), Some(index.generation));
        assert_eq!(
            census.get("entries").and_then(|v| v.as_u64()),
            Some(index.entries.len() as u64)
        );
        let (status, listing) = client::request_json(addr, "GET", "/v1/store", None).unwrap();
        assert_eq!(status, 200);
        let entries = listing.get("entries").and_then(|v| v.as_array()).unwrap();
        assert_eq!(entries.len(), index.entries.len());
        let blob = format!("{:013x}", index.entries[0].blob);
        let (status, _) =
            client::request_json(addr, "GET", &format!("/v1/store/blob/{blob}"), None).unwrap();
        assert_eq!(status, 200);
    }

    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

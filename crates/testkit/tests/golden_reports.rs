//! Golden-report regression tests: the canonical JSON of two small, fully
//! pinned tuning sweeps (Cholesky under local propagation, QR under online
//! propagation) is compared byte-for-byte against committed fixtures.
//!
//! Because every float in the report is a deterministic function of the
//! codebase (counter-based noise, sorted JSON keys, shortest-round-trip
//! float formatting), *any* behavioral change to the simulator, noise
//! model, statistics, or sweep schedule shows up as a fixture diff — which
//! is exactly the point: intentional changes re-bless
//! (`cargo run -p critter-testkit --bin bless`), unintentional ones fail CI.

use critter_testkit::{golden, golden_tunes};

#[test]
fn golden_reports_match_committed_fixtures() {
    for tune in golden_tunes() {
        let text = tune.run().to_json_string();
        golden::check_or_bless(tune.name, &text);
    }
}

#[test]
fn blessing_is_idempotent() {
    // The acceptance criterion for `--bless`: regenerating on a clean tree
    // produces byte-identical fixtures (no timestamps, no map-order drift,
    // no float noise).
    for tune in golden_tunes() {
        assert_eq!(
            tune.run().to_json_string(),
            tune.run().to_json_string(),
            "{} must serialize identically across runs",
            tune.name
        );
    }
}

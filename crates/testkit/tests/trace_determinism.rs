//! Determinism oracles for the `critter-obs` observability layer.
//!
//! The contract (docs/OBSERVABILITY.md): with a fixed seed, the exported
//! trace is **byte-identical** across reruns, across `--jobs`/worker levels,
//! and under the testkit's wall-clock schedule perturbation. These tests
//! assert exactly that, end to end:
//!
//! * the full `fig3 --trace-out` pipeline at `--jobs 1` vs `--jobs 4`
//!   (the ISSUE's acceptance criterion);
//! * an observed `Autotuner` sweep with serial vs pipelined reference runs;
//! * an observed sweep with and without injected yields/sleeps;
//! * the committed golden trace fixture round-trip.

use critter_autotune::{Autotuner, TuningOptions, TuningReport, TuningSpace};
use critter_bench::{fig3, FigOpts};
use critter_core::ExecutionPolicy;
use critter_sim::PerturbParams;
use critter_testkit::golden;

fn observed_sweep(workers: usize, perturb: Option<PerturbParams>) -> TuningReport {
    let mut opts = TuningOptions::new(ExecutionPolicy::OnlinePropagation, 0.25)
        .with_test_machine()
        .with_workers(workers)
        .with_observe();
    if let Some(p) = perturb {
        opts = opts.with_perturb(p);
    }
    let space = TuningSpace::SlateCholesky;
    opts.reset_between_configs = space.resets_between_configs();
    Autotuner::new(opts).tune(&space.smoke())
}

/// A scratch directory under the target dir, wiped at entry.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/trace-determinism")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn fig3_trace_is_byte_identical_across_job_levels() {
    let mut artifacts = Vec::new();
    for jobs in [1usize, 4] {
        let dir = scratch(&format!("fig3-jobs{jobs}"));
        let opts = FigOpts {
            quick: true,
            allocations: 1,
            reps: 1,
            out_dir: dir.clone(),
            jobs,
            trace_out: Some(dir.join("trace.json")),
            folded_out: Some(dir.join("trace.folded")),
            metrics_out: Some(dir.join("metrics.json")),
            ..FigOpts::defaults()
        };
        fig3::run_with(&opts, &[TuningSpace::SlateCholesky, TuningSpace::SlateQr], true);
        let read = |p: &std::path::Path| std::fs::read(p).expect("artifact written");
        artifacts.push((
            read(&dir.join("trace.json")),
            read(&dir.join("trace.folded")),
            read(&dir.join("metrics.json")),
        ));
    }
    assert_eq!(artifacts[0].0, artifacts[1].0, "chrome trace must not depend on --jobs");
    assert_eq!(artifacts[0].1, artifacts[1].1, "folded stacks must not depend on --jobs");
    assert_eq!(artifacts[0].2, artifacts[1].2, "metrics must not depend on --jobs");
    assert!(!artifacts[0].0.is_empty() && !artifacts[0].1.is_empty());
}

#[test]
fn observed_sweep_is_schedule_independent() {
    let serial = observed_sweep(1, None);
    let parallel = observed_sweep(4, None);
    assert_eq!(serial, parallel, "whole reports must agree bit for bit");
    let a = serial.obs.expect("observed");
    let b = parallel.obs.expect("observed");
    assert_eq!(a.timeline.to_chrome_string(), b.timeline.to_chrome_string());
    assert_eq!(a.timeline.to_folded(), b.timeline.to_folded());
    assert_eq!(a.metrics_string(), b.metrics_string());
    assert!(a.timeline.event_count() > 0, "an observed sweep must record events");
}

#[test]
fn observed_trace_survives_schedule_perturbation() {
    let calm = observed_sweep(2, None);
    let shaken = observed_sweep(
        2,
        Some(PerturbParams { seed: 0xF00D, yield_prob: 0.2, sleep_prob: 0.05, max_sleep_us: 120 }),
    );
    let a = calm.obs.expect("observed").timeline.to_chrome_string();
    let b = shaken.obs.expect("observed").timeline.to_chrome_string();
    assert_eq!(a, b, "wall-clock perturbation must not move the virtual trace");
}

#[test]
fn golden_trace_fixture_round_trips() {
    golden::check_or_bless(critter_testkit::GOLDEN_TRACE_NAME, &critter_testkit::golden_trace());
}

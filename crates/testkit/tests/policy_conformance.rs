//! Policy-conformance oracles (§IV, §VI): every selective policy must tune
//! to a configuration whose *true* cost is within the ε-derived bound of the
//! Full-policy winner, and the skip fractions must respect the paper's
//! policy ordering — each propagation refinement makes the criterion easier
//! to meet, so it can only skip more.
//!
//! The ε-derived bound: a selective run's critical-path estimate carries a
//! relative error of at most ≈ ε, so the worst mis-ranking picks a
//! configuration whose true time is within a factor `(1+ε)/(1−ε)` of the
//! optimum — i.e. `selection_quality() ≥ (1−ε)/(1+ε)`, minus slack for the
//! run-to-run noise the paper itself quantifies with repeated full
//! executions.

use std::sync::Arc;

use critter_algs::Workload;
use critter_autotune::{Autotuner, TuningOptions, TuningReport, TuningSpace};
use critter_core::ExecutionPolicy;

const EPSILON: f64 = 0.25;
/// Noise slack on the ε-derived quality bound: covers the same-order
/// run-to-run variation a full execution itself shows under cluster noise.
const QUALITY_SLACK: f64 = 0.10;
/// Additive tolerance on skip-fraction ordering comparisons.
const SKIP_TOL: f64 = 0.02;

fn tune(space: TuningSpace, policy: ExecutionPolicy, allocation: u64) -> TuningReport {
    let mut opts = TuningOptions::new(policy, EPSILON).with_test_machine();
    opts.reset_between_configs = space.resets_between_configs();
    opts.allocation = allocation;
    let workloads: Vec<Arc<dyn Workload>> = space.smoke();
    Autotuner::new(opts).tune(&workloads)
}

/// Mean skip fraction of `policy` over two allocations.
fn mean_skip(space: TuningSpace, policy: ExecutionPolicy) -> f64 {
    (tune(space, policy, 0).skip_fraction() + tune(space, policy, 1).skip_fraction()) / 2.0
}

#[test]
fn every_selective_policy_lands_within_epsilon_of_the_full_winner() {
    let quality_bound = (1.0 - EPSILON) / (1.0 + EPSILON) - QUALITY_SLACK;
    for space in [TuningSpace::SlateCholesky, TuningSpace::SlateQr] {
        let reference = tune(space, ExecutionPolicy::Full, 0);
        let full_winner_time = reference.true_times()[reference.selected()];
        for policy in ExecutionPolicy::ALL_SELECTIVE {
            let report = tune(space, policy, 0);
            // Selection quality: true time of the overall optimum over true
            // time of the configuration this policy selected.
            let q = report.selection_quality();
            assert!(
                q >= quality_bound,
                "{} on {} selected a configuration of quality {q:.3} < {quality_bound:.3}",
                policy.name(),
                space.name()
            );
            // And the selected configuration's true cost is within the
            // ε-derived factor of the Full policy's winner.
            let t = report.true_times()[report.selected()];
            let bound = full_winner_time * ((1.0 + EPSILON) / (1.0 - EPSILON) + QUALITY_SLACK);
            assert!(
                t <= bound,
                "{} on {} picked a config with true time {t:.6} > bound {bound:.6}",
                policy.name(),
                space.name()
            );
        }
    }
}

#[test]
fn skip_fractions_respect_the_policy_ordering() {
    for space in [TuningSpace::SlateCholesky, TuningSpace::SlateQr] {
        // Full never skips — by definition, not by tolerance.
        assert_eq!(tune(space, ExecutionPolicy::Full, 0).skip_fraction(), 0.0);

        // §IV's refinement chain: conditional execution has no count
        // scaling, local propagation scales by the locally observed count,
        // online propagation adopts the (larger) critical-path count — each
        // step meets the criterion sooner, so skips at least as much.
        let cond = mean_skip(space, ExecutionPolicy::ConditionalExecution);
        let local = mean_skip(space, ExecutionPolicy::LocalPropagation);
        let online = mean_skip(space, ExecutionPolicy::OnlinePropagation);
        assert!(
            cond <= local + SKIP_TOL,
            "{}: conditional ({cond:.3}) should not out-skip local ({local:.3})",
            space.name()
        );
        assert!(
            local <= online + SKIP_TOL,
            "{}: local ({local:.3}) should not out-skip online ({online:.3})",
            space.name()
        );

        // Every selective policy skips a sane fraction.
        for policy in ExecutionPolicy::ALL_SELECTIVE {
            let s = mean_skip(space, policy);
            assert!((0.0..=1.0).contains(&s), "{} skip fraction {s} out of range", policy.name());
        }
    }
}

#[test]
fn tighter_epsilon_never_increases_skipping() {
    // ε is the knob the paper sweeps: a tighter tolerance can only make the
    // criterion harder, so the skip fraction must not grow.
    for &policy in &[ExecutionPolicy::LocalPropagation, ExecutionPolicy::OnlinePropagation] {
        let skip_at = |eps: f64| {
            let mut opts = TuningOptions::new(policy, eps).with_test_machine();
            opts.reset_between_configs = true;
            let workloads: Vec<Arc<dyn Workload>> = TuningSpace::SlateCholesky.smoke();
            Autotuner::new(opts).tune(&workloads).skip_fraction()
        };
        let loose = skip_at(0.5);
        let tight = skip_at(0.05);
        assert!(
            tight <= loose + SKIP_TOL,
            "{}: skip at ε=0.05 ({tight:.3}) exceeds skip at ε=0.5 ({loose:.3})",
            policy.name()
        );
    }
}

/// Deep mode: the same conformance bounds over both allocations and with
/// repetitions, exercising the statistics-reset protocol.
#[test]
#[ignore = "deep verification: run with --include-ignored"]
fn policy_conformance_deep() {
    let quality_bound = (1.0 - EPSILON) / (1.0 + EPSILON) - QUALITY_SLACK;
    for space in [TuningSpace::SlateCholesky, TuningSpace::SlateQr] {
        for allocation in 0..2 {
            for policy in ExecutionPolicy::ALL_SELECTIVE {
                let mut opts = TuningOptions::new(policy, EPSILON).with_test_machine();
                opts.reset_between_configs = space.resets_between_configs();
                opts.allocation = allocation;
                opts.reps = 2;
                let workloads: Vec<Arc<dyn Workload>> = space.smoke();
                let report = Autotuner::new(opts).tune(&workloads);
                let q = report.selection_quality();
                assert!(
                    q >= quality_bound,
                    "{} on {} alloc {allocation}: quality {q:.3} < {quality_bound:.3}",
                    policy.name(),
                    space.name()
                );
            }
        }
    }
}

//! √k-scaling oracle (§III-A): a kernel appearing `k` times along the
//! critical path has its relative criterion divided by √k, so the number of
//! samples needed to reach a fixed tolerance ε must shrink like `1/k`.
//!
//! The sample streams come from the real simulator (see
//! [`critter_testkit::sample_kernel_times`]) and convergence is decided by
//! the production criterion `ConfidenceInterval::relative_scaled(k) ≤ ε` —
//! the same call sites the selective policies use — so this oracle pins the
//! interaction of the Welford accumulator, the t critical value, and the
//! path-count scaling, not a re-derivation of it.
//!
//! The analytic expectation: the relative half-width after `n` samples is
//! ≈ `2·t*·(s/x̄)/√n`, so the first `n` meeting `ε·√k` satisfies
//! `n*(k) ≈ (2·t*·cv/ε)²/k` — quadrupling `k` should cut samples-to-
//! convergence by ≈ 4 (modulo the discreteness of `n` and the drift of
//! `t*(n)`).

use critter_stats::{ConfidenceInterval, ConfidenceLevel, OnlineStats};
use critter_testkit::sample_kernel_times;

const EPSILON: f64 = 0.02;

/// Samples-to-convergence: the smallest prefix of the stream whose
/// path-scaled relative criterion meets ε (the paper's stopping rule).
fn samples_to_convergence(samples: &[f64], k: u64, level: &ConfidenceLevel) -> usize {
    let mut stats = OnlineStats::new();
    for (i, &x) in samples.iter().enumerate() {
        stats.push(x);
        let ci = ConfidenceInterval::from_stats(&stats, level);
        if ci.predictable(EPSILON, k) {
            return i + 1;
        }
    }
    panic!("criterion never met within {} samples (k = {k})", samples.len());
}

/// Mean samples-to-convergence over `seeds` independent streams.
fn mean_convergence(seeds: std::ops::Range<u64>, k: u64) -> f64 {
    let level = ConfidenceLevel::new(0.95);
    let n = (seeds.end - seeds.start) as f64;
    seeds
        .map(|s| samples_to_convergence(&sample_kernel_times(0x5AD0 + s, 400), k, &level) as f64)
        .sum::<f64>()
        / n
}

#[test]
fn path_count_cuts_samples_to_convergence_like_one_over_k() {
    let n1 = mean_convergence(0..24, 1);
    let n4 = mean_convergence(0..24, 4);
    let n16 = mean_convergence(0..24, 16);

    // Strict monotonicity: more path occurrences, fewer samples.
    assert!(n1 > n4 && n4 > n16, "expected n1 > n4 > n16, got {n1} > {n4} > {n16}");

    // Quantitative 1/k scaling, with slack for the discreteness of n (n16
    // sits near the n ≥ 2 floor where t* is far above its asymptote, which
    // biases the small-n ratios downward).
    let r14 = n1 / n4;
    let r416 = n4 / n16;
    assert!((2.5..=6.0).contains(&r14), "n1/n4 = {r14} not ≈ 4 (n1 {n1}, n4 {n4})");
    assert!((2.0..=6.0).contains(&r416), "n4/n16 = {r416} not ≈ 4 (n4 {n4}, n16 {n16})");
}

#[test]
fn k_zero_falls_back_to_unscaled_criterion() {
    // A kernel not on the path (k = 0) must behave exactly like k = 1: the
    // scaling has a fall-back, not a divide-by-zero.
    let level = ConfidenceLevel::new(0.95);
    let samples = sample_kernel_times(0x5AD0, 400);
    let n0 = samples_to_convergence(&samples, 0, &level);
    let n1 = samples_to_convergence(&samples, 1, &level);
    assert_eq!(n0, n1);
}

/// Deep mode: more streams, plus the k = 64 point of the scaling curve.
#[test]
#[ignore = "deep verification: run with --include-ignored"]
fn sqrt_k_scaling_deep() {
    let n1 = mean_convergence(0..96, 1);
    let n4 = mean_convergence(0..96, 4);
    let n16 = mean_convergence(0..96, 16);
    let n64 = mean_convergence(0..96, 64);
    assert!(n1 > n4 && n4 > n16 && n16 > n64);
    let r = n1 / n4;
    assert!((2.5..=6.0).contains(&r), "n1/n4 = {r}");
}
